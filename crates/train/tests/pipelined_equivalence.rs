//! The double-buffered pipelined engine's correctness contract.
//!
//! [`TrainRuntime::Pipelined`] overlaps two phases per mini-batch: the pool
//! samples/scores batch `k` against a pre-step parameter shadow while the
//! main thread merges and applies batch `k − 1` to the live model. The
//! overlap is only sound if the two phases touch disjoint state — which the
//! compiler cannot check across `WorkerPool::overlap_round`'s lifetime
//! erasure. This suite proves it dynamically: the overlapped engine must be
//! **bit-identical** to the *staged* reference engine
//! (`Trainer::train_epoch_pipelined_staged`), which runs the exact same
//! phases strictly sequentially on one thread. Any data race, phase
//! reordering, or capture-set overlap in the concurrent engine shows up as
//! a trajectory divergence here.
//!
//! The matrix deliberately covers every scoring function (the projection
//! models TransR/TransD route scoring through the shared projection-panel
//! registry, so they also exercise shadow-keyed panel invalidation) and the
//! stateful samplers (NSCaching's per-shard caches, KBGAN's and IGAN's
//! generator + REINFORCE state), at one shard and several.

use nscaching::{build_sampler, NsCachingConfig, SamplerConfig};
use nscaching_datagen::GeneratorConfig;
use nscaching_kg::Dataset;
use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_optim::OptimizerConfig;
use nscaching_train::{TrainConfig, TrainRuntime, Trainer};

const MODEL_SEED: u64 = 7;
const SAMPLER_SEED: u64 = 11;
const TRAIN_SEED: u64 = 5;
const DIM: usize = 8;
const BATCH: usize = 128;
const EPOCHS: usize = 2;

fn dataset() -> Dataset {
    let mut c = GeneratorConfig::small("pipelined-equivalence");
    c.num_entities = 100;
    c.num_train = 600;
    c.num_valid = 40;
    c.num_test = 40;
    c.seed = 17;
    nscaching_datagen::generate(&c).unwrap()
}

fn build_with_runtime(
    ds: &Dataset,
    kind: ModelKind,
    sampler: &SamplerConfig,
    shards: usize,
    runtime: TrainRuntime,
) -> Trainer {
    let model = build_model(
        &ModelConfig::new(kind).with_dim(DIM).with_seed(MODEL_SEED),
        ds.num_entities(),
        ds.num_relations(),
    );
    let sampler = build_sampler(sampler, ds, SAMPLER_SEED);
    let config = TrainConfig::new(EPOCHS)
        .with_batch_size(BATCH)
        .with_optimizer(OptimizerConfig::adam(0.02))
        .with_margin(2.0)
        .with_lambda(0.001)
        .with_seed(TRAIN_SEED)
        .with_shards(shards)
        .with_runtime(runtime);
    Trainer::new(model, sampler, ds, config)
}

fn build_trainer(ds: &Dataset, kind: ModelKind, sampler: &SamplerConfig, shards: usize) -> Trainer {
    build_with_runtime(ds, kind, sampler, shards, TrainRuntime::Pipelined)
}

/// Epoch losses plus the final parameter tables, raw bits and all.
fn run(trainer: &mut Trainer, staged: bool) -> (Vec<f64>, Vec<Vec<u64>>) {
    let losses = (0..EPOCHS)
        .map(|_| {
            if staged {
                trainer.train_epoch_pipelined_staged().mean_loss
            } else {
                trainer.train_epoch().mean_loss
            }
        })
        .collect();
    let tables = trainer
        .model()
        .tables()
        .iter()
        .map(|t| t.data().iter().map(|v| v.to_bits()).collect())
        .collect();
    (losses, tables)
}

fn assert_pipelined_matches_staged(
    ds: &Dataset,
    kind: ModelKind,
    sampler: &SamplerConfig,
    shards: usize,
    label: &str,
) {
    let overlapped = run(&mut build_trainer(ds, kind, sampler, shards), false);
    let staged = run(&mut build_trainer(ds, kind, sampler, shards), true);
    assert_eq!(
        overlapped.0, staged.0,
        "{label} at {shards} shards: overlapped losses diverged from the staged reference"
    );
    assert_eq!(
        overlapped.1, staged.1,
        "{label} at {shards} shards: final parameter tables diverged bit-wise"
    );
}

#[test]
fn pipelined_matches_staged_for_all_seven_models() {
    // The tentpole contract: for every scoring function, the overlapped
    // engine replays the single-threaded staged engine bit-for-bit — the
    // overlap changes *when* work runs, never *what* it computes.
    let ds = dataset();
    let sampler = SamplerConfig::NsCaching(NsCachingConfig::new(8, 8));
    for kind in ModelKind::ALL {
        for shards in [1usize, 4] {
            assert_pipelined_matches_staged(&ds, kind, &sampler, shards, kind.name());
        }
    }
}

#[test]
fn pipelined_matches_staged_for_generator_samplers() {
    // KBGAN and IGAN carry generator tables, optimizer moments and a
    // REINFORCE baseline through the epoch; their per-batch feedback merge
    // must land at the same point of the pipelined schedule in both engines.
    let ds = dataset();
    for sampler in [
        SamplerConfig::kbgan_default(),
        SamplerConfig::igan_default(),
    ] {
        for kind in [ModelKind::TransE, ModelKind::DistMult] {
            for shards in [1usize, 4] {
                let label = format!("{} + {}", kind.name(), sampler.display_name());
                assert_pipelined_matches_staged(&ds, kind, &sampler, shards, &label);
            }
        }
    }
}

#[test]
fn pipelined_replays_exactly_for_fixed_seed_and_shards() {
    let ds = dataset();
    let sampler = SamplerConfig::NsCaching(NsCachingConfig::new(8, 8));
    for shards in [1usize, 4] {
        let a = run(
            &mut build_trainer(&ds, ModelKind::TransE, &sampler, shards),
            false,
        );
        let b = run(
            &mut build_trainer(&ds, ModelKind::TransE, &sampler, shards),
            false,
        );
        assert_eq!(
            a, b,
            "fixed (seed, shards={shards}) must replay bit-for-bit"
        );
    }
}

#[test]
fn pipelined_is_a_distinct_trajectory_from_the_pooled_engine() {
    // Same shard partition, same RNG streams — but batches k ≥ 1 score
    // against parameters one step old, so the delayed-gradient trajectory
    // must differ from the synchronous pooled one.
    let ds = dataset();
    let sampler = SamplerConfig::NsCaching(NsCachingConfig::new(8, 8));
    let pipelined = run(
        &mut build_trainer(&ds, ModelKind::TransE, &sampler, 4),
        false,
    );
    let mut pooled_trainer =
        build_with_runtime(&ds, ModelKind::TransE, &sampler, 4, TrainRuntime::Pool);
    let pooled = run(&mut pooled_trainer, false);
    assert_ne!(pipelined, pooled);
}
