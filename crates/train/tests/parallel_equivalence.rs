//! The sharded engine's backward-compatibility contract: with `shards = 1`,
//! `Trainer::train_epoch` must reproduce the pre-sharding sequential
//! trainer's loss trajectory bit-for-bit, for every scoring function — the
//! paper's tables and figures depend on that path being unchanged.
//!
//! The reference below is a line-for-line re-implementation of the original
//! sequential `train_epoch` (sample → score → feedback → loss/gradients →
//! cache update per positive, one optimizer step per mini-batch) built from
//! the same public pieces the trainer composes.

use nscaching::{build_sampler, NsCachingConfig, SamplerConfig};
use nscaching_datagen::GeneratorConfig;
use nscaching_kg::Dataset;
use nscaching_math::seeded_rng;
use nscaching_models::{
    build_model, default_loss, GradientBuffer, L2Regularizer, LossType, ModelConfig, ModelKind,
};
use nscaching_optim::{build_optimizer, OptimizerConfig};
use nscaching_train::{Batcher, TrainConfig, Trainer};

const MODEL_SEED: u64 = 7;
const SAMPLER_SEED: u64 = 11;
const TRAIN_SEED: u64 = 5;
const DIM: usize = 8;
const BATCH: usize = 128;
const MARGIN: f64 = 2.0;
const LAMBDA: f64 = 0.001;
const EPOCHS: usize = 2;

fn dataset() -> Dataset {
    let mut c = GeneratorConfig::small("parallel-equivalence");
    c.num_entities = 100;
    c.num_train = 600;
    c.num_valid = 40;
    c.num_test = 40;
    c.seed = 13;
    nscaching_datagen::generate(&c).unwrap()
}

fn train_config() -> TrainConfig {
    TrainConfig::new(EPOCHS)
        .with_batch_size(BATCH)
        .with_optimizer(OptimizerConfig::adam(0.02))
        .with_margin(MARGIN)
        .with_lambda(LAMBDA)
        .with_seed(TRAIN_SEED)
}

/// Per-epoch mean losses of the original sequential training loop.
fn reference_epoch_losses(ds: &Dataset, kind: ModelKind, sampler: &SamplerConfig) -> Vec<f64> {
    let mut model = build_model(
        &ModelConfig::new(kind).with_dim(DIM).with_seed(MODEL_SEED),
        ds.num_entities(),
        ds.num_relations(),
    );
    let mut sampler = build_sampler(sampler, ds, SAMPLER_SEED);
    let loss = default_loss(model.loss_type(), MARGIN);
    let regularizer = match model.loss_type() {
        LossType::Logistic => L2Regularizer::new(LAMBDA),
        LossType::MarginRanking => L2Regularizer::none(),
    };
    let mut optimizer = build_optimizer(&OptimizerConfig::adam(0.02));
    let mut batcher = Batcher::new(ds.train.clone(), BATCH);
    let mut rng = seeded_rng(TRAIN_SEED);

    let mut epoch_losses = Vec::new();
    for epoch in 0..EPOCHS {
        let mut loss_sum = 0.0;
        let mut examples = 0usize;
        let mut grads = GradientBuffer::new();
        batcher.shuffle(&mut rng);
        for batch in 0..batcher.batches_per_epoch() {
            grads.clear();
            for index in batcher.batch_range(batch) {
                let positive = &batcher.get(index);
                let negative = sampler.sample(positive, model.as_ref(), &mut rng);
                let f_pos = model.score(positive);
                let f_neg = model.score(&negative.triple);
                sampler.feedback(positive, &negative, f_neg, &mut rng);
                let pair = loss.evaluate(f_pos, f_neg);
                loss_sum += pair.loss;
                examples += 1;
                if !pair.is_zero() {
                    model.accumulate_score_gradient(positive, pair.d_positive, &mut grads);
                    model.accumulate_score_gradient(&negative.triple, pair.d_negative, &mut grads);
                    if regularizer.is_active() {
                        regularizer.accumulate_gradient(model.as_ref(), positive, &mut grads);
                        regularizer.accumulate_gradient(
                            model.as_ref(),
                            &negative.triple,
                            &mut grads,
                        );
                    }
                }
                sampler.update(positive, model.as_ref(), &mut rng);
            }
            if !grads.is_empty() {
                let touched = optimizer.step(model.as_mut(), &grads);
                model.apply_constraints(&touched);
            }
        }
        sampler.epoch_finished(epoch);
        epoch_losses.push(loss_sum / examples as f64);
    }
    epoch_losses
}

/// Per-epoch mean losses of the pipeline trainer at a given shard count.
fn trainer_epoch_losses(
    ds: &Dataset,
    kind: ModelKind,
    sampler: &SamplerConfig,
    shards: usize,
) -> Vec<f64> {
    let model = build_model(
        &ModelConfig::new(kind).with_dim(DIM).with_seed(MODEL_SEED),
        ds.num_entities(),
        ds.num_relations(),
    );
    let sampler = build_sampler(sampler, ds, SAMPLER_SEED);
    let mut trainer = Trainer::new(model, sampler, ds, train_config().with_shards(shards));
    (0..EPOCHS)
        .map(|_| trainer.train_epoch().mean_loss)
        .collect()
}

#[test]
fn one_shard_reproduces_the_sequential_trainer_for_all_seven_models() {
    let ds = dataset();
    let sampler = SamplerConfig::NsCaching(NsCachingConfig::new(8, 8));
    for kind in ModelKind::ALL {
        let reference = reference_epoch_losses(&ds, kind, &sampler);
        let pipeline = trainer_epoch_losses(&ds, kind, &sampler, 1);
        for (epoch, (r, p)) in reference.iter().zip(&pipeline).enumerate() {
            assert!(
                (r - p).abs() <= 1e-12,
                "{}: epoch {epoch} loss diverged (reference {r:.17}, shards=1 {p:.17})",
                kind.name()
            );
        }
        // The trajectories should in fact be bit-identical, not just close.
        assert_eq!(
            reference,
            pipeline,
            "{}: shards=1 must replay the sequential trainer exactly",
            kind.name()
        );
    }
}

#[test]
fn one_shard_reproduces_the_sequential_trainer_for_feedback_samplers() {
    // KBGAN exercises the sample → feedback → REINFORCE path, whose
    // sequential schedule (immediate per-positive generator updates) must be
    // preserved at shards = 1.
    let ds = dataset();
    let sampler = SamplerConfig::KbGan {
        generator: ModelKind::TransE,
        generator_dim: 8,
        candidate_size: 8,
        generator_lr: 0.01,
    };
    let reference = reference_epoch_losses(&ds, ModelKind::TransE, &sampler);
    let pipeline = trainer_epoch_losses(&ds, ModelKind::TransE, &sampler, 1);
    assert_eq!(reference, pipeline);
}

#[test]
fn multi_shard_trajectories_are_reproducible_but_distinct_from_sequential() {
    let ds = dataset();
    let sampler = SamplerConfig::NsCaching(NsCachingConfig::new(8, 8));
    let sequential = trainer_epoch_losses(&ds, ModelKind::TransE, &sampler, 1);
    let parallel_a = trainer_epoch_losses(&ds, ModelKind::TransE, &sampler, 4);
    let parallel_b = trainer_epoch_losses(&ds, ModelKind::TransE, &sampler, 4);
    assert_eq!(
        parallel_a, parallel_b,
        "fixed (seed, shards) must be bit-reproducible"
    );
    assert_ne!(
        sequential, parallel_a,
        "4 shards use decorrelated RNG streams, so the trajectory differs"
    );
}
