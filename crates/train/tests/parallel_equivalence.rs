//! The sharded engine's backward-compatibility contracts:
//!
//! 1. with `shards = 1`, `Trainer::train_epoch` must reproduce the
//!    pre-sharding sequential trainer's loss trajectory bit-for-bit, for
//!    every scoring function — the paper's tables and figures depend on that
//!    path being unchanged;
//! 2. with `shards > 1`, the persistent worker-pool engine must reproduce
//!    the retired per-batch `std::thread::scope` engine bit-for-bit — the
//!    pool replaces *where* the shard stage runs, never *what* it computes;
//! 3. the slab-backed `GradientArena` + dense-slab-optimizer engine must
//!    reproduce the retired `HashMap` gradient engine bit-for-bit: both
//!    references below accumulate into a genuine
//!    `HashMap<(TableId, usize), Vec<f64>>` [`GradientBuffer`] and apply it
//!    with [`ReferenceAdam`] — a line-for-line copy of the retired
//!    `HashMap`-state Adam — so every trajectory equality in this file is
//!    simultaneously an arena-vs-HashMap proof.
//!
//! The references below are line-for-line re-implementations of the retired
//! engines (sequential: sample → score → feedback → loss/gradients → cache
//! update per positive, one optimizer step per mini-batch; parallel: shard →
//! scoped workers → ascending-shard-order merge → apply) built from the same
//! public pieces the trainer composes.

use nscaching::{build_sampler, NsCachingConfig, SamplerConfig, ShardSampler};
use nscaching_datagen::GeneratorConfig;
use nscaching_kg::{Dataset, Triple};
use nscaching_math::{seeded_rng, split_seed};
use nscaching_models::{
    build_model, default_loss, GradientBuffer, KgeModel, L2Regularizer, LossType, ModelConfig,
    ModelKind, TableId,
};
use nscaching_optim::OptimizerConfig;
use nscaching_train::{Batcher, TrainConfig, Trainer, SHARD_STREAM_TAG};
use rand::rngs::StdRng;
use std::collections::HashMap;

const MODEL_SEED: u64 = 7;
const SAMPLER_SEED: u64 = 11;
const TRAIN_SEED: u64 = 5;
const DIM: usize = 8;
const BATCH: usize = 128;
const MARGIN: f64 = 2.0;
const LAMBDA: f64 = 0.001;
const EPOCHS: usize = 2;

fn dataset() -> Dataset {
    let mut c = GeneratorConfig::small("parallel-equivalence");
    c.num_entities = 100;
    c.num_train = 600;
    c.num_valid = 40;
    c.num_test = 40;
    c.seed = 13;
    nscaching_datagen::generate(&c).unwrap()
}

fn train_config() -> TrainConfig {
    TrainConfig::new(EPOCHS)
        .with_batch_size(BATCH)
        .with_optimizer(OptimizerConfig::adam(0.02))
        .with_margin(MARGIN)
        .with_lambda(LAMBDA)
        .with_seed(TRAIN_SEED)
}

/// The retired `HashMap`-state lazy Adam, verbatim: per-row `RowState`
/// allocated on first touch, updates applied in `GradientBuffer` hash-map
/// iteration order. This is the optimizer half of the retired gradient
/// engine that the arena trainer is proven against — per-row updates are
/// independent, so hash-order application and the arena's sorted-slot walk
/// must land on identical parameter bits.
struct ReferenceAdam {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    state: HashMap<(TableId, usize), ReferenceRowState>,
}

struct ReferenceRowState {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl ReferenceAdam {
    fn new(learning_rate: f64) -> Self {
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            state: HashMap::new(),
        }
    }

    fn step(&mut self, model: &mut dyn KgeModel, grads: &GradientBuffer) -> Vec<(TableId, usize)> {
        let (lr, b1, b2, eps) = (self.learning_rate, self.beta1, self.beta2, self.epsilon);
        let mut tables = model.tables_mut();
        let mut touched = Vec::with_capacity(grads.len());
        for (&(table, row), grad) in grads.iter() {
            let state = self
                .state
                .entry((table, row))
                .or_insert_with(|| ReferenceRowState {
                    m: vec![0.0; grad.len()],
                    v: vec![0.0; grad.len()],
                    t: 0,
                });
            state.t += 1;
            let bias1 = 1.0 - b1.powi(state.t as i32);
            let bias2 = 1.0 - b2.powi(state.t as i32);
            let params = tables[table].row_mut(row);
            for i in 0..grad.len() {
                let g = grad[i];
                state.m[i] = b1 * state.m[i] + (1.0 - b1) * g;
                state.v[i] = b2 * state.v[i] + (1.0 - b2) * g * g;
                let m_hat = state.m[i] / bias1;
                let v_hat = state.v[i] / bias2;
                params[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            touched.push((table, row));
        }
        touched
    }
}

/// Per-epoch mean losses of the original sequential training loop.
fn reference_epoch_losses(ds: &Dataset, kind: ModelKind, sampler: &SamplerConfig) -> Vec<f64> {
    let mut model = build_model(
        &ModelConfig::new(kind).with_dim(DIM).with_seed(MODEL_SEED),
        ds.num_entities(),
        ds.num_relations(),
    );
    let mut sampler = build_sampler(sampler, ds, SAMPLER_SEED);
    let loss = default_loss(model.loss_type(), MARGIN);
    let regularizer = match model.loss_type() {
        LossType::Logistic => L2Regularizer::new(LAMBDA),
        LossType::MarginRanking => L2Regularizer::none(),
    };
    let mut optimizer = ReferenceAdam::new(0.02);
    let mut batcher = Batcher::new(ds.train.clone(), BATCH);
    let mut rng = seeded_rng(TRAIN_SEED);

    let mut epoch_losses = Vec::new();
    for epoch in 0..EPOCHS {
        let mut loss_sum = 0.0;
        let mut examples = 0usize;
        let mut grads = GradientBuffer::new();
        batcher.shuffle(&mut rng);
        for batch in 0..batcher.batches_per_epoch() {
            grads.clear();
            for index in batcher.batch_range(batch) {
                let positive = &batcher.get(index);
                let negative = sampler.sample(positive, model.as_ref(), &mut rng);
                let f_pos = model.score(positive);
                let f_neg = model.score(&negative.triple);
                sampler.feedback(positive, &negative, f_neg, &mut rng);
                let pair = loss.evaluate(f_pos, f_neg);
                loss_sum += pair.loss;
                examples += 1;
                if !pair.is_zero() {
                    model.accumulate_score_gradient(positive, pair.d_positive, &mut grads);
                    model.accumulate_score_gradient(&negative.triple, pair.d_negative, &mut grads);
                    if regularizer.is_active() {
                        regularizer.accumulate_gradient(model.as_ref(), positive, &mut grads);
                        regularizer.accumulate_gradient(
                            model.as_ref(),
                            &negative.triple,
                            &mut grads,
                        );
                    }
                }
                sampler.update(positive, model.as_ref(), &mut rng);
            }
            if !grads.is_empty() {
                let touched = optimizer.step(model.as_mut(), &grads);
                model.apply_constraints(&touched);
            }
        }
        sampler.epoch_finished(epoch);
        epoch_losses.push(loss_sum / examples as f64);
    }
    epoch_losses
}

/// Buffered results of one shard's slice of a mini-batch, mirroring the
/// trainer's internal `ShardOutput`.
#[derive(Default)]
struct ScopeShardOutput {
    grads: GradientBuffer,
    losses: Vec<f64>,
}

/// Per-epoch mean losses of the **retired scoped parallel engine**: the
/// PR 2 pipeline with one `std::thread::scope` per mini-batch, re-built from
/// the public shard API with the documented RNG-stream derivation
/// (`SHARD_STREAM_TAG`). This is the oracle the worker-pool engine must
/// reproduce bit-for-bit.
fn reference_parallel_epoch_losses(
    ds: &Dataset,
    kind: ModelKind,
    sampler: &SamplerConfig,
    shards: usize,
) -> Vec<f64> {
    let mut model = build_model(
        &ModelConfig::new(kind).with_dim(DIM).with_seed(MODEL_SEED),
        ds.num_entities(),
        ds.num_relations(),
    );
    let mut sampler = build_sampler(sampler, ds, SAMPLER_SEED);
    let loss = default_loss(model.loss_type(), MARGIN);
    let regularizer = match model.loss_type() {
        LossType::Logistic => L2Regularizer::new(LAMBDA),
        LossType::MarginRanking => L2Regularizer::none(),
    };
    let mut optimizer = ReferenceAdam::new(0.02);
    let mut batcher = Batcher::new(ds.train.clone(), BATCH);
    let mut rng = seeded_rng(TRAIN_SEED);

    let mut epoch_losses = Vec::new();
    for epoch in 0..EPOCHS {
        let mut loss_sum = 0.0;
        let mut examples = 0usize;
        let mut grads = GradientBuffer::new();

        sampler.prepare_shards(shards);
        batcher.shuffle(&mut rng);
        let epoch_seed = split_seed(TRAIN_SEED ^ SHARD_STREAM_TAG, epoch as u64);
        let mut shard_rngs: Vec<StdRng> = (0..shards)
            .map(|s| seeded_rng(split_seed(epoch_seed, s as u64)))
            .collect();
        let mut tasks: Vec<Vec<Triple>> = (0..shards).map(|_| Vec::new()).collect();
        let mut outputs: Vec<ScopeShardOutput> =
            (0..shards).map(|_| ScopeShardOutput::default()).collect();

        for batch in 0..batcher.batches_per_epoch() {
            for task in &mut tasks {
                task.clear();
            }
            for index in batcher.batch_range(batch) {
                let positive = batcher.get(index);
                tasks[sampler.shard_of(&positive, shards)].push(positive);
            }

            {
                let model = model.as_ref();
                let loss = loss.as_ref();
                let regularizer = &regularizer;
                let mut workers = sampler.shard_workers();
                std::thread::scope(|scope| {
                    for (((worker, task), shard_rng), out) in workers
                        .iter_mut()
                        .zip(&tasks)
                        .zip(&mut shard_rngs)
                        .zip(&mut outputs)
                    {
                        if task.is_empty() {
                            continue;
                        }
                        scope.spawn(move || {
                            run_reference_shard(
                                model,
                                loss,
                                regularizer,
                                worker.as_mut(),
                                task,
                                shard_rng,
                                out,
                            )
                        });
                    }
                });
            }
            sampler.merge_batch();

            grads.clear();
            for out in &mut outputs {
                for &example_loss in &out.losses {
                    loss_sum += example_loss;
                    examples += 1;
                }
                out.losses.clear();
                grads.merge(&out.grads);
                out.grads.clear();
            }
            if !grads.is_empty() {
                let touched = optimizer.step(model.as_mut(), &grads);
                model.apply_constraints(&touched);
            }
        }
        sampler.epoch_finished(epoch);
        epoch_losses.push(loss_sum / examples as f64);
    }
    epoch_losses
}

/// One shard's slice, exactly as the (retired and current) parallel engines
/// drive it: sample → score → feedback → loss/gradients → cache update.
fn run_reference_shard(
    model: &dyn nscaching_models::KgeModel,
    loss: &dyn nscaching_models::Loss,
    regularizer: &L2Regularizer,
    worker: &mut dyn ShardSampler,
    positives: &[Triple],
    rng: &mut StdRng,
    out: &mut ScopeShardOutput,
) {
    for positive in positives {
        let negative = worker.sample(positive, model, rng);
        let f_pos = model.score(positive);
        let f_neg = model.score(&negative.triple);
        worker.feedback(positive, &negative, f_neg, rng);
        let pair = loss.evaluate(f_pos, f_neg);
        out.losses.push(pair.loss);
        if !pair.is_zero() {
            model.accumulate_score_gradient(positive, pair.d_positive, &mut out.grads);
            model.accumulate_score_gradient(&negative.triple, pair.d_negative, &mut out.grads);
            if regularizer.is_active() {
                regularizer.accumulate_gradient(model, positive, &mut out.grads);
                regularizer.accumulate_gradient(model, &negative.triple, &mut out.grads);
            }
        }
        worker.update(positive, model, rng);
    }
}

/// Per-epoch mean losses of the pipeline trainer at a given shard count.
fn trainer_epoch_losses(
    ds: &Dataset,
    kind: ModelKind,
    sampler: &SamplerConfig,
    shards: usize,
) -> Vec<f64> {
    let model = build_model(
        &ModelConfig::new(kind).with_dim(DIM).with_seed(MODEL_SEED),
        ds.num_entities(),
        ds.num_relations(),
    );
    let sampler = build_sampler(sampler, ds, SAMPLER_SEED);
    let mut trainer = Trainer::new(model, sampler, ds, train_config().with_shards(shards));
    (0..EPOCHS)
        .map(|_| trainer.train_epoch().mean_loss)
        .collect()
}

#[test]
fn one_shard_reproduces_the_sequential_trainer_for_all_seven_models() {
    let ds = dataset();
    let sampler = SamplerConfig::NsCaching(NsCachingConfig::new(8, 8));
    for kind in ModelKind::ALL {
        let reference = reference_epoch_losses(&ds, kind, &sampler);
        let pipeline = trainer_epoch_losses(&ds, kind, &sampler, 1);
        for (epoch, (r, p)) in reference.iter().zip(&pipeline).enumerate() {
            assert!(
                (r - p).abs() <= 1e-12,
                "{}: epoch {epoch} loss diverged (reference {r:.17}, shards=1 {p:.17})",
                kind.name()
            );
        }
        // The trajectories should in fact be bit-identical, not just close.
        assert_eq!(
            reference,
            pipeline,
            "{}: shards=1 must replay the sequential trainer exactly",
            kind.name()
        );
    }
}

#[test]
fn one_shard_reproduces_the_sequential_trainer_for_feedback_samplers() {
    // KBGAN exercises the sample → feedback → REINFORCE path, whose
    // sequential schedule (immediate per-positive generator updates) must be
    // preserved at shards = 1.
    let ds = dataset();
    let sampler = SamplerConfig::KbGan {
        generator: ModelKind::TransE,
        generator_dim: 8,
        candidate_size: 8,
        generator_lr: 0.01,
    };
    let reference = reference_epoch_losses(&ds, ModelKind::TransE, &sampler);
    let pipeline = trainer_epoch_losses(&ds, ModelKind::TransE, &sampler, 1);
    assert_eq!(reference, pipeline);
}

#[test]
fn pool_engine_reproduces_the_scoped_engine_for_all_seven_models() {
    // The tentpole contract of the persistent-pool runtime: at every shard
    // count, for every scoring function, the trainer (now pool-backed) must
    // replay the retired per-batch thread::scope engine bit-for-bit.
    let ds = dataset();
    let sampler = SamplerConfig::NsCaching(NsCachingConfig::new(8, 8));
    for kind in ModelKind::ALL {
        for shards in [2usize, 4] {
            let scoped = reference_parallel_epoch_losses(&ds, kind, &sampler, shards);
            let pooled = trainer_epoch_losses(&ds, kind, &sampler, shards);
            assert_eq!(
                scoped,
                pooled,
                "{} at {shards} shards: the pool engine must replay the scoped engine exactly",
                kind.name()
            );
        }
    }
}

#[test]
fn pool_engine_reproduces_the_scoped_engine_for_feedback_samplers() {
    // KBGAN buffers REINFORCE feedback per shard and applies one generator
    // step per batch at merge; the pool must preserve that schedule too.
    let ds = dataset();
    let sampler = SamplerConfig::KbGan {
        generator: ModelKind::TransE,
        generator_dim: 8,
        candidate_size: 8,
        generator_lr: 0.01,
    };
    for shards in [2usize, 4] {
        let scoped = reference_parallel_epoch_losses(&ds, ModelKind::TransE, &sampler, shards);
        let pooled = trainer_epoch_losses(&ds, ModelKind::TransE, &sampler, shards);
        assert_eq!(
            scoped, pooled,
            "KBGAN at {shards} shards: the pool engine must replay the scoped engine exactly"
        );
    }
}

#[test]
fn multi_shard_trajectories_are_reproducible_but_distinct_from_sequential() {
    let ds = dataset();
    let sampler = SamplerConfig::NsCaching(NsCachingConfig::new(8, 8));
    let sequential = trainer_epoch_losses(&ds, ModelKind::TransE, &sampler, 1);
    let parallel_a = trainer_epoch_losses(&ds, ModelKind::TransE, &sampler, 4);
    let parallel_b = trainer_epoch_losses(&ds, ModelKind::TransE, &sampler, 4);
    assert_eq!(
        parallel_a, parallel_b,
        "fixed (seed, shards) must be bit-reproducible"
    );
    assert_ne!(
        sequential, parallel_a,
        "4 shards use decorrelated RNG streams, so the trajectory differs"
    );
}
