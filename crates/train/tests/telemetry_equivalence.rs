//! The training-telemetry contract: attaching a [`TrainMetrics`] handle
//! must observe the run, never perturb it. For every engine the
//! instrumented trainer's trajectory (epoch losses + final parameter
//! tables, raw bits) must equal the uninstrumented one's, while the phase
//! histograms and derived gauges land the expected per-batch counts.

use nscaching::{build_sampler, NsCachingConfig, SamplerConfig};
use nscaching_datagen::GeneratorConfig;
use nscaching_kg::Dataset;
use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_obs::MetricsRegistry;
use nscaching_optim::OptimizerConfig;
use nscaching_train::{TrainConfig, TrainMetrics, TrainRuntime, Trainer};
use std::sync::Arc;

const DIM: usize = 8;
const BATCH: usize = 128;
const EPOCHS: usize = 2;
const NUM_TRAIN: usize = 600;

fn dataset() -> Dataset {
    let mut c = GeneratorConfig::small("telemetry-equivalence");
    c.num_entities = 100;
    c.num_train = NUM_TRAIN;
    c.num_valid = 40;
    c.num_test = 40;
    c.seed = 23;
    nscaching_datagen::generate(&c).unwrap()
}

fn build_trainer(ds: &Dataset, shards: usize, runtime: TrainRuntime) -> Trainer {
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(DIM)
            .with_seed(7),
        ds.num_entities(),
        ds.num_relations(),
    );
    let sampler = build_sampler(
        &SamplerConfig::NsCaching(NsCachingConfig::new(8, 8)),
        ds,
        11,
    );
    let config = TrainConfig::new(EPOCHS)
        .with_batch_size(BATCH)
        .with_optimizer(OptimizerConfig::adam(0.02))
        .with_margin(2.0)
        .with_seed(5)
        .with_shards(shards)
        .with_runtime(runtime);
    Trainer::new(model, sampler, ds, config)
}

/// Epoch losses plus the final parameter tables, raw bits and all.
fn run(trainer: &mut Trainer) -> (Vec<f64>, Vec<Vec<u64>>) {
    let losses = (0..EPOCHS)
        .map(|_| trainer.train_epoch().mean_loss)
        .collect();
    let tables = trainer
        .model()
        .tables()
        .iter()
        .map(|t| t.data().iter().map(|v| v.to_bits()).collect())
        .collect();
    (losses, tables)
}

fn phase_count(registry: &MetricsRegistry, phase: &str) -> u64 {
    registry
        .histogram_with("nsc_train_phase_us", &[("phase", phase)])
        .count()
}

#[test]
fn attaching_metrics_never_perturbs_the_trajectory() {
    let ds = dataset();
    let batches = NUM_TRAIN.div_ceil(BATCH);
    for (shards, runtime, label) in [
        (1usize, TrainRuntime::Sequential, "sequential"),
        (4, TrainRuntime::Pool, "pooled"),
        (4, TrainRuntime::Pipelined, "pipelined"),
    ] {
        let plain = run(&mut build_trainer(&ds, shards, runtime));

        let registry = Arc::new(MetricsRegistry::new());
        let metrics = TrainMetrics::register(&registry);
        let mut instrumented = build_trainer(&ds, shards, runtime);
        instrumented.attach_metrics(Arc::clone(&metrics));
        let timed = run(&mut instrumented);

        assert_eq!(plain.0, timed.0, "{label}: losses diverged under telemetry");
        assert_eq!(
            plain.1, timed.1,
            "{label}: parameter tables diverged bit-wise under telemetry"
        );

        // Every engine times the fused sample/score stage once per
        // mini-batch; only the parallel engines partition. The pipelined
        // engine drains batch `k − 1` during round `k` plus once at the
        // epoch tail, so its merge/apply counts run one drain per epoch
        // ahead (the first drain of an epoch folds empty buffers).
        let expected = (EPOCHS * batches) as u64;
        assert_eq!(phase_count(&registry, "sample_score"), expected, "{label}");
        let (expected_shard, expected_drain) = match runtime {
            TrainRuntime::Sequential => (0, expected),
            TrainRuntime::Pipelined => (expected, (EPOCHS * (batches + 1)) as u64),
            _ => (expected, expected),
        };
        assert_eq!(phase_count(&registry, "apply"), expected_drain, "{label}");
        assert_eq!(phase_count(&registry, "shard"), expected_shard, "{label}");
        let expected_merge = if runtime == TrainRuntime::Sequential {
            0
        } else {
            expected_drain
        };
        assert_eq!(phase_count(&registry, "merge"), expected_merge, "{label}");

        // Epoch bridge + derived gauges.
        assert_eq!(
            registry.counter_value("nsc_train_epochs_total", &[]),
            Some(EPOCHS as u64)
        );
        assert_eq!(
            registry.counter_value("nsc_train_examples_total", &[]),
            Some((EPOCHS * NUM_TRAIN) as u64)
        );
        let imbalance = registry
            .gauge_value("nsc_train_shard_imbalance", &[])
            .unwrap();
        assert!(imbalance >= 1.0, "{label}: imbalance {imbalance}");
        let overlap = registry
            .gauge_value("nsc_train_pipeline_overlap_ratio", &[])
            .unwrap();
        if runtime == TrainRuntime::Pipelined {
            assert!(
                (0.0..=1.0).contains(&overlap) && overlap > 0.0,
                "{label}: overlap {overlap}"
            );
        } else {
            assert_eq!(overlap, 0.0, "{label}");
        }
    }
}
