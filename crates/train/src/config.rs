//! Training configuration.

use nscaching_eval::EvalProtocol;
use nscaching_optim::OptimizerConfig;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a training run.
///
/// Defaults follow Section IV-A2 of the paper (Adam, margin and penalty from
/// the grid the paper searches over) scaled to the synthetic benchmarks: the
/// paper trains for up to 1000–3000 epochs on a GPU; the synthetic datasets
/// converge within tens of epochs on a CPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of training epochs.
    pub epochs: usize,
    /// Mini-batch size `m`.
    pub batch_size: usize,
    /// Optimizer (the paper uses Adam with tuned learning rate).
    pub optimizer: OptimizerConfig,
    /// Margin `γ` for translational-distance models (Eq. (1)).
    pub margin: f64,
    /// L2 penalty `λ` for semantic-matching models (Eq. (2)).
    pub lambda: f64,
    /// Evaluate on validation/test every this many epochs (0 = never until
    /// the end).
    pub eval_every: usize,
    /// Protocol used for the periodic snapshots.
    pub snapshot_protocol: EvalProtocol,
    /// Protocol used for the final evaluation.
    pub final_protocol: EvalProtocol,
    /// Window (in epochs) over which the negative-sample repeat ratio is
    /// computed (the paper uses 20).
    pub repeat_window: usize,
    /// Master RNG seed for shuffling and sampling.
    pub seed: u64,
    /// Number of training shards (worker threads per mini-batch).
    ///
    /// `1` (the default) runs the sequential, paper-exact trainer on the
    /// master RNG stream. Larger values run the sharded parallel pipeline:
    /// each mini-batch is partitioned by cache key across `shards` workers
    /// with decorrelated per-shard RNG streams, and gradients are reduced in
    /// shard order — deterministic for a fixed `(seed, shards)` pair, but a
    /// *different* (equally valid) trajectory than `shards = 1`. The default
    /// honours the `NSC_SHARDS` environment variable so the CI matrix can run
    /// the whole test suite at several shard counts.
    pub shards: usize,
    /// Which epoch engine drives the shards (see [`TrainRuntime`]).
    pub runtime: TrainRuntime,
}

/// Which engine [`Trainer::train_epoch`](crate::Trainer::train_epoch) uses.
///
/// There are two *pipelines* — sequential (master RNG stream, per-positive
/// sampler feedback: the paper-exact path) and sharded-parallel (per-shard
/// RNG streams, batch-end feedback merge) — and each produces its own
/// deterministic trajectory. The runtime selects the engine, and thereby
/// which pipeline runs at `shards = 1`:
///
/// * the **parallel pipeline's** trajectory for a fixed `(seed, shards)` is
///   engine-independent — the pool executes exactly what the retired
///   `thread::scope` engine executed (asserted bit-for-bit in
///   `tests/parallel_equivalence.rs`);
/// * but [`Pool`](TrainRuntime::Pool) at `shards = 1` runs the *parallel*
///   pipeline where [`Auto`](TrainRuntime::Auto) would run the *sequential*
///   one, and those two trajectories differ. Keep `Auto` whenever the
///   paper-exact path matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrainRuntime {
    /// `shards = 1` → the inline sequential engine (the paper-exact path);
    /// `shards > 1` → the persistent worker-pool engine. The default.
    Auto,
    /// Always the inline sequential engine. Requires `shards = 1` (the
    /// sequential engine cannot honour a sharded configuration).
    Sequential,
    /// Always the worker-pool engine, even at `shards = 1` — i.e. the
    /// sharded-parallel pipeline with one shard, which draws from the
    /// decorrelated shard streams and therefore trains a *different*
    /// (equally valid) trajectory than `Auto`/`Sequential` at one shard.
    /// Used by the `pool_overhead` bench to price the pool runtime against
    /// the sequential engine on an identically-shaped workload.
    Pool,
    /// The double-buffered pipeline engine: workers sample/score batch
    /// `k + 1` against the pre-step parameter snapshot while the main
    /// thread merges and applies batch `k` (delayed-gradient semantics with
    /// staleness 1). Uses the same shard partition and per-shard RNG
    /// streams as [`Pool`](TrainRuntime::Pool), so it is bit-reproducible
    /// for a fixed `(seed, shards)` — but it trains a *third* deterministic
    /// trajectory (batches `k ≥ 1` are scored against parameters one step
    /// old). Algorithm 2's cache-update-before-step ordering is preserved
    /// per batch: each batch's sampler cache merge lands before that
    /// batch's gradients are applied — see the ordering-contract docs on
    /// `Trainer::train_epoch_pipelined`. Equivalence against the
    /// non-overlapped staged reference engine is asserted bit-for-bit in
    /// `tests/pipelined_equivalence.rs`.
    Pipelined,
}

/// Default shard count: `NSC_SHARDS` when set (panicking on malformed values
/// so a CI-matrix typo cannot silently fall back to the sequential engine),
/// else 1 (sequential). The paper experiment binaries pin their shard count
/// from `--threads` instead of this default — see
/// `nscaching_bench::standard_train_config` — so exported test-matrix
/// environment never changes published table trajectories.
fn default_shards() -> usize {
    match std::env::var("NSC_SHARDS") {
        Ok(v) => v
            .parse::<usize>()
            .unwrap_or_else(|e| panic!("NSC_SHARDS must be a positive integer, got {v:?}: {e}"))
            .max(1),
        Err(_) => 1,
    }
}

impl TrainConfig {
    /// A quick default suitable for the synthetic benchmarks.
    pub fn new(epochs: usize) -> Self {
        Self {
            epochs,
            batch_size: 256,
            optimizer: OptimizerConfig::adam(0.01),
            margin: 3.0,
            // The paper searches λ ∈ {0.001, 0.01, 0.1} under Bernoulli
            // sampling and keeps the validation-best value; on the synthetic
            // benchmarks that is 0.001.
            lambda: 0.001,
            eval_every: 0,
            snapshot_protocol: EvalProtocol::filtered().with_max_triples(200),
            final_protocol: EvalProtocol::filtered(),
            repeat_window: 20,
            seed: 0,
            shards: default_shards(),
            runtime: TrainRuntime::Auto,
        }
    }

    /// Set the mini-batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Set the optimizer configuration.
    pub fn with_optimizer(mut self, optimizer: OptimizerConfig) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Set the margin `γ`.
    pub fn with_margin(mut self, margin: f64) -> Self {
        self.margin = margin;
        self
    }

    /// Set the L2 penalty `λ`.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Take evaluation snapshots every `epochs` epochs.
    pub fn with_eval_every(mut self, epochs: usize) -> Self {
        self.eval_every = epochs;
        self
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of training shards (clamped to ≥ 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Select the epoch engine.
    pub fn with_runtime(mut self, runtime: TrainRuntime) -> Self {
        self.runtime = runtime;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = TrainConfig::new(10);
        assert_eq!(c.epochs, 10);
        assert!(c.batch_size > 0);
        assert!(c.margin > 0.0);
        assert!(c.lambda >= 0.0);
        assert_eq!(c.repeat_window, 20);
        assert!(c.final_protocol.filtered);
        assert!(c.shards >= 1);
    }

    #[test]
    fn shards_builder_clamps_to_one() {
        assert_eq!(TrainConfig::new(1).with_shards(4).shards, 4);
        assert_eq!(TrainConfig::new(1).with_shards(0).shards, 1);
    }

    #[test]
    fn runtime_defaults_to_auto_and_is_settable() {
        assert_eq!(TrainConfig::new(1).runtime, TrainRuntime::Auto);
        assert_eq!(
            TrainConfig::new(1).with_runtime(TrainRuntime::Pool).runtime,
            TrainRuntime::Pool
        );
    }

    #[test]
    fn builders_apply() {
        let c = TrainConfig::new(5)
            .with_batch_size(64)
            .with_margin(1.0)
            .with_lambda(0.1)
            .with_eval_every(2)
            .with_seed(9)
            .with_optimizer(OptimizerConfig::sgd(0.5));
        assert_eq!(c.batch_size, 64);
        assert_eq!(c.margin, 1.0);
        assert_eq!(c.lambda, 0.1);
        assert_eq!(c.eval_every, 2);
        assert_eq!(c.seed, 9);
        assert_eq!(c.optimizer, OptimizerConfig::sgd(0.5));
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_is_rejected() {
        let _ = TrainConfig::new(1).with_batch_size(0);
    }
}
