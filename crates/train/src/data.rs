//! Shared, immutable views of a dataset's splits.
//!
//! A benchmark grid trains many (model, sampler) pairs on the same dataset.
//! Handing each [`Trainer`](crate::Trainer) its own `Vec<Triple>` copies of
//! the splits — and its own freshly-built filter index — duplicates
//! FB15K-sized allocations per run. [`TrainData`] wraps the training and test
//! splits in `Arc<[Triple]>` and the filtered-evaluation index in
//! `Arc<FilterIndex>`, so building it once per dataset and cloning it per run
//! shares one allocation across the whole grid.

use nscaching_kg::{Dataset, FilterIndex, Triple};
use std::sync::Arc;

/// The slices of a dataset a trainer needs, shared by reference count.
///
/// Build one per dataset with [`TrainData::from_dataset`] and pass `&data`
/// (or a clone — both are cheap) to every
/// [`Trainer::new`](crate::Trainer::new) of a grid. A `&Dataset` also
/// converts directly for one-off runs.
#[derive(Debug, Clone)]
pub struct TrainData {
    /// Training triples (feeds the [`Batcher`](crate::Batcher)).
    pub train: Arc<[Triple]>,
    /// Test triples (feeds the link-prediction evaluation).
    pub test: Arc<[Triple]>,
    /// Filter index over all splits for the filtered protocol.
    pub filter: Arc<FilterIndex>,
}

impl TrainData {
    /// Snapshot a dataset's splits into shared storage. This is the one copy;
    /// every subsequent clone is a reference-count bump.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        Self {
            train: Arc::from(dataset.train.as_slice()),
            test: Arc::from(dataset.test.as_slice()),
            filter: Arc::new(dataset.filter_index()),
        }
    }
}

impl From<&Dataset> for TrainData {
    fn from(dataset: &Dataset) -> Self {
        Self::from_dataset(dataset)
    }
}

impl From<&TrainData> for TrainData {
    fn from(data: &TrainData) -> Self {
        data.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_kg::Vocab;

    fn dataset() -> Dataset {
        Dataset::new(
            "shared",
            Vocab::synthetic("e", 5),
            Vocab::synthetic("r", 1),
            vec![Triple::new(0, 0, 1), Triple::new(1, 0, 2)],
            vec![],
            vec![Triple::new(2, 0, 3)],
        )
        .unwrap()
    }

    #[test]
    fn conversion_captures_all_splits_and_the_filter() {
        let ds = dataset();
        let data = TrainData::from_dataset(&ds);
        assert_eq!(&data.train[..], &ds.train[..]);
        assert_eq!(&data.test[..], &ds.test[..]);
        assert_eq!(data.filter.len(), 3);
    }

    #[test]
    fn clones_share_the_same_allocations() {
        let ds = dataset();
        let data = TrainData::from_dataset(&ds);
        let clone = TrainData::from(&data);
        assert!(Arc::ptr_eq(&data.train, &clone.train));
        assert!(Arc::ptr_eq(&data.test, &clone.test));
        assert!(Arc::ptr_eq(&data.filter, &clone.filter));
    }
}
