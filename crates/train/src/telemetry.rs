//! Training-loop telemetry: per-phase batch timers, pipeline overlap,
//! shard balance, and the [`EpochStats`] bridge onto the metrics registry.
//!
//! # Phase boundaries
//!
//! Every engine runs each mini-batch through the staged pipeline of the
//! crate docs; the timers cut at the stage boundaries, **once per batch**
//! (two clock reads per phase per batch — noise next to a batch of model
//! scores, which is what keeps the `NSC_OBS_OVERHEAD_MAX` gate honest):
//!
//! | phase | covers |
//! |-------|--------|
//! | `shard` | partitioning the mini-batch by cache key (parallel engines) |
//! | `sample_score` | the fused sample → score → gradient stage. Algorithm 2 interleaves sampling and scoring *per positive*, so they are one phase by construction — splitting them would need per-example clocks |
//! | `merge` | folding shard outputs in ascending shard order |
//! | `apply` | the optimizer step + constraint projection |
//!
//! The sequential engine has no shard/merge stages; it records only
//! `sample_score` and `apply`.
//!
//! # Derived gauges
//!
//! * `nsc_train_pipeline_overlap_ratio` — fraction of the pipelined
//!   engine's round time during which the main thread was also doing merge
//!   / apply work (1.0 = the drain was fully hidden behind the pool). Stays
//!   0 for the other engines.
//! * `nsc_train_shard_imbalance` — mean over the epoch's batches of
//!   `largest shard / mean shard` (1.0 = perfectly balanced partition).
//!
//! An unattached trainer ([`Trainer::attach_metrics`] never called) takes
//! **zero** clock reads: every timer site is gated on the `Option`.
//!
//! [`Trainer::attach_metrics`]: crate::Trainer::attach_metrics

use crate::instrument::EpochStats;
use nscaching_obs::{Counter, Gauge, LatencyHistogram, MetricsRegistry};
use std::sync::Arc;

/// Registered handles for every training-loop metric.
#[derive(Debug)]
pub struct TrainMetrics {
    /// Batch-partition time per mini-batch, microseconds.
    pub(crate) phase_shard: Arc<LatencyHistogram>,
    /// Fused sample/score/gradient stage per mini-batch, microseconds.
    pub(crate) phase_sample_score: Arc<LatencyHistogram>,
    /// Ordered shard-output merge per mini-batch, microseconds.
    pub(crate) phase_merge: Arc<LatencyHistogram>,
    /// Optimizer step + constraints per mini-batch, microseconds.
    pub(crate) phase_apply: Arc<LatencyHistogram>,
    /// See the module docs; set at every epoch epilogue (nonzero only for
    /// the pipelined engine).
    pub(crate) overlap_ratio: Arc<Gauge>,
    /// See the module docs; set at every epoch epilogue (trivially 1.0 for
    /// the sequential engine).
    pub(crate) shard_imbalance: Arc<Gauge>,
    /// Epochs finished by an instrumented trainer.
    epochs: Arc<Counter>,
    /// Training examples processed.
    examples: Arc<Counter>,
    /// Sampler cache elements changed (the CE measure of Figure 8).
    cache_changes: Arc<Counter>,
    /// Last epoch's mean per-example loss.
    mean_loss: Arc<Gauge>,
    /// Last epoch's non-zero-loss ratio (NZL, Figures 7(b)/8(b)).
    nonzero_loss_ratio: Arc<Gauge>,
    /// Last epoch's mean mini-batch gradient norm (Figure 10).
    gradient_norm: Arc<Gauge>,
    /// Last epoch's negative-sample repeat ratio (RR, Figure 7(a)).
    repeat_ratio: Arc<Gauge>,
    /// Last epoch's wall-clock seconds.
    epoch_seconds: Arc<Gauge>,
}

impl TrainMetrics {
    /// Register every training metric on `registry` and return the shared
    /// handle set. Idempotent per registry.
    pub fn register(registry: &MetricsRegistry) -> Arc<Self> {
        let phase = |name: &str| registry.histogram_with("nsc_train_phase_us", &[("phase", name)]);
        Arc::new(Self {
            phase_shard: phase("shard"),
            phase_sample_score: phase("sample_score"),
            phase_merge: phase("merge"),
            phase_apply: phase("apply"),
            overlap_ratio: registry.gauge("nsc_train_pipeline_overlap_ratio"),
            shard_imbalance: registry.gauge("nsc_train_shard_imbalance"),
            epochs: registry.counter("nsc_train_epochs_total"),
            examples: registry.counter("nsc_train_examples_total"),
            cache_changes: registry.counter("nsc_train_cache_changes_total"),
            mean_loss: registry.gauge("nsc_train_mean_loss"),
            nonzero_loss_ratio: registry.gauge("nsc_train_nonzero_loss_ratio"),
            gradient_norm: registry.gauge("nsc_train_gradient_norm"),
            repeat_ratio: registry.gauge("nsc_train_repeat_ratio"),
            epoch_seconds: registry.gauge("nsc_train_epoch_seconds"),
        })
    }

    /// Bridge one finished epoch's [`EpochStats`] onto the registry. The
    /// TSV emitted by the experiment binaries is untouched — this is the
    /// same numbers on a second, scrapeable surface.
    pub fn publish_epoch(&self, stats: &EpochStats) {
        self.epochs.inc();
        self.examples.add(stats.examples as u64);
        self.cache_changes.add(stats.changed_cache_elements);
        self.mean_loss.set(stats.mean_loss);
        self.nonzero_loss_ratio.set(stats.nonzero_loss_ratio);
        self.gradient_norm.set(stats.mean_gradient_norm);
        self.repeat_ratio.set(stats.repeat_ratio);
        self.epoch_seconds.set(stats.seconds);
    }
}

/// Epoch-local accumulators behind the derived gauges; lives on the
/// trainer's stack for one epoch, folded into gauges at the epilogue.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct EpochPhaseAcc {
    /// Σ per-batch `max shard size` (imbalance numerator).
    pub max_shard: u64,
    /// Σ per-batch `total positives` (imbalance denominator, × shards).
    pub total_positives: u64,
    /// Σ microseconds the main thread spent draining inside overlap rounds.
    pub overlap_main_us: u64,
    /// Σ microseconds of whole overlap rounds.
    pub overlap_round_us: u64,
}

impl EpochPhaseAcc {
    /// `mean(largest shard / mean shard)` over the epoch, ≥ 1 when any
    /// positives were partitioned.
    pub fn imbalance(&self, shards: usize) -> f64 {
        if self.total_positives == 0 {
            return 1.0;
        }
        self.max_shard as f64 * shards as f64 / self.total_positives as f64
    }

    /// Fraction of round wall-time the main thread was also busy.
    pub fn overlap(&self) -> f64 {
        if self.overlap_round_us == 0 {
            return 0.0;
        }
        (self.overlap_main_us as f64 / self.overlap_round_us as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_epoch_lands_on_the_registry() {
        let registry = MetricsRegistry::new();
        let metrics = TrainMetrics::register(&registry);
        metrics.publish_epoch(&EpochStats {
            epoch: 0,
            mean_loss: 0.5,
            nonzero_loss_ratio: 0.75,
            mean_gradient_norm: 2.0,
            repeat_ratio: 0.1,
            changed_cache_elements: 42,
            seconds: 1.25,
            examples: 900,
        });
        assert_eq!(
            registry.counter_value("nsc_train_epochs_total", &[]),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("nsc_train_examples_total", &[]),
            Some(900)
        );
        assert_eq!(registry.gauge_value("nsc_train_mean_loss", &[]), Some(0.5));
        assert_eq!(
            registry.gauge_value("nsc_train_epoch_seconds", &[]),
            Some(1.25)
        );
    }

    #[test]
    fn imbalance_and_overlap_have_sane_edges() {
        let empty = EpochPhaseAcc::default();
        assert_eq!(empty.imbalance(4), 1.0);
        assert_eq!(empty.overlap(), 0.0);

        // 2 batches of 8 positives on 4 shards, max shard 3 then 5.
        let acc = EpochPhaseAcc {
            max_shard: 8,
            total_positives: 16,
            overlap_main_us: 30,
            overlap_round_us: 40,
        };
        assert!((acc.imbalance(4) - 2.0).abs() < 1e-12);
        assert!((acc.overlap() - 0.75).abs() < 1e-12);

        // Main work can't overlap more than the whole round.
        let clamped = EpochPhaseAcc {
            overlap_main_us: 100,
            overlap_round_us: 40,
            ..EpochPhaseAcc::default()
        };
        assert_eq!(clamped.overlap(), 1.0);
    }
}
