//! Per-epoch instrumentation: the quantities behind Figures 7, 8 and 10.

use nscaching_kg::Triple;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Summary statistics of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean per-example training loss.
    pub mean_loss: f64,
    /// Fraction of examples whose loss produced a non-zero gradient — the
    /// "NZL" ratio of Figures 7(b) and 8(b).
    pub nonzero_loss_ratio: f64,
    /// Mean L2 norm of the mini-batch gradients — Figure 10.
    pub mean_gradient_norm: f64,
    /// Negative-sample repeat ratio over the configured window — Figure 7(a).
    pub repeat_ratio: f64,
    /// Cache elements changed during the epoch (0 for cache-less samplers) —
    /// Figure 8(a).
    pub changed_cache_elements: u64,
    /// Wall-clock seconds spent in this epoch (training only, no snapshots).
    pub seconds: f64,
    /// Number of training examples processed.
    pub examples: usize,
}

impl EpochStats {
    /// TSV row used by the experiment binaries.
    pub fn tsv_row(&self) -> String {
        format!(
            "{}\t{:.6}\t{:.4}\t{:.6}\t{:.4}\t{}\t{:.3}\t{}",
            self.epoch,
            self.mean_loss,
            self.nonzero_loss_ratio,
            self.mean_gradient_norm,
            self.repeat_ratio,
            self.changed_cache_elements,
            self.seconds,
            self.examples
        )
    }

    /// Header matching [`tsv_row`](Self::tsv_row).
    pub fn tsv_header() -> &'static str {
        "epoch\tmean_loss\tnzl_ratio\tgrad_norm\trepeat_ratio\tcache_changes\tseconds\texamples"
    }
}

/// Tracks how often the same negative triple is drawn within a sliding window
/// of epochs (the "RR" measure of Figure 7(a)).
///
/// A draw counts as a *repeat* when the same negative triple was already
/// drawn earlier within the window (including earlier in the current epoch).
#[derive(Debug, Clone)]
pub struct RepeatTracker {
    window: usize,
    current: HashMap<Triple, u64>,
    history: VecDeque<HashMap<Triple, u64>>,
    draws_in_window: u64,
    repeats_in_window: u64,
}

impl RepeatTracker {
    /// Track repeats over a window of `window` epochs (≥ 1).
    pub fn new(window: usize) -> Self {
        Self {
            window: window.max(1),
            current: HashMap::new(),
            history: VecDeque::new(),
            draws_in_window: 0,
            repeats_in_window: 0,
        }
    }

    /// Record one sampled negative triple.
    pub fn record(&mut self, negative: Triple) {
        self.draws_in_window += 1;
        let seen_before = self.current.contains_key(&negative)
            || self.history.iter().any(|m| m.contains_key(&negative));
        if seen_before {
            self.repeats_in_window += 1;
        }
        *self.current.entry(negative).or_insert(0) += 1;
    }

    /// The repeat ratio over the current window, in `[0, 1]`.
    pub fn ratio(&self) -> f64 {
        if self.draws_in_window == 0 {
            return 0.0;
        }
        self.repeats_in_window as f64 / self.draws_in_window as f64
    }

    /// Close the current epoch; evicts epochs that fall out of the window.
    ///
    /// The per-epoch maps are recycled: the current map is snapshotted into
    /// the history by swap, and the oldest evicted epoch's map (cleared, its
    /// table allocation intact) becomes the new current map. In steady state
    /// an epoch boundary therefore moves allocations around instead of
    /// rebuilding a fresh `HashMap` from empty every epoch.
    pub fn end_epoch(&mut self) {
        let mut recycled = HashMap::new();
        self.history.push_back(std::mem::take(&mut self.current));
        while self.history.len() > self.window {
            if let Some(evicted) = self.history.pop_front() {
                // Recompute window totals without the evicted epoch. The exact
                // repeat attribution within the window is approximate once
                // eviction starts; the trend (Bernoulli ≈ 0, NSCaching ≫ 0) is
                // what Figure 7 reads off, and that is preserved.
                let evicted_draws: u64 = evicted.values().sum();
                self.draws_in_window = self.draws_in_window.saturating_sub(evicted_draws);
                self.repeats_in_window = self.repeats_in_window.min(self.draws_in_window);
                recycled = evicted;
            }
        }
        recycled.clear();
        std::mem::swap(&mut self.current, &mut recycled);
    }
}

/// Accumulates the per-epoch statistics while an epoch runs.
#[derive(Debug, Clone, Default)]
pub struct EpochAccumulator {
    loss_sum: f64,
    examples: usize,
    nonzero: usize,
    grad_norm_sum: f64,
    grad_batches: usize,
}

impl EpochAccumulator {
    /// Start a fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one training example's loss.
    pub fn record_example(&mut self, loss: f64, nonzero: bool) {
        self.loss_sum += loss;
        self.examples += 1;
        if nonzero {
            self.nonzero += 1;
        }
    }

    /// Record one mini-batch gradient norm.
    pub fn record_batch_gradient(&mut self, norm: f64) {
        self.grad_norm_sum += norm;
        self.grad_batches += 1;
    }

    /// Number of examples recorded so far.
    pub fn examples(&self) -> usize {
        self.examples
    }

    /// Finalise into an [`EpochStats`].
    pub fn finish(
        self,
        epoch: usize,
        repeat_ratio: f64,
        changed_cache_elements: u64,
        seconds: f64,
    ) -> EpochStats {
        EpochStats {
            epoch,
            mean_loss: if self.examples == 0 {
                0.0
            } else {
                self.loss_sum / self.examples as f64
            },
            nonzero_loss_ratio: if self.examples == 0 {
                0.0
            } else {
                self.nonzero as f64 / self.examples as f64
            },
            mean_gradient_norm: if self.grad_batches == 0 {
                0.0
            } else {
                self.grad_norm_sum / self.grad_batches as f64
            },
            repeat_ratio,
            changed_cache_elements,
            seconds,
            examples: self.examples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_tracker_counts_repeats_within_the_window() {
        let mut t = RepeatTracker::new(2);
        let a = Triple::new(0, 0, 1);
        let b = Triple::new(0, 0, 2);
        t.record(a);
        t.record(b);
        assert_eq!(t.ratio(), 0.0);
        t.record(a); // repeat
        assert!((t.ratio() - 1.0 / 3.0).abs() < 1e-12);
        t.end_epoch();
        // next epoch: a is still within the window, so drawing it repeats
        t.record(a);
        assert!(t.ratio() > 0.0);
    }

    #[test]
    fn repeat_tracker_evicts_old_epochs() {
        let mut t = RepeatTracker::new(1);
        let a = Triple::new(1, 0, 2);
        t.record(a);
        t.end_epoch();
        t.record(a); // within window of 1 epoch back -> repeat
        assert!(t.ratio() > 0.0);
        t.end_epoch();
        t.end_epoch(); // pushes the old epoch out of the window
        assert_eq!(t.ratio(), 0.0, "empty window has no repeats");
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let t = RepeatTracker::new(5);
        assert_eq!(t.ratio(), 0.0);
    }

    #[test]
    fn accumulator_averages_losses_and_gradients() {
        let mut acc = EpochAccumulator::new();
        acc.record_example(1.0, true);
        acc.record_example(0.0, false);
        acc.record_example(2.0, true);
        acc.record_batch_gradient(3.0);
        acc.record_batch_gradient(5.0);
        assert_eq!(acc.examples(), 3);
        let stats = acc.finish(7, 0.25, 42, 1.5);
        assert_eq!(stats.epoch, 7);
        assert!((stats.mean_loss - 1.0).abs() < 1e-12);
        assert!((stats.nonzero_loss_ratio - 2.0 / 3.0).abs() < 1e-12);
        assert!((stats.mean_gradient_norm - 4.0).abs() < 1e-12);
        assert_eq!(stats.changed_cache_elements, 42);
        assert_eq!(stats.examples, 3);
        assert!((stats.repeat_ratio - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulator_finishes_with_zeros() {
        let stats = EpochAccumulator::new().finish(0, 0.0, 0, 0.0);
        assert_eq!(stats.mean_loss, 0.0);
        assert_eq!(stats.nonzero_loss_ratio, 0.0);
        assert_eq!(stats.mean_gradient_norm, 0.0);
    }

    #[test]
    fn tsv_row_has_the_documented_columns() {
        let stats = EpochAccumulator::new().finish(3, 0.5, 7, 0.25);
        let row = stats.tsv_row();
        assert_eq!(
            row.split('\t').count(),
            EpochStats::tsv_header().split('\t').count()
        );
        assert!(row.starts_with("3\t"));
    }
}
