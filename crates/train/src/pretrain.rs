//! The pretrain-then-continue protocol of Section IV-B1.
//!
//! IGAN and KBGAN require warm-starting the target model with several epochs
//! of Bernoulli training before switching on the GAN sampler; the paper also
//! reports NSCaching both "from scratch" and "with pretrain". This module
//! reproduces that protocol: [`pretrain_model`] trains a freshly initialised
//! model with the Bernoulli sampler for a fixed number of epochs and returns
//! it, ready to be handed to a second [`Trainer`] with any sampler.

use crate::config::TrainConfig;
use crate::data::TrainData;
use crate::trainer::Trainer;
use nscaching::SamplerConfig;
use nscaching_kg::Dataset;
use nscaching_models::{build_model, KgeModel, ModelConfig};

/// Train a fresh model with Bernoulli sampling for `epochs` epochs and return
/// the warm-started model together with the wall-clock seconds spent.
///
/// `data` is the dataset's shared split view ([`TrainData`]); grid callers
/// build it once per dataset so neither the pretraining trainer nor the main
/// trainer copies the splits. A `&Dataset` converts directly for one-off use.
/// **`data` must be a view of `dataset`** (the sampler statistics come from
/// `dataset`, the trainer's batches from `data`) — debug builds assert the
/// training splits match.
pub fn pretrain_model(
    model_config: &ModelConfig,
    dataset: &Dataset,
    data: impl Into<TrainData>,
    train_config: &TrainConfig,
    epochs: usize,
) -> (Box<dyn KgeModel>, f64) {
    let model = build_model(
        model_config,
        dataset.num_entities(),
        dataset.num_relations(),
    );
    if epochs == 0 {
        return (model, 0.0);
    }
    let data = data.into();
    debug_assert_eq!(
        &data.train[..],
        &dataset.train[..],
        "TrainData must be the shared view of the same dataset"
    );
    let sampler = nscaching::build_sampler(&SamplerConfig::Bernoulli, dataset, train_config.seed);
    let mut config = train_config.clone();
    config.epochs = epochs;
    config.eval_every = 0;
    let mut trainer = Trainer::new(model, sampler, data, config);
    for _ in 0..epochs {
        trainer.train_epoch();
    }
    let seconds = trainer.history().total_seconds;
    (trainer.into_model(), seconds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_datagen::GeneratorConfig;
    use nscaching_eval::{evaluate_link_prediction, EvalProtocol};
    use nscaching_models::ModelKind;

    fn dataset() -> Dataset {
        let mut c = GeneratorConfig::small("pretrain-test");
        c.num_entities = 100;
        c.num_train = 700;
        c.num_valid = 40;
        c.num_test = 40;
        nscaching_datagen::generate(&c).unwrap()
    }

    #[test]
    fn zero_epochs_returns_a_fresh_model() {
        let ds = dataset();
        let (model, seconds) = pretrain_model(
            &ModelConfig::new(ModelKind::TransE).with_dim(8),
            &ds,
            &ds,
            &TrainConfig::new(1),
            0,
        );
        assert_eq!(seconds, 0.0);
        assert_eq!(model.num_entities(), ds.num_entities());
    }

    #[test]
    fn pretraining_improves_over_random_initialisation() {
        let ds = dataset();
        let model_config = ModelConfig::new(ModelKind::TransE)
            .with_dim(16)
            .with_seed(3);
        let train_config = TrainConfig::new(1).with_batch_size(128).with_seed(4);
        let protocol = EvalProtocol::filtered().with_max_triples(40);
        let filter = ds.filter_index();

        let fresh = build_model(&model_config, ds.num_entities(), ds.num_relations());
        let fresh_mrr = evaluate_link_prediction(fresh.as_ref(), &ds.test, &filter, &protocol)
            .combined
            .mrr;

        let data = TrainData::from_dataset(&ds);
        let (warm, seconds) = pretrain_model(&model_config, &ds, &data, &train_config, 6);
        let warm_mrr = evaluate_link_prediction(warm.as_ref(), &ds.test, &filter, &protocol)
            .combined
            .mrr;

        assert!(seconds > 0.0);
        assert!(
            warm_mrr > fresh_mrr,
            "pretraining should beat random init ({fresh_mrr:.4} -> {warm_mrr:.4})"
        );
    }
}
