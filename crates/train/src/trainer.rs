//! The training loop (Algorithms 1 and 2 of the paper).

use crate::batcher::Batcher;
use crate::config::TrainConfig;
use crate::instrument::{EpochAccumulator, EpochStats, RepeatTracker};
use crate::snapshots::{Snapshot, TrainingHistory};
use nscaching::{NegativeSampler, SampledNegative};
use nscaching_eval::{evaluate_link_prediction, EvalProtocol, LinkPredictionReport};
use nscaching_kg::{Dataset, FilterIndex, Triple};
use nscaching_math::seeded_rng;
use nscaching_models::{default_loss, GradientBuffer, KgeModel, L2Regularizer, Loss, LossType};
use nscaching_optim::{build_optimizer, Optimizer};
use rand::rngs::StdRng;
use std::time::Instant;

/// Drives one (model, sampler) pair through stochastic training and records
/// the history needed by the paper's tables and figures.
pub struct Trainer {
    model: Box<dyn KgeModel>,
    sampler: Box<dyn NegativeSampler>,
    optimizer: Box<dyn Optimizer>,
    loss: Box<dyn Loss>,
    regularizer: L2Regularizer,
    config: TrainConfig,
    batcher: Batcher,
    test: Vec<Triple>,
    filter: FilterIndex,
    repeat_tracker: RepeatTracker,
    rng: StdRng,
    history: TrainingHistory,
    epochs_done: usize,
    train_seconds: f64,
}

impl Trainer {
    /// Assemble a trainer.
    ///
    /// The loss follows the model's family (margin ranking for translational
    /// models, logistic for semantic matching, as in the paper's Eq. (1)/(2));
    /// the L2 penalty is applied only to the logistic family.
    pub fn new(
        model: Box<dyn KgeModel>,
        sampler: Box<dyn NegativeSampler>,
        dataset: &Dataset,
        config: TrainConfig,
    ) -> Self {
        let loss = default_loss(model.loss_type(), config.margin);
        let regularizer = match model.loss_type() {
            LossType::Logistic => L2Regularizer::new(config.lambda),
            LossType::MarginRanking => L2Regularizer::none(),
        };
        let optimizer = build_optimizer(&config.optimizer);
        let batcher = Batcher::new(dataset.train.clone(), config.batch_size);
        let filter = dataset.filter_index();
        let rng = seeded_rng(config.seed);
        let repeat_tracker = RepeatTracker::new(config.repeat_window);
        Self {
            model,
            sampler,
            optimizer,
            loss,
            regularizer,
            config,
            batcher,
            test: dataset.test.clone(),
            filter,
            repeat_tracker,
            rng,
            history: TrainingHistory::new(),
            epochs_done: 0,
            train_seconds: 0.0,
        }
    }

    /// The model being trained.
    pub fn model(&self) -> &dyn KgeModel {
        self.model.as_ref()
    }

    /// The negative sampler in use.
    pub fn sampler(&self) -> &dyn NegativeSampler {
        self.sampler.as_ref()
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// History recorded so far.
    pub fn history(&self) -> &TrainingHistory {
        &self.history
    }

    /// Number of epochs completed.
    pub fn epochs_done(&self) -> usize {
        self.epochs_done
    }

    /// Consume the trainer and return the trained model (used by the
    /// pretrain-then-continue protocol).
    pub fn into_model(self) -> Box<dyn KgeModel> {
        self.model
    }

    /// Train a single epoch and return its statistics.
    pub fn train_epoch(&mut self) -> EpochStats {
        let started = Instant::now();
        let mut acc = EpochAccumulator::new();
        let mut grads = GradientBuffer::new();

        // Walk the epoch by index: triples are copied out of the batcher by
        // value (16 bytes each), so no borrow is held across the loop body
        // and the training split is never cloned.
        self.batcher.shuffle(&mut self.rng);
        for batch in 0..self.batcher.batches_per_epoch() {
            grads.clear();
            for index in self.batcher.batch_range(batch) {
                let positive = &self.batcher.get(index);
                let negative = self
                    .sampler
                    .sample(positive, self.model.as_ref(), &mut self.rng);
                self.repeat_tracker.record(negative.triple);

                let f_pos = self.model.score(positive);
                let f_neg = self.model.score(&negative.triple);
                // The generator-based samplers use the discriminator's score
                // of the sampled negative as their REINFORCE reward.
                self.sampler
                    .feedback(positive, &negative, f_neg, &mut self.rng);

                let pair = self.loss.evaluate(f_pos, f_neg);
                acc.record_example(pair.loss, !pair.is_zero());
                if !pair.is_zero() {
                    self.model
                        .accumulate_score_gradient(positive, pair.d_positive, &mut grads);
                    self.model.accumulate_score_gradient(
                        &negative.triple,
                        pair.d_negative,
                        &mut grads,
                    );
                    if self.regularizer.is_active() {
                        self.regularizer.accumulate_gradient(
                            self.model.as_ref(),
                            positive,
                            &mut grads,
                        );
                        self.regularizer.accumulate_gradient(
                            self.model.as_ref(),
                            &negative.triple,
                            &mut grads,
                        );
                    }
                }

                // Algorithm 2, step 8: refresh the cache before the embedding
                // update of step 9.
                self.sampler
                    .update(positive, self.model.as_ref(), &mut self.rng);
            }

            if !grads.is_empty() {
                acc.record_batch_gradient(grads.norm());
                let touched = self.optimizer.step(self.model.as_mut(), &grads);
                self.model.apply_constraints(&touched);
            }
        }

        let seconds = started.elapsed().as_secs_f64();
        self.train_seconds += seconds;
        let repeat_ratio = self.repeat_tracker.ratio();
        let changed = self.sampler.take_changed_elements();
        let stats = acc.finish(self.epochs_done, repeat_ratio, changed, seconds);

        self.sampler.epoch_finished(self.epochs_done);
        self.repeat_tracker.end_epoch();
        self.epochs_done += 1;
        self.history.epochs.push(stats);
        self.history.total_seconds = self.train_seconds;
        stats
    }

    /// Evaluate the current model on the test split with the given protocol.
    pub fn evaluate(&self, protocol: &EvalProtocol) -> LinkPredictionReport {
        evaluate_link_prediction(self.model.as_ref(), &self.test, &self.filter, protocol)
    }

    /// Take a snapshot of the current test performance (Figures 2–5 points).
    pub fn snapshot(&mut self) -> Snapshot {
        let report = self.evaluate(&self.config.snapshot_protocol);
        let snap = Snapshot {
            epoch: self.epochs_done,
            elapsed_seconds: self.train_seconds,
            mrr: report.combined.mrr,
            hits_at_10: report.combined.hits_at_10,
            mean_rank: report.combined.mean_rank,
        };
        self.history.snapshots.push(snap);
        snap
    }

    /// Run the configured number of epochs, taking periodic snapshots, then
    /// run the final evaluation.
    pub fn run(&mut self) -> &TrainingHistory {
        for _ in 0..self.config.epochs {
            self.train_epoch();
            if self.config.eval_every > 0 && self.epochs_done.is_multiple_of(self.config.eval_every)
            {
                self.snapshot();
            }
        }
        let final_report = self.evaluate(&self.config.final_protocol.clone());
        self.history.final_report = Some(final_report);
        &self.history
    }

    /// One sample/score round without updating anything — used by the
    /// Table I timing harness to isolate the cost of negative sampling.
    pub fn sample_once(&mut self, positive: &Triple) -> SampledNegative {
        self.sampler
            .sample(positive, self.model.as_ref(), &mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching::{NsCachingConfig, SamplerConfig};
    use nscaching_datagen::GeneratorConfig;
    use nscaching_models::{build_model, ModelConfig, ModelKind};
    use nscaching_optim::OptimizerConfig;

    fn dataset(seed: u64) -> Dataset {
        let mut c = GeneratorConfig::small("train-test");
        c.num_entities = 120;
        c.num_train = 900;
        c.num_valid = 60;
        c.num_test = 60;
        c.seed = seed;
        nscaching_datagen::generate(&c).unwrap()
    }

    fn trainer(ds: &Dataset, sampler: SamplerConfig, kind: ModelKind, epochs: usize) -> Trainer {
        let model = build_model(
            &ModelConfig::new(kind).with_dim(16).with_seed(7),
            ds.num_entities(),
            ds.num_relations(),
        );
        let sampler = nscaching::build_sampler(&sampler, ds, 11);
        let config = TrainConfig::new(epochs)
            .with_batch_size(128)
            .with_optimizer(OptimizerConfig::adam(0.02))
            .with_margin(2.0)
            .with_seed(5);
        Trainer::new(model, sampler, ds, config)
    }

    #[test]
    fn training_reduces_the_loss() {
        let ds = dataset(1);
        let mut t = trainer(&ds, SamplerConfig::Bernoulli, ModelKind::TransE, 0);
        let first = t.train_epoch();
        for _ in 0..5 {
            t.train_epoch();
        }
        let last = t.history().epochs.last().copied().unwrap();
        assert!(
            last.mean_loss < first.mean_loss,
            "loss should drop: {} -> {}",
            first.mean_loss,
            last.mean_loss
        );
        assert_eq!(t.epochs_done(), 6);
        assert!(last.seconds >= 0.0);
        assert_eq!(last.examples, ds.train.len());
    }

    #[test]
    fn nscaching_training_runs_and_changes_cache() {
        let ds = dataset(2);
        let mut t = trainer(
            &ds,
            SamplerConfig::NsCaching(NsCachingConfig::new(10, 10)),
            ModelKind::TransE,
            0,
        );
        let stats = t.train_epoch();
        assert!(
            stats.changed_cache_elements > 0,
            "cache must churn in epoch 0"
        );
        assert!(stats.repeat_ratio >= 0.0 && stats.repeat_ratio <= 1.0);
        assert_eq!(t.sampler().name(), "NSCaching");
    }

    #[test]
    fn run_produces_snapshots_and_final_report() {
        let ds = dataset(3);
        let mut t = trainer(&ds, SamplerConfig::Bernoulli, ModelKind::DistMult, 4);
        // snapshot every 2 epochs on a small subset to keep the test fast
        t.config.eval_every = 2;
        t.config.snapshot_protocol = EvalProtocol::filtered().with_max_triples(20);
        t.config.final_protocol = EvalProtocol::filtered().with_max_triples(30);
        let history = t.run();
        assert_eq!(history.epochs.len(), 4);
        assert_eq!(history.snapshots.len(), 2);
        assert!(history.final_report.is_some());
        let report = history.final_report.unwrap();
        assert!(report.combined.mrr > 0.0);
        assert!(report.combined.mrr <= 1.0);
        assert!(history.total_seconds > 0.0);
    }

    #[test]
    fn logistic_models_use_the_regularizer_and_margin_models_do_not() {
        let ds = dataset(4);
        let t = trainer(&ds, SamplerConfig::Bernoulli, ModelKind::ComplEx, 1);
        assert!(t.regularizer.is_active());
        let t = trainer(&ds, SamplerConfig::Bernoulli, ModelKind::TransD, 1);
        assert!(!t.regularizer.is_active());
    }

    #[test]
    fn kbgan_sampler_receives_feedback_during_training() {
        let ds = dataset(5);
        let mut t = trainer(&ds, SamplerConfig::kbgan_default(), ModelKind::TransE, 0);
        let stats = t.train_epoch();
        assert!(stats.examples > 0);
        assert!(t.sampler().extra_parameters() > 0);
    }

    #[test]
    fn training_is_deterministic_given_the_seeds() {
        let ds = dataset(6);
        let run = |seed| {
            let model = build_model(
                &ModelConfig::new(ModelKind::TransE).with_dim(8).with_seed(1),
                ds.num_entities(),
                ds.num_relations(),
            );
            let sampler = nscaching::build_sampler(
                &SamplerConfig::NsCaching(NsCachingConfig::new(5, 5)),
                &ds,
                2,
            );
            let config = TrainConfig::new(2).with_seed(seed).with_batch_size(64);
            let mut t = Trainer::new(model, sampler, &ds, config);
            t.train_epoch();
            t.train_epoch();
            t.evaluate(&EvalProtocol::filtered().with_max_triples(20))
                .combined
                .mrr
        };
        assert_eq!(run(3), run(3));
        // different shuffling seed gives a (very likely) different result
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn sample_once_does_not_advance_epochs() {
        let ds = dataset(7);
        let mut t = trainer(&ds, SamplerConfig::Bernoulli, ModelKind::TransE, 1);
        let pos = ds.train[0];
        let neg = t.sample_once(&pos);
        assert_ne!(neg.triple, pos);
        assert_eq!(t.epochs_done(), 0);
    }
}
