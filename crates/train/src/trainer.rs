//! The training loop (Algorithms 1 and 2 of the paper), sequential and
//! sharded-parallel.
//!
//! See the crate-level documentation for the concurrency model of the
//! parallel pipeline (shard ownership, RNG streams, reduction order).

use crate::batcher::Batcher;
use crate::config::{TrainConfig, TrainRuntime};
use crate::data::TrainData;
use crate::instrument::{EpochAccumulator, EpochStats, RepeatTracker};
use crate::pool::WorkerPool;
use crate::snapshots::{Snapshot, TrainingHistory};
use crate::telemetry::{EpochPhaseAcc, TrainMetrics};
use nscaching::{NegativeSampler, SampledNegative, SamplerState, ShardSampler};
use nscaching_eval::{evaluate_link_prediction, EvalProtocol, LinkPredictionReport};
use nscaching_kg::{FilterIndex, Triple};
use nscaching_math::{rng_from_state, rng_state, seeded_rng, split_seed};
use nscaching_models::{
    default_loss, GradientArena, KgeModel, L2Regularizer, Loss, LossType, TableId,
};
use nscaching_optim::{build_optimizer, Optimizer, OptimizerState};
use rand::rngs::StdRng;
use std::sync::Arc;
use std::time::Instant;

/// Stream tag that decorrelates the per-shard worker RNG streams from the
/// master stream (which keeps its historical role: shuffling, and all
/// sampling when `shards = 1`).
///
/// Public because it is part of the parallel trainer's reproducibility
/// contract: the shard-`s` stream of epoch `e` is
/// `seeded_rng(split_seed(split_seed(seed ^ SHARD_STREAM_TAG, e), s))`, and
/// the equivalence suite re-derives the streams from this constant to check
/// the pool engine against an independent `thread::scope` reference.
pub const SHARD_STREAM_TAG: u64 = 0xA11E1;

/// A checkpoint of a [`Trainer`]'s mutable training state, captured at an
/// epoch boundary by [`Trainer::checkpoint`] and re-applied by
/// [`Trainer::restore`].
///
/// Together with the model's embedding tables (reachable through
/// [`Trainer::model`]) this is *everything* the training trajectory depends
/// on:
///
/// * `epochs_done` — drives the per-epoch shard RNG streams
///   (`split_seed(seed ^ SHARD_STREAM_TAG, epoch)`) of the parallel engine;
/// * `rng` — the master stream's raw state (epoch shuffling, and all
///   sampling at `shards = 1`);
/// * `batch_order` — the batcher's epoch permutation (each epoch's shuffle
///   permutes the previous epoch's order in place, so the permutation is
///   cumulative state, not a pure function of the RNG);
/// * `optimizer` — the dense per-table state slabs (Adam moments + step
///   counters, AdaGrad accumulators);
/// * `sampler` — the sampler's evolving state ([`SamplerState`]): NSCaching's
///   per-shard `H`/`T` caches and counters, or a GAN sampler's generator
///   tables, optimizer moments and REINFORCE baseline. `Stateless` for
///   Uniform/Bernoulli, whose state is a pure function of
///   `(dataset, sampler seed)`.
///
/// A trainer rebuilt with the same configuration, dataset, sampler and model
/// tables and then [`restore`](Trainer::restore)d from this state continues
/// the run **bit-for-bit** as if it had never stopped — for *every* sampler,
/// stateful ones included. The binary on-disk encoding lives in
/// `nscaching_serve`, which also checkpoints the model tables.
///
/// Not captured (by design): the training history and the repeat-ratio
/// tracker window — they feed reports, not the trajectory. A resumed
/// trainer's history starts at the resume point.
#[derive(Debug, Clone)]
pub struct TrainerState {
    /// Number of finished epochs.
    pub epochs_done: u64,
    /// Accumulated training wall-clock seconds (reported in snapshots).
    pub train_seconds: f64,
    /// Raw master-RNG state.
    pub rng: [u64; 4],
    /// The batcher's current epoch permutation over the training split.
    pub batch_order: Vec<u32>,
    /// Exported optimizer state slabs.
    pub optimizer: OptimizerState,
    /// Exported sampler state (`Stateless` for Uniform/Bernoulli and for
    /// legacy checkpoints written before sampler sections existed).
    pub sampler: SamplerState,
}

/// Everything one shard worker produces for one mini-batch, buffered so the
/// main thread can fold the results in ascending shard order. Buffers are
/// cleared and reused across batches.
#[derive(Default)]
struct ShardOutput {
    /// Score gradients accumulated by this shard's positives, in batch order.
    grads: GradientArena,
    /// `(loss, nonzero)` per processed example, in batch order.
    examples: Vec<(f64, bool)>,
    /// Sampled negative triples, in batch order (repeat-ratio tracking).
    negatives: Vec<Triple>,
}

/// Stage 2 of the pipeline: drive one shard worker over its slice of a
/// mini-batch. Runs on a scoped worker thread; everything it touches is
/// either shared read-only (`model`, `loss`, `regularizer`) or exclusively
/// owned by this shard (`worker` state, `rng` stream, `out` buffers).
///
/// The per-positive order of operations mirrors the sequential loop exactly:
/// sample → score → feedback → loss/gradients → cache update.
fn run_shard_task(
    model: &dyn KgeModel,
    loss: &dyn Loss,
    regularizer: &L2Regularizer,
    worker: &mut dyn ShardSampler,
    positives: &[Triple],
    rng: &mut StdRng,
    out: &mut ShardOutput,
) {
    for positive in positives {
        let negative = worker.sample(positive, model, rng);
        let f_pos = model.score(positive);
        let f_neg = model.score(&negative.triple);
        // The generator-based samplers use the discriminator's score of the
        // sampled negative as their REINFORCE reward; shard workers buffer it
        // for the batch-end merge.
        worker.feedback(positive, &negative, f_neg, rng);
        let pair = loss.evaluate(f_pos, f_neg);
        out.examples.push((pair.loss, !pair.is_zero()));
        out.negatives.push(negative.triple);
        if !pair.is_zero() {
            model.accumulate_score_gradient(positive, pair.d_positive, &mut out.grads);
            model.accumulate_score_gradient(&negative.triple, pair.d_negative, &mut out.grads);
            if regularizer.is_active() {
                regularizer.accumulate_gradient(model, positive, &mut out.grads);
                regularizer.accumulate_gradient(model, &negative.triple, &mut out.grads);
            }
        }
        // Algorithm 2, step 8: refresh the shard's cache entries before the
        // embedding update of step 9.
        worker.update(positive, model, rng);
    }
}

/// Drives one (model, sampler) pair through stochastic training and records
/// the history needed by the paper's tables and figures.
pub struct Trainer {
    model: Box<dyn KgeModel>,
    sampler: Box<dyn NegativeSampler>,
    optimizer: Box<dyn Optimizer>,
    loss: Box<dyn Loss>,
    regularizer: L2Regularizer,
    config: TrainConfig,
    batcher: Batcher,
    test: Arc<[Triple]>,
    filter: Arc<FilterIndex>,
    repeat_tracker: RepeatTracker,
    rng: StdRng,
    history: TrainingHistory,
    epochs_done: usize,
    train_seconds: f64,
    /// Persistent worker pool of the parallel engine. Spawned lazily on the
    /// first pooled epoch, reused for the trainer's lifetime (resized only if
    /// the shard count changes), joined on drop.
    pool: Option<WorkerPool>,
    /// The batch gradient arena, reused across batches *and* epochs so the
    /// zero-allocation steady state spans the whole run.
    grads: GradientArena,
    /// Per-shard worker outputs of the parallel engine, likewise reused.
    shard_outputs: Vec<ShardOutput>,
    /// The second buffer set of the pipelined engine's double buffer: while
    /// the pool fills `shard_outputs` with mini-batch `k`, the main thread
    /// drains mini-batch `k − 1` from these (the two sets swap roles every
    /// batch). Stays empty unless [`TrainRuntime::Pipelined`] runs.
    shard_outputs_prev: Vec<ShardOutput>,
    /// Per-shard positive lists of the parallel engine's batch partition.
    shard_tasks: Vec<Vec<Triple>>,
    /// Attached telemetry handles; `None` (the default) means every timer
    /// site is skipped — zero clock reads, zero overhead.
    metrics: Option<Arc<TrainMetrics>>,
}

impl Trainer {
    /// Assemble a trainer.
    ///
    /// `data` is anything convertible into the shared [`TrainData`] view: a
    /// `&Dataset` for one-off runs, or a `&TrainData` built once per dataset
    /// so grid runs share one copy of the splits and filter index.
    ///
    /// The loss follows the model's family (margin ranking for translational
    /// models, logistic for semantic matching, as in the paper's Eq. (1)/(2));
    /// the L2 penalty is applied only to the logistic family.
    pub fn new(
        model: Box<dyn KgeModel>,
        sampler: Box<dyn NegativeSampler>,
        data: impl Into<TrainData>,
        config: TrainConfig,
    ) -> Self {
        let data = data.into();
        let loss = default_loss(model.loss_type(), config.margin);
        let regularizer = match model.loss_type() {
            LossType::Logistic => L2Regularizer::new(config.lambda),
            LossType::MarginRanking => L2Regularizer::none(),
        };
        let mut optimizer = build_optimizer(&config.optimizer);
        // Pre-size the optimizer's per-table state slabs so no step ever
        // allocates (see the nscaching-optim crate docs).
        optimizer.bind(model.as_ref());
        let batcher = Batcher::new(data.train, config.batch_size);
        let rng = seeded_rng(config.seed);
        let repeat_tracker = RepeatTracker::new(config.repeat_window);
        Self {
            model,
            sampler,
            optimizer,
            loss,
            regularizer,
            config,
            batcher,
            test: data.test,
            filter: data.filter,
            repeat_tracker,
            rng,
            history: TrainingHistory::new(),
            epochs_done: 0,
            train_seconds: 0.0,
            pool: None,
            grads: GradientArena::new(),
            shard_outputs: Vec::new(),
            shard_outputs_prev: Vec::new(),
            shard_tasks: Vec::new(),
            metrics: None,
        }
    }

    /// Attach telemetry handles ([`TrainMetrics::register`]): per-phase
    /// batch timers, the pipeline overlap and shard-imbalance gauges, and
    /// the per-epoch [`EpochStats`] bridge. Training trajectories are
    /// bit-identical with and without metrics attached — instrumentation
    /// only reads clocks and counters.
    pub fn attach_metrics(&mut self, metrics: Arc<TrainMetrics>) {
        self.metrics = Some(metrics);
    }

    /// The attached telemetry handles, if any.
    pub fn metrics(&self) -> Option<&Arc<TrainMetrics>> {
        self.metrics.as_ref()
    }

    /// The model being trained.
    pub fn model(&self) -> &dyn KgeModel {
        self.model.as_ref()
    }

    /// The negative sampler in use.
    pub fn sampler(&self) -> &dyn NegativeSampler {
        self.sampler.as_ref()
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// History recorded so far.
    pub fn history(&self) -> &TrainingHistory {
        &self.history
    }

    /// Number of epochs completed.
    pub fn epochs_done(&self) -> usize {
        self.epochs_done
    }

    /// Consume the trainer and return the trained model (used by the
    /// pretrain-then-continue protocol).
    pub fn into_model(self) -> Box<dyn KgeModel> {
        self.model
    }

    /// Capture the trainer's mutable training state at an epoch boundary.
    ///
    /// Pair it with the model tables (via [`Self::model`]) to persist a full
    /// resumable checkpoint — `nscaching_serve::save_checkpoint` does both
    /// and adds the on-disk format. See [`TrainerState`] for the exact-resume
    /// contract.
    pub fn checkpoint(&self) -> TrainerState {
        TrainerState {
            epochs_done: self.epochs_done as u64,
            train_seconds: self.train_seconds,
            rng: rng_state(&self.rng),
            batch_order: self.batcher.order().to_vec(),
            optimizer: self.optimizer.export_state(),
            sampler: self.sampler.export_state(),
        }
    }

    /// Re-apply a [`TrainerState`] captured by [`Self::checkpoint`].
    ///
    /// The trainer must have been built with the same configuration and a
    /// model whose tables already hold the checkpointed values (the snapshot
    /// store restores them before constructing the trainer). Fails when the
    /// optimizer state belongs to a different optimizer kind than the
    /// configured one, or the sampler state to a different sampler kind than
    /// the configured sampler.
    pub fn restore(&mut self, state: TrainerState) -> Result<(), String> {
        // The all-zero state is the one invalid xoshiro256** fixed point; a
        // real trainer can never produce it, and the RNG constructor would
        // panic on it, so reject it as an error here.
        if state.rng.iter().all(|&word| word == 0) {
            return Err("all-zero master-RNG state".into());
        }
        self.optimizer.import_state(state.optimizer)?;
        // Re-pad the imported slabs to the model's table sizes so the
        // no-allocation guarantee of the bound optimizer still holds.
        self.optimizer.bind(self.model.as_ref());
        self.sampler.import_state(state.sampler)?;
        self.batcher.set_order(state.batch_order)?;
        self.rng = rng_from_state(state.rng);
        self.epochs_done = state.epochs_done as usize;
        self.train_seconds = state.train_seconds;
        Ok(())
    }

    /// Train a single epoch and return its statistics.
    ///
    /// The epoch runs as a staged pipeline — shard the mini-batch, run
    /// sample/score/gradient per shard, merge in shard order, apply one
    /// optimizer step. With `shards = 1` (the default) the single shard is
    /// driven inline on the master RNG stream with immediate sampler
    /// feedback, which is exactly the sequential trainer of Algorithms 1
    /// and 2 — bit-for-bit, so the paper's tables and figures are unaffected.
    /// With `shards > 1` the shard stage runs on the trainer's persistent
    /// [`WorkerPool`]. [`TrainRuntime`] can pin either engine explicitly —
    /// note that `Pool` at `shards = 1` runs the parallel pipeline (shard
    /// RNG streams), a *different* trajectory than the sequential engine;
    /// see [`TrainRuntime`] for the contract.
    pub fn train_epoch(&mut self) -> EpochStats {
        let shards = self.config.shards.max(1);
        match self.config.runtime {
            TrainRuntime::Sequential => {
                assert_eq!(
                    shards, 1,
                    "TrainRuntime::Sequential cannot honour a sharded configuration"
                );
                self.train_epoch_sequential()
            }
            TrainRuntime::Auto if shards == 1 => self.train_epoch_sequential(),
            TrainRuntime::Auto | TrainRuntime::Pool => self.train_epoch_parallel(shards),
            TrainRuntime::Pipelined => self.train_epoch_pipelined(shards),
        }
    }

    /// The sequential pipeline: one shard, master RNG stream, per-positive
    /// sampler feedback — the paper-exact path.
    fn train_epoch_sequential(&mut self) -> EpochStats {
        let started = Instant::now();
        let mut acc = EpochAccumulator::new();
        // Borrow the trainer-owned arena for the epoch (returned below), so
        // its slabs persist across epochs at their high-water marks.
        let mut grads = std::mem::take(&mut self.grads);

        // Walk the epoch by index: triples are copied out of the batcher by
        // value (16 bytes each), so no borrow is held across the loop body
        // and the training split is never cloned.
        self.batcher.shuffle(&mut self.rng);
        let metrics = self.metrics.clone();
        for batch in 0..self.batcher.batches_per_epoch() {
            let batch_started = metrics.as_ref().map(|_| Instant::now());
            grads.clear();
            for index in self.batcher.batch_range(batch) {
                let positive = &self.batcher.get(index);
                let negative = self
                    .sampler
                    .sample(positive, self.model.as_ref(), &mut self.rng);
                self.repeat_tracker.record(negative.triple);

                let f_pos = self.model.score(positive);
                let f_neg = self.model.score(&negative.triple);
                // The generator-based samplers use the discriminator's score
                // of the sampled negative as their REINFORCE reward.
                self.sampler
                    .feedback(positive, &negative, f_neg, &mut self.rng);

                let pair = self.loss.evaluate(f_pos, f_neg);
                acc.record_example(pair.loss, !pair.is_zero());
                if !pair.is_zero() {
                    self.model
                        .accumulate_score_gradient(positive, pair.d_positive, &mut grads);
                    self.model.accumulate_score_gradient(
                        &negative.triple,
                        pair.d_negative,
                        &mut grads,
                    );
                    if self.regularizer.is_active() {
                        self.regularizer.accumulate_gradient(
                            self.model.as_ref(),
                            positive,
                            &mut grads,
                        );
                        self.regularizer.accumulate_gradient(
                            self.model.as_ref(),
                            &negative.triple,
                            &mut grads,
                        );
                    }
                }

                // Algorithm 2, step 8: refresh the cache before the embedding
                // update of step 9.
                self.sampler
                    .update(positive, self.model.as_ref(), &mut self.rng);
            }

            let apply_started = metrics.as_ref().map(|_| Instant::now());
            if !grads.is_empty() {
                acc.record_batch_gradient(grads.norm());
                self.optimizer.step(self.model.as_mut(), &mut grads);
                self.model.apply_constraints(grads.touched());
            }
            if let (Some(metrics), Some(batch_started), Some(apply_started)) =
                (&metrics, batch_started, apply_started)
            {
                metrics
                    .phase_sample_score
                    .observe(apply_started - batch_started);
                metrics.phase_apply.observe(apply_started.elapsed());
            }
        }

        grads.clear();
        self.grads = grads;
        self.finish_epoch(acc, started, EpochPhaseAcc::default(), 1)
    }

    /// The parallel pipeline: shard → parallel sample/score/grad → ordered
    /// merge → apply. The shard stage runs on the trainer's persistent
    /// [`WorkerPool`] (shard `i` always executes on pool worker `i`), which
    /// replaces the retired per-batch `std::thread::scope` — same work, same
    /// RNG streams, same reduction order, so the produced trajectory is
    /// bit-for-bit identical (asserted in `tests/parallel_equivalence.rs`),
    /// but the threads are spawned once instead of once per mini-batch.
    fn train_epoch_parallel(&mut self, shards: usize) -> EpochStats {
        let started = Instant::now();
        let mut acc = EpochAccumulator::new();
        // Borrow the trainer-owned buffers for the epoch (returned below);
        // arenas, per-shard outputs and task lists all keep their high-water
        // allocations across batches and epochs.
        let mut grads = std::mem::take(&mut self.grads);

        if self.pool.as_ref().is_none_or(|p| p.workers() != shards) {
            self.pool = Some(WorkerPool::new(shards));
        }
        let pool = self.pool.as_mut().expect("pool just ensured");

        self.sampler.prepare_shards(shards);
        self.batcher.shuffle(&mut self.rng);
        // Per-shard RNG streams for this epoch, derived from (seed, epoch,
        // shard) through SplitMix64 — decorrelated from each other and from
        // the master stream, and a pure function of the configuration, so a
        // fixed (seed, shards) pair replays bit-for-bit.
        let epoch_seed = split_seed(self.config.seed ^ SHARD_STREAM_TAG, self.epochs_done as u64);
        let mut shard_rngs: Vec<StdRng> = (0..shards)
            .map(|s| seeded_rng(split_seed(epoch_seed, s as u64)))
            .collect();
        let mut tasks = std::mem::take(&mut self.shard_tasks);
        tasks.resize_with(shards, Vec::new);
        let mut outputs = std::mem::take(&mut self.shard_outputs);
        outputs.resize_with(shards, ShardOutput::default);

        let metrics = self.metrics.clone();
        let mut phase_acc = EpochPhaseAcc::default();
        for batch in 0..self.batcher.batches_per_epoch() {
            // Stage 1 — shard: partition the mini-batch by cache key,
            // preserving batch order within each shard.
            let shard_started = metrics.as_ref().map(|_| Instant::now());
            for task in &mut tasks {
                task.clear();
            }
            for index in self.batcher.batch_range(batch) {
                let positive = self.batcher.get(index);
                tasks[self.sampler.shard_of(&positive, shards)].push(positive);
            }
            let score_started = if let (Some(metrics), Some(started)) = (&metrics, shard_started) {
                metrics.phase_shard.observe(started.elapsed());
                phase_acc.max_shard += tasks.iter().map(Vec::len).max().unwrap_or(0) as u64;
                phase_acc.total_positives += tasks.iter().map(Vec::len).sum::<usize>() as u64;
                Some(Instant::now())
            } else {
                None
            };

            // Stage 2 — parallel sample/score/grad: one pool round per
            // mini-batch, shard `i` on worker `i`, each job owning its
            // shard's sampler state, RNG stream and output buffers; the
            // model is shared read-only through the thread-safe batched
            // scoring API. Empty shards dispatch no job and their worker
            // stays parked.
            let model = self.model.as_ref();
            let loss = self.loss.as_ref();
            let regularizer = &self.regularizer;
            {
                let mut workers = self.sampler.shard_workers();
                debug_assert_eq!(workers.len(), shards, "one worker per shard");
                let jobs = workers
                    .iter_mut()
                    .zip(&tasks)
                    .zip(&mut shard_rngs)
                    .zip(&mut outputs)
                    .enumerate()
                    .filter(|(_, (((_, task), _), _))| !task.is_empty())
                    .map(|(shard, (((worker, task), rng), out))| {
                        let job = Box::new(move || {
                            run_shard_task(
                                model,
                                loss,
                                regularizer,
                                worker.as_mut(),
                                task,
                                rng,
                                out,
                            )
                        }) as Box<dyn FnOnce() + Send + '_>;
                        (shard, job)
                    });
                pool.run_round(jobs);
            }
            let merge_started = metrics.as_ref().map(|_| Instant::now());
            // Workers have been dropped; fold buffered sampler feedback (GAN
            // generator REINFORCE) back in, in shard order.
            self.sampler.merge_batch();

            // Stage 3 — merge: fold shard outputs in ascending shard order so
            // the floating-point reduction is deterministic (each shard's
            // arena is walked in sorted slot order; see GradientArena::merge).
            grads.clear();
            for out in &mut outputs {
                for &(example_loss, nonzero) in &out.examples {
                    acc.record_example(example_loss, nonzero);
                }
                out.examples.clear();
                for &negative in &out.negatives {
                    self.repeat_tracker.record(negative);
                }
                out.negatives.clear();
                grads.merge(&mut out.grads);
                out.grads.clear();
            }

            // Stage 4 — apply: one optimizer step per mini-batch.
            let apply_started = metrics.as_ref().map(|_| Instant::now());
            if !grads.is_empty() {
                acc.record_batch_gradient(grads.norm());
                self.optimizer.step(self.model.as_mut(), &mut grads);
                self.model.apply_constraints(grads.touched());
            }
            if let (Some(metrics), Some(score_started), Some(merge_started), Some(apply_started)) =
                (&metrics, score_started, merge_started, apply_started)
            {
                metrics
                    .phase_sample_score
                    .observe(merge_started - score_started);
                metrics.phase_merge.observe(apply_started - merge_started);
                metrics.phase_apply.observe(apply_started.elapsed());
            }
        }

        grads.clear();
        self.grads = grads;
        self.shard_tasks = tasks;
        self.shard_outputs = outputs;
        self.finish_epoch(acc, started, phase_acc, shards)
    }

    /// The double-buffered pipelined engine ([`TrainRuntime::Pipelined`]):
    /// the pool samples and scores mini-batch `k` against a pre-step
    /// parameter *shadow* while the main thread merges and applies
    /// mini-batch `k − 1` to the live model — delayed-gradient training with
    /// staleness 1.
    ///
    /// # Ordering contract
    ///
    /// Per mini-batch `k`, the engine runs four strictly ordered phases (the
    /// first two concurrently with each other, which is the whole point):
    ///
    /// 1. **Sample/score `k` against the shadow** (pool workers). The shadow
    ///    is a deep copy of the model holding the parameters as of the last
    ///    *synced* step, i.e. `θ_{k−1}`. Workers also buffer their sampler
    ///    cache updates (Algorithm 2, step 8) against the shadow.
    /// 2. **Merge/apply `k − 1`** (main thread, overlapped with 1). Folds the
    ///    *other* buffer set in ascending shard order and takes batch
    ///    `k − 1`'s optimizer step on the live model: `θ_{k−1} → θ_k`.
    /// 3. **Sampler cache merge for `k`** (after the round drains). Batch
    ///    `k`'s buffered cache updates land in the sampler *now* — before
    ///    batch `k`'s gradients are applied, which only happens in phase 2 of
    ///    round `k + 1` (or at the epoch tail). This **deferred merge is what
    ///    preserves Algorithm 2's step-8-before-step-9 order per batch**
    ///    under the overlap: every batch still refreshes the cache it
    ///    sampled from before its own embedding update, exactly as the
    ///    sequential and pooled engines do.
    /// 4. **Shadow re-sync.** The rows phase 2's step touched are copied
    ///    live → shadow through [`EmbeddingTable::set_row`], which bumps the
    ///    shadow tables' versions so any projection panels keyed to the
    ///    shadow (TransR/TransD) invalidate. The shadow is now `θ_k`, and
    ///    the buffers swap roles.
    ///
    /// # Data races (why the overlap is sound)
    ///
    /// Phase 1 and phase 2 run concurrently, so their capture sets must be
    /// disjoint (the [`WorkerPool::overlap_round`] caller contract): workers
    /// read the shadow and own their shard's sampler state, RNG stream and
    /// *current* output buffers; the main thread mutates the live model,
    /// optimizer, epoch statistics and the *previous* output buffers. The
    /// shadow is only mutated in phase 4, after the round has drained.
    ///
    /// # Determinism
    ///
    /// Stream derivation, batch partition and reduction order are identical
    /// to [`Self::train_epoch_parallel`], so a fixed `(seed, shards)` pair
    /// replays bit-for-bit — but scoring batches `k ≥ 1` against parameters
    /// one step old makes this a *third* deterministic trajectory, distinct
    /// from both the sequential and the pooled one.
    /// `tests/pipelined_equivalence.rs` asserts it bit-identical to the
    /// non-overlapped staged reference engine
    /// ([`Self::train_epoch_pipelined_staged`]) across the full model ×
    /// stateful-sampler matrix.
    fn train_epoch_pipelined(&mut self, shards: usize) -> EpochStats {
        let started = Instant::now();
        let mut acc = EpochAccumulator::new();
        let mut grads = std::mem::take(&mut self.grads);

        if self.pool.as_ref().is_none_or(|p| p.workers() != shards) {
            self.pool = Some(WorkerPool::new(shards));
        }
        let pool = self.pool.as_mut().expect("pool just ensured");

        // The pre-step snapshot the workers score against. A fresh deep copy
        // per epoch: clones get their own projection-cache identity, so
        // panels warmed for the shadow can never alias the live model's.
        let mut shadow = self.model.clone_box();

        self.sampler.prepare_shards(shards);
        self.batcher.shuffle(&mut self.rng);
        let epoch_seed = split_seed(self.config.seed ^ SHARD_STREAM_TAG, self.epochs_done as u64);
        let mut shard_rngs: Vec<StdRng> = (0..shards)
            .map(|s| seeded_rng(split_seed(epoch_seed, s as u64)))
            .collect();
        let mut tasks = std::mem::take(&mut self.shard_tasks);
        tasks.resize_with(shards, Vec::new);
        let mut outputs = std::mem::take(&mut self.shard_outputs);
        outputs.resize_with(shards, ShardOutput::default);
        let mut prev_outputs = std::mem::take(&mut self.shard_outputs_prev);
        prev_outputs.resize_with(shards, ShardOutput::default);
        // Rows the overlapped optimizer step touched, carried across the
        // drain so phase 4 can re-sync exactly those shadow rows.
        let mut stale_rows: Vec<(TableId, usize)> = Vec::new();

        let metrics = self.metrics.clone();
        let mut phase_acc = EpochPhaseAcc::default();
        for batch in 0..self.batcher.batches_per_epoch() {
            // Partition mini-batch `k` by cache key (same as the pooled
            // engine; `shard_of` is a pure function of the triple).
            let shard_started = metrics.as_ref().map(|_| Instant::now());
            for task in &mut tasks {
                task.clear();
            }
            for index in self.batcher.batch_range(batch) {
                let positive = self.batcher.get(index);
                tasks[self.sampler.shard_of(&positive, shards)].push(positive);
            }
            let round_started = if let (Some(metrics), Some(started)) = (&metrics, shard_started) {
                metrics.phase_shard.observe(started.elapsed());
                phase_acc.max_shard += tasks.iter().map(Vec::len).max().unwrap_or(0) as u64;
                phase_acc.total_positives += tasks.iter().map(Vec::len).sum::<usize>() as u64;
                Some(Instant::now())
            } else {
                None
            };

            let shadow_model = shadow.as_ref();
            let loss = self.loss.as_ref();
            let regularizer = &self.regularizer;
            {
                // Disjoint field borrows: the jobs capture the sampler's
                // shard workers (plus shadow/loss/regularizer read-only);
                // the main work captures the live model, optimizer and
                // epoch-statistics state. Neither set touches the other.
                let model = &mut self.model;
                let optimizer = &mut self.optimizer;
                let repeat_tracker = &mut self.repeat_tracker;
                let acc = &mut acc;
                let grads = &mut grads;
                let stale_rows = &mut stale_rows;
                let prev = &mut prev_outputs;
                let metrics_ref = metrics.as_deref();
                let phase_acc = &mut phase_acc;
                let mut workers = self.sampler.shard_workers();
                debug_assert_eq!(workers.len(), shards, "one worker per shard");
                let jobs = workers
                    .iter_mut()
                    .zip(&tasks)
                    .zip(&mut shard_rngs)
                    .zip(&mut outputs)
                    .enumerate()
                    .filter(|(_, (((_, task), _), _))| !task.is_empty())
                    .map(|(shard, (((worker, task), rng), out))| {
                        let job = Box::new(move || {
                            run_shard_task(
                                shadow_model,
                                loss,
                                regularizer,
                                worker.as_mut(),
                                task,
                                rng,
                                out,
                            )
                        }) as Box<dyn FnOnce() + Send + '_>;
                        (shard, job)
                    });
                // Phases 1 + 2: batch `k` samples against the shadow on the
                // pool while batch `k − 1` merges and steps on this thread.
                pool.overlap_round(jobs, || {
                    let drain_started = metrics_ref.map(|_| Instant::now());
                    Self::drain_batch(
                        prev,
                        grads,
                        acc,
                        repeat_tracker,
                        model.as_mut(),
                        optimizer.as_mut(),
                        Some(stale_rows),
                        metrics_ref,
                    );
                    if let Some(started) = drain_started {
                        phase_acc.overlap_main_us += started.elapsed().as_micros() as u64;
                    }
                });
            }
            if let (Some(metrics), Some(started)) = (&metrics, round_started) {
                let elapsed = started.elapsed();
                metrics.phase_sample_score.observe(elapsed);
                phase_acc.overlap_round_us += elapsed.as_micros() as u64;
            }
            // Phase 3 — Algorithm 2, step 8 for batch `k`: the workers'
            // buffered cache/feedback updates land before batch `k`'s own
            // step (which runs in the *next* round's phase 2).
            self.sampler.merge_batch();
            // Phase 4 — re-sync the shadow: copy the stepped rows from the
            // live model. `set_row` bumps the shadow tables' versions, so
            // stale projection panels keyed to the shadow invalidate.
            if !stale_rows.is_empty() {
                let live = self.model.tables();
                let mut shadow_tables = shadow.tables_mut();
                for &(table, row) in stale_rows.iter() {
                    shadow_tables[table].set_row(row, live[table].row(row));
                }
                stale_rows.clear();
            }
            std::mem::swap(&mut outputs, &mut prev_outputs);
        }

        // Epoch tail: the final mini-batch's merge and step (its sampler
        // cache merge already ran inside the loop, so the per-batch ordering
        // contract holds for it too). No shadow re-sync — the next pipelined
        // epoch clones a fresh shadow.
        Self::drain_batch(
            &mut prev_outputs,
            &mut grads,
            &mut acc,
            &mut self.repeat_tracker,
            self.model.as_mut(),
            self.optimizer.as_mut(),
            None,
            metrics.as_deref(),
        );

        grads.clear();
        self.grads = grads;
        self.shard_tasks = tasks;
        self.shard_outputs = outputs;
        self.shard_outputs_prev = prev_outputs;
        self.finish_epoch(acc, started, phase_acc, shards)
    }

    /// The *staged* reference implementation of the pipelined engine: the
    /// same delayed-gradient trajectory with **no overlap** — batch `k` is
    /// sampled and scored against the shadow inline in ascending shard
    /// order, and only then is batch `k − 1` merged and applied. Because the
    /// overlapped phases touch disjoint state, running them sequentially
    /// must be bit-identical; `tests/pipelined_equivalence.rs` asserts
    /// exactly that, which reduces the concurrent engine's correctness to
    /// this trivially auditable one. Not part of the public API.
    #[doc(hidden)]
    pub fn train_epoch_pipelined_staged(&mut self) -> EpochStats {
        let shards = self.config.shards.max(1);
        let started = Instant::now();
        let mut acc = EpochAccumulator::new();
        let mut grads = std::mem::take(&mut self.grads);

        let mut shadow = self.model.clone_box();

        self.sampler.prepare_shards(shards);
        self.batcher.shuffle(&mut self.rng);
        let epoch_seed = split_seed(self.config.seed ^ SHARD_STREAM_TAG, self.epochs_done as u64);
        let mut shard_rngs: Vec<StdRng> = (0..shards)
            .map(|s| seeded_rng(split_seed(epoch_seed, s as u64)))
            .collect();
        let mut tasks = std::mem::take(&mut self.shard_tasks);
        tasks.resize_with(shards, Vec::new);
        let mut outputs = std::mem::take(&mut self.shard_outputs);
        outputs.resize_with(shards, ShardOutput::default);
        let mut prev_outputs = std::mem::take(&mut self.shard_outputs_prev);
        prev_outputs.resize_with(shards, ShardOutput::default);
        let mut stale_rows: Vec<(TableId, usize)> = Vec::new();

        let metrics = self.metrics.clone();
        let mut phase_acc = EpochPhaseAcc::default();
        for batch in 0..self.batcher.batches_per_epoch() {
            let shard_started = metrics.as_ref().map(|_| Instant::now());
            for task in &mut tasks {
                task.clear();
            }
            for index in self.batcher.batch_range(batch) {
                let positive = self.batcher.get(index);
                tasks[self.sampler.shard_of(&positive, shards)].push(positive);
            }
            let score_started = if let (Some(metrics), Some(started)) = (&metrics, shard_started) {
                metrics.phase_shard.observe(started.elapsed());
                phase_acc.max_shard += tasks.iter().map(Vec::len).max().unwrap_or(0) as u64;
                phase_acc.total_positives += tasks.iter().map(Vec::len).sum::<usize>() as u64;
                Some(Instant::now())
            } else {
                None
            };

            // Phase 1, staged: batch `k` against the shadow, shard by shard.
            {
                let mut workers = self.sampler.shard_workers();
                debug_assert_eq!(workers.len(), shards, "one worker per shard");
                for (shard, worker) in workers.iter_mut().enumerate() {
                    if tasks[shard].is_empty() {
                        continue;
                    }
                    run_shard_task(
                        shadow.as_ref(),
                        self.loss.as_ref(),
                        &self.regularizer,
                        worker.as_mut(),
                        &tasks[shard],
                        &mut shard_rngs[shard],
                        &mut outputs[shard],
                    );
                }
            }
            if let (Some(metrics), Some(started)) = (&metrics, score_started) {
                metrics.phase_sample_score.observe(started.elapsed());
            }
            // Phase 2, staged: batch `k − 1` merges and steps.
            Self::drain_batch(
                &mut prev_outputs,
                &mut grads,
                &mut acc,
                &mut self.repeat_tracker,
                self.model.as_mut(),
                self.optimizer.as_mut(),
                Some(&mut stale_rows),
                metrics.as_deref(),
            );
            // Phases 3 + 4: identical to the overlapped engine.
            self.sampler.merge_batch();
            if !stale_rows.is_empty() {
                let live = self.model.tables();
                let mut shadow_tables = shadow.tables_mut();
                for &(table, row) in stale_rows.iter() {
                    shadow_tables[table].set_row(row, live[table].row(row));
                }
                stale_rows.clear();
            }
            std::mem::swap(&mut outputs, &mut prev_outputs);
        }

        Self::drain_batch(
            &mut prev_outputs,
            &mut grads,
            &mut acc,
            &mut self.repeat_tracker,
            self.model.as_mut(),
            self.optimizer.as_mut(),
            None,
            metrics.as_deref(),
        );

        grads.clear();
        self.grads = grads;
        self.shard_tasks = tasks;
        self.shard_outputs = outputs;
        self.shard_outputs_prev = prev_outputs;
        self.finish_epoch(acc, started, phase_acc, shards)
    }

    /// Stages 3 + 4 of the parallel engine (ordered merge + apply), hoisted
    /// into an associated function over explicit parts so the pipelined
    /// engine can run it as `overlap_round` main work against a capture set
    /// disjoint from the pool jobs'. When `stale_rows` is given, the rows
    /// the step touched are appended for the caller's shadow re-sync.
    #[allow(clippy::too_many_arguments)]
    fn drain_batch(
        outputs: &mut [ShardOutput],
        grads: &mut GradientArena,
        acc: &mut EpochAccumulator,
        repeat_tracker: &mut RepeatTracker,
        model: &mut dyn KgeModel,
        optimizer: &mut dyn Optimizer,
        stale_rows: Option<&mut Vec<(TableId, usize)>>,
        metrics: Option<&TrainMetrics>,
    ) {
        let merge_started = metrics.map(|_| Instant::now());
        grads.clear();
        for out in outputs.iter_mut() {
            for &(example_loss, nonzero) in &out.examples {
                acc.record_example(example_loss, nonzero);
            }
            out.examples.clear();
            for &negative in &out.negatives {
                repeat_tracker.record(negative);
            }
            out.negatives.clear();
            grads.merge(&mut out.grads);
            out.grads.clear();
        }
        let apply_started = metrics.map(|_| Instant::now());
        if !grads.is_empty() {
            acc.record_batch_gradient(grads.norm());
            optimizer.step(model, grads);
            model.apply_constraints(grads.touched());
            if let Some(stale_rows) = stale_rows {
                stale_rows.extend_from_slice(grads.touched());
            }
        }
        if let (Some(metrics), Some(merge_started), Some(apply_started)) =
            (metrics, merge_started, apply_started)
        {
            metrics.phase_merge.observe(apply_started - merge_started);
            metrics.phase_apply.observe(apply_started.elapsed());
        }
    }

    /// Epoch epilogue shared by both pipelines: close out the statistics,
    /// fold the phase accumulators into the derived gauges, publish the
    /// epoch onto the metrics registry (when attached) and notify the
    /// sampler.
    fn finish_epoch(
        &mut self,
        acc: EpochAccumulator,
        started: Instant,
        phase: EpochPhaseAcc,
        shards: usize,
    ) -> EpochStats {
        let seconds = started.elapsed().as_secs_f64();
        self.train_seconds += seconds;
        let repeat_ratio = self.repeat_tracker.ratio();
        let changed = self.sampler.take_changed_elements();
        let stats = acc.finish(self.epochs_done, repeat_ratio, changed, seconds);
        if let Some(metrics) = &self.metrics {
            metrics.shard_imbalance.set(phase.imbalance(shards));
            metrics.overlap_ratio.set(phase.overlap());
            metrics.publish_epoch(&stats);
        }

        self.sampler.epoch_finished(self.epochs_done);
        self.repeat_tracker.end_epoch();
        self.epochs_done += 1;
        self.history.epochs.push(stats);
        self.history.total_seconds = self.train_seconds;
        stats
    }

    /// Evaluate the current model on the test split with the given protocol.
    pub fn evaluate(&self, protocol: &EvalProtocol) -> LinkPredictionReport {
        evaluate_link_prediction(self.model.as_ref(), &self.test, &self.filter, protocol)
    }

    /// Take a snapshot of the current test performance (Figures 2–5 points).
    pub fn snapshot(&mut self) -> Snapshot {
        let report = self.evaluate(&self.config.snapshot_protocol);
        let snap = Snapshot {
            epoch: self.epochs_done,
            elapsed_seconds: self.train_seconds,
            mrr: report.combined.mrr,
            hits_at_10: report.combined.hits_at_10,
            mean_rank: report.combined.mean_rank,
        };
        self.history.snapshots.push(snap);
        snap
    }

    /// Run up to the configured number of epochs, taking periodic snapshots,
    /// then run the final evaluation.
    ///
    /// Counts against [`Trainer::epochs_done`], so a trainer restored from a
    /// checkpoint runs only the *remaining* epochs of its budget.
    pub fn run(&mut self) -> &TrainingHistory {
        self.run_with(&mut |_| {})
    }

    /// Like [`Self::run`], invoking `after_epoch` after every finished epoch
    /// (after the periodic snapshot, when one is due).
    ///
    /// The hook receives the trainer by shared reference — enough for
    /// observation and checkpointing (`nscaching_serve::save_checkpoint`
    /// needs only `&Trainer`), which is how the experiment binaries implement
    /// `--checkpoint-every` without this crate depending on the snapshot
    /// store.
    pub fn run_with(&mut self, after_epoch: &mut dyn FnMut(&Trainer)) -> &TrainingHistory {
        while self.epochs_done < self.config.epochs {
            self.train_epoch();
            if self.config.eval_every > 0 && self.epochs_done.is_multiple_of(self.config.eval_every)
            {
                self.snapshot();
            }
            after_epoch(self);
        }
        let final_report = self.evaluate(&self.config.final_protocol.clone());
        self.history.final_report = Some(final_report);
        &self.history
    }

    /// One sample/score round without updating anything — used by the
    /// Table I timing harness to isolate the cost of negative sampling.
    pub fn sample_once(&mut self, positive: &Triple) -> SampledNegative {
        self.sampler
            .sample(positive, self.model.as_ref(), &mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching::{NsCachingConfig, SamplerConfig};
    use nscaching_datagen::GeneratorConfig;
    use nscaching_kg::Dataset;
    use nscaching_models::{build_model, ModelConfig, ModelKind};
    use nscaching_optim::OptimizerConfig;

    fn dataset(seed: u64) -> Dataset {
        let mut c = GeneratorConfig::small("train-test");
        c.num_entities = 120;
        c.num_train = 900;
        c.num_valid = 60;
        c.num_test = 60;
        c.seed = seed;
        nscaching_datagen::generate(&c).unwrap()
    }

    fn trainer(ds: &Dataset, sampler: SamplerConfig, kind: ModelKind, epochs: usize) -> Trainer {
        let model = build_model(
            &ModelConfig::new(kind).with_dim(16).with_seed(7),
            ds.num_entities(),
            ds.num_relations(),
        );
        let sampler = nscaching::build_sampler(&sampler, ds, 11);
        let config = TrainConfig::new(epochs)
            .with_batch_size(128)
            .with_optimizer(OptimizerConfig::adam(0.02))
            .with_margin(2.0)
            .with_seed(5);
        Trainer::new(model, sampler, ds, config)
    }

    #[test]
    fn training_reduces_the_loss() {
        let ds = dataset(1);
        let mut t = trainer(&ds, SamplerConfig::Bernoulli, ModelKind::TransE, 0);
        let first = t.train_epoch();
        for _ in 0..5 {
            t.train_epoch();
        }
        let last = t.history().epochs.last().copied().unwrap();
        assert!(
            last.mean_loss < first.mean_loss,
            "loss should drop: {} -> {}",
            first.mean_loss,
            last.mean_loss
        );
        assert_eq!(t.epochs_done(), 6);
        assert!(last.seconds >= 0.0);
        assert_eq!(last.examples, ds.train.len());
    }

    #[test]
    fn nscaching_training_runs_and_changes_cache() {
        let ds = dataset(2);
        let mut t = trainer(
            &ds,
            SamplerConfig::NsCaching(NsCachingConfig::new(10, 10)),
            ModelKind::TransE,
            0,
        );
        let stats = t.train_epoch();
        assert!(
            stats.changed_cache_elements > 0,
            "cache must churn in epoch 0"
        );
        assert!(stats.repeat_ratio >= 0.0 && stats.repeat_ratio <= 1.0);
        assert_eq!(t.sampler().name(), "NSCaching");
    }

    #[test]
    fn run_produces_snapshots_and_final_report() {
        let ds = dataset(3);
        let mut t = trainer(&ds, SamplerConfig::Bernoulli, ModelKind::DistMult, 4);
        // snapshot every 2 epochs on a small subset to keep the test fast
        t.config.eval_every = 2;
        t.config.snapshot_protocol = EvalProtocol::filtered().with_max_triples(20);
        t.config.final_protocol = EvalProtocol::filtered().with_max_triples(30);
        let history = t.run();
        assert_eq!(history.epochs.len(), 4);
        assert_eq!(history.snapshots.len(), 2);
        assert!(history.final_report.is_some());
        let report = history.final_report.unwrap();
        assert!(report.combined.mrr > 0.0);
        assert!(report.combined.mrr <= 1.0);
        assert!(history.total_seconds > 0.0);
    }

    #[test]
    fn logistic_models_use_the_regularizer_and_margin_models_do_not() {
        let ds = dataset(4);
        let t = trainer(&ds, SamplerConfig::Bernoulli, ModelKind::ComplEx, 1);
        assert!(t.regularizer.is_active());
        let t = trainer(&ds, SamplerConfig::Bernoulli, ModelKind::TransD, 1);
        assert!(!t.regularizer.is_active());
    }

    #[test]
    fn kbgan_sampler_receives_feedback_during_training() {
        let ds = dataset(5);
        let mut t = trainer(&ds, SamplerConfig::kbgan_default(), ModelKind::TransE, 0);
        let stats = t.train_epoch();
        assert!(stats.examples > 0);
        assert!(t.sampler().extra_parameters() > 0);
    }

    #[test]
    fn training_is_deterministic_given_the_seeds() {
        let ds = dataset(6);
        let run = |seed| {
            let model = build_model(
                &ModelConfig::new(ModelKind::TransE).with_dim(8).with_seed(1),
                ds.num_entities(),
                ds.num_relations(),
            );
            let sampler = nscaching::build_sampler(
                &SamplerConfig::NsCaching(NsCachingConfig::new(5, 5)),
                &ds,
                2,
            );
            let config = TrainConfig::new(2).with_seed(seed).with_batch_size(64);
            let mut t = Trainer::new(model, sampler, &ds, config);
            t.train_epoch();
            t.train_epoch();
            t.evaluate(&EvalProtocol::filtered().with_max_triples(20))
                .combined
                .mrr
        };
        assert_eq!(run(3), run(3));
        // different shuffling seed gives a (very likely) different result
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn parallel_training_is_deterministic_for_fixed_seed_and_shards() {
        let ds = dataset(8);
        let run = |shards: usize| {
            let model = build_model(
                &ModelConfig::new(ModelKind::TransE).with_dim(8).with_seed(1),
                ds.num_entities(),
                ds.num_relations(),
            );
            let sampler = nscaching::build_sampler(
                &SamplerConfig::NsCaching(NsCachingConfig::new(5, 5)),
                &ds,
                2,
            );
            let config = TrainConfig::new(2)
                .with_seed(3)
                .with_batch_size(64)
                .with_shards(shards);
            let mut t = Trainer::new(model, sampler, &ds, config);
            let losses: Vec<f64> = (0..2).map(|_| t.train_epoch().mean_loss).collect();
            let mrr = t
                .evaluate(&EvalProtocol::filtered().with_max_triples(20))
                .combined
                .mrr;
            (losses, mrr)
        };
        assert_eq!(run(4), run(4), "fixed (seed, shards) must replay exactly");
        assert_eq!(run(2), run(2));
        // different shard counts use different RNG partitions
        assert_ne!(run(2).1, run(4).1);
    }

    #[test]
    fn parallel_training_reduces_the_loss_for_every_sampler() {
        let ds = dataset(9);
        for sampler in [
            SamplerConfig::Uniform,
            SamplerConfig::Bernoulli,
            SamplerConfig::NsCaching(NsCachingConfig::new(8, 8)),
            SamplerConfig::kbgan_default(),
        ] {
            let mut t = trainer(&ds, sampler.clone(), ModelKind::TransE, 0);
            t.config.shards = 4;
            let first = t.train_epoch();
            for _ in 0..4 {
                t.train_epoch();
            }
            let last = t.history().epochs.last().copied().unwrap();
            assert!(
                last.mean_loss < first.mean_loss,
                "{}: loss should drop under 4 shards: {} -> {}",
                sampler.display_name(),
                first.mean_loss,
                last.mean_loss
            );
            assert_eq!(last.examples, ds.train.len(), "no positive may be lost");
        }
    }

    #[test]
    fn pooled_one_shard_engine_matches_auto_parallel_trajectories() {
        // TrainRuntime::Pool at shards = 1 must produce exactly the same
        // trajectory as the parallel pipeline would (the engine is a pure
        // performance knob), and the pool must survive the whole run.
        let ds = dataset(10);
        let run = |runtime: TrainRuntime, shards: usize| {
            let mut t = trainer(
                &ds,
                SamplerConfig::NsCaching(NsCachingConfig::new(8, 8)),
                ModelKind::TransE,
                0,
            );
            t.config.shards = shards;
            t.config.runtime = runtime;
            (0..3)
                .map(|_| t.train_epoch().mean_loss)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(TrainRuntime::Pool, 1), run(TrainRuntime::Pool, 1));
        assert_eq!(run(TrainRuntime::Auto, 4), run(TrainRuntime::Pool, 4));
        // The pooled 1-shard pipeline uses the decorrelated worker streams,
        // not the master stream, so it is a different trajectory from the
        // sequential engine.
        assert_ne!(run(TrainRuntime::Pool, 1), run(TrainRuntime::Auto, 1));
    }

    #[test]
    fn pipelined_training_is_deterministic_and_a_distinct_trajectory() {
        let ds = dataset(14);
        let run = |runtime: TrainRuntime, shards: usize| {
            let mut t = trainer(
                &ds,
                SamplerConfig::NsCaching(NsCachingConfig::new(8, 8)),
                ModelKind::TransE,
                0,
            );
            t.config.shards = shards;
            t.config.runtime = runtime;
            let losses: Vec<f64> = (0..3).map(|_| t.train_epoch().mean_loss).collect();
            let mrr = t
                .evaluate(&EvalProtocol::filtered().with_max_triples(20))
                .combined
                .mrr;
            (losses, mrr)
        };
        // Fixed (seed, shards) replays exactly, at one shard and several.
        assert_eq!(
            run(TrainRuntime::Pipelined, 1),
            run(TrainRuntime::Pipelined, 1)
        );
        assert_eq!(
            run(TrainRuntime::Pipelined, 4),
            run(TrainRuntime::Pipelined, 4)
        );
        // Delayed gradients make it a different trajectory than the pooled
        // engine on the same shard partition and RNG streams.
        assert_ne!(run(TrainRuntime::Pipelined, 4), run(TrainRuntime::Pool, 4));
    }

    #[test]
    fn pipelined_training_reduces_the_loss_for_every_sampler() {
        let ds = dataset(15);
        for sampler in [
            SamplerConfig::Uniform,
            SamplerConfig::Bernoulli,
            SamplerConfig::NsCaching(NsCachingConfig::new(8, 8)),
            SamplerConfig::kbgan_default(),
        ] {
            let mut t = trainer(&ds, sampler.clone(), ModelKind::TransE, 0);
            t.config.shards = 4;
            t.config.runtime = TrainRuntime::Pipelined;
            let first = t.train_epoch();
            for _ in 0..4 {
                t.train_epoch();
            }
            let last = t.history().epochs.last().copied().unwrap();
            assert!(
                last.mean_loss < first.mean_loss,
                "{}: loss should drop under the pipelined engine: {} -> {}",
                sampler.display_name(),
                first.mean_loss,
                last.mean_loss
            );
            assert_eq!(last.examples, ds.train.len(), "no positive may be lost");
        }
    }

    #[test]
    #[should_panic(expected = "cannot honour a sharded configuration")]
    fn sequential_runtime_rejects_sharded_configs() {
        let ds = dataset(11);
        let mut t = trainer(&ds, SamplerConfig::Bernoulli, ModelKind::TransE, 0);
        t.config.shards = 2;
        t.config.runtime = TrainRuntime::Sequential;
        t.train_epoch();
    }

    #[test]
    fn checkpoint_restore_resumes_bit_for_bit() {
        let ds = dataset(12);
        let build = || {
            let model = build_model(
                &ModelConfig::new(ModelKind::TransE).with_dim(8).with_seed(1),
                ds.num_entities(),
                ds.num_relations(),
            );
            let sampler = nscaching::build_sampler(&SamplerConfig::Bernoulli, &ds, 2);
            let config = TrainConfig::new(4).with_seed(3).with_batch_size(64);
            Trainer::new(model, sampler, &ds, config)
        };

        // Uninterrupted reference: 4 epochs straight through.
        let mut reference = build();
        for _ in 0..4 {
            reference.train_epoch();
        }

        // Interrupted run: 2 epochs, checkpoint, rebuild, restore, 2 more.
        let mut first_half = build();
        first_half.train_epoch();
        first_half.train_epoch();
        let state = first_half.checkpoint();
        assert_eq!(state.epochs_done, 2);
        let tables: Vec<Vec<f64>> = first_half
            .model()
            .tables()
            .iter()
            .map(|t| t.data().to_vec())
            .collect();

        let mut resumed = build();
        for (table, data) in resumed.model.tables_mut().into_iter().zip(&tables) {
            table.data_mut().copy_from_slice(data);
        }
        resumed.restore(state).unwrap();
        assert_eq!(resumed.epochs_done(), 2);
        resumed.train_epoch();
        resumed.train_epoch();

        for (a, b) in reference
            .model()
            .tables()
            .iter()
            .zip(resumed.model().tables())
        {
            assert!(
                a.data()
                    .iter()
                    .zip(b.data())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "resumed trajectory diverged on table {}",
                a.name()
            );
        }
        // run() honours the restored epoch count: the budget is exhausted.
        let history = resumed.run();
        assert!(history.epochs.is_empty() || resumed.epochs_done() == 4);
        assert_eq!(resumed.epochs_done(), 4);
    }

    #[test]
    fn restore_rejects_mismatched_optimizer_state() {
        let ds = dataset(13);
        let mut t = trainer(&ds, SamplerConfig::Bernoulli, ModelKind::TransE, 1);
        let mut state = t.checkpoint();
        state.optimizer = nscaching_optim::OptimizerState::Sgd;
        // the trainer above is built with Adam
        assert!(t.restore(state).is_err());
    }

    #[test]
    fn sample_once_does_not_advance_epochs() {
        let ds = dataset(7);
        let mut t = trainer(&ds, SamplerConfig::Bernoulli, ModelKind::TransE, 1);
        let pos = ds.train[0];
        let neg = t.sample_once(&pos);
        assert_ne!(neg.triple, pos);
        assert_eq!(t.epochs_done(), 0);
    }
}
