//! Periodic evaluation snapshots and the full training history.

use crate::instrument::EpochStats;
use nscaching_eval::LinkPredictionReport;
use serde::{Deserialize, Serialize};

/// One periodic evaluation during training (the points of Figures 2–5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Epoch after which the snapshot was taken (1-based count of finished
    /// epochs).
    pub epoch: usize,
    /// Wall-clock seconds of *training* time elapsed when the snapshot was
    /// taken (evaluation time itself is excluded, as in the paper's
    /// performance-vs-time plots).
    pub elapsed_seconds: f64,
    /// Filtered MRR on the snapshot subset of the test split.
    pub mrr: f64,
    /// Filtered Hits@10 on the snapshot subset of the test split.
    pub hits_at_10: f64,
    /// Filtered mean rank on the snapshot subset.
    pub mean_rank: f64,
}

impl Snapshot {
    /// TSV row `epoch elapsed mrr hit10 mr`.
    pub fn tsv_row(&self) -> String {
        format!(
            "{}\t{:.3}\t{:.4}\t{:.2}\t{:.1}",
            self.epoch,
            self.elapsed_seconds,
            self.mrr,
            self.hits_at_10 * 100.0,
            self.mean_rank
        )
    }

    /// Header matching [`tsv_row`](Self::tsv_row).
    pub fn tsv_header() -> &'static str {
        "epoch\tseconds\tmrr\thit@10\tmr"
    }
}

/// Everything recorded during one training run.
#[derive(Debug, Clone)]
pub struct TrainingHistory {
    /// Per-epoch statistics (loss, NZL, gradient norms, RR, CE).
    pub epochs: Vec<EpochStats>,
    /// Periodic evaluation snapshots.
    pub snapshots: Vec<Snapshot>,
    /// Final full evaluation on the test split.
    pub final_report: Option<LinkPredictionReport>,
    /// Total training seconds (excluding evaluation).
    pub total_seconds: f64,
}

impl TrainingHistory {
    /// Empty history.
    pub fn new() -> Self {
        Self {
            epochs: Vec::new(),
            snapshots: Vec::new(),
            final_report: None,
            total_seconds: 0.0,
        }
    }

    /// The best snapshot MRR seen during training (0 if no snapshots).
    pub fn best_snapshot_mrr(&self) -> f64 {
        self.snapshots.iter().map(|s| s.mrr).fold(0.0, f64::max)
    }

    /// Final combined test metrics, if the final evaluation ran.
    pub fn final_mrr(&self) -> Option<f64> {
        self.final_report.map(|r| r.combined.mrr)
    }

    /// Render the per-epoch statistics as a TSV table.
    pub fn epochs_tsv(&self) -> String {
        let mut out = String::from(EpochStats::tsv_header());
        out.push('\n');
        for e in &self.epochs {
            out.push_str(&e.tsv_row());
            out.push('\n');
        }
        out
    }

    /// Render the snapshots as a TSV table.
    pub fn snapshots_tsv(&self) -> String {
        let mut out = String::from(Snapshot::tsv_header());
        out.push('\n');
        for s in &self.snapshots {
            out.push_str(&s.tsv_row());
            out.push('\n');
        }
        out
    }
}

impl Default for TrainingHistory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(epoch: usize, mrr: f64) -> Snapshot {
        Snapshot {
            epoch,
            elapsed_seconds: epoch as f64 * 1.5,
            mrr,
            hits_at_10: mrr * 1.1,
            mean_rank: 100.0 - mrr * 10.0,
        }
    }

    #[test]
    fn best_snapshot_and_tsv() {
        let mut h = TrainingHistory::new();
        assert_eq!(h.best_snapshot_mrr(), 0.0);
        assert!(h.final_mrr().is_none());
        h.snapshots.push(snapshot(1, 0.2));
        h.snapshots.push(snapshot(2, 0.5));
        h.snapshots.push(snapshot(3, 0.4));
        assert!((h.best_snapshot_mrr() - 0.5).abs() < 1e-12);
        let tsv = h.snapshots_tsv();
        assert!(tsv.starts_with(Snapshot::tsv_header()));
        assert_eq!(tsv.lines().count(), 4);
    }

    #[test]
    fn epochs_tsv_has_header_plus_rows() {
        let mut h = TrainingHistory::default();
        h.epochs
            .push(crate::instrument::EpochAccumulator::new().finish(0, 0.0, 0, 0.1));
        let tsv = h.epochs_tsv();
        assert_eq!(tsv.lines().count(), 2);
    }

    #[test]
    fn snapshot_row_formats_hits_as_percent() {
        let s = snapshot(2, 0.5);
        let row = s.tsv_row();
        assert!(row.contains("55.00"), "row was {row}");
    }
}
