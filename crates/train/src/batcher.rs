//! Mini-batch iteration over the training split.

use nscaching_kg::Triple;
use rand::seq::SliceRandom;
use rand::Rng;

/// Shuffles the training triples once per epoch and yields contiguous
/// mini-batches of (at most) the configured size.
#[derive(Debug, Clone)]
pub struct Batcher {
    triples: Vec<Triple>,
    batch_size: usize,
}

impl Batcher {
    /// Create a batcher over the training triples.
    pub fn new(triples: Vec<Triple>, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(!triples.is_empty(), "cannot batch an empty training split");
        Self {
            triples,
            batch_size,
        }
    }

    /// Number of training triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether there are no triples (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Number of batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.triples.len().div_ceil(self.batch_size)
    }

    /// Shuffle and return the epoch's batches as slices into the internal
    /// buffer.
    pub fn epoch<R: Rng + ?Sized>(&mut self, rng: &mut R) -> impl Iterator<Item = &[Triple]> {
        self.triples.shuffle(rng);
        self.triples.chunks(self.batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;

    fn triples(n: u32) -> Vec<Triple> {
        (0..n).map(|i| Triple::new(i, 0, i + 1)).collect()
    }

    #[test]
    fn batches_cover_every_triple_exactly_once() {
        let mut b = Batcher::new(triples(10), 3);
        let mut rng = seeded_rng(1);
        let mut seen: Vec<Triple> = Vec::new();
        let mut batch_count = 0;
        for batch in b.epoch(&mut rng) {
            assert!(batch.len() <= 3);
            seen.extend_from_slice(batch);
            batch_count += 1;
        }
        assert_eq!(batch_count, 4);
        assert_eq!(seen.len(), 10);
        let mut sorted = seen.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn epochs_reshuffle() {
        let mut b = Batcher::new(triples(50), 50);
        let mut rng = seeded_rng(2);
        let first: Vec<Triple> = b.epoch(&mut rng).flatten().copied().collect();
        let second: Vec<Triple> = b.epoch(&mut rng).flatten().copied().collect();
        assert_ne!(first, second, "two epochs should see different orders");
    }

    #[test]
    fn batches_per_epoch_rounds_up() {
        let b = Batcher::new(triples(10), 4);
        assert_eq!(b.batches_per_epoch(), 3);
        assert_eq!(b.len(), 10);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty training split")]
    fn empty_training_split_is_rejected() {
        let _ = Batcher::new(vec![], 4);
    }
}
