//! Mini-batch iteration over the training split.

use nscaching_kg::Triple;
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::Arc;

/// Shuffles the training triples once per epoch and yields contiguous
/// mini-batches of (at most) the configured size.
///
/// The triples themselves live in shared `Arc<[Triple]>` storage (one copy
/// per dataset, not per trainer — see [`TrainData`](crate::TrainData));
/// shuffling permutes a private index vector instead of the shared slice.
/// The permutation applies exactly the same Fisher–Yates swap sequence the
/// in-place shuffle used to apply to the triples, so epoch orders (and the
/// RNG draws producing them) are unchanged.
#[derive(Debug, Clone)]
pub struct Batcher {
    triples: Arc<[Triple]>,
    /// Current epoch's permutation: position `i` reads `triples[order[i]]`.
    order: Vec<u32>,
    batch_size: usize,
}

impl Batcher {
    /// Create a batcher over the training triples. Accepts shared
    /// `Arc<[Triple]>` storage directly or any owned collection convertible
    /// into it (e.g. a `Vec<Triple>`).
    pub fn new(triples: impl Into<Arc<[Triple]>>, batch_size: usize) -> Self {
        let triples = triples.into();
        assert!(batch_size > 0, "batch size must be positive");
        assert!(!triples.is_empty(), "cannot batch an empty training split");
        assert!(
            triples.len() <= u32::MAX as usize,
            "training split exceeds the u32 index space"
        );
        Self {
            order: (0..triples.len() as u32).collect(),
            triples,
            batch_size,
        }
    }

    /// Number of training triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether there are no triples (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Number of batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.triples.len().div_ceil(self.batch_size)
    }

    /// Reshuffle the epoch order without borrowing (or copying) the triples.
    ///
    /// Together with [`Self::batch_range`] and [`Self::get`] this lets the
    /// training loop walk an epoch by index, copying each (16-byte) triple
    /// out by value instead of holding a borrow (or cloning the whole
    /// training split) across the loop body.
    pub fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.order.shuffle(rng);
    }

    /// Index range of the `batch`-th mini-batch of the current shuffle
    /// (clamped to the number of triples; empty when out of range).
    pub fn batch_range(&self, batch: usize) -> std::ops::Range<usize> {
        let start = (batch * self.batch_size).min(self.triples.len());
        let end = (start + self.batch_size).min(self.triples.len());
        start..end
    }

    /// Copy out the triple at `index` under the current shuffle.
    #[inline]
    pub fn get(&self, index: usize) -> Triple {
        self.triples[self.order[index] as usize]
    }

    /// The current epoch permutation (checkpoint side).
    ///
    /// Each epoch's Fisher–Yates shuffle permutes the *previous* epoch's
    /// order in place, so the permutation is part of the training state: an
    /// exact resume must restore it (via [`Self::set_order`]) alongside the
    /// RNG, or the resumed epoch would shuffle the identity order instead.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Replace the epoch permutation with one captured by [`Self::order`]
    /// (resume side). Rejects anything that is not a permutation of
    /// `0..len()`.
    pub fn set_order(&mut self, order: Vec<u32>) -> Result<(), String> {
        if order.len() != self.triples.len() {
            return Err(format!(
                "batch order length {} does not match {} training triples",
                order.len(),
                self.triples.len()
            ));
        }
        let mut seen = vec![false; order.len()];
        for &i in &order {
            match seen.get_mut(i as usize) {
                Some(slot) if !*slot => *slot = true,
                _ => return Err(format!("batch order is not a permutation (index {i})")),
            }
        }
        self.order = order;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;

    fn triples(n: u32) -> Vec<Triple> {
        (0..n).map(|i| Triple::new(i, 0, i + 1)).collect()
    }

    fn epoch_of(b: &mut Batcher, rng: &mut rand::rngs::StdRng) -> Vec<Vec<Triple>> {
        b.shuffle(rng);
        (0..b.batches_per_epoch())
            .map(|batch| b.batch_range(batch).map(|i| b.get(i)).collect())
            .collect()
    }

    #[test]
    fn batches_cover_every_triple_exactly_once() {
        let mut b = Batcher::new(triples(10), 3);
        let mut rng = seeded_rng(1);
        let mut seen: Vec<Triple> = Vec::new();
        let mut batch_count = 0;
        for batch in epoch_of(&mut b, &mut rng) {
            assert!(batch.len() <= 3);
            seen.extend_from_slice(&batch);
            batch_count += 1;
        }
        assert_eq!(batch_count, 4);
        assert_eq!(seen.len(), 10);
        let mut sorted = seen.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn epochs_reshuffle() {
        let mut b = Batcher::new(triples(50), 50);
        let mut rng = seeded_rng(2);
        let first: Vec<Triple> = epoch_of(&mut b, &mut rng).concat();
        let second: Vec<Triple> = epoch_of(&mut b, &mut rng).concat();
        assert_ne!(first, second, "two epochs should see different orders");
    }

    #[test]
    fn shared_storage_is_not_copied() {
        let shared: Arc<[Triple]> = triples(20).into();
        let a = Batcher::new(shared.clone(), 4);
        let b = Batcher::new(shared.clone(), 8);
        assert_eq!(a.len(), b.len());
        assert_eq!(Arc::strong_count(&shared), 3, "both batchers share it");
    }

    #[test]
    fn batch_ranges_are_clamped_and_contiguous() {
        let b = Batcher::new(triples(10), 4);
        assert_eq!(b.batch_range(0), 0..4);
        assert_eq!(b.batch_range(1), 4..8);
        assert_eq!(b.batch_range(2), 8..10, "last batch is short");
        assert!(b.batch_range(3).is_empty(), "out of range is empty");
    }

    #[test]
    fn batches_per_epoch_rounds_up() {
        let b = Batcher::new(triples(10), 4);
        assert_eq!(b.batches_per_epoch(), 3);
        assert_eq!(b.len(), 10);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty training split")]
    fn empty_training_split_is_rejected() {
        let _ = Batcher::new(Vec::<Triple>::new(), 4);
    }
}
