//! Persistent worker pool for the sharded training pipeline.
//!
//! PR 2's parallel trainer spawned one `std::thread::scope` per mini-batch;
//! the spawn/join round-trip cost ~5% of an epoch even on one core (measured
//! in `BENCH_parallel.json`). [`WorkerPool`] removes it: threads are spawned
//! **once** (per [`Trainer`](crate::Trainer) lifetime) and then *parked* on
//! their job channels between batches — a blocked `recv()` costs nothing
//! while the main thread runs the merge/apply stages, and waking a parked
//! thread is an order of magnitude cheaper than creating one.
//!
//! # Round protocol
//!
//! A *round* is one call to [`WorkerPool::run_round`] (one mini-batch in the
//! trainer): the caller dispatches at most one job per worker, then blocks
//! until every dispatched job has reported completion.
//!
//! ```text
//! main thread                 worker i
//! ───────────                 ────────
//! send(job_i)  ─────────────▶ recv() wakes, runs job_i
//!     ⋮                       send(done_i) ───┐
//! recv() × dispatched  ◀─────────────────────┘
//! (merge / optimizer step — workers parked in recv())
//! ```
//!
//! The channels give the necessary happens-before edges: everything the main
//! thread wrote before `send(job_i)` is visible to worker `i`, and everything
//! worker `i` wrote is visible to the main thread after it receives the
//! completion message. Because the main thread never touches the dispatched
//! borrows between send and the final recv, each round is race-free — the
//! same discipline `std::thread::scope` enforces statically, held here by
//! `run_round`'s *drain-before-return* guarantee instead (which is also what
//! makes the internal lifetime erasure of the job closures sound; see the
//! `SAFETY` notes in the source).
//!
//! # Panic safety and shutdown
//!
//! Worker threads never die between rounds: a panicking job is caught on the
//! worker, carried back in its completion message, and re-thrown on the main
//! thread **after** the round has fully drained — so one shard's panic can
//! neither leak borrowed data nor poison the pool. If a completion message
//! can ever *not* be delivered (a worker vanished mid-round), the process
//! aborts rather than risk a use-after-free of round-borrowed data; no safe
//! code path reaches this. Dropping the pool closes the job channels; each
//! worker's `recv()` then errors, the worker exits its loop, and `Drop`
//! joins every thread — shutdown is deterministic and leak-free.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A lifetime-erased job. Only constructed inside [`WorkerPool::run_round`],
/// which guarantees the erased borrows outlive the job's execution.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Completion message of one job: the panic payload if it unwound.
type RoundDone = Option<Box<dyn Any + Send + 'static>>;

struct Worker {
    /// Job channel; `None` only during shutdown.
    tx: Option<Sender<Job>>,
    handle: Option<JoinHandle<()>>,
}

/// A fixed-size pool of persistent, channel-parked worker threads driven in
/// synchronous rounds. See the module docs for the protocol.
pub struct WorkerPool {
    workers: Vec<Worker>,
    done_rx: Receiver<RoundDone>,
}

impl WorkerPool {
    /// Spawn `workers` threads, immediately parked waiting for their first
    /// round.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a pool needs at least one worker");
        let (done_tx, done_rx) = channel::<RoundDone>();
        let workers = (0..workers)
            .map(|i| {
                let (tx, rx) = channel::<Job>();
                let done = done_tx.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("nsc-shard-{i}"))
                    .spawn(move || worker_loop(rx, done))
                    .expect("spawning a pool worker thread");
                Worker {
                    tx: Some(tx),
                    handle: Some(handle),
                }
            })
            .collect();
        Self { workers, done_rx }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Run one round: dispatch each `(worker index, job)` pair to its worker
    /// and block until every dispatched job has completed.
    ///
    /// Panics from jobs are re-thrown here (after the round has drained, so
    /// the pool stays usable). Dispatching two jobs to the same worker in one
    /// round is allowed — they run sequentially in dispatch order — but the
    /// trainer maps shard `i` to worker `i` so rounds are one-to-one.
    pub fn run_round<'env>(
        &mut self,
        jobs: impl IntoIterator<Item = (usize, Box<dyn FnOnce() + Send + 'env>)>,
    ) {
        self.overlap_round(jobs, || {});
    }

    /// Run one *overlapped* round: dispatch each `(worker index, job)` pair,
    /// execute `main_work` on the calling thread **while the workers run**,
    /// then block until every dispatched job has completed.
    ///
    /// This is the double-buffered trainer's primitive: the caller overlaps
    /// the previous batch's merge/apply (`main_work`) with the next batch's
    /// sample/score (the jobs). The drain-before-return guarantee is the
    /// same as [`run_round`](Self::run_round)'s — on the normal path and on
    /// every unwind path, including a panic *inside `main_work`*, one
    /// completion message per dispatched job is consumed before control
    /// leaves this frame, so job-captured borrows can never be outlived.
    ///
    /// # Caller contract
    ///
    /// `main_work` runs concurrently with the dispatched jobs, so the caller
    /// must keep the two capture sets disjoint: `main_work` must not touch
    /// any data the jobs borrow (the trainer upholds this by having jobs
    /// read the pre-step shadow snapshot while `main_work` mutates the live
    /// model — see `Trainer::train_epoch_pipelined`). The compiler cannot
    /// check this across the internal lifetime erasure.
    ///
    /// Panics from jobs are re-thrown after the drain; a `main_work` panic
    /// takes precedence (the round still drains first, via the guard's
    /// `Drop`).
    pub fn overlap_round<'env>(
        &mut self,
        jobs: impl IntoIterator<Item = (usize, Box<dyn FnOnce() + Send + 'env>)>,
        main_work: impl FnOnce(),
    ) {
        let mut drain = Drain {
            rx: &self.done_rx,
            pending: 0,
        };
        for (worker, job) in jobs {
            // SAFETY: `drain` guarantees — on both the normal path
            // (`finish`) and the unwind path (`Drop`) — that this function
            // does not return before one completion message per dispatched
            // job has been received, and it aborts the process if that ever
            // becomes impossible. The job therefore cannot run, or be
            // dropped, after the `'env` borrows it captures expire.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            let tx = self.workers[worker]
                .tx
                .as_ref()
                .expect("pool is not shutting down");
            // A send can only fail if the worker thread is gone, which no
            // safe code path can cause (job panics are caught on the
            // worker). Abort rather than unwind: `job` was moved into the
            // channel and may now be dropped at an arbitrary time.
            if tx.send(job).is_err() {
                std::process::abort();
            }
            drain.pending += 1;
        }
        main_work();
        if let Some(payload) = drain.finish() {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels unparks every worker with a recv error…
        for worker in &mut self.workers {
            worker.tx.take();
        }
        // …and each then exits its loop and can be joined.
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Guarantees the drain-before-return half of the round protocol: exactly
/// `pending` completion messages are consumed before control leaves
/// `run_round`, whether it returns normally (`finish`) or unwinds past the
/// guard (`Drop`).
struct Drain<'a> {
    rx: &'a Receiver<RoundDone>,
    pending: usize,
}

impl Drain<'_> {
    /// Consume the guard, draining all pending completions; returns the last
    /// panic payload observed, if any.
    fn finish(mut self) -> RoundDone {
        let mut payload = None;
        while self.pending > 0 {
            self.pending -= 1;
            match self.rx.recv() {
                Ok(done) => payload = done.or(payload),
                // A missing completion message means a worker vanished with
                // round borrows possibly still live; continuing would risk a
                // use-after-free, so don't.
                Err(_) => std::process::abort(),
            }
        }
        payload
    }
}

impl Drop for Drain<'_> {
    fn drop(&mut self) {
        while self.pending > 0 {
            self.pending -= 1;
            if self.rx.recv().is_err() {
                std::process::abort();
            }
        }
    }
}

/// Body of one worker thread: run jobs until the pool drops the channel.
fn worker_loop(rx: Receiver<Job>, done: Sender<RoundDone>) {
    while let Ok(job) = rx.recv() {
        let payload = catch_unwind(AssertUnwindSafe(job)).err();
        if done.send(payload).is_err() {
            // The pool vanished mid-round; nothing left to report to.
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_results_are_visible_through_borrows() {
        let mut pool = WorkerPool::new(4);
        let mut outputs = [0usize; 4];
        {
            let jobs = outputs.iter_mut().enumerate().map(|(i, out)| {
                (
                    i,
                    Box::new(move || *out = i * 10) as Box<dyn FnOnce() + Send + '_>,
                )
            });
            pool.run_round(jobs);
        }
        assert_eq!(outputs, [0, 10, 20, 30]);
    }

    #[test]
    fn pool_is_reusable_across_many_rounds() {
        let mut pool = WorkerPool::new(3);
        let mut counters = [0u64; 3];
        for round in 0..200 {
            let jobs = counters.iter_mut().enumerate().filter_map(|(i, c)| {
                // Leave some workers idle on some rounds, like empty shards.
                if (round + i) % 3 == 0 {
                    return None;
                }
                Some((
                    i,
                    Box::new(move || *c += 1) as Box<dyn FnOnce() + Send + '_>,
                ))
            });
            pool.run_round(jobs);
        }
        // Each round skips exactly one of the three workers.
        assert_eq!(counters.iter().sum::<u64>(), 200 * 2);
        assert_eq!(pool.workers(), 3);
    }

    #[test]
    fn empty_rounds_are_free() {
        let mut pool = WorkerPool::new(2);
        for _ in 0..10 {
            pool.run_round(std::iter::empty::<(usize, Box<dyn FnOnce() + Send>)>());
        }
    }

    #[test]
    fn jobs_actually_run_on_other_threads() {
        let mut pool = WorkerPool::new(2);
        let main_thread = std::thread::current().id();
        let mut seen = [None, None];
        {
            let jobs = seen.iter_mut().enumerate().map(|(i, slot)| {
                (
                    i,
                    Box::new(move || *slot = Some(std::thread::current().id()))
                        as Box<dyn FnOnce() + Send + '_>,
                )
            });
            pool.run_round(jobs);
        }
        let a = seen[0].expect("job 0 ran");
        let b = seen[1].expect("job 1 ran");
        assert_ne!(a, main_thread);
        assert_ne!(b, main_thread);
        assert_ne!(a, b, "distinct workers run distinct jobs");
    }

    #[test]
    fn a_panicking_job_propagates_without_poisoning_the_pool() {
        let mut pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        let round = |pool: &mut WorkerPool, explode: bool| {
            let jobs = (0..2).map(|i| {
                let hits = &hits;
                (
                    i,
                    Box::new(move || {
                        hits.fetch_add(1, Ordering::SeqCst);
                        if explode && i == 1 {
                            panic!("shard exploded");
                        }
                    }) as Box<dyn FnOnce() + Send + '_>,
                )
            });
            pool.run_round(jobs);
        };
        let err = catch_unwind(AssertUnwindSafe(|| round(&mut pool, true)))
            .expect_err("the job panic must surface");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "shard exploded");
        // Both jobs of the failed round ran to their end or panic point…
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        // …and the pool still works.
        round(&mut pool, false);
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(8);
        drop(pool); // must not hang or leak; Drop joins every thread
    }

    #[test]
    fn overlap_round_runs_main_work_and_jobs_to_completion() {
        let mut pool = WorkerPool::new(2);
        let mut outputs = [0usize; 2];
        let mut merged = 0usize;
        {
            let jobs = outputs.iter_mut().enumerate().map(|(i, out)| {
                (
                    i,
                    Box::new(move || *out = i + 1) as Box<dyn FnOnce() + Send + '_>,
                )
            });
            pool.overlap_round(jobs, || merged = 42);
        }
        assert_eq!(outputs, [1, 2], "all dispatched jobs completed");
        assert_eq!(merged, 42, "main work ran on the calling thread");
    }

    #[test]
    fn overlap_round_main_work_panic_drains_before_unwinding() {
        let mut pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        let err = catch_unwind(AssertUnwindSafe(|| {
            let jobs = (0..2).map(|i| {
                let hits = &hits;
                (
                    i,
                    Box::new(move || {
                        hits.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>,
                )
            });
            pool.overlap_round(jobs, || panic!("merge exploded"));
        }))
        .expect_err("the main-work panic must surface");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "merge exploded");
        // The round drained before unwinding, and the pool still works.
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        pool.run_round((0..2).map(|i| {
            let hits = &hits;
            (
                i,
                Box::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>,
            )
        }));
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }
}
