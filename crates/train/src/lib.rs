//! Training loop, pretraining protocol and instrumentation.
//!
//! [`Trainer`] wires together a dataset (`nscaching-kg` / `nscaching-datagen`),
//! a scoring function (`nscaching-models`), an optimizer (`nscaching-optim`)
//! and a negative sampler (`nscaching`) into the stochastic training procedure
//! of the paper's Algorithms 1 and 2, and records everything the evaluation
//! section needs:
//!
//! * per-epoch loss, non-zero-loss ratio (NZL), gradient norms (Figure 10),
//!   negative-sample repeat ratio (RR, Figure 7) and cache churn (CE,
//!   Figure 8);
//! * periodic filtered link-prediction snapshots with wall-clock timestamps
//!   (Figures 2–5);
//! * the pretrain-then-continue protocol used for the "+ pretrain" rows of
//!   Table IV.

pub mod batcher;
pub mod config;
pub mod instrument;
pub mod pretrain;
pub mod snapshots;
pub mod trainer;

pub use batcher::Batcher;
pub use config::TrainConfig;
pub use instrument::{EpochStats, RepeatTracker};
pub use pretrain::pretrain_model;
pub use snapshots::{Snapshot, TrainingHistory};
pub use trainer::Trainer;
