//! Training loop, pretraining protocol and instrumentation.
//!
//! [`Trainer`] wires together a dataset (`nscaching-kg` / `nscaching-datagen`),
//! a scoring function (`nscaching-models`), an optimizer (`nscaching-optim`)
//! and a negative sampler (`nscaching`) into the stochastic training procedure
//! of the paper's Algorithms 1 and 2, and records everything the evaluation
//! section needs:
//!
//! * per-epoch loss, non-zero-loss ratio (NZL), gradient norms (Figure 10),
//!   negative-sample repeat ratio (RR, Figure 7) and cache churn (CE,
//!   Figure 8);
//! * periodic filtered link-prediction snapshots with wall-clock timestamps
//!   (Figures 2–5);
//! * the pretrain-then-continue protocol used for the "+ pretrain" rows of
//!   Table IV.
//!
//! # Concurrency model
//!
//! With [`TrainConfig::shards`] > 1, [`Trainer::train_epoch`] runs each
//! mini-batch as a staged pipeline — **shard → parallel sample/score/grad →
//! merge → apply** — built on three invariants:
//!
//! 1. **Shard ownership.** The batch is partitioned by the positive's
//!    `(h, r)` cache key (the sampler's `shard_of` — a load-balanced
//!    [`nscaching::ShardPartition`] over observed key frequencies for
//!    NSCaching, the uniform [`nscaching::shard_of_key`] hash otherwise);
//!    each of the `S` shards owns a disjoint slice of the sampler's keyed
//!    state (NSCaching's `H`/`T` caches, the GAN samplers' REINFORCE
//!    accumulators) plus its own scratch buffers, so the pool workers share
//!    nothing mutable and need no locks. The embedding model is shared
//!    read-only through the thread-safe batched scoring API (`&self` +
//!    thread-local scratch; the TransR/TransD projection panels live in the
//!    process-wide shared registry of `nscaching_models::projcache`, whose
//!    lock-free claim/publish protocol lets one worker's warm panel serve
//!    every other worker, with bit-identical inline fallback).
//! 2. **RNG streams.** The master stream (seeded from
//!    [`TrainConfig::seed`]) keeps its historical role — epoch shuffling,
//!    and *all* sampling when `shards = 1`. Each worker draws from its own
//!    stream seeded by SplitMix64 from `(seed, epoch, shard)`
//!    ([`nscaching_math::split_seed`] under [`trainer::SHARD_STREAM_TAG`]),
//!    so a fixed `(seed, shards)` pair replays bit-for-bit and no worker
//!    ever consumes another's draws.
//! 3. **Reduction order.** After the round completes, per-shard gradients,
//!    loss records and buffered sampler feedback are folded in **ascending
//!    shard order** ([`nscaching_models::GradientArena::merge`], which walks
//!    each shard's sorted `(table, row)` slot list, then the sampler's
//!    `merge_batch`), and a single optimizer step applies the batch by
//!    walking the merged arena's sorted slots — floating-point summation and
//!    update order come from the slab layout itself, making the parallel
//!    trajectory deterministic.
//!
//! ## Pool lifecycle
//!
//! The shard stage executes on a persistent [`WorkerPool`] owned by the
//! [`Trainer`]:
//!
//! * **Spawn point.** The pool's `S` threads are spawned lazily on the first
//!   pooled epoch and reused for the trainer's lifetime; only a change of
//!   shard count replaces them. (PR 2 spawned a `std::thread::scope` per
//!   mini-batch instead; the pool reclaims that spawn/join cost — see
//!   `BENCH_pool.json` — and is bit-for-bit equivalent, asserted against a
//!   scoped reference in `tests/parallel_equivalence.rs`.)
//! * **Round protocol.** One pool *round* per mini-batch: the main thread
//!   sends shard `i`'s job to worker `i` over its channel (empty shards
//!   dispatch nothing) and then blocks until every dispatched job has sent
//!   its completion message back — the channel pair acts as the per-batch
//!   barrier, giving the same happens-before edges `thread::scope`'s join
//!   provided. Between rounds the workers are parked in `recv()`.
//! * **Shutdown.** Dropping the trainer (or resizing the pool) closes the
//!   job channels; every worker's `recv()` errors, the thread exits, and
//!   the pool's `Drop` joins them all. A panicking shard job is caught on
//!   the worker, re-thrown on the main thread after the round drains, and
//!   leaves the pool reusable. See [`pool`] for the full protocol.
//!
//! ## The double-buffered pipelined engine
//!
//! [`TrainRuntime::Pipelined`] adds a fourth invariant on top of the three
//! above — **overlap without reordering**. Instead of one synchronous round
//! per mini-batch, the pool samples/scores batch `k` against a pre-step
//! *shadow* copy of the model while the main thread merges and applies batch
//! `k − 1` to the live model (delayed-gradient training with staleness 1),
//! using [`WorkerPool::overlap_round`] and two alternating sets of shard
//! output buffers. The ordering contract that keeps this faithful to
//! Algorithm 2 is: each batch's **sampler cache merge** (step 8) lands when
//! its round drains — strictly before that batch's **optimizer step**
//! (step 9), which only runs during the *next* round's overlap. The rows
//! each step touches are then copied live → shadow before the next round
//! dispatches, so the shadow is always exactly one step behind. Full phase
//! ordering on `Trainer::train_epoch_pipelined`; bit-equivalence against a
//! single-threaded staged reference engine is asserted across the model ×
//! sampler matrix in `tests/pipelined_equivalence.rs`.
//!
//! `shards = 1` (the default) is the sequential trainer of the paper: the
//! single shard runs inline on the master stream with per-positive sampler
//! feedback, reproducing the pre-sharding trainer's loss trajectory exactly.
//! `shards > 1` is an equally valid but *different* deterministic trajectory
//! (per-shard cache ownership, batch-end REINFORCE merge), so the paper's
//! tables and figures are always produced at `shards = 1`.
//! [`TrainRuntime`] pins the engine explicitly when needed (e.g. the
//! `pool_overhead` bench forces the pool at one shard). For a fixed
//! pipeline the engine is transparent — the pool replays the retired scoped
//! engine bit-for-bit — but forcing `Pool` at `shards = 1` selects the
//! *parallel* pipeline (shard RNG streams), not the paper-exact sequential
//! one; see [`TrainRuntime`] for the exact contract.

pub mod batcher;
pub mod config;
pub mod data;
pub mod instrument;
pub mod pool;
pub mod pretrain;
pub mod snapshots;
pub mod telemetry;
pub mod trainer;

pub use batcher::Batcher;
pub use config::{TrainConfig, TrainRuntime};
pub use data::TrainData;
pub use instrument::{EpochStats, RepeatTracker};
pub use pool::WorkerPool;
pub use pretrain::pretrain_model;
pub use snapshots::{Snapshot, TrainingHistory};
pub use telemetry::TrainMetrics;
pub use trainer::{Trainer, TrainerState, SHARD_STREAM_TAG};
