//! Property test for the top-k early-termination ranking path: on random
//! models, random queries and random filter contents, the contender-set rank
//! must equal the full-scan rank exactly — raw and filtered, both query
//! directions. The early termination is an *exact* optimisation (it skips
//! only work that provably cannot change a competition rank), so any
//! divergence at all is a bug.

use nscaching_eval::{rank_one_with, EvalProtocol, RankScratch};
use nscaching_kg::{CorruptionSide, FilterIndex, Triple};
use nscaching_models::{build_model, ModelConfig, ModelKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn early_termination_ranks_equal_full_scan_ranks(
        seed in any::<u64>(),
        kind_idx in 0usize..7,
        num_entities in 5usize..60,
        query_heads in prop::collection::vec(0u32..60, 1..12),
        filter_triples in prop::collection::vec((0u32..60, 0u32..3, 0u32..60), 0..80),
    ) {
        let num_relations = 3;
        let model = build_model(
            &ModelConfig::new(ModelKind::ALL[kind_idx])
                .with_dim(4)
                .with_seed(seed),
            num_entities,
            num_relations,
        );
        // Random known-triple set (clamped into vocabulary range) — the
        // filtered protocol's false negatives.
        let filter = FilterIndex::from_triples(filter_triples.iter().map(|&(h, r, t)| {
            Triple::new(h % num_entities as u32, r, t % num_entities as u32)
        }));

        let mut scratch = RankScratch::default();
        for &h in &query_heads {
            let triple = Triple::new(
                h % num_entities as u32,
                h % num_relations as u32,
                (h / 7) % num_entities as u32,
            );
            for side in [CorruptionSide::Head, CorruptionSide::Tail] {
                for filtered in [false, true] {
                    let base = if filtered {
                        EvalProtocol::filtered()
                    } else {
                        EvalProtocol::raw()
                    };
                    let fast = rank_one_with(
                        model.as_ref(),
                        &triple,
                        side,
                        &filter,
                        &base,
                        &mut scratch,
                    );
                    let full = rank_one_with(
                        model.as_ref(),
                        &triple,
                        side,
                        &filter,
                        &base.with_early_termination(false),
                        &mut scratch,
                    );
                    prop_assert!(
                        fast == full,
                        "{} {:?} filtered={} on {:?}: early termination changed the rank ({} != {})",
                        ModelKind::ALL[kind_idx].name(),
                        side,
                        filtered,
                        triple,
                        fast,
                        full
                    );
                    // A competition rank over E entities lives in [1, |E|].
                    prop_assert!(fast >= 1.0 && fast <= num_entities as f64);
                }
            }
        }
    }
}
