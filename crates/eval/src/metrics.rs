//! Ranking metrics: MRR, MR and Hits@k.

use serde::{Deserialize, Serialize};

/// Accumulates ranks (1-based, possibly fractional for ties) and summarises
/// them into the metrics used by the paper.
#[derive(Debug, Clone, Default)]
pub struct RankAccumulator {
    ranks: Vec<f64>,
}

impl RankAccumulator {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one rank (must be ≥ 1).
    pub fn push(&mut self, rank: f64) {
        debug_assert!(rank >= 1.0, "ranks are 1-based");
        self.ranks.push(rank);
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: RankAccumulator) {
        self.ranks.extend(other.ranks);
    }

    /// Number of recorded ranks.
    pub fn count(&self) -> usize {
        self.ranks.len()
    }

    /// Mean reciprocal rank.
    pub fn mrr(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().map(|r| 1.0 / r).sum::<f64>() / self.ranks.len() as f64
    }

    /// Mean rank.
    pub fn mean_rank(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().sum::<f64>() / self.ranks.len() as f64
    }

    /// Fraction of ranks ≤ k (the paper reports Hit@10 as a percentage; this
    /// returns the fraction in `[0, 1]`).
    pub fn hits_at(&self, k: usize) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().filter(|r| **r <= k as f64 + 1e-9).count() as f64
            / self.ranks.len() as f64
    }

    /// Summarise into a [`RankingMetrics`] value.
    pub fn summarise(&self) -> RankingMetrics {
        RankingMetrics {
            mrr: self.mrr(),
            mean_rank: self.mean_rank(),
            hits_at_1: self.hits_at(1),
            hits_at_3: self.hits_at(3),
            hits_at_10: self.hits_at(10),
            count: self.count(),
        }
    }
}

/// The summary statistics reported in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankingMetrics {
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Mean rank (lower is better; the paper notes it is noisy).
    pub mean_rank: f64,
    /// Hits@1 fraction.
    pub hits_at_1: f64,
    /// Hits@3 fraction.
    pub hits_at_3: f64,
    /// Hits@10 fraction.
    pub hits_at_10: f64,
    /// Number of ranking queries aggregated.
    pub count: usize,
}

impl RankingMetrics {
    /// Render as a TSV row `mrr\tmr\thit@10` matching the paper's column
    /// order (Hit@10 as a percentage).
    pub fn tsv_row(&self) -> String {
        format!(
            "{:.4}\t{:.1}\t{:.2}",
            self.mrr,
            self.mean_rank,
            self.hits_at_10 * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_on_known_ranks() {
        let mut acc = RankAccumulator::new();
        for r in [1.0, 2.0, 4.0, 10.0] {
            acc.push(r);
        }
        assert_eq!(acc.count(), 4);
        let expected_mrr = (1.0 + 0.5 + 0.25 + 0.1) / 4.0;
        assert!((acc.mrr() - expected_mrr).abs() < 1e-12);
        assert!((acc.mean_rank() - 4.25).abs() < 1e-12);
        assert!((acc.hits_at(1) - 0.25).abs() < 1e-12);
        assert!((acc.hits_at(3) - 0.5).abs() < 1e-12);
        assert!((acc.hits_at(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulator_reports_zeros() {
        let acc = RankAccumulator::new();
        assert_eq!(acc.mrr(), 0.0);
        assert_eq!(acc.mean_rank(), 0.0);
        assert_eq!(acc.hits_at(10), 0.0);
        assert_eq!(acc.summarise().count, 0);
    }

    #[test]
    fn merge_concatenates_ranks() {
        let mut a = RankAccumulator::new();
        a.push(1.0);
        let mut b = RankAccumulator::new();
        b.push(3.0);
        b.push(5.0);
        a.merge(b);
        assert_eq!(a.count(), 3);
        assert!((a.mean_rank() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_and_tsv_row() {
        let mut acc = RankAccumulator::new();
        acc.push(1.0);
        acc.push(2.0);
        let m = acc.summarise();
        assert_eq!(m.count, 2);
        assert!((m.mrr - 0.75).abs() < 1e-12);
        let row = m.tsv_row();
        assert!(row.starts_with("0.7500\t1.5\t100.00"));
    }

    #[test]
    fn fractional_tie_ranks_are_supported() {
        let mut acc = RankAccumulator::new();
        acc.push(1.5);
        assert!((acc.hits_at(1) - 0.0).abs() < 1e-12);
        assert!((acc.hits_at(2) - 1.0).abs() < 1e-12);
    }
}
