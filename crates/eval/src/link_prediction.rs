//! Filtered / raw link prediction.

use crate::metrics::{RankAccumulator, RankingMetrics};
use crate::protocol::EvalProtocol;
use nscaching_kg::{CorruptionSide, FilterIndex, Triple};
use nscaching_math::rank_contenders_into;
use nscaching_models::KgeModel;

/// Reusable buffers for the ranking hot loop: the full score vector and the
/// contender index list of the top-k early-termination path. Keep one per
/// worker thread and reuse it across queries to avoid per-query allocations.
#[derive(Debug, Default)]
pub struct RankScratch {
    scores: Vec<f64>,
    contenders: Vec<usize>,
}

/// Per-side and combined link-prediction metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkPredictionReport {
    /// Metrics over head-replacement queries.
    pub head: RankingMetrics,
    /// Metrics over tail-replacement queries.
    pub tail: RankingMetrics,
    /// Metrics over both query directions (what the paper's tables report).
    pub combined: RankingMetrics,
}

/// Rank the correct entity of every test triple against all corruptions.
///
/// For each triple `(h, r, t)` two queries are scored: `(?, r, t)` and
/// `(h, r, ?)`. In the filtered setting, any candidate entity that forms a
/// known triple (other than the test triple itself) is skipped. Ranks use
/// "competition" counting with half-credit ties so results are deterministic
/// and unbiased for models that produce tied scores.
pub fn evaluate_link_prediction(
    model: &dyn KgeModel,
    test: &[Triple],
    filter: &FilterIndex,
    protocol: &EvalProtocol,
) -> LinkPredictionReport {
    let limit = protocol.max_triples.unwrap_or(test.len()).min(test.len());
    let triples = &test[..limit];
    let threads = protocol.threads.max(1).min(triples.len().max(1));

    let chunk_size = triples.len().div_ceil(threads).max(1);
    let mut partials: Vec<(RankAccumulator, RankAccumulator)> = Vec::new();
    if triples.is_empty() {
        partials.push((RankAccumulator::new(), RankAccumulator::new()));
    } else {
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in triples.chunks(chunk_size) {
                handles.push(scope.spawn(move || rank_chunk(model, chunk, filter, protocol)));
            }
            for handle in handles {
                partials.push(handle.join().expect("ranking worker panicked"));
            }
        });
    }

    let mut head = RankAccumulator::new();
    let mut tail = RankAccumulator::new();
    for (h, t) in partials {
        head.merge(h);
        tail.merge(t);
    }
    let mut combined = RankAccumulator::new();
    combined.merge(head.clone());
    combined.merge(tail.clone());
    LinkPredictionReport {
        head: head.summarise(),
        tail: tail.summarise(),
        combined: combined.summarise(),
    }
}

fn rank_chunk(
    model: &dyn KgeModel,
    triples: &[Triple],
    filter: &FilterIndex,
    protocol: &EvalProtocol,
) -> (RankAccumulator, RankAccumulator) {
    let mut head_acc = RankAccumulator::new();
    let mut tail_acc = RankAccumulator::new();
    // One scratch (score + contender buffers) per worker, reused across
    // every query in the chunk.
    let mut scratch = RankScratch::default();
    for triple in triples {
        head_acc.push(rank_one_with(
            model,
            triple,
            CorruptionSide::Head,
            filter,
            protocol,
            &mut scratch,
        ));
        tail_acc.push(rank_one_with(
            model,
            triple,
            CorruptionSide::Tail,
            filter,
            protocol,
            &mut scratch,
        ));
    }
    (head_acc, tail_acc)
}

/// Rank of the true entity for one query direction.
///
/// Allocating convenience wrapper around [`rank_one_with`].
pub fn rank_one(
    model: &dyn KgeModel,
    triple: &Triple,
    side: CorruptionSide,
    filter: &FilterIndex,
    protocol: &EvalProtocol,
) -> f64 {
    let mut scratch = RankScratch::default();
    rank_one_with(model, triple, side, filter, protocol, &mut scratch)
}

/// Rank of the true entity for one query direction, scoring all candidates
/// through the batched `score_all_into` fast path into caller-provided
/// scratch buffers (cleared and refilled; reuse them across calls to avoid
/// per-query allocations).
///
/// With [`EvalProtocol::early_termination`] (the default), the rank is
/// resolved from the *contender set* — candidates scoring at or above the
/// true entity, collected in one pass by
/// [`nscaching_math::rank_contenders_into`]. Candidates below the true score
/// can never change a competition rank, so the filtered protocol's
/// false-negative hash probe runs only on the contenders (for a trained model
/// a handful of entities) instead of all `|E|` candidates; the scan over the
/// rest of the entity set terminates at a single float compare. The result is
/// exactly the full-scan rank — property-tested in
/// `tests/topk_equivalence.rs`.
pub fn rank_one_with(
    model: &dyn KgeModel,
    triple: &Triple,
    side: CorruptionSide,
    filter: &FilterIndex,
    protocol: &EvalProtocol,
    scratch: &mut RankScratch,
) -> f64 {
    let true_entity = triple.entity_at(side);
    model.score_all_into(triple, side, &mut scratch.scores);
    let true_score = scratch.scores[true_entity as usize];

    if protocol.early_termination {
        let scan = rank_contenders_into(
            &scratch.scores,
            true_score,
            true_entity as usize,
            &mut scratch.contenders,
        );
        let (mut greater, mut ties) = (scan.greater, scan.ties);
        if protocol.filtered {
            for &entity in &scratch.contenders {
                if filter.is_false_negative(triple, side, entity as u32) {
                    if scratch.scores[entity] > true_score {
                        greater -= 1;
                    } else {
                        ties -= 1;
                    }
                }
            }
        }
        return 1.0 + greater as f64 + ties as f64 / 2.0;
    }

    // Reference full scan: one filter probe per candidate.
    let mut greater = 0usize;
    let mut ties = 0usize;
    for (entity, &score) in scratch.scores.iter().enumerate() {
        let entity = entity as u32;
        if entity == true_entity {
            continue;
        }
        if protocol.filtered && filter.is_false_negative(triple, side, entity) {
            continue;
        }
        if score > true_score {
            greater += 1;
        } else if score == true_score {
            ties += 1;
        }
    }
    1.0 + greater as f64 + ties as f64 / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_kg::{Dataset, Vocab};
    use nscaching_models::{build_model, EmbeddingTable, GradientSink, ModelKind, TableId};

    /// A deterministic toy model whose score is `-(|h - candidate| )` style:
    /// it ranks entities by their numeric distance to a target id, which makes
    /// expected ranks easy to compute by hand.
    struct ToyModel {
        num_entities: usize,
        tables: Vec<EmbeddingTable>,
    }

    impl ToyModel {
        fn new(num_entities: usize) -> Self {
            Self {
                num_entities,
                tables: vec![EmbeddingTable::zeros("entity", num_entities, 1)],
            }
        }
    }

    impl KgeModel for ToyModel {
        fn kind(&self) -> ModelKind {
            ModelKind::TransE
        }
        fn num_entities(&self) -> usize {
            self.num_entities
        }
        fn num_relations(&self) -> usize {
            1
        }
        fn dim(&self) -> usize {
            1
        }
        fn score(&self, t: &Triple) -> f64 {
            // prefers tail == head + 1 and head == tail - 1
            let target_tail = t.head as f64 + 1.0;
            let target_head = t.tail as f64 - 1.0;
            -((t.tail as f64 - target_tail).abs() + (t.head as f64 - target_head).abs())
        }
        fn accumulate_score_gradient(&self, _t: &Triple, _c: f64, _g: &mut dyn GradientSink) {}
        fn tables(&self) -> Vec<&EmbeddingTable> {
            self.tables.iter().collect()
        }
        fn tables_mut(&mut self) -> Vec<&mut EmbeddingTable> {
            self.tables.iter_mut().collect()
        }
        fn parameter_rows(&self, _t: &Triple) -> Vec<(TableId, usize)> {
            vec![]
        }
        fn apply_constraints(&mut self, _touched: &[(TableId, usize)]) {}
        fn clone_box(&self) -> Box<dyn KgeModel> {
            Box::new(ToyModel::new(self.num_entities))
        }
    }

    fn filter_of(triples: &[Triple]) -> FilterIndex {
        FilterIndex::from_triples(triples.iter().copied())
    }

    #[test]
    fn perfect_model_gets_rank_one() {
        let model = ToyModel::new(10);
        // (3, 0, 4) is exactly what the toy model prefers
        let test = vec![Triple::new(3, 0, 4)];
        let filter = filter_of(&test);
        let report = evaluate_link_prediction(&model, &test, &filter, &EvalProtocol::filtered());
        assert_eq!(report.combined.count, 2);
        assert!((report.tail.mrr - 1.0).abs() < 1e-12);
        assert!((report.head.mrr - 1.0).abs() < 1e-12);
        assert!((report.combined.hits_at_10 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn filtered_setting_removes_known_competitors() {
        let model = ToyModel::new(10);
        // Tail query for (3, 0, 6): the toy model scores tail candidate x as
        // −2·|x − 4|, so the true tail 6 (score −4) is beaten by tails 3, 4, 5
        // and ties with tail 2 → raw rank 1 + 3 + 0.5 = 4.5. Filtering the
        // known triples (3,0,4) and (3,0,5) removes two competitors → 2.5.
        let test = vec![Triple::new(3, 0, 6)];
        let train = vec![Triple::new(3, 0, 4), Triple::new(3, 0, 5)];
        let mut all = test.clone();
        all.extend(&train);
        let filter = filter_of(&all);

        let raw = evaluate_link_prediction(&model, &test, &filter, &EvalProtocol::raw());
        let filtered = evaluate_link_prediction(&model, &test, &filter, &EvalProtocol::filtered());
        assert!(filtered.tail.mean_rank < raw.tail.mean_rank);
        assert!((filtered.tail.mean_rank - 2.5).abs() < 1e-12);
        assert!((raw.tail.mean_rank - 4.5).abs() < 1e-12);
    }

    #[test]
    fn max_triples_limits_the_workload() {
        let model = ToyModel::new(10);
        let test: Vec<Triple> = (0..8).map(|i| Triple::new(i, 0, (i + 1) % 10)).collect();
        let filter = filter_of(&test);
        let report = evaluate_link_prediction(
            &model,
            &test,
            &filter,
            &EvalProtocol::filtered().with_max_triples(3),
        );
        assert_eq!(report.combined.count, 6);
    }

    #[test]
    fn multi_threaded_matches_single_threaded() {
        let model = ToyModel::new(30);
        let test: Vec<Triple> = (0..20).map(|i| Triple::new(i, 0, (i + 3) % 30)).collect();
        let filter = filter_of(&test);
        let single = evaluate_link_prediction(
            &model,
            &test,
            &filter,
            &EvalProtocol::filtered().with_threads(1),
        );
        let multi = evaluate_link_prediction(
            &model,
            &test,
            &filter,
            &EvalProtocol::filtered().with_threads(4),
        );
        assert_eq!(single.combined.count, multi.combined.count);
        assert!((single.combined.mrr - multi.combined.mrr).abs() < 1e-12);
        assert!((single.combined.mean_rank - multi.combined.mean_rank).abs() < 1e-12);
    }

    #[test]
    fn early_termination_matches_the_full_scan_on_the_toy_model() {
        let model = ToyModel::new(12);
        let test: Vec<Triple> = (0..8).map(|i| Triple::new(i, 0, (i + 2) % 12)).collect();
        let train: Vec<Triple> = (0..12u32)
            .map(|i| Triple::new(i, 0, (i + 1) % 12))
            .collect();
        let mut all = test.clone();
        all.extend(&train);
        let filter = filter_of(&all);
        for filtered in [false, true] {
            let base = if filtered {
                EvalProtocol::filtered()
            } else {
                EvalProtocol::raw()
            };
            let fast = evaluate_link_prediction(&model, &test, &filter, &base);
            let full = evaluate_link_prediction(
                &model,
                &test,
                &filter,
                &base.with_early_termination(false),
            );
            assert_eq!(
                fast.combined.mean_rank, full.combined.mean_rank,
                "filtered={filtered}: ranks must be identical"
            );
            assert_eq!(fast.combined.mrr, full.combined.mrr);
        }
    }

    #[test]
    fn empty_test_set_reports_zero_counts() {
        let model = ToyModel::new(5);
        let filter = FilterIndex::default();
        let report = evaluate_link_prediction(&model, &[], &filter, &EvalProtocol::filtered());
        assert_eq!(report.combined.count, 0);
    }

    #[test]
    fn works_with_a_real_trained_model_shape() {
        // Not a learning test — just exercises the real KgeModel implementations
        // through the ranking path on a tiny dataset.
        let entities = Vocab::synthetic("e", 12);
        let relations = Vocab::synthetic("r", 2);
        let train: Vec<Triple> = (0..10u32)
            .map(|i| Triple::new(i, i % 2, (i + 1) % 12))
            .collect();
        let ds = Dataset::new(
            "tiny",
            entities,
            relations,
            train,
            vec![],
            vec![Triple::new(0, 0, 5)],
        )
        .unwrap();
        let model = build_model(
            &nscaching_models::ModelConfig::new(ModelKind::ComplEx).with_dim(4),
            ds.num_entities(),
            ds.num_relations(),
        );
        let report = evaluate_link_prediction(
            model.as_ref(),
            &ds.test,
            &ds.filter_index(),
            &EvalProtocol::filtered(),
        );
        assert_eq!(report.combined.count, 2);
        assert!(report.combined.mean_rank >= 1.0);
        assert!(report.combined.mean_rank <= 12.0);
    }
}
