//! Evaluation protocols for knowledge-graph embedding.
//!
//! Implements the two tasks the paper reports:
//!
//! * **Link prediction** (Tables IV, Figures 2–5): for every test triple the
//!   head and the tail are each ranked against all entities; MRR, MR and
//!   Hits@k are computed in the *filtered* setting (corruptions that are
//!   known true triples are removed from the candidate list) or the raw
//!   setting. Ranking is parallelised over test triples with scoped threads.
//! * **Triplet classification** (Table V): per-relation score thresholds are
//!   tuned on a labeled validation set and accuracy is reported on the test
//!   set.
//!
//! The [`ccdf`] module reproduces the negative-score-distance distributions
//! of Figure 1.

pub mod ccdf;
pub mod classification;
pub mod link_prediction;
pub mod metrics;
pub mod protocol;

pub use ccdf::{negative_distance_ccdf, negative_distance_samples};
pub use classification::{evaluate_classification, ClassificationReport};
pub use link_prediction::{
    evaluate_link_prediction, rank_one, rank_one_with, LinkPredictionReport, RankScratch,
};
pub use metrics::{RankAccumulator, RankingMetrics};
pub use protocol::EvalProtocol;
