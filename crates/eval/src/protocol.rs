//! Evaluation protocol configuration.

use serde::{Deserialize, Serialize};

/// Settings of a link-prediction evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalProtocol {
    /// Filtered setting: corrupted triples that exist anywhere in the dataset
    /// are removed from the candidate list (the paper reports only this).
    pub filtered: bool,
    /// Number of worker threads for the ranking loop.
    pub threads: usize,
    /// Evaluate at most this many test triples (None = all); used for the
    /// periodic convergence snapshots of Figures 2–5 where evaluating the
    /// full test set every few epochs would dominate the run time.
    pub max_triples: Option<usize>,
    /// Top-k early termination: resolve each query's rank from the contender
    /// set (candidates scoring at or above the true entity) so the filtered
    /// protocol probes the false-negative index only for contenders instead
    /// of all `|E|` candidates. Produces *exactly* the same ranks as the full
    /// scan (property-tested); disable only to benchmark against the full
    /// path.
    pub early_termination: bool,
}

impl EvalProtocol {
    /// The paper's protocol: filtered ranking over the full test set.
    pub fn filtered() -> Self {
        Self {
            filtered: true,
            threads: default_threads(),
            max_triples: None,
            early_termination: true,
        }
    }

    /// Raw (unfiltered) ranking, kept for completeness.
    pub fn raw() -> Self {
        Self {
            filtered: false,
            threads: default_threads(),
            max_triples: None,
            early_termination: true,
        }
    }

    /// Limit the number of evaluated triples.
    pub fn with_max_triples(mut self, max: usize) -> Self {
        self.max_triples = Some(max);
        self
    }

    /// Set the number of worker threads (clamped to ≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enable or disable the top-k early-termination ranking path.
    pub fn with_early_termination(mut self, enabled: bool) -> Self {
        self.early_termination = enabled;
        self
    }
}

impl Default for EvalProtocol {
    fn default() -> Self {
        Self::filtered()
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filtered_is_the_default() {
        let p = EvalProtocol::default();
        assert!(p.filtered);
        assert!(p.threads >= 1);
        assert!(p.max_triples.is_none());
    }

    #[test]
    fn raw_and_builders() {
        let p = EvalProtocol::raw().with_max_triples(100).with_threads(0);
        assert!(!p.filtered);
        assert_eq!(p.max_triples, Some(100));
        assert_eq!(p.threads, 1, "threads clamp to at least one");
        assert!(p.early_termination, "the fast exact path is the default");
        assert!(!p.with_early_termination(false).early_termination);
    }
}
