//! Triplet classification (Table V of the paper).
//!
//! For each relation `r` a threshold `σ_r` is chosen to maximise accuracy on
//! the labeled validation set; a triple is predicted positive iff its score
//! is at least the threshold of its relation. Relations absent from the
//! validation set fall back to a global threshold.

use nscaching_models::KgeModel;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A labeled triple as produced by `nscaching_datagen::classification`.
pub use nscaching_kg::Triple;

/// Outcome of a triplet-classification evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassificationReport {
    /// Accuracy on the labeled test set, in `[0, 1]`.
    pub test_accuracy: f64,
    /// Accuracy on the labeled validation set under the tuned thresholds.
    pub valid_accuracy: f64,
    /// The tuned per-relation thresholds.
    pub thresholds: HashMap<u32, f64>,
    /// The global fallback threshold.
    pub global_threshold: f64,
    /// Number of test examples.
    pub test_count: usize,
}

/// A `(triple, label)` pair; mirrors `nscaching_datagen::LabeledTriple` but is
/// defined structurally so the eval crate does not depend on the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Example {
    /// The triple to classify.
    pub triple: Triple,
    /// Ground-truth label.
    pub label: bool,
}

impl Example {
    /// Construct an example.
    pub fn new(triple: Triple, label: bool) -> Self {
        Self { triple, label }
    }
}

/// Tune thresholds on `valid` and report accuracy on `test`.
pub fn evaluate_classification(
    model: &dyn KgeModel,
    valid: &[Example],
    test: &[Example],
) -> ClassificationReport {
    // Scores grouped by relation for threshold search.
    let mut by_relation: HashMap<u32, Vec<(f64, bool)>> = HashMap::new();
    let mut all: Vec<(f64, bool)> = Vec::with_capacity(valid.len());
    for ex in valid {
        let score = model.score(&ex.triple);
        by_relation
            .entry(ex.triple.relation)
            .or_default()
            .push((score, ex.label));
        all.push((score, ex.label));
    }

    let global_threshold = best_threshold(&all).unwrap_or(0.0);
    let thresholds: HashMap<u32, f64> = by_relation
        .iter()
        .map(|(r, examples)| (*r, best_threshold(examples).unwrap_or(global_threshold)))
        .collect();

    let classify = |triple: &Triple| -> bool {
        let threshold = thresholds
            .get(&triple.relation)
            .copied()
            .unwrap_or(global_threshold);
        model.score(triple) >= threshold
    };

    let valid_accuracy = accuracy(valid, &classify);
    let test_accuracy = accuracy(test, &classify);
    ClassificationReport {
        test_accuracy,
        valid_accuracy,
        thresholds,
        global_threshold,
        test_count: test.len(),
    }
}

fn accuracy(examples: &[Example], classify: &impl Fn(&Triple) -> bool) -> f64 {
    if examples.is_empty() {
        return 0.0;
    }
    examples
        .iter()
        .filter(|ex| classify(&ex.triple) == ex.label)
        .count() as f64
        / examples.len() as f64
}

/// The threshold maximising accuracy over `(score, label)` pairs. Candidate
/// thresholds are the scores themselves plus one value above the maximum (so
/// "reject everything" is representable); ties prefer the lower threshold.
fn best_threshold(examples: &[(f64, bool)]) -> Option<f64> {
    if examples.is_empty() {
        return None;
    }
    let mut candidates: Vec<f64> = examples.iter().map(|(s, _)| *s).collect();
    let max = candidates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    candidates.push(max + 1.0);
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    candidates.dedup();

    let mut best = (f64::NEG_INFINITY, 0usize);
    for &threshold in &candidates {
        let correct = examples
            .iter()
            .filter(|(score, label)| (*score >= threshold) == *label)
            .count();
        if correct > best.1 {
            best = (threshold, correct);
        }
    }
    Some(best.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_models::{build_model, ModelConfig, ModelKind};

    /// Model-free check of the threshold search.
    #[test]
    fn best_threshold_separates_cleanly_separable_scores() {
        // positives score high (2, 3), negatives low (0, 1)
        let examples = vec![(0.0, false), (1.0, false), (2.0, true), (3.0, true)];
        let t = best_threshold(&examples).unwrap();
        assert!(t > 1.0 && t <= 2.0, "threshold {t}");
        assert!(best_threshold(&[]).is_none());
    }

    #[test]
    fn best_threshold_handles_all_negative_sets() {
        let examples = vec![(0.5, false), (0.9, false)];
        let t = best_threshold(&examples).unwrap();
        // rejecting everything is optimal, so the threshold must exceed all scores
        assert!(t > 0.9);
    }

    #[test]
    fn classification_is_perfect_when_scores_separate_labels() {
        // Build a real model but craft examples from its own scores so that
        // label == (score above the relation's median).
        let model = build_model(&ModelConfig::new(ModelKind::DistMult).with_dim(6), 30, 2);
        let mut examples: Vec<Example> = Vec::new();
        for i in 0..30u32 {
            let t = Triple::new(i, i % 2, (i * 7 + 3) % 30);
            examples.push(Example::new(t, false)); // placeholder label, fixed below
        }
        // label by comparing to the per-relation median score
        let mut scores: HashMap<u32, Vec<f64>> = HashMap::new();
        for ex in &examples {
            scores
                .entry(ex.triple.relation)
                .or_default()
                .push(model.score(&ex.triple));
        }
        let medians: HashMap<u32, f64> = scores
            .into_iter()
            .map(|(r, mut v)| {
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                (r, v[v.len() / 2])
            })
            .collect();
        for ex in &mut examples {
            ex.label = model.score(&ex.triple) >= medians[&ex.triple.relation];
        }
        let report = evaluate_classification(model.as_ref(), &examples, &examples);
        assert!((report.valid_accuracy - 1.0).abs() < 1e-12);
        assert!((report.test_accuracy - 1.0).abs() < 1e-12);
        assert_eq!(report.test_count, examples.len());
        assert!(!report.thresholds.is_empty());
    }

    #[test]
    fn unseen_relations_use_the_global_threshold() {
        let model = build_model(&ModelConfig::new(ModelKind::DistMult).with_dim(4), 10, 3);
        // valid set only uses relation 0; test uses relation 2
        let valid: Vec<Example> = (0..6u32)
            .map(|i| Example::new(Triple::new(i, 0, (i + 1) % 10), i % 2 == 0))
            .collect();
        let test = vec![Example::new(Triple::new(0, 2, 1), true)];
        let report = evaluate_classification(model.as_ref(), &valid, &test);
        assert!(!report.thresholds.contains_key(&2));
        // accuracy is 0 or 1 for the single example; either way it must be finite
        assert!(report.test_accuracy == 0.0 || report.test_accuracy == 1.0);
    }

    #[test]
    fn empty_sets_report_zero_accuracy() {
        let model = build_model(&ModelConfig::new(ModelKind::DistMult).with_dim(4), 5, 1);
        let report = evaluate_classification(model.as_ref(), &[], &[]);
        assert_eq!(report.test_accuracy, 0.0);
        assert_eq!(report.valid_accuracy, 0.0);
        assert_eq!(report.test_count, 0);
    }
}
