//! Negative-score-distance distributions (Figure 1 of the paper).
//!
//! For a positive triple `(h, r, t)` and a corruption side, the quantity of
//! interest is `D = f(corrupted) − f(positive)`: a negative triple only
//! produces a gradient under the margin loss when `D ≥ −γ` (the paper plots
//! `D(h,r,t̄) = f(h,r,t̄) − f(h,r,t)` and marks the margin with a vertical
//! line). The complementary CDF `P(D ≥ x)` makes the skew of the negative
//! distribution visible: only a tiny fraction of corruptions stay above the
//! margin as training progresses.

use nscaching_kg::{CorruptionSide, FilterIndex, Triple};
use nscaching_math::Ccdf;
use nscaching_models::KgeModel;

/// Score distances `f(corrupted) − f(positive)` for every candidate entity.
///
/// Known true triples (other than the positive itself) are excluded when a
/// `filter` is supplied, matching how the paper's Figure 1 was produced from
/// the Bernoulli-TransD model.
pub fn negative_distance_samples(
    model: &dyn KgeModel,
    positive: &Triple,
    side: CorruptionSide,
    filter: Option<&FilterIndex>,
) -> Vec<f64> {
    let positive_score = model.score(positive);
    let scores = model.score_all(positive, side);
    let true_entity = positive.entity_at(side);
    let mut distances = Vec::with_capacity(scores.len().saturating_sub(1));
    for (entity, &score) in scores.iter().enumerate() {
        let entity = entity as u32;
        if entity == true_entity {
            continue;
        }
        if let Some(filter) = filter {
            if filter.is_false_negative(positive, side, entity) {
                continue;
            }
        }
        distances.push(score - positive_score);
    }
    distances
}

/// CCDF of the negative score distances for one positive triple.
pub fn negative_distance_ccdf(
    model: &dyn KgeModel,
    positive: &Triple,
    side: CorruptionSide,
    filter: Option<&FilterIndex>,
) -> Ccdf {
    Ccdf::from_samples(&negative_distance_samples(model, positive, side, filter))
}

/// Fraction of negative triples whose distance stays above `-margin`,
/// i.e. the negatives that would still produce a non-zero margin-loss
/// gradient. This is the scalar the paper's Figure 1 narrative relies on.
pub fn active_negative_fraction(
    model: &dyn KgeModel,
    positive: &Triple,
    side: CorruptionSide,
    margin: f64,
    filter: Option<&FilterIndex>,
) -> f64 {
    let ccdf = negative_distance_ccdf(model, positive, side, filter);
    if ccdf.is_empty() {
        return 0.0;
    }
    ccdf.at(-margin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_models::{build_model, ModelConfig, ModelKind};

    fn model(n: usize, seed: u64) -> Box<dyn KgeModel> {
        build_model(
            &ModelConfig::new(ModelKind::TransE)
                .with_dim(8)
                .with_seed(seed),
            n,
            2,
        )
    }

    #[test]
    fn samples_exclude_the_true_entity() {
        let m = model(20, 1);
        let pos = Triple::new(0, 0, 1);
        let d = negative_distance_samples(m.as_ref(), &pos, CorruptionSide::Tail, None);
        assert_eq!(d.len(), 19);
        assert!(d.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn filter_removes_known_true_triples() {
        let m = model(20, 2);
        let pos = Triple::new(0, 0, 1);
        let filter =
            FilterIndex::from_triples(vec![pos, Triple::new(0, 0, 5), Triple::new(0, 0, 9)]);
        let unfiltered = negative_distance_samples(m.as_ref(), &pos, CorruptionSide::Tail, None);
        let filtered =
            negative_distance_samples(m.as_ref(), &pos, CorruptionSide::Tail, Some(&filter));
        assert_eq!(unfiltered.len(), 19);
        assert_eq!(filtered.len(), 17);
    }

    #[test]
    fn ccdf_is_one_at_the_minimum_distance() {
        let m = model(30, 3);
        let pos = Triple::new(2, 1, 3);
        let ccdf = negative_distance_ccdf(m.as_ref(), &pos, CorruptionSide::Head, None);
        assert_eq!(ccdf.len(), 29);
        let grid = ccdf.default_grid(5);
        assert!((ccdf.at(grid[0]) - 1.0).abs() < 1e-12);
        assert!(ccdf.at(grid[4]) <= 1.0);
    }

    #[test]
    fn active_fraction_decreases_with_larger_margin_threshold() {
        let m = model(40, 4);
        let pos = Triple::new(5, 0, 6);
        // A *larger* margin keeps more negatives active (the threshold −γ
        // moves left), so the fraction must be monotone in γ.
        let small = active_negative_fraction(m.as_ref(), &pos, CorruptionSide::Tail, 0.5, None);
        let large = active_negative_fraction(m.as_ref(), &pos, CorruptionSide::Tail, 4.0, None);
        assert!(large >= small);
        assert!((0.0..=1.0).contains(&small));
        assert!((0.0..=1.0).contains(&large));
    }
}
