//! Equivalence proptests for the batched candidate-scoring fast path.
//!
//! For every model, both corruption sides, and ragged candidate lists (empty,
//! duplicated entries, the positive's own entity), `score_candidates` and
//! `score_all`/`score_all_into` must agree with the scalar `score` to within
//! `1e-12` — the invariant documented on `KgeModel::score_candidates`.

use nscaching_kg::{CorruptionSide, EntityId, Triple};
use nscaching_models::{build_model, KgeModel, ModelConfig, ModelKind};
use proptest::prelude::*;

const TOLERANCE: f64 = 1e-12;

fn model_for(
    kind_idx: usize,
    dim: usize,
    entities: usize,
    relations: usize,
    seed: u64,
) -> Box<dyn KgeModel> {
    let kind = ModelKind::ALL[kind_idx];
    build_model(
        &ModelConfig::new(kind).with_dim(dim).with_seed(seed),
        entities,
        relations,
    )
}

fn assert_matches_scalar(
    model: &dyn KgeModel,
    triple: &Triple,
    side: CorruptionSide,
    candidates: &[EntityId],
    batched: &[f64],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(batched.len(), candidates.len());
    for (&e, &got) in candidates.iter().zip(batched) {
        let want = model.score(&triple.corrupted(side, e));
        prop_assert!(
            (got - want).abs() <= TOLERANCE,
            "{} side {:?} candidate {}: batched {} vs scalar {} (diff {:e})",
            model.kind().name(),
            side,
            e,
            got,
            want,
            (got - want).abs()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn score_candidates_matches_scalar_score(
        kind_idx in 0usize..7,
        dim in 1usize..20,
        num_entities in 2usize..40,
        seed in any::<u64>(),
        raw_candidates in prop::collection::vec(0u32..1000, 0..24),
        head in 0u32..1000,
        tail in 0u32..1000,
        relation in 0u32..3,
    ) {
        let num_relations = 3;
        let model = model_for(kind_idx, dim, num_entities, num_relations, seed);
        let triple = Triple::new(
            head % num_entities as u32,
            relation,
            tail % num_entities as u32,
        );
        // Ragged candidate list: in-range ids, deliberate duplicates, and the
        // positive's own entity spliced in.
        let mut candidates: Vec<EntityId> =
            raw_candidates.iter().map(|e| e % num_entities as u32).collect();
        if let Some(&first) = candidates.first() {
            candidates.push(first);
        }
        let mut out = vec![f64::NAN; 3]; // junk that score_candidates must clear
        for side in CorruptionSide::BOTH {
            candidates.push(triple.entity_at(side));
            model.score_candidates(&triple, side, &candidates, &mut out);
            assert_matches_scalar(model.as_ref(), &triple, side, &candidates, &out)?;
        }
    }

    #[test]
    fn score_all_matches_scalar_score(
        kind_idx in 0usize..7,
        dim in 1usize..16,
        num_entities in 2usize..30,
        seed in any::<u64>(),
        head in 0u32..1000,
        tail in 0u32..1000,
        relation in 0u32..3,
    ) {
        let model = model_for(kind_idx, dim, num_entities, 3, seed);
        let triple = Triple::new(
            head % num_entities as u32,
            relation,
            tail % num_entities as u32,
        );
        let every_entity: Vec<EntityId> = (0..num_entities as u32).collect();
        let mut reused = Vec::new();
        for side in CorruptionSide::BOTH {
            let allocated = model.score_all(&triple, side);
            prop_assert_eq!(allocated.len(), num_entities);
            assert_matches_scalar(model.as_ref(), &triple, side, &every_entity, &allocated)?;

            model.score_all_into(&triple, side, &mut reused);
            prop_assert_eq!(reused.len(), num_entities);
            for (a, b) in allocated.iter().zip(&reused) {
                prop_assert!((a - b).abs() <= TOLERANCE);
            }
        }
    }

    #[test]
    fn empty_candidate_list_yields_empty_scores(
        kind_idx in 0usize..7,
        dim in 1usize..8,
        seed in any::<u64>(),
    ) {
        let model = model_for(kind_idx, dim, 5, 2, seed);
        let triple = Triple::new(0, 0, 1);
        let mut out = vec![1.0, 2.0];
        for side in CorruptionSide::BOTH {
            model.score_candidates(&triple, side, &[], &mut out);
            prop_assert!(out.is_empty());
        }
    }
}
