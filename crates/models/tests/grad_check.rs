//! Central finite-difference checks of every analytic score gradient.
//!
//! For each model we perturb every parameter component that participates in a
//! triple's score and compare `(f(θ+ε) − f(θ−ε)) / 2ε` against the analytic
//! gradient accumulated by `accumulate_score_gradient`.
//!
//! The L1-based translational models are non-differentiable where a residual
//! component is exactly zero; with random Xavier initialisation this never
//! happens, and the check uses a small ε so the sign pattern is stable.

use nscaching_kg::Triple;
use nscaching_models::{build_model, GradientBuffer, KgeModel, ModelConfig, ModelKind};

const EPS: f64 = 1e-6;
const TOL: f64 = 1e-4;

fn numeric_gradient(
    model: &mut Box<dyn KgeModel>,
    triple: &Triple,
    table: usize,
    row: usize,
    col: usize,
) -> f64 {
    let original = model.tables()[table].row(row)[col];

    model.tables_mut()[table].row_mut(row)[col] = original + EPS;
    let plus = model.score(triple);
    model.tables_mut()[table].row_mut(row)[col] = original - EPS;
    let minus = model.score(triple);
    model.tables_mut()[table].row_mut(row)[col] = original;

    (plus - minus) / (2.0 * EPS)
}

fn check_model(kind: ModelKind, seed: u64) {
    let config = ModelConfig::new(kind).with_dim(5).with_seed(seed);
    let mut model = build_model(&config, 9, 3);
    let triples = [
        Triple::new(0, 0, 1),
        Triple::new(2, 1, 3),
        Triple::new(4, 2, 4), // self-loop: head == tail is a legal edge case
        Triple::new(7, 0, 8),
    ];
    for triple in &triples {
        let mut grads = GradientBuffer::new();
        model.accumulate_score_gradient(triple, 1.0, &mut grads);
        assert!(
            !grads.is_empty(),
            "{kind:?} produced no gradient for {triple}"
        );

        // Check every component of every row the model says participates.
        for (table, row) in model.parameter_rows(triple) {
            let dim = model.tables()[table].dim();
            for col in 0..dim {
                let numeric = numeric_gradient(&mut model, triple, table, row, col);
                let analytic = grads.get(table, row).map_or(0.0, |g| g[col]);
                assert!(
                    (numeric - analytic).abs() < TOL,
                    "{kind:?} {triple} table {table} row {row} col {col}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }

        // And confirm the buffer holds no rows the model does not declare.
        let declared = model.parameter_rows(triple);
        for (key, _) in grads.iter() {
            assert!(
                declared.contains(&(key.0, key.1)),
                "{kind:?} accumulated a gradient for undeclared row {key:?}"
            );
        }
    }
}

#[test]
fn transe_gradients_match_finite_differences() {
    check_model(ModelKind::TransE, 101);
}

#[test]
fn transh_gradients_match_finite_differences() {
    check_model(ModelKind::TransH, 102);
}

#[test]
fn transd_gradients_match_finite_differences() {
    check_model(ModelKind::TransD, 103);
}

#[test]
fn transr_gradients_match_finite_differences() {
    check_model(ModelKind::TransR, 104);
}

#[test]
fn distmult_gradients_match_finite_differences() {
    check_model(ModelKind::DistMult, 105);
}

#[test]
fn complex_gradients_match_finite_differences() {
    check_model(ModelKind::ComplEx, 106);
}

#[test]
fn rescal_gradients_match_finite_differences() {
    check_model(ModelKind::Rescal, 107);
}

#[test]
fn gradient_coefficient_scales_linearly() {
    for kind in ModelKind::ALL {
        let config = ModelConfig::new(kind).with_dim(4).with_seed(55);
        let model = build_model(&config, 6, 2);
        let t = Triple::new(1, 0, 2);
        let mut g1 = GradientBuffer::new();
        let mut g3 = GradientBuffer::new();
        model.accumulate_score_gradient(&t, 1.0, &mut g1);
        model.accumulate_score_gradient(&t, 3.0, &mut g3);
        for (key, grad) in g1.iter() {
            let scaled = g3.get(key.0, key.1).expect("same rows touched");
            for (a, b) in grad.iter().zip(scaled) {
                assert!(
                    (3.0 * a - b).abs() < 1e-9,
                    "{kind:?} gradient not linear in coeff"
                );
            }
        }
    }
}
