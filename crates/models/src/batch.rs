//! Support machinery for the batched candidate-scoring fast path.
//!
//! Every scoring function in this crate factors as *query-side work* (terms
//! depending only on the fixed `(h, r)` or `(r, t)` pair) plus a cheap
//! per-candidate kernel. [`KgeModel::score_candidates`] and
//! [`KgeModel::score_all_into`] exploit that: the query context is computed
//! once into a thread-local scratch buffer and each candidate then costs one
//! fused, allocation-free pass over the embedding dimension.
//!
//! # Invariants
//!
//! The batched path must agree with the scalar [`KgeModel::score`] to within
//! floating-point reassociation error (the equivalence proptests in
//! `tests/batch_equivalence.rs` pin this to `1e-12`). Implementations must
//! therefore keep the same operation order per dimension as the scalar path,
//! only hoisting candidate-independent terms.
//!
//! # Scratch buffers
//!
//! The query context lives in a thread-local `Vec<f64>` so that `&self`
//! scoring methods stay allocation-free in steady state: the buffer grows to
//! the largest query context ever needed on the thread (at most `2·d` for
//! ComplEx) and is reused forever after. [`with_query_scratch`] hands out a
//! zeroed slice; nesting calls on one thread is not supported (and never
//! happens — model kernels do not call back into batched scoring).
//!
//! [`KgeModel::score_candidates`]: crate::scorer::KgeModel::score_candidates
//! [`KgeModel::score_all_into`]: crate::scorer::KgeModel::score_all_into
//! [`KgeModel::score`]: crate::scorer::KgeModel::score

use std::cell::RefCell;

thread_local! {
    static QUERY_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a zeroed scratch slice of length `len`.
///
/// The slice is backed by a thread-local buffer, so steady-state calls
/// perform no heap allocation once the buffer has grown to `len`.
pub fn with_query_scratch<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    QUERY_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.clear();
        buf.resize(len, 0.0);
        f(&mut buf[..len])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_is_zeroed_and_sized() {
        let sum = with_query_scratch(8, |q| {
            assert_eq!(q.len(), 8);
            assert!(q.iter().all(|v| *v == 0.0));
            q[3] = 5.0;
            q.iter().sum::<f64>()
        });
        assert_eq!(sum, 5.0);
        // A later call must see zeros again, not the 5.0 from before.
        with_query_scratch(8, |q| assert!(q.iter().all(|v| *v == 0.0)));
        // Shrinking and growing keeps the requested length.
        with_query_scratch(2, |q| assert_eq!(q.len(), 2));
        with_query_scratch(16, |q| assert_eq!(q.len(), 16));
    }
}
