//! TransE (Bordes et al., NIPS 2013): `f(h,r,t) = −‖h + r − t‖₁`.

use crate::batch::with_query_scratch;
use crate::embedding::EmbeddingTable;
use crate::gradient::{GradientSink, TableId};
use crate::scorer::{KgeModel, ModelKind, ENTITY_TABLE, RELATION_TABLE};
use nscaching_kg::{CorruptionSide, EntityId, Triple};
use nscaching_math::vecops::{l1_distance, signum};
use rand::Rng;

/// TransE with the L1 dissimilarity used throughout the paper.
#[derive(Debug, Clone)]
pub struct TransE {
    entities: EmbeddingTable,
    relations: EmbeddingTable,
    dim: usize,
}

impl TransE {
    /// Create a Xavier-initialised TransE model.
    pub fn new<R: Rng + ?Sized>(
        num_entities: usize,
        num_relations: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let mut model = Self {
            entities: EmbeddingTable::xavier("entity", num_entities, dim, rng),
            relations: EmbeddingTable::xavier("relation", num_relations, dim, rng),
            dim,
        };
        // TransE constrains entity embeddings to the unit ball from the start.
        for i in 0..num_entities {
            model.entities.project_row(i);
        }
        model
    }

    /// Residual vector `h + r − t`.
    fn residual(&self, t: &Triple) -> Vec<f64> {
        let h = self.entities.row(t.head as usize);
        let r = self.relations.row(t.relation as usize);
        let tl = self.entities.row(t.tail as usize);
        h.iter()
            .zip(r)
            .zip(tl)
            .map(|((hv, rv), tv)| hv + rv - tv)
            .collect()
    }

    /// Candidate-independent query vector: once `q` is filled, the score of
    /// a candidate row `e` is `−‖e − q‖₁` on either corruption side
    /// (`q = h + r` when corrupting the tail, `q = t − r` for the head).
    fn fill_query(&self, t: &Triple, side: CorruptionSide, q: &mut [f64]) {
        let r = self.relations.row(t.relation as usize);
        match side {
            CorruptionSide::Tail => {
                let h = self.entities.row(t.head as usize);
                for ((qi, hi), ri) in q.iter_mut().zip(h).zip(r) {
                    *qi = hi + ri;
                }
            }
            CorruptionSide::Head => {
                let tl = self.entities.row(t.tail as usize);
                for ((qi, ti), ri) in q.iter_mut().zip(tl).zip(r) {
                    *qi = ti - ri;
                }
            }
        }
    }
}

impl KgeModel for TransE {
    fn kind(&self) -> ModelKind {
        ModelKind::TransE
    }

    fn num_entities(&self) -> usize {
        self.entities.rows()
    }

    fn num_relations(&self) -> usize {
        self.relations.rows()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn score(&self, t: &Triple) -> f64 {
        -self.residual(t).iter().map(|v| v.abs()).sum::<f64>()
    }

    fn score_candidates(
        &self,
        t: &Triple,
        side: CorruptionSide,
        candidates: &[EntityId],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(candidates.len());
        with_query_scratch(self.dim, |q| {
            self.fill_query(t, side, q);
            for &e in candidates {
                out.push(-l1_distance(self.entities.row(e as usize), q));
            }
        });
    }

    fn score_all_into(&self, t: &Triple, side: CorruptionSide, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.entities.rows());
        with_query_scratch(self.dim, |q| {
            self.fill_query(t, side, q);
            for row in self.entities.rows_iter() {
                out.push(-l1_distance(row, q));
            }
        });
    }

    fn accumulate_score_gradient(&self, t: &Triple, coeff: f64, grads: &mut dyn GradientSink) {
        // f = −‖u‖₁ with u = h + r − t ⇒ ∂f/∂u = −sign(u).
        let u = self.residual(t);
        let s = signum(&u);
        grads.add(ENTITY_TABLE, t.head as usize, &s, -coeff);
        grads.add(RELATION_TABLE, t.relation as usize, &s, -coeff);
        grads.add(ENTITY_TABLE, t.tail as usize, &s, coeff);
    }

    fn tables(&self) -> Vec<&EmbeddingTable> {
        vec![&self.entities, &self.relations]
    }

    fn tables_mut(&mut self) -> Vec<&mut EmbeddingTable> {
        vec![&mut self.entities, &mut self.relations]
    }

    fn table_mut(&mut self, table: TableId) -> &mut EmbeddingTable {
        match table {
            ENTITY_TABLE => &mut self.entities,
            RELATION_TABLE => &mut self.relations,
            _ => panic!("TransE has no table {table}"),
        }
    }

    fn parameter_rows(&self, t: &Triple) -> Vec<(TableId, usize)> {
        vec![
            (ENTITY_TABLE, t.head as usize),
            (RELATION_TABLE, t.relation as usize),
            (ENTITY_TABLE, t.tail as usize),
        ]
    }

    fn apply_constraints(&mut self, touched: &[(TableId, usize)]) {
        for &(table, row) in touched {
            if table == ENTITY_TABLE {
                self.entities.project_row(row);
            }
        }
    }

    fn clone_box(&self) -> Box<dyn KgeModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;

    fn tiny_model() -> TransE {
        let mut rng = seeded_rng(42);
        TransE::new(5, 2, 4, &mut rng)
    }

    #[test]
    fn score_is_negative_l1_distance() {
        let mut m = tiny_model();
        // force h + r = t exactly -> distance 0 -> score 0 (maximum)
        m.tables_mut()[ENTITY_TABLE].set_row(0, &[0.1, 0.2, 0.3, 0.4]);
        m.tables_mut()[RELATION_TABLE].set_row(0, &[0.0, 0.1, 0.0, -0.1]);
        m.tables_mut()[ENTITY_TABLE].set_row(1, &[0.1, 0.3, 0.3, 0.3]);
        let s = m.score(&Triple::new(0, 0, 1));
        assert!((s - 0.0).abs() < 1e-12);
        // any other tail scores strictly worse unless it coincides
        let worse = m.score(&Triple::new(0, 0, 2));
        assert!(worse <= 0.0);
    }

    #[test]
    fn perfect_triple_scores_higher_than_perturbed() {
        let mut m = tiny_model();
        m.tables_mut()[ENTITY_TABLE].set_row(0, &[0.5, 0.0, 0.0, 0.0]);
        m.tables_mut()[RELATION_TABLE].set_row(1, &[0.0, 0.5, 0.0, 0.0]);
        m.tables_mut()[ENTITY_TABLE].set_row(2, &[0.5, 0.5, 0.0, 0.0]);
        m.tables_mut()[ENTITY_TABLE].set_row(3, &[-0.5, -0.5, 0.0, 0.0]);
        let good = m.score(&Triple::new(0, 1, 2));
        let bad = m.score(&Triple::new(0, 1, 3));
        assert!(good > bad);
    }

    #[test]
    fn entity_constraint_projects_to_unit_ball() {
        let mut m = tiny_model();
        m.tables_mut()[ENTITY_TABLE].set_row(4, &[3.0, 0.0, 0.0, 4.0]);
        m.apply_constraints(&[(ENTITY_TABLE, 4)]);
        assert!((m.tables()[ENTITY_TABLE].row_norm(4) - 1.0).abs() < 1e-12);
        // relation rows are not projected
        m.tables_mut()[RELATION_TABLE].set_row(0, &[3.0, 0.0, 0.0, 4.0]);
        m.apply_constraints(&[(RELATION_TABLE, 0)]);
        assert!((m.tables()[RELATION_TABLE].row_norm(0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn parameter_rows_cover_h_r_t() {
        let m = tiny_model();
        let rows = m.parameter_rows(&Triple::new(1, 0, 3));
        assert!(rows.contains(&(ENTITY_TABLE, 1)));
        assert!(rows.contains(&(ENTITY_TABLE, 3)));
        assert!(rows.contains(&(RELATION_TABLE, 0)));
    }

    #[test]
    fn num_parameters_matches_table_sizes() {
        let m = tiny_model();
        assert_eq!(m.num_parameters(), 5 * 4 + 2 * 4);
        assert_eq!(m.kind(), ModelKind::TransE);
        assert_eq!(m.dim(), 4);
        assert_eq!(m.num_entities(), 5);
        assert_eq!(m.num_relations(), 2);
    }
}
