//! Dense, row-major embedding tables.

use nscaching_math::vecops::{l2_norm, normalize_l2, project_l2_ball};
use nscaching_math::xavier_uniform;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A `rows × dim` matrix of `f64` stored row-major, one row per entity /
/// relation / projection vector.
///
/// This is the only parameter container in the workspace; optimizers address
/// parameters as `(table, row)` pairs and mutate rows in place.
///
/// # Versioning
///
/// The table carries a monotone [`version`](Self::version) counter, bumped on
/// every mutable data access (`row_mut`, `data_mut` and everything built on
/// them). Derived caches — the TransR/TransD relation-projection cache in
/// `projcache` — stamp their entries with the versions of the tables they
/// were computed from and treat any mismatch as an invalidation, so a cache
/// can never serve values from before an optimizer step. The counter is
/// deliberately coarse (any mutation invalidates everything derived from the
/// table): precision would need per-row dirty tracking on the optimizer's
/// hottest write path, while the coarse bump is a single integer increment
/// and still leaves batches, and the whole of evaluation, fully warm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmbeddingTable {
    name: String,
    rows: usize,
    dim: usize,
    data: Vec<f64>,
    version: u64,
}

impl EmbeddingTable {
    /// Allocate a zero-initialised table.
    pub fn zeros(name: impl Into<String>, rows: usize, dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self {
            name: name.into(),
            rows,
            dim,
            data: vec![0.0; rows * dim],
            version: 1,
        }
    }

    /// Allocate a Xavier-uniform initialised table (the paper's initialiser).
    pub fn xavier<R: Rng + ?Sized>(
        name: impl Into<String>,
        rows: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        let data = if rows == 0 {
            Vec::new()
        } else {
            xavier_uniform(rng, rows, dim)
        };
        Self {
            name: name.into(),
            rows,
            dim,
            data,
            version: 1,
        }
    }

    /// Table name (used in diagnostics and serialisation).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        let start = i * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Data version: starts at 1 and increases on every mutable data access.
    /// Caches derived from this table compare against it to detect staleness
    /// (see the struct-level docs).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Mutably borrow row `i` (bumps the version).
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        self.version += 1;
        let start = i * self.dim;
        &mut self.data[start..start + self.dim]
    }

    /// Copy `values` into row `i`.
    pub fn set_row(&mut self, i: usize, values: &[f64]) {
        assert_eq!(values.len(), self.dim, "row length mismatch");
        self.row_mut(i).copy_from_slice(values);
    }

    /// Iterate over all rows in index order.
    ///
    /// Streams the backing buffer contiguously, which is what the batched
    /// `score_all_into` fast path wants (no per-row index arithmetic, perfect
    /// prefetching).
    #[inline]
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim.max(1))
    }

    /// Whole backing buffer (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable backing buffer, row-major (bumps the version).
    pub fn data_mut(&mut self) -> &mut [f64] {
        self.version += 1;
        &mut self.data
    }

    /// Normalise every row to unit L2 norm (used for TransH normal vectors).
    pub fn normalize_rows(&mut self) {
        for i in 0..self.rows {
            normalize_l2(self.row_mut(i));
        }
    }

    /// Normalise a single row to unit L2 norm.
    pub fn normalize_row(&mut self, i: usize) {
        normalize_l2(self.row_mut(i));
    }

    /// Project a single row onto the unit L2 ball (entity constraint of the
    /// translational models).
    pub fn project_row(&mut self, i: usize) {
        project_l2_ball(self.row_mut(i));
    }

    /// L2 norm of row `i`.
    pub fn row_norm(&self, i: usize) -> f64 {
        l2_norm(self.row(i))
    }

    /// Total number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;

    #[test]
    fn zeros_table_shape_and_access() {
        let mut t = EmbeddingTable::zeros("ent", 3, 4);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.dim(), 4);
        assert_eq!(t.num_parameters(), 12);
        assert_eq!(t.row(1), &[0.0; 4]);
        t.row_mut(1)[2] = 5.0;
        assert_eq!(t.row(1), &[0.0, 0.0, 5.0, 0.0]);
        assert_eq!(t.name(), "ent");
    }

    #[test]
    fn xavier_table_is_bounded_and_nonzero() {
        let mut rng = seeded_rng(3);
        let t = EmbeddingTable::xavier("rel", 10, 8, &mut rng);
        assert!(t.data().iter().any(|v| *v != 0.0));
        let bound = (6.0 / 18.0f64).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn set_row_copies_values() {
        let mut t = EmbeddingTable::zeros("x", 2, 3);
        t.set_row(0, &[1.0, 2.0, 3.0]);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(t.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn set_row_rejects_wrong_length() {
        let mut t = EmbeddingTable::zeros("x", 2, 3);
        t.set_row(0, &[1.0]);
    }

    #[test]
    fn normalize_and_project_rows() {
        let mut t = EmbeddingTable::zeros("x", 2, 2);
        t.set_row(0, &[3.0, 4.0]);
        t.set_row(1, &[0.3, 0.4]);
        t.normalize_row(0);
        assert!((t.row_norm(0) - 1.0).abs() < 1e-12);

        let mut p = EmbeddingTable::zeros("y", 2, 2);
        p.set_row(0, &[3.0, 4.0]);
        p.set_row(1, &[0.3, 0.4]);
        p.project_row(0);
        p.project_row(1);
        assert!((p.row_norm(0) - 1.0).abs() < 1e-12);
        assert!(
            (p.row_norm(1) - 0.5).abs() < 1e-12,
            "small rows are untouched"
        );
    }

    #[test]
    fn version_bumps_on_every_mutable_access() {
        let mut t = EmbeddingTable::zeros("v", 2, 3);
        let v0 = t.version();
        assert!(
            v0 >= 1,
            "versions start positive so a zero stamp never matches"
        );
        t.row_mut(0)[0] = 1.0;
        let v1 = t.version();
        assert!(v1 > v0);
        t.set_row(1, &[1.0, 2.0, 3.0]);
        let v2 = t.version();
        assert!(v2 > v1);
        t.data_mut()[0] = 2.0;
        assert!(t.version() > v2);
        t.project_row(0);
        assert!(t.version() > v2, "constraint application also invalidates");
        // Read-only access never moves the version.
        let frozen = t.version();
        let _ = t.row(0);
        let _ = t.data();
        let _ = t.rows_iter().count();
        assert_eq!(t.version(), frozen);
    }

    #[test]
    fn normalize_all_rows() {
        let mut t = EmbeddingTable::zeros("w", 3, 2);
        t.set_row(0, &[2.0, 0.0]);
        t.set_row(1, &[0.0, 5.0]);
        t.set_row(2, &[1.0, 1.0]);
        t.normalize_rows();
        for i in 0..3 {
            assert!((t.row_norm(i) - 1.0).abs() < 1e-12);
        }
    }
}
