//! Training losses.
//!
//! The paper trains every model with one of two pairwise objectives over a
//! positive triple and one sampled negative triple:
//!
//! * Eq. (1), translational-distance models:
//!   `L = [γ − f(h,r,t) + f(h̄,r,t̄)]₊`;
//! * Eq. (2), semantic-matching models:
//!   `L = ℓ(+1, f(h,r,t)) + ℓ(−1, f(h̄,r,t̄))` with
//!   `ℓ(α, β) = log(1 + exp(−αβ))`.
//!
//! Both are expressed here through the [`Loss`] trait, which maps the pair of
//! scores `(f_pos, f_neg)` to a loss value and the pair of coefficients
//! `(∂L/∂f_pos, ∂L/∂f_neg)`. The trainer multiplies these coefficients into
//! the models' score gradients, so the loss never needs to see parameters.

use crate::scorer::LossType;
use nscaching_math::softmax::{sigmoid, softplus};
use serde::{Deserialize, Serialize};

/// Value and score-gradient coefficients of a pairwise loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairGradient {
    /// The loss value.
    pub loss: f64,
    /// `∂L/∂f(positive)`.
    pub d_positive: f64,
    /// `∂L/∂f(negative)`.
    pub d_negative: f64,
}

impl PairGradient {
    /// Whether this example contributes no gradient (the "vanishing gradient"
    /// events counted by the paper's non-zero-loss-ratio instrumentation).
    pub fn is_zero(&self) -> bool {
        self.d_positive == 0.0 && self.d_negative == 0.0
    }
}

/// A pairwise training loss over `(f_pos, f_neg)`.
pub trait Loss: Send + Sync {
    /// Evaluate the loss and its score gradients for one (positive, negative)
    /// pair.
    fn evaluate(&self, f_pos: f64, f_neg: f64) -> PairGradient;

    /// Which family this loss belongs to.
    fn kind(&self) -> LossKind;
}

/// Identifies a concrete loss (useful for configs and reports).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossKind {
    /// Margin ranking with the given margin γ.
    MarginRanking {
        /// The margin γ.
        margin: f64,
    },
    /// Logistic loss.
    Logistic,
}

impl LossKind {
    /// The paper's loss family for this loss.
    pub fn loss_type(&self) -> LossType {
        match self {
            LossKind::MarginRanking { .. } => LossType::MarginRanking,
            LossKind::Logistic => LossType::Logistic,
        }
    }
}

/// Pairwise margin ranking loss `[γ − f_pos + f_neg]₊` (Eq. (1)).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MarginRankingLoss {
    /// The margin γ.
    pub margin: f64,
}

impl MarginRankingLoss {
    /// Create a margin ranking loss with margin `γ`.
    pub fn new(margin: f64) -> Self {
        assert!(margin > 0.0, "margin must be positive");
        Self { margin }
    }
}

impl Loss for MarginRankingLoss {
    fn evaluate(&self, f_pos: f64, f_neg: f64) -> PairGradient {
        let raw = self.margin - f_pos + f_neg;
        if raw > 0.0 {
            PairGradient {
                loss: raw,
                d_positive: -1.0,
                d_negative: 1.0,
            }
        } else {
            PairGradient {
                loss: 0.0,
                d_positive: 0.0,
                d_negative: 0.0,
            }
        }
    }

    fn kind(&self) -> LossKind {
        LossKind::MarginRanking {
            margin: self.margin,
        }
    }
}

/// Pointwise logistic loss `softplus(−f_pos) + softplus(f_neg)` (Eq. (2)).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LogisticLoss;

impl Loss for LogisticLoss {
    fn evaluate(&self, f_pos: f64, f_neg: f64) -> PairGradient {
        PairGradient {
            loss: softplus(-f_pos) + softplus(f_neg),
            d_positive: -sigmoid(-f_pos),
            d_negative: sigmoid(f_neg),
        }
    }

    fn kind(&self) -> LossKind {
        LossKind::Logistic
    }
}

/// Build the paper's default loss for a loss family.
pub fn default_loss(loss_type: LossType, margin: f64) -> Box<dyn Loss> {
    match loss_type {
        LossType::MarginRanking => Box::new(MarginRankingLoss::new(margin)),
        LossType::Logistic => Box::new(LogisticLoss),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_loss_is_active_inside_the_margin() {
        let l = MarginRankingLoss::new(1.0);
        let g = l.evaluate(0.2, -0.3);
        // raw = 1 − 0.2 + (−0.3) = 0.5 > 0
        assert!((g.loss - 0.5).abs() < 1e-12);
        assert_eq!(g.d_positive, -1.0);
        assert_eq!(g.d_negative, 1.0);
        assert!(!g.is_zero());
    }

    #[test]
    fn margin_loss_vanishes_outside_the_margin() {
        let l = MarginRankingLoss::new(1.0);
        let g = l.evaluate(2.0, -3.0);
        assert_eq!(g.loss, 0.0);
        assert!(g.is_zero());
    }

    #[test]
    #[should_panic(expected = "margin must be positive")]
    fn margin_must_be_positive() {
        let _ = MarginRankingLoss::new(0.0);
    }

    #[test]
    fn logistic_loss_value_and_gradient_signs() {
        let l = LogisticLoss;
        let g = l.evaluate(1.0, -1.0);
        let expected = (1.0 + (-1.0f64).exp()).ln() + (1.0 + (-1.0f64).exp()).ln();
        assert!((g.loss - expected).abs() < 1e-12);
        assert!(g.d_positive < 0.0, "positive score should be pushed up");
        assert!(g.d_negative > 0.0, "negative score should be pushed down");
    }

    #[test]
    fn logistic_gradient_matches_finite_difference() {
        let l = LogisticLoss;
        let eps = 1e-6;
        for &(fp, fn_) in &[(0.3, -0.2), (-1.5, 2.0), (4.0, 4.0)] {
            let g = l.evaluate(fp, fn_);
            let num_dp =
                (l.evaluate(fp + eps, fn_).loss - l.evaluate(fp - eps, fn_).loss) / (2.0 * eps);
            let num_dn =
                (l.evaluate(fp, fn_ + eps).loss - l.evaluate(fp, fn_ - eps).loss) / (2.0 * eps);
            assert!((g.d_positive - num_dp).abs() < 1e-6);
            assert!((g.d_negative - num_dn).abs() < 1e-6);
        }
    }

    #[test]
    fn logistic_never_reports_zero_gradient() {
        let l = LogisticLoss;
        assert!(!l.evaluate(50.0, -50.0).is_zero());
    }

    #[test]
    fn default_loss_dispatches_on_type() {
        assert_eq!(
            default_loss(LossType::MarginRanking, 2.0).kind(),
            LossKind::MarginRanking { margin: 2.0 }
        );
        assert_eq!(
            default_loss(LossType::Logistic, 2.0).kind(),
            LossKind::Logistic
        );
        assert_eq!(LossKind::Logistic.loss_type(), LossType::Logistic);
        assert_eq!(
            LossKind::MarginRanking { margin: 1.0 }.loss_type(),
            LossType::MarginRanking
        );
    }
}
