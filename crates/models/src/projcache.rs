//! Epoch-scoped relation-projection cache for the matrix/vector-projection
//! models (TransR, TransD).
//!
//! TransR's candidate kernel needs `M_r·e` for every candidate entity `e` —
//! a dense `O(d²)` matrix-vector product that defeats the batched fast path's
//! "one cheap pass per candidate" economics. But within an epoch the same
//! `(relation, entity)` pairs are projected over and over: the NSCaching
//! sampler re-scores its cache residents on every positive sharing a
//! relation, and the link-prediction ranker projects the whole entity table
//! once per test triple. This module memoises those projections per thread:
//!
//! * **Keying.** Entries are keyed by `(model instance, relation)`; each
//!   entry holds one projected vector slot per entity plus a per-entity
//!   stamp. Model instances are identified by an id drawn from a global
//!   counter ([`next_projection_model_id`]) so two models can never alias
//!   each other's projections (model clones take a fresh id).
//! * **Invalidation.** Every entry records the *combined version* of the
//!   source [`EmbeddingTable`]s it was computed from (the sum of their
//!   monotone version counters — any table mutation strictly increases it).
//!   A per-entity slot is warm iff its stamp equals the entry's version and
//!   the entry's version equals the tables' current combined version;
//!   bumping the version therefore lazily invalidates every slot in `O(1)`,
//!   with no clearing pass. During training this makes the cache
//!   batch-scoped (the optimizer step touches the tables), during
//!   evaluation it is effectively immortal.
//! * **Value transparency.** Cold slots are filled with exactly the
//!   arithmetic a cache-less implementation would use, and scoring always
//!   reads the slot, so results are bit-for-bit independent of the cache's
//!   warm/cold history — a requirement for the trainer's reproducibility
//!   contract.
//! * **Thread locality.** The map is thread-local: the sharded trainer's
//!   workers each warm their own projections without locks, mirroring the
//!   query-scratch design in [`crate::batch`]. Nesting
//!   [`with_projection_cache`] calls on one thread is not supported (and
//!   never happens — model kernels do not call back into batched scoring).
//! * **Memory bound.** A soft per-thread budget caps the resident entries;
//!   exceeding it evicts other models' (possibly dead) entries first, then
//!   the inserting model's own entries in deterministic key order until the
//!   newcomer fits — no LRU tracking, and transparent by the point above.
//!
//! [`EmbeddingTable`]: crate::embedding::EmbeddingTable

use nscaching_kg::{CorruptionSide, EntityId};
use nscaching_math::vecops::{l1_distance, l1_sum};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Soft per-thread budget for cached projections (64 MiB). One entry costs
/// `num_entities · (dim + 1) · 8` bytes, so at FB15K-bench scale
/// (1.5k entities, d = 64) every relation of the synthetic benchmarks fits.
const MAX_BYTES_PER_THREAD: usize = 64 << 20;

static NEXT_MODEL_ID: AtomicU64 = AtomicU64::new(1);

/// Draw a process-unique model id for projection-cache keying. Called once
/// per model construction *and* once per clone.
pub fn next_projection_model_id() -> u64 {
    NEXT_MODEL_ID.fetch_add(1, Ordering::Relaxed)
}

/// One relation's projected-entity table: a `num_entities × dim` slot matrix
/// plus per-entity warmth stamps.
#[derive(Debug)]
pub struct ProjectionEntry {
    /// Combined source-table version the warm slots were computed at.
    version: u64,
    dim: usize,
    /// `stamps[e] == version` ⇔ slot `e` is warm. Slots start at 0, which
    /// never matches (table versions start at 1, so `version ≥ 1`).
    stamps: Vec<u64>,
    /// Row-major projected vectors, one `dim`-slot per entity.
    data: Vec<f64>,
}

impl ProjectionEntry {
    fn new(num_entities: usize, dim: usize, version: u64) -> Self {
        debug_assert!(version > 0, "table versions start at 1");
        Self {
            version,
            dim,
            stamps: vec![0; num_entities],
            data: vec![0.0; num_entities * dim],
        }
    }

    fn bytes(&self) -> usize {
        (self.stamps.len() + self.data.len()) * std::mem::size_of::<f64>()
    }

    /// Whether `entity`'s projection is valid at the entry's version.
    #[inline]
    pub fn is_warm(&self, entity: usize) -> bool {
        self.stamps[entity] == self.version
    }

    /// The cached projection of `entity`. Must only be called on warm slots.
    #[inline]
    pub fn row(&self, entity: usize) -> &[f64] {
        debug_assert!(self.is_warm(entity), "reading a cold projection slot");
        &self.data[entity * self.dim..(entity + 1) * self.dim]
    }

    /// Mutable view of `entity`'s slot for filling. The slot stays cold
    /// until [`mark_warm`](Self::mark_warm) — fillers that write a slot over
    /// several passes (the blocked `M_r`-panel fill) stamp once at the end.
    #[inline]
    pub fn slot_mut(&mut self, entity: usize) -> &mut [f64] {
        &mut self.data[entity * self.dim..(entity + 1) * self.dim]
    }

    /// Stamp `entity`'s slot warm at the entry's version.
    #[inline]
    pub fn mark_warm(&mut self, entity: usize) {
        self.stamps[entity] = self.version;
    }

    /// Score warm candidates against a precomputed query context with the
    /// translational L1 form shared by TransR and TransD: a candidate with
    /// projection `p` scores `−‖q − p‖₁` under tail corruption and
    /// `−Σᵢ |p_i + q_i|` under head corruption. Appends one score per
    /// entity to `out`, in iteration order; every entity must be warm.
    #[inline]
    pub fn score_translational_into(
        &self,
        side: CorruptionSide,
        q: &[f64],
        entities: impl IntoIterator<Item = usize>,
        out: &mut Vec<f64>,
    ) {
        for e in entities {
            let p = self.row(e);
            out.push(match side {
                CorruptionSide::Tail => -l1_distance(q, p),
                CorruptionSide::Head => -l1_sum(p, q),
            });
        }
    }
}

/// Build the query context from the query side's warm projection `p` and the
/// relation embedding `r`: `q = p + r` for tail corruption, `q = r − p` for
/// head corruption — the combination both TransR (`p = M_r·e`) and TransD
/// (`p = e⊥`) use.
#[inline]
pub fn query_from_projection(side: CorruptionSide, p: &[f64], r: &[f64], q: &mut [f64]) {
    match side {
        CorruptionSide::Tail => {
            for i in 0..q.len() {
                q[i] = p[i] + r[i];
            }
        }
        CorruptionSide::Head => {
            for i in 0..q.len() {
                q[i] = r[i] - p[i];
            }
        }
    }
}

#[derive(Default)]
struct ThreadCache {
    entries: HashMap<(u64, u32), ProjectionEntry>,
    bytes: usize,
}

/// Make room for an `incoming` -byte entry of `model` under `budget`.
///
/// Model ids are never reused, so other models' entries are either dead (the
/// model was dropped — its projections can never be read again) or will
/// lazily refill; they go first. If the inserting model's own entries still
/// bust the budget, they are evicted one at a time in ascending key order
/// until the new entry fits — so a working set one entry over budget sheds
/// exactly one relation instead of the whole map, and the surviving entries
/// keep their allocations warm. Eviction order is deterministic (sorted
/// keys, no map-iteration-order dependence) and harmless for correctness
/// because the cache is value-transparent. A single entry larger than the
/// whole budget is still admitted (the cache would be useless otherwise);
/// it just evicts everything else.
fn evict_for(cache: &mut ThreadCache, model: u64, incoming: usize, budget: usize) {
    if cache.bytes + incoming <= budget || cache.entries.is_empty() {
        return;
    }
    let mut freed = 0usize;
    cache.entries.retain(|&(owner, _), entry| {
        if owner == model {
            true
        } else {
            freed += entry.bytes();
            false
        }
    });
    cache.bytes -= freed;
    if cache.bytes + incoming > budget {
        let mut keys: Vec<(u64, u32)> = cache.entries.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            if cache.bytes + incoming <= budget {
                break;
            }
            if let Some(entry) = cache.entries.remove(&key) {
                cache.bytes -= entry.bytes();
            }
        }
    }
}

thread_local! {
    static PROJECTIONS: RefCell<ThreadCache> = RefCell::new(ThreadCache::default());
}

/// Run `f` with the projection entry for `(model, relation)` and a cleared
/// cold-candidate scratch list.
///
/// The entry is created on first use and lazily invalidated whenever
/// `version` (the combined version of the source tables) moves; `f` receives
/// it with whatever slots are still warm plus a reusable `Vec<EntityId>` for
/// collecting the candidates that need filling.
pub fn with_projection_cache<R>(
    model: u64,
    relation: u32,
    num_entities: usize,
    dim: usize,
    version: u64,
    f: impl FnOnce(&mut ProjectionEntry, &mut Vec<EntityId>) -> R,
) -> R {
    PROJECTIONS.with(|cell| {
        let mut cache = cell.borrow_mut();
        let key = (model, relation);
        if let Some(entry) = cache.entries.get(&key) {
            // Geometry can only change if a distinct model re-used an id,
            // which next_projection_model_id rules out — but a debug check
            // is cheap insurance against future constructors forgetting it.
            debug_assert_eq!(entry.dim, dim, "projection entry dim changed");
            debug_assert_eq!(
                entry.stamps.len(),
                num_entities,
                "projection entry entity count changed"
            );
        } else {
            let entry = ProjectionEntry::new(num_entities, dim, version);
            let bytes = entry.bytes();
            evict_for(&mut cache, model, bytes, MAX_BYTES_PER_THREAD);
            cache.bytes += bytes;
            cache.entries.insert(key, entry);
        }
        let cache = &mut *cache;
        let entry = cache.entries.get_mut(&key).expect("entry just ensured");
        if entry.version != version {
            // Source tables moved: adopting the new version orphans every
            // old stamp (versions are strictly increasing), no clearing pass.
            entry.version = version;
        }
        COLD_SCRATCH.with(|scratch| {
            let mut cold = scratch.borrow_mut();
            cold.clear();
            f(entry, &mut cold)
        })
    })
}

thread_local! {
    static COLD_SCRATCH: RefCell<Vec<EntityId>> = const { RefCell::new(Vec::new()) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_start_cold_and_warm_after_marking() {
        let model = next_projection_model_id();
        with_projection_cache(model, 0, 4, 2, 7, |entry, cold| {
            assert!(cold.is_empty());
            assert!(!entry.is_warm(2));
            entry.slot_mut(2).copy_from_slice(&[1.0, 2.0]);
            assert!(!entry.is_warm(2), "filling does not stamp");
            entry.mark_warm(2);
            assert!(entry.is_warm(2));
            assert_eq!(entry.row(2), &[1.0, 2.0]);
        });
        // Same version: the slot survives the round trip.
        with_projection_cache(model, 0, 4, 2, 7, |entry, _| {
            assert!(entry.is_warm(2));
            assert_eq!(entry.row(2), &[1.0, 2.0]);
        });
    }

    #[test]
    fn version_bump_invalidates_without_clearing() {
        let model = next_projection_model_id();
        with_projection_cache(model, 3, 3, 2, 10, |entry, _| {
            entry.slot_mut(1).copy_from_slice(&[5.0, 6.0]);
            entry.mark_warm(1);
        });
        with_projection_cache(model, 3, 3, 2, 11, |entry, _| {
            assert!(!entry.is_warm(1), "new version orphans old stamps");
            entry.slot_mut(1).copy_from_slice(&[7.0, 8.0]);
            entry.mark_warm(1);
            assert_eq!(entry.row(1), &[7.0, 8.0]);
        });
    }

    #[test]
    fn models_and_relations_do_not_alias() {
        let a = next_projection_model_id();
        let b = next_projection_model_id();
        with_projection_cache(a, 0, 2, 1, 3, |entry, _| {
            entry.slot_mut(0)[0] = 1.0;
            entry.mark_warm(0);
        });
        with_projection_cache(b, 0, 2, 1, 3, |entry, _| {
            assert!(!entry.is_warm(0), "other model's entry must be cold");
        });
        with_projection_cache(a, 1, 2, 1, 3, |entry, _| {
            assert!(!entry.is_warm(0), "other relation's entry must be cold");
        });
        with_projection_cache(a, 0, 2, 1, 3, |entry, _| {
            assert!(entry.is_warm(0));
        });
    }

    #[test]
    fn model_ids_are_unique() {
        let a = next_projection_model_id();
        let b = next_projection_model_id();
        assert_ne!(a, b);
        assert!(b > 0);
    }

    #[test]
    fn eviction_drops_other_models_before_the_live_one() {
        let live = next_projection_model_id();
        let dead = next_projection_model_id();
        let mut cache = ThreadCache::default();
        for relation in 0..3u32 {
            let entry = ProjectionEntry::new(4, 2, 5); // 96 bytes each
            cache.bytes += entry.bytes();
            cache.entries.insert((dead, relation), entry);
        }
        let own = ProjectionEntry::new(4, 2, 5);
        cache.bytes += own.bytes();
        cache.entries.insert((live, 0), own);

        // Budget forces eviction; the dead model's entries go, ours stays.
        evict_for(&mut cache, live, 96, 2 * 96);
        assert_eq!(cache.entries.len(), 1);
        assert!(cache.entries.contains_key(&(live, 0)));
        assert_eq!(cache.bytes, 96);

        // If the live model alone busts the budget, everything goes.
        evict_for(&mut cache, live, 96, 96);
        assert!(cache.entries.is_empty());
        assert_eq!(cache.bytes, 0);
    }

    #[test]
    fn live_model_eviction_sheds_only_enough_entries() {
        let live = next_projection_model_id();
        let mut cache = ThreadCache::default();
        for relation in 0..3u32 {
            let entry = ProjectionEntry::new(4, 2, 5); // 96 bytes each
            cache.bytes += entry.bytes();
            cache.entries.insert((live, relation), entry);
        }
        // 288 resident + 96 incoming over a 288 budget: exactly one entry
        // must go, and it is the lowest-keyed one (deterministic order).
        evict_for(&mut cache, live, 96, 3 * 96);
        assert_eq!(cache.entries.len(), 2);
        assert!(!cache.entries.contains_key(&(live, 0)));
        assert!(cache.entries.contains_key(&(live, 1)));
        assert!(cache.entries.contains_key(&(live, 2)));
        assert_eq!(cache.bytes, 2 * 96);
    }
}
