//! Shared epoch-scoped relation-projection cache for the matrix/vector-
//! projection models (TransR, TransD).
//!
//! TransR's candidate kernel needs `M_r·e` for every candidate entity `e` —
//! a dense `O(d²)` matrix-vector product that defeats the batched fast path's
//! "one cheap pass per candidate" economics. But within an epoch the same
//! `(relation, entity)` pairs are projected over and over: the NSCaching
//! sampler re-scores its cache residents on every positive sharing a
//! relation, and the link-prediction ranker projects the whole entity table
//! once per test triple. This module memoises those projections in a
//! **process-wide, read-mostly registry** shared by every scoring thread, so
//! a panel warmed by one trainer shard (or one serving worker) is warm for
//! all of them — projections are computed once per parameter version instead
//! of once per thread.
//!
//! # Sharing contract
//!
//! * **Keying.** Panels are keyed by `(model instance, relation)`; each
//!   panel holds one projected vector slot per entity plus a per-entity
//!   atomic stamp. Model instances are identified by an id drawn from a
//!   global counter ([`next_projection_model_id`]) so two models can never
//!   alias each other's projections (model clones take a fresh id).
//! * **Invalidation.** A slot is warm iff its stamp equals the *combined
//!   version* of the source [`EmbeddingTable`]s (the sum of their monotone
//!   version counters — any table mutation strictly increases it). Bumping
//!   a version therefore lazily invalidates every slot in `O(1)`, with no
//!   clearing pass and no cross-thread coordination. During training this
//!   makes the cache batch-scoped (the optimizer step touches the tables),
//!   during evaluation it is effectively immortal.
//! * **Fill protocol.** A thread that finds a slot cold races a single
//!   compare-and-swap to move the stamp to `version | FILLING`; the winner
//!   fills the slot exclusively and then publishes it with a release-store
//!   of `version`. Losers never wait: they compute the projection inline
//!   into thread-local scratch with exactly the same arithmetic
//!   ([`PanelGuard::row_or_compute`]), so no scoring call ever blocks on
//!   another thread's fill.
//! * **Value transparency.** Cold slots (and loser fallbacks) are computed
//!   with exactly the arithmetic a cache-less implementation would use, and
//!   warm reads return those same bits, so results are bit-for-bit
//!   independent of the cache's warm/cold history *and* of which thread
//!   warmed a slot — a requirement for the trainer's reproducibility
//!   contract.
//! * **Memory bound.** A soft process-wide budget caps the resident panels;
//!   exceeding it evicts other models' (possibly dead) panels first, then
//!   the inserting model's own panels in deterministic key order until the
//!   newcomer fits. Threads still scoring through an evicted panel keep it
//!   alive via their own `Arc` until the call returns — eviction is
//!   transparent by the point above.
//!
//! # Safety invariant (why the unsafe interior mutability is sound)
//!
//! All concurrent users of one panel key hold `&` references to the *same*
//! model instance: mutating a model requires `&mut` (which excludes
//! concurrent scoring), and clones draw fresh cache ids. Every concurrent
//! [`PanelGuard`] for a key therefore carries the **same** `version`, so
//! * only CAS winners write a slot's data, exclusively, before its
//!   release-publish;
//! * readers only dereference a slot after an acquire-load observed the
//!   publish, which happens-before orders the data writes;
//! * no thread can be writing a slot at version `v'` while another reads it
//!   at `v ≠ v'`, because reaching `v'` required `&mut` access in between.
//!
//! [`EmbeddingTable`]: crate::embedding::EmbeddingTable

use nscaching_kg::{CorruptionSide, EntityId};
use nscaching_math::vecops::{l1_distance, l1_sum};
use std::cell::RefCell;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Soft process-wide budget for cached projections (64 MiB). One panel costs
/// `num_entities · (dim + 1) · 8` bytes, so at FB15K-bench scale
/// (1.5k entities, d = 64) every relation of the synthetic benchmarks fits.
const MAX_SHARED_BYTES: usize = 64 << 20;

/// Stamp bit marking a slot as claimed-but-unpublished. Combined table
/// versions are sums of per-table counters bumped once per mutable access —
/// astronomically far from 2⁶³ — so the bit never collides with a version.
const FILLING: u64 = 1 << 63;

static NEXT_MODEL_ID: AtomicU64 = AtomicU64::new(1);

/// Draw a process-unique model id for projection-cache keying. Called once
/// per model construction *and* once per clone.
pub fn next_projection_model_id() -> u64 {
    NEXT_MODEL_ID.fetch_add(1, Ordering::Relaxed)
}

/// One relation's shared projected-entity table: a `num_entities × dim` slot
/// matrix plus per-entity atomic stamps implementing the fill protocol.
struct Panel {
    dim: usize,
    /// `stamps[e] == version` ⇔ slot `e` is warm at that combined version;
    /// `version | FILLING` ⇔ a thread is filling it. Slots start at 0, which
    /// never matches (table versions start at 1, so `version ≥ 1`).
    stamps: Box<[AtomicU64]>,
    /// Row-major projected vectors, one `dim`-slot per entity. Written only
    /// by the CAS winner of a slot's claim, read only after observing its
    /// publish — see the module-level safety invariant.
    data: UnsafeCell<Box<[f64]>>,
}

// SAFETY: all cross-thread access to `data` is ordered through the `stamps`
// claim/publish protocol documented on the module; `UnsafeCell` is only a
// vehicle for the winner's exclusive write before the release-publish.
unsafe impl Sync for Panel {}
unsafe impl Send for Panel {}

impl Panel {
    fn new(num_entities: usize, dim: usize) -> Self {
        Self {
            dim,
            stamps: (0..num_entities).map(|_| AtomicU64::new(0)).collect(),
            data: UnsafeCell::new(vec![0.0; num_entities * dim].into_boxed_slice()),
        }
    }

    fn bytes(&self) -> usize {
        (self.stamps.len() + self.stamps.len() * self.dim) * std::mem::size_of::<f64>()
    }
}

/// A per-call handle on one `(model, relation)` panel, pinned to the
/// caller's combined source-table `version`.
///
/// The guard owns an `Arc` on the panel, so eviction from the registry never
/// invalidates an in-flight scoring call.
pub struct PanelGuard {
    panel: Arc<Panel>,
    version: u64,
}

impl PanelGuard {
    /// Projection dimension of the panel.
    #[inline]
    pub fn dim(&self) -> usize {
        self.panel.dim
    }

    /// Whether `entity`'s slot is warm at the guard's version.
    #[inline]
    pub fn is_warm(&self, entity: usize) -> bool {
        self.panel.stamps[entity].load(Ordering::Acquire) == self.version
    }

    /// Race to claim every cold entity in `needed`, appending the entities
    /// *this thread* won (and must now fill and [`publish`](Self::publish))
    /// to `cold`. Duplicates in `needed` are claimed at most once; entities
    /// another thread already published or is currently filling are skipped
    /// — the caller resolves those per slot at score time via
    /// [`row_or_compute`](Self::row_or_compute).
    pub fn claim_cold(&self, needed: impl IntoIterator<Item = EntityId>, cold: &mut Vec<EntityId>) {
        for e in needed {
            let stamp = &self.panel.stamps[e as usize];
            let cur = stamp.load(Ordering::Acquire);
            if cur == self.version || cur == self.version | FILLING {
                continue;
            }
            // A stale stamp (older version, or an older version's FILLING
            // mark) is just a value: per the safety invariant no thread can
            // still be writing under it, so claiming from it is exclusive.
            if stamp
                .compare_exchange(
                    cur,
                    self.version | FILLING,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                cold.push(e);
            }
        }
    }

    /// Mutable view of a claimed slot for filling.
    ///
    /// # Safety
    ///
    /// `entity` must have been claimed by *this thread* through
    /// [`claim_cold`](Self::claim_cold) on this guard and not yet published;
    /// the returned slice must be dropped before the next call for the same
    /// entity. The claim guarantees no other thread reads or writes the slot
    /// until [`publish`](Self::publish).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn claimed_slot(&self, entity: usize) -> &mut [f64] {
        let d = self.panel.dim;
        let base = (*self.panel.data.get()).as_mut_ptr();
        std::slice::from_raw_parts_mut(base.add(entity * d), d)
    }

    /// Release-publish the given claimed-and-filled slots at the guard's
    /// version, making them warm for every thread.
    pub fn publish(&self, entities: &[EntityId]) {
        for &e in entities {
            debug_assert_eq!(
                self.panel.stamps[e as usize].load(Ordering::Relaxed),
                self.version | FILLING,
                "publishing a slot this guard never claimed"
            );
            self.panel.stamps[e as usize].store(self.version, Ordering::Release);
        }
    }

    /// The warm projection of `entity`, or `None` if the slot is cold or
    /// mid-fill on another thread.
    #[inline]
    pub fn row(&self, entity: usize) -> Option<&[f64]> {
        if self.is_warm(entity) {
            let d = self.panel.dim;
            // SAFETY: the acquire-load in `is_warm` observed the publish of
            // this slot at the guard's version; the safety invariant rules
            // out concurrent writers at any other version.
            Some(unsafe {
                let base = (*self.panel.data.get()).as_ptr();
                std::slice::from_raw_parts(base.add(entity * d), d)
            })
        } else {
            None
        }
    }

    /// The warm projection of `entity`, or — when the slot is cold or owned
    /// by another thread's in-flight fill — the projection computed inline
    /// into `scratch` by `compute`. `compute` must perform exactly the fill
    /// arithmetic so both paths are bit-identical.
    #[inline]
    pub fn row_or_compute<'s>(
        &'s self,
        entity: usize,
        scratch: &'s mut [f64],
        compute: impl FnOnce(&mut [f64]),
    ) -> &'s [f64] {
        match self.row(entity) {
            Some(p) => p,
            None => {
                compute(scratch);
                scratch
            }
        }
    }
}

/// The translational L1 candidate kernel shared by TransR and TransD: a
/// candidate with projection `p` scores `−‖q − p‖₁` under tail corruption
/// and `−Σᵢ |p_i + q_i|` under head corruption.
#[inline]
pub fn translational_score(side: CorruptionSide, q: &[f64], p: &[f64]) -> f64 {
    match side {
        CorruptionSide::Tail => -l1_distance(q, p),
        CorruptionSide::Head => -l1_sum(p, q),
    }
}

/// Build the query context from the query side's projection `p` and the
/// relation embedding `r`: `q = p + r` for tail corruption, `q = r − p` for
/// head corruption — the combination both TransR (`p = M_r·e`) and TransD
/// (`p = e⊥`) use.
#[inline]
pub fn query_from_projection(side: CorruptionSide, p: &[f64], r: &[f64], q: &mut [f64]) {
    match side {
        CorruptionSide::Tail => {
            for i in 0..q.len() {
                q[i] = p[i] + r[i];
            }
        }
        CorruptionSide::Head => {
            for i in 0..q.len() {
                q[i] = r[i] - p[i];
            }
        }
    }
}

#[derive(Default)]
struct Registry {
    panels: HashMap<(u64, u32), Arc<Panel>>,
    bytes: usize,
}

fn registry() -> &'static RwLock<Registry> {
    static REGISTRY: OnceLock<RwLock<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Registry::default()))
}

/// Make room for an `incoming`-byte panel of `model` under `budget`.
///
/// Model ids are never reused, so other models' panels are either dead (the
/// model was dropped — its projections can never be read again) or will
/// lazily refill; they go first. If the inserting model's own panels still
/// bust the budget, they are evicted one at a time in ascending key order
/// until the new panel fits — so a working set one panel over budget sheds
/// exactly one relation instead of the whole map, and the surviving panels
/// keep their allocations warm. Eviction order is deterministic (sorted
/// keys, no map-iteration-order dependence) and harmless for correctness
/// because the cache is value-transparent (in-flight guards keep their
/// panel alive through their `Arc`). A single panel larger than the whole
/// budget is still admitted (the cache would be useless otherwise); it just
/// evicts everything else.
fn evict_for(reg: &mut Registry, model: u64, incoming: usize, budget: usize) {
    if reg.bytes + incoming <= budget || reg.panels.is_empty() {
        return;
    }
    let mut freed = 0usize;
    reg.panels.retain(|&(owner, _), panel| {
        if owner == model {
            true
        } else {
            freed += panel.bytes();
            false
        }
    });
    reg.bytes -= freed;
    if reg.bytes + incoming > budget {
        let mut keys: Vec<(u64, u32)> = reg.panels.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            if reg.bytes + incoming <= budget {
                break;
            }
            if let Some(panel) = reg.panels.remove(&key) {
                reg.bytes -= panel.bytes();
            }
        }
    }
}

/// Look up (or create) the shared panel for `(model, relation)` and pin it
/// to `version` — the combined version of the source tables — for the
/// duration of the returned guard.
///
/// The fast path is a read-locked map probe; the write lock is only taken
/// on the first sighting of a key, where the eviction budget is enforced.
pub fn projection_panel(
    model: u64,
    relation: u32,
    num_entities: usize,
    dim: usize,
    version: u64,
) -> PanelGuard {
    debug_assert!(version > 0, "table versions start at 1");
    let key = (model, relation);
    if let Some(panel) = registry().read().unwrap().panels.get(&key) {
        // Geometry can only change if a distinct model re-used an id, which
        // next_projection_model_id rules out — but a debug check is cheap
        // insurance against future constructors forgetting it.
        debug_assert_eq!(panel.dim, dim, "projection panel dim changed");
        debug_assert_eq!(
            panel.stamps.len(),
            num_entities,
            "projection panel entity count changed"
        );
        return PanelGuard {
            panel: Arc::clone(panel),
            version,
        };
    }
    let mut reg = registry().write().unwrap();
    // Re-check under the write lock: another thread may have raced the
    // insert between our read probe and here.
    if let Some(panel) = reg.panels.get(&key) {
        return PanelGuard {
            panel: Arc::clone(panel),
            version,
        };
    }
    let panel = Arc::new(Panel::new(num_entities, dim));
    let bytes = panel.bytes();
    evict_for(&mut reg, model, bytes, MAX_SHARED_BYTES);
    reg.bytes += bytes;
    reg.panels.insert(key, Arc::clone(&panel));
    PanelGuard { panel, version }
}

thread_local! {
    static COLD_SCRATCH: RefCell<Vec<EntityId>> = const { RefCell::new(Vec::new()) };
    static ROW_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a cleared cold-candidate list and a `dim`-sized row buffer
/// for loser-fallback projections, both thread-local so steady-state scoring
/// stays allocation-free. Nesting on one thread is not supported (and never
/// happens — model kernels do not call back into batched scoring).
pub fn with_panel_scratch<R>(dim: usize, f: impl FnOnce(&mut Vec<EntityId>, &mut [f64]) -> R) -> R {
    COLD_SCRATCH.with(|cold_cell| {
        ROW_SCRATCH.with(|row_cell| {
            let mut cold = cold_cell.borrow_mut();
            let mut row = row_cell.borrow_mut();
            cold.clear();
            row.clear();
            row.resize(dim, 0.0);
            f(&mut cold, &mut row[..dim])
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn slots_start_cold_and_warm_after_publish() {
        let model = next_projection_model_id();
        let guard = projection_panel(model, 0, 4, 2, 7);
        assert!(!guard.is_warm(2));
        assert!(guard.row(2).is_none());
        let mut cold = Vec::new();
        guard.claim_cold([2, 2, 2], &mut cold);
        assert_eq!(cold, vec![2], "duplicates are claimed once");
        (unsafe { guard.claimed_slot(2) }).copy_from_slice(&[1.0, 2.0]);
        assert!(!guard.is_warm(2), "filling does not publish");
        guard.publish(&cold);
        assert!(guard.is_warm(2));
        assert_eq!(guard.row(2).unwrap(), &[1.0, 2.0]);
        // A fresh guard at the same version sees the warm slot.
        let again = projection_panel(model, 0, 4, 2, 7);
        assert_eq!(again.row(2).unwrap(), &[1.0, 2.0]);
    }

    #[test]
    fn version_bump_invalidates_without_clearing() {
        let model = next_projection_model_id();
        let guard = projection_panel(model, 3, 3, 2, 10);
        let mut cold = Vec::new();
        guard.claim_cold([1], &mut cold);
        (unsafe { guard.claimed_slot(1) }).copy_from_slice(&[5.0, 6.0]);
        guard.publish(&cold);

        let bumped = projection_panel(model, 3, 3, 2, 11);
        assert!(!bumped.is_warm(1), "new version orphans old stamps");
        assert!(bumped.row(1).is_none(), "a stale panel row is never served");
        cold.clear();
        bumped.claim_cold([1], &mut cold);
        assert_eq!(cold, vec![1], "stale stamps lose the claim race");
        (unsafe { bumped.claimed_slot(1) }).copy_from_slice(&[7.0, 8.0]);
        bumped.publish(&cold);
        assert_eq!(bumped.row(1).unwrap(), &[7.0, 8.0]);
    }

    #[test]
    fn in_flight_fills_fall_back_to_inline_compute() {
        let model = next_projection_model_id();
        let winner = projection_panel(model, 0, 2, 2, 4);
        let mut cold = Vec::new();
        winner.claim_cold([0], &mut cold);
        assert_eq!(cold, vec![0]);

        // A second guard (as another thread would hold) must neither claim
        // the slot nor read half-filled data: it computes inline.
        let loser = projection_panel(model, 0, 2, 2, 4);
        let mut stolen = Vec::new();
        loser.claim_cold([0], &mut stolen);
        assert!(stolen.is_empty(), "FILLING slots are not reclaimed");
        let mut scratch = [0.0; 2];
        let p = loser.row_or_compute(0, &mut scratch, |buf| buf.copy_from_slice(&[9.0, 9.0]));
        assert_eq!(p, &[9.0, 9.0], "loser used the inline fallback");

        (unsafe { winner.claimed_slot(0) }).copy_from_slice(&[3.0, 4.0]);
        winner.publish(&cold);
        let mut scratch = [0.0; 2];
        let p = loser.row_or_compute(0, &mut scratch, |_| panic!("slot is warm"));
        assert_eq!(p, &[3.0, 4.0]);
    }

    #[test]
    fn warm_panels_are_shared_across_threads() {
        let model = next_projection_model_id();
        let guard = projection_panel(model, 0, 3, 2, 6);
        let mut cold = Vec::new();
        guard.claim_cold([0, 1, 2], &mut cold);
        for &e in &cold {
            (unsafe { guard.claimed_slot(e as usize) }).fill(e as f64 + 0.5);
        }
        guard.publish(&cold);

        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let g = projection_panel(model, 0, 3, 2, 6);
                    for e in 0..3usize {
                        assert_eq!(
                            g.row(e).expect("published slots are warm everywhere"),
                            &[e as f64 + 0.5, e as f64 + 0.5]
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_claims_elect_exactly_one_filler_per_slot() {
        let model = next_projection_model_id();
        let threads = 4;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let g = projection_panel(model, 7, 8, 2, 9);
                    barrier.wait();
                    let mut cold = Vec::new();
                    g.claim_cold(0..8, &mut cold);
                    for &e in &cold {
                        (unsafe { g.claimed_slot(e as usize) }).fill(e as f64);
                    }
                    g.publish(&cold);
                    cold.len()
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 8, "every slot has exactly one claim winner");
        let g = projection_panel(model, 7, 8, 2, 9);
        for e in 0..8usize {
            assert_eq!(g.row(e).unwrap(), &[e as f64, e as f64]);
        }
    }

    #[test]
    fn models_and_relations_do_not_alias() {
        let a = next_projection_model_id();
        let b = next_projection_model_id();
        let guard = projection_panel(a, 0, 2, 1, 3);
        let mut cold = Vec::new();
        guard.claim_cold([0], &mut cold);
        (unsafe { guard.claimed_slot(0) })[0] = 1.0;
        guard.publish(&cold);

        assert!(
            !projection_panel(b, 0, 2, 1, 3).is_warm(0),
            "other model's panel must be cold"
        );
        assert!(
            !projection_panel(a, 1, 2, 1, 3).is_warm(0),
            "other relation's panel must be cold"
        );
        assert!(projection_panel(a, 0, 2, 1, 3).is_warm(0));
    }

    #[test]
    fn model_ids_are_unique() {
        let a = next_projection_model_id();
        let b = next_projection_model_id();
        assert_ne!(a, b);
        assert!(b > 0);
    }

    #[test]
    fn eviction_drops_other_models_before_the_live_one() {
        let live = next_projection_model_id();
        let dead = next_projection_model_id();
        let mut reg = Registry::default();
        for relation in 0..3u32 {
            let panel = Arc::new(Panel::new(4, 2)); // 96 bytes each
            reg.bytes += panel.bytes();
            reg.panels.insert((dead, relation), panel);
        }
        let own = Arc::new(Panel::new(4, 2));
        reg.bytes += own.bytes();
        reg.panels.insert((live, 0), own);

        // Budget forces eviction; the dead model's panels go, ours stays.
        evict_for(&mut reg, live, 96, 2 * 96);
        assert_eq!(reg.panels.len(), 1);
        assert!(reg.panels.contains_key(&(live, 0)));
        assert_eq!(reg.bytes, 96);

        // If the live model alone busts the budget, everything goes.
        evict_for(&mut reg, live, 96, 96);
        assert!(reg.panels.is_empty());
        assert_eq!(reg.bytes, 0);
    }

    #[test]
    fn live_model_eviction_sheds_only_enough_entries() {
        let live = next_projection_model_id();
        let mut reg = Registry::default();
        for relation in 0..3u32 {
            let panel = Arc::new(Panel::new(4, 2)); // 96 bytes each
            reg.bytes += panel.bytes();
            reg.panels.insert((live, relation), panel);
        }
        // 288 resident + 96 incoming over a 288 budget: exactly one panel
        // must go, and it is the lowest-keyed one (deterministic order).
        evict_for(&mut reg, live, 96, 3 * 96);
        assert_eq!(reg.panels.len(), 2);
        assert!(!reg.panels.contains_key(&(live, 0)));
        assert!(reg.panels.contains_key(&(live, 1)));
        assert!(reg.panels.contains_key(&(live, 2)));
        assert_eq!(reg.bytes, 2 * 96);
    }
}
