//! TransD (Ji et al., ACL 2015):
//! `h⊥ = h + (w_h·h)·w_r`, `t⊥ = t + (w_t·t)·w_r`,
//! `f(h,r,t) = −‖h⊥ + r − t⊥‖₁`.
//!
//! This is the dynamic-mapping-matrix model `M_rh = w_r w_hᵀ + I` specialised
//! to equal entity/relation dimensions, which is the configuration the paper
//! (and the original TransD code) uses.
//!
//! Batched scoring memoises the projected entity `e⊥ = e + (w_e·e)·w_r` per
//! `(relation, entity)` in [`crate::projcache`] under the same
//! generation-stamped invalidation contract as TransR (see the module docs
//! in [`crate::transr`]): the entry version is the sum of the entity,
//! entity-projection and relation-projection table versions, so any
//! parameter update lazily invalidates every cached vector.

use crate::batch::with_query_scratch;
use crate::embedding::EmbeddingTable;
use crate::gradient::{GradientSink, TableId};
use crate::projcache::{
    next_projection_model_id, projection_panel, query_from_projection, translational_score,
    with_panel_scratch, PanelGuard,
};
use crate::scorer::{KgeModel, ModelKind, ENTITY_TABLE, RELATION_TABLE};
use nscaching_kg::{CorruptionSide, EntityId, Triple};
use nscaching_math::vecops::{dot, l1_combine, signum};
use rand::Rng;

/// Index of the per-entity projection table `w_e` in [`TransD::tables`].
pub const ENTITY_PROJ_TABLE: TableId = 2;
/// Index of the per-relation projection table `w_r` in [`TransD::tables`].
pub const RELATION_PROJ_TABLE: TableId = 3;

/// TransD with L1 dissimilarity.
#[derive(Debug)]
pub struct TransD {
    entities: EmbeddingTable,
    relations: EmbeddingTable,
    entity_proj: EmbeddingTable,
    relation_proj: EmbeddingTable,
    dim: usize,
    /// Projection-cache identity; unique per instance (clones re-draw it).
    cache_id: u64,
}

impl Clone for TransD {
    fn clone(&self) -> Self {
        Self {
            entities: self.entities.clone(),
            relations: self.relations.clone(),
            entity_proj: self.entity_proj.clone(),
            relation_proj: self.relation_proj.clone(),
            dim: self.dim,
            // A clone diverges from the original on its first update, so it
            // must never share cached projections with it.
            cache_id: next_projection_model_id(),
        }
    }
}

impl TransD {
    /// Create a Xavier-initialised TransD model.
    pub fn new<R: Rng + ?Sized>(
        num_entities: usize,
        num_relations: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let mut model = Self {
            entities: EmbeddingTable::xavier("entity", num_entities, dim, rng),
            relations: EmbeddingTable::xavier("relation", num_relations, dim, rng),
            entity_proj: EmbeddingTable::xavier("entity_proj", num_entities, dim, rng),
            relation_proj: EmbeddingTable::xavier("relation_proj", num_relations, dim, rng),
            dim,
            cache_id: next_projection_model_id(),
        };
        for i in 0..num_entities {
            model.entities.project_row(i);
        }
        model
    }

    /// Residual `u = h + (w_h·h)·w_r + r − t − (w_t·t)·w_r` plus the scalars
    /// needed for the gradient.
    fn residual(&self, t: &Triple) -> Residual {
        let h = self.entities.row(t.head as usize);
        let tl = self.entities.row(t.tail as usize);
        let r = self.relations.row(t.relation as usize);
        let wh = self.entity_proj.row(t.head as usize);
        let wt = self.entity_proj.row(t.tail as usize);
        let wr = self.relation_proj.row(t.relation as usize);
        let wh_h = dot(wh, h);
        let wt_t = dot(wt, tl);
        let u: Vec<f64> = (0..self.dim)
            .map(|i| h[i] + wh_h * wr[i] + r[i] - tl[i] - wt_t * wr[i])
            .collect();
        Residual { u, wh_h, wt_t }
    }

    /// Project the query side once.
    ///
    /// Tail corruption: `q_i = h_i + (w_h·h)·w_{r,i} + r_i`, residual of
    /// candidate `t` is `q − t − (w_t·t)·w_r`. Head corruption:
    /// `q_i = r_i − t_i − (w_t·t)·w_{r,i}`, residual of candidate `h` is
    /// `h + (w_h·h)·w_r + q`.
    fn fill_query(&self, t: &Triple, side: CorruptionSide, q: &mut [f64]) {
        let r = self.relations.row(t.relation as usize);
        let wr = self.relation_proj.row(t.relation as usize);
        match side {
            CorruptionSide::Tail => {
                let h = self.entities.row(t.head as usize);
                let wh = self.entity_proj.row(t.head as usize);
                let wh_h = dot(wh, h);
                for i in 0..q.len() {
                    q[i] = h[i] + wh_h * wr[i] + r[i];
                }
            }
            CorruptionSide::Head => {
                let tl = self.entities.row(t.tail as usize);
                let wt = self.entity_proj.row(t.tail as usize);
                let wt_t = dot(wt, tl);
                for i in 0..q.len() {
                    q[i] = r[i] - tl[i] - wt_t * wr[i];
                }
            }
        }
    }

    /// Fused per-candidate kernel of the uncached reference path: one dot
    /// with the candidate's projection vector, then one vectorised residual
    /// pass.
    #[inline]
    fn candidate_score_uncached(
        q: &[f64],
        wr: &[f64],
        row: &[f64],
        proj: &[f64],
        side: CorruptionSide,
    ) -> f64 {
        let s = dot(proj, row);
        match side {
            CorruptionSide::Tail => -l1_combine(q, row, wr, -1.0, -s),
            CorruptionSide::Head => -l1_combine(q, row, wr, 1.0, s),
        }
    }

    /// Combined source-table version the projection cache stamps against.
    /// The relation-embedding table is excluded on purpose: `r` enters the
    /// query side only, never the cached `e⊥`.
    #[inline]
    fn projection_version(&self) -> u64 {
        self.entities.version() + self.entity_proj.version() + self.relation_proj.version()
    }

    /// `e⊥ = e + (w_e·e)·w_r` into `out` — exactly the panel fill's
    /// arithmetic, so the loser-fallback inline projection is bit-identical
    /// to a warm panel row.
    #[inline]
    fn project_row_into(&self, wr: &[f64], e: usize, out: &mut [f64]) {
        let row = self.entities.row(e);
        let proj = self.entity_proj.row(e);
        let s = dot(proj, row);
        for i in 0..out.len() {
            out[i] = row[i] + s * wr[i];
        }
    }

    /// Fill every slot this thread claimed with `e⊥ = e + (w_e·e)·w_r`,
    /// then publish the batch, making it warm for every thread.
    fn fill_claimed(&self, panel: &PanelGuard, wr: &[f64], cold: &[EntityId]) {
        for &e in cold {
            // SAFETY: `cold` holds exactly the slots this thread won via
            // `claim_cold`, still unpublished.
            let slot = unsafe { panel.claimed_slot(e as usize) };
            self.project_row_into(wr, e as usize, slot);
        }
        panel.publish(cold);
    }

    /// The retired fused batched path, kept as the equivalence oracle for
    /// the projection cache's tests.
    pub fn score_candidates_uncached(
        &self,
        t: &Triple,
        side: CorruptionSide,
        candidates: &[EntityId],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(candidates.len());
        let wr = self.relation_proj.row(t.relation as usize);
        with_query_scratch(self.dim, |q| {
            self.fill_query(t, side, q);
            for &e in candidates {
                let row = self.entities.row(e as usize);
                let proj = self.entity_proj.row(e as usize);
                out.push(Self::candidate_score_uncached(q, wr, row, proj, side));
            }
        });
    }
}

struct Residual {
    u: Vec<f64>,
    wh_h: f64,
    wt_t: f64,
}

impl KgeModel for TransD {
    fn kind(&self) -> ModelKind {
        ModelKind::TransD
    }

    fn num_entities(&self) -> usize {
        self.entities.rows()
    }

    fn num_relations(&self) -> usize {
        self.relations.rows()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn score(&self, t: &Triple) -> f64 {
        -self.residual(t).u.iter().map(|v| v.abs()).sum::<f64>()
    }

    fn score_candidates(
        &self,
        t: &Triple,
        side: CorruptionSide,
        candidates: &[EntityId],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(candidates.len());
        let wr = self.relation_proj.row(t.relation as usize);
        let query_entity = match side {
            CorruptionSide::Tail => t.head,
            CorruptionSide::Head => t.tail,
        };
        with_query_scratch(self.dim, |q| {
            with_panel_scratch(self.dim, |cold, fallback| {
                let panel = projection_panel(
                    self.cache_id,
                    t.relation,
                    self.entities.rows(),
                    self.dim,
                    self.projection_version(),
                );
                panel.claim_cold(
                    std::iter::once(query_entity).chain(candidates.iter().copied()),
                    cold,
                );
                self.fill_claimed(&panel, wr, cold);
                let r = self.relations.row(t.relation as usize);
                let p = panel.row_or_compute(query_entity as usize, fallback, |buf| {
                    self.project_row_into(wr, query_entity as usize, buf)
                });
                query_from_projection(side, p, r, q);
                for &e in candidates {
                    let p = panel.row_or_compute(e as usize, fallback, |buf| {
                        self.project_row_into(wr, e as usize, buf)
                    });
                    out.push(translational_score(side, q, p));
                }
            });
        });
    }

    fn score_all_into(&self, t: &Triple, side: CorruptionSide, out: &mut Vec<f64>) {
        out.clear();
        let n = self.entities.rows();
        out.reserve(n);
        let wr = self.relation_proj.row(t.relation as usize);
        let query_entity = match side {
            CorruptionSide::Tail => t.head,
            CorruptionSide::Head => t.tail,
        };
        with_query_scratch(self.dim, |q| {
            with_panel_scratch(self.dim, |cold, fallback| {
                let panel = projection_panel(
                    self.cache_id,
                    t.relation,
                    n,
                    self.dim,
                    self.projection_version(),
                );
                panel.claim_cold(0..n as EntityId, cold);
                self.fill_claimed(&panel, wr, cold);
                let r = self.relations.row(t.relation as usize);
                let p = panel.row_or_compute(query_entity as usize, fallback, |buf| {
                    self.project_row_into(wr, query_entity as usize, buf)
                });
                query_from_projection(side, p, r, q);
                for e in 0..n {
                    let p =
                        panel.row_or_compute(e, fallback, |buf| self.project_row_into(wr, e, buf));
                    out.push(translational_score(side, q, p));
                }
            });
        });
    }

    fn accumulate_score_gradient(&self, t: &Triple, coeff: f64, grads: &mut dyn GradientSink) {
        // f = −‖u‖₁ with u = h + (w_h·h) w_r + r − t − (w_t·t) w_r.
        // Let s = sign(u); ∂f/∂u = −s.
        //   ∂u/∂h   = I + w_r w_hᵀ        ⇒ ∂f/∂h   = −(s + (w_r·s) w_h)
        //   ∂u/∂t   = −(I + w_r w_tᵀ)     ⇒ ∂f/∂t   = +(s + (w_r·s) w_t)
        //   ∂u/∂r   = I                   ⇒ ∂f/∂r   = −s
        //   ∂u/∂w_h = w_r hᵀ              ⇒ ∂f/∂w_h = −(w_r·s) h
        //   ∂u/∂w_t = −w_r tᵀ             ⇒ ∂f/∂w_t = +(w_r·s) t
        //   ∂u/∂w_r = ((w_h·h) − (w_t·t))I⇒ ∂f/∂w_r = −((w_h·h) − (w_t·t)) s
        let res = self.residual(t);
        let s = signum(&res.u);
        let h = self.entities.row(t.head as usize);
        let tl = self.entities.row(t.tail as usize);
        let wh = self.entity_proj.row(t.head as usize);
        let wt = self.entity_proj.row(t.tail as usize);
        let wr = self.relation_proj.row(t.relation as usize);
        let wr_s = dot(wr, &s);

        let grad_h: Vec<f64> = s.iter().zip(wh).map(|(si, whi)| si + wr_s * whi).collect();
        let grad_t: Vec<f64> = s.iter().zip(wt).map(|(si, wti)| si + wr_s * wti).collect();
        grads.add(ENTITY_TABLE, t.head as usize, &grad_h, -coeff);
        grads.add(ENTITY_TABLE, t.tail as usize, &grad_t, coeff);
        grads.add(RELATION_TABLE, t.relation as usize, &s, -coeff);
        grads.add(ENTITY_PROJ_TABLE, t.head as usize, h, -coeff * wr_s);
        grads.add(ENTITY_PROJ_TABLE, t.tail as usize, tl, coeff * wr_s);
        grads.add(
            RELATION_PROJ_TABLE,
            t.relation as usize,
            &s,
            -coeff * (res.wh_h - res.wt_t),
        );
    }

    fn tables(&self) -> Vec<&EmbeddingTable> {
        vec![
            &self.entities,
            &self.relations,
            &self.entity_proj,
            &self.relation_proj,
        ]
    }

    fn tables_mut(&mut self) -> Vec<&mut EmbeddingTable> {
        vec![
            &mut self.entities,
            &mut self.relations,
            &mut self.entity_proj,
            &mut self.relation_proj,
        ]
    }

    fn table_mut(&mut self, table: TableId) -> &mut EmbeddingTable {
        match table {
            ENTITY_TABLE => &mut self.entities,
            RELATION_TABLE => &mut self.relations,
            ENTITY_PROJ_TABLE => &mut self.entity_proj,
            RELATION_PROJ_TABLE => &mut self.relation_proj,
            _ => panic!("TransD has no table {table}"),
        }
    }

    fn parameter_rows(&self, t: &Triple) -> Vec<(TableId, usize)> {
        vec![
            (ENTITY_TABLE, t.head as usize),
            (RELATION_TABLE, t.relation as usize),
            (ENTITY_TABLE, t.tail as usize),
            (ENTITY_PROJ_TABLE, t.head as usize),
            (ENTITY_PROJ_TABLE, t.tail as usize),
            (RELATION_PROJ_TABLE, t.relation as usize),
        ]
    }

    fn apply_constraints(&mut self, touched: &[(TableId, usize)]) {
        for &(table, row) in touched {
            if table == ENTITY_TABLE {
                self.entities.project_row(row);
            }
        }
    }

    fn clone_box(&self) -> Box<dyn KgeModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;

    fn tiny_model() -> TransD {
        let mut rng = seeded_rng(11);
        TransD::new(6, 3, 4, &mut rng)
    }

    #[test]
    fn reduces_to_transe_when_projections_are_zero() {
        let mut m = tiny_model();
        let dim = m.dim();
        for e in 0..6 {
            m.tables_mut()[ENTITY_PROJ_TABLE].set_row(e, &vec![0.0; dim]);
        }
        for r in 0..3 {
            m.tables_mut()[RELATION_PROJ_TABLE].set_row(r, &vec![0.0; dim]);
        }
        m.tables_mut()[ENTITY_TABLE].set_row(0, &[0.2, 0.0, 0.0, 0.0]);
        m.tables_mut()[RELATION_TABLE].set_row(0, &[0.1, 0.0, 0.0, 0.0]);
        m.tables_mut()[ENTITY_TABLE].set_row(1, &[0.3, 0.0, 0.0, 0.0]);
        let s = m.score(&Triple::new(0, 0, 1));
        assert!((s - 0.0).abs() < 1e-12);
    }

    #[test]
    fn projection_changes_the_score() {
        let mut m = tiny_model();
        let base = m.score(&Triple::new(0, 0, 1));
        let dim = m.dim();
        m.tables_mut()[RELATION_PROJ_TABLE].set_row(0, &vec![0.5; dim]);
        m.tables_mut()[ENTITY_PROJ_TABLE].set_row(0, &vec![0.5; dim]);
        let changed = m.score(&Triple::new(0, 0, 1));
        assert!((base - changed).abs() > 1e-9);
    }

    #[test]
    fn four_tables_and_parameter_rows() {
        let m = tiny_model();
        assert_eq!(m.tables().len(), 4);
        assert_eq!(m.num_parameters(), (6 + 3 + 6 + 3) * 4);
        let rows = m.parameter_rows(&Triple::new(1, 2, 4));
        assert_eq!(rows.len(), 6);
        assert!(rows.contains(&(ENTITY_PROJ_TABLE, 1)));
        assert!(rows.contains(&(ENTITY_PROJ_TABLE, 4)));
        assert!(rows.contains(&(RELATION_PROJ_TABLE, 2)));
    }

    #[test]
    fn constraints_touch_only_entity_embeddings() {
        let mut m = tiny_model();
        m.tables_mut()[ENTITY_TABLE].set_row(0, &[3.0, 0.0, 4.0, 0.0]);
        m.tables_mut()[ENTITY_PROJ_TABLE].set_row(0, &[3.0, 0.0, 4.0, 0.0]);
        m.apply_constraints(&[(ENTITY_TABLE, 0), (ENTITY_PROJ_TABLE, 0)]);
        assert!((m.tables()[ENTITY_TABLE].row_norm(0) - 1.0).abs() < 1e-12);
        assert!((m.tables()[ENTITY_PROJ_TABLE].row_norm(0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn kind_is_transd() {
        assert_eq!(tiny_model().kind(), ModelKind::TransD);
    }

    #[test]
    fn cached_scoring_matches_the_uncached_reference() {
        let m = tiny_model();
        let candidates: Vec<u32> = vec![0, 2, 2, 5, 1];
        let mut cached = Vec::new();
        let mut reference = Vec::new();
        for side in [CorruptionSide::Tail, CorruptionSide::Head] {
            for pass in 0..2 {
                let t = Triple::new(0, 1, 3);
                m.score_candidates(&t, side, &candidates, &mut cached);
                m.score_candidates_uncached(&t, side, &candidates, &mut reference);
                for (i, (c, r)) in cached.iter().zip(&reference).enumerate() {
                    assert!(
                        (c - r).abs() <= 1e-12,
                        "pass {pass} {side:?} candidate {i}: cached {c} vs uncached {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn projection_update_invalidates_cached_projections() {
        let mut m = tiny_model();
        let t = Triple::new(0, 0, 1);
        let candidates: Vec<u32> = (0..6).collect();
        let mut before = Vec::new();
        m.score_candidates(&t, CorruptionSide::Tail, &candidates, &mut before);

        // w_e and w_r feed the cached e⊥ but live in tables of their own —
        // the invalidation must fire for them too, not only for entities.
        let dim = m.dim();
        m.tables_mut()[ENTITY_PROJ_TABLE].set_row(4, &vec![0.3; dim]);
        m.tables_mut()[RELATION_PROJ_TABLE].set_row(0, &vec![-0.2; dim]);

        let mut after = Vec::new();
        m.score_candidates(&t, CorruptionSide::Tail, &candidates, &mut after);
        assert_ne!(before, after, "stale projections must not survive updates");
        for (&e, score) in candidates.iter().zip(&after) {
            let scalar = m.score(&t.corrupted(CorruptionSide::Tail, e));
            assert!(
                (score - scalar).abs() <= 1e-12,
                "candidate {e}: cached {score} vs scalar {scalar}"
            );
        }
    }
}
