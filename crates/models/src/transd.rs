//! TransD (Ji et al., ACL 2015):
//! `h⊥ = h + (w_h·h)·w_r`, `t⊥ = t + (w_t·t)·w_r`,
//! `f(h,r,t) = −‖h⊥ + r − t⊥‖₁`.
//!
//! This is the dynamic-mapping-matrix model `M_rh = w_r w_hᵀ + I` specialised
//! to equal entity/relation dimensions, which is the configuration the paper
//! (and the original TransD code) uses.

use crate::batch::with_query_scratch;
use crate::embedding::EmbeddingTable;
use crate::gradient::{GradientBuffer, TableId};
use crate::scorer::{KgeModel, ModelKind, ENTITY_TABLE, RELATION_TABLE};
use nscaching_kg::{CorruptionSide, EntityId, Triple};
use nscaching_math::vecops::{dot, l1_combine, signum};
use rand::Rng;

/// Index of the per-entity projection table `w_e` in [`TransD::tables`].
pub const ENTITY_PROJ_TABLE: TableId = 2;
/// Index of the per-relation projection table `w_r` in [`TransD::tables`].
pub const RELATION_PROJ_TABLE: TableId = 3;

/// TransD with L1 dissimilarity.
#[derive(Debug, Clone)]
pub struct TransD {
    entities: EmbeddingTable,
    relations: EmbeddingTable,
    entity_proj: EmbeddingTable,
    relation_proj: EmbeddingTable,
    dim: usize,
}

impl TransD {
    /// Create a Xavier-initialised TransD model.
    pub fn new<R: Rng + ?Sized>(
        num_entities: usize,
        num_relations: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let mut model = Self {
            entities: EmbeddingTable::xavier("entity", num_entities, dim, rng),
            relations: EmbeddingTable::xavier("relation", num_relations, dim, rng),
            entity_proj: EmbeddingTable::xavier("entity_proj", num_entities, dim, rng),
            relation_proj: EmbeddingTable::xavier("relation_proj", num_relations, dim, rng),
            dim,
        };
        for i in 0..num_entities {
            model.entities.project_row(i);
        }
        model
    }

    /// Residual `u = h + (w_h·h)·w_r + r − t − (w_t·t)·w_r` plus the scalars
    /// needed for the gradient.
    fn residual(&self, t: &Triple) -> Residual {
        let h = self.entities.row(t.head as usize);
        let tl = self.entities.row(t.tail as usize);
        let r = self.relations.row(t.relation as usize);
        let wh = self.entity_proj.row(t.head as usize);
        let wt = self.entity_proj.row(t.tail as usize);
        let wr = self.relation_proj.row(t.relation as usize);
        let wh_h = dot(wh, h);
        let wt_t = dot(wt, tl);
        let u: Vec<f64> = (0..self.dim)
            .map(|i| h[i] + wh_h * wr[i] + r[i] - tl[i] - wt_t * wr[i])
            .collect();
        Residual { u, wh_h, wt_t }
    }

    /// Project the query side once.
    ///
    /// Tail corruption: `q_i = h_i + (w_h·h)·w_{r,i} + r_i`, residual of
    /// candidate `t` is `q − t − (w_t·t)·w_r`. Head corruption:
    /// `q_i = r_i − t_i − (w_t·t)·w_{r,i}`, residual of candidate `h` is
    /// `h + (w_h·h)·w_r + q`.
    fn fill_query(&self, t: &Triple, side: CorruptionSide, q: &mut [f64]) {
        let r = self.relations.row(t.relation as usize);
        let wr = self.relation_proj.row(t.relation as usize);
        match side {
            CorruptionSide::Tail => {
                let h = self.entities.row(t.head as usize);
                let wh = self.entity_proj.row(t.head as usize);
                let wh_h = dot(wh, h);
                for i in 0..q.len() {
                    q[i] = h[i] + wh_h * wr[i] + r[i];
                }
            }
            CorruptionSide::Head => {
                let tl = self.entities.row(t.tail as usize);
                let wt = self.entity_proj.row(t.tail as usize);
                let wt_t = dot(wt, tl);
                for i in 0..q.len() {
                    q[i] = r[i] - tl[i] - wt_t * wr[i];
                }
            }
        }
    }

    /// Fused per-candidate kernel: one dot with the candidate's projection
    /// vector, then one vectorised residual pass.
    #[inline]
    fn candidate_score(
        q: &[f64],
        wr: &[f64],
        row: &[f64],
        proj: &[f64],
        side: CorruptionSide,
    ) -> f64 {
        let s = dot(proj, row);
        match side {
            CorruptionSide::Tail => -l1_combine(q, row, wr, -1.0, -s),
            CorruptionSide::Head => -l1_combine(q, row, wr, 1.0, s),
        }
    }
}

struct Residual {
    u: Vec<f64>,
    wh_h: f64,
    wt_t: f64,
}

impl KgeModel for TransD {
    fn kind(&self) -> ModelKind {
        ModelKind::TransD
    }

    fn num_entities(&self) -> usize {
        self.entities.rows()
    }

    fn num_relations(&self) -> usize {
        self.relations.rows()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn score(&self, t: &Triple) -> f64 {
        -self.residual(t).u.iter().map(|v| v.abs()).sum::<f64>()
    }

    fn score_candidates(
        &self,
        t: &Triple,
        side: CorruptionSide,
        candidates: &[EntityId],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(candidates.len());
        let wr = self.relation_proj.row(t.relation as usize);
        with_query_scratch(self.dim, |q| {
            self.fill_query(t, side, q);
            for &e in candidates {
                let row = self.entities.row(e as usize);
                let proj = self.entity_proj.row(e as usize);
                out.push(Self::candidate_score(q, wr, row, proj, side));
            }
        });
    }

    fn score_all_into(&self, t: &Triple, side: CorruptionSide, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.entities.rows());
        let wr = self.relation_proj.row(t.relation as usize);
        with_query_scratch(self.dim, |q| {
            self.fill_query(t, side, q);
            for (row, proj) in self.entities.rows_iter().zip(self.entity_proj.rows_iter()) {
                out.push(Self::candidate_score(q, wr, row, proj, side));
            }
        });
    }

    fn accumulate_score_gradient(&self, t: &Triple, coeff: f64, grads: &mut GradientBuffer) {
        // f = −‖u‖₁ with u = h + (w_h·h) w_r + r − t − (w_t·t) w_r.
        // Let s = sign(u); ∂f/∂u = −s.
        //   ∂u/∂h   = I + w_r w_hᵀ        ⇒ ∂f/∂h   = −(s + (w_r·s) w_h)
        //   ∂u/∂t   = −(I + w_r w_tᵀ)     ⇒ ∂f/∂t   = +(s + (w_r·s) w_t)
        //   ∂u/∂r   = I                   ⇒ ∂f/∂r   = −s
        //   ∂u/∂w_h = w_r hᵀ              ⇒ ∂f/∂w_h = −(w_r·s) h
        //   ∂u/∂w_t = −w_r tᵀ             ⇒ ∂f/∂w_t = +(w_r·s) t
        //   ∂u/∂w_r = ((w_h·h) − (w_t·t))I⇒ ∂f/∂w_r = −((w_h·h) − (w_t·t)) s
        let res = self.residual(t);
        let s = signum(&res.u);
        let h = self.entities.row(t.head as usize);
        let tl = self.entities.row(t.tail as usize);
        let wh = self.entity_proj.row(t.head as usize);
        let wt = self.entity_proj.row(t.tail as usize);
        let wr = self.relation_proj.row(t.relation as usize);
        let wr_s = dot(wr, &s);

        let grad_h: Vec<f64> = s.iter().zip(wh).map(|(si, whi)| si + wr_s * whi).collect();
        let grad_t: Vec<f64> = s.iter().zip(wt).map(|(si, wti)| si + wr_s * wti).collect();
        grads.add(ENTITY_TABLE, t.head as usize, &grad_h, -coeff);
        grads.add(ENTITY_TABLE, t.tail as usize, &grad_t, coeff);
        grads.add(RELATION_TABLE, t.relation as usize, &s, -coeff);
        grads.add(ENTITY_PROJ_TABLE, t.head as usize, h, -coeff * wr_s);
        grads.add(ENTITY_PROJ_TABLE, t.tail as usize, tl, coeff * wr_s);
        grads.add(
            RELATION_PROJ_TABLE,
            t.relation as usize,
            &s,
            -coeff * (res.wh_h - res.wt_t),
        );
    }

    fn tables(&self) -> Vec<&EmbeddingTable> {
        vec![
            &self.entities,
            &self.relations,
            &self.entity_proj,
            &self.relation_proj,
        ]
    }

    fn tables_mut(&mut self) -> Vec<&mut EmbeddingTable> {
        vec![
            &mut self.entities,
            &mut self.relations,
            &mut self.entity_proj,
            &mut self.relation_proj,
        ]
    }

    fn parameter_rows(&self, t: &Triple) -> Vec<(TableId, usize)> {
        vec![
            (ENTITY_TABLE, t.head as usize),
            (RELATION_TABLE, t.relation as usize),
            (ENTITY_TABLE, t.tail as usize),
            (ENTITY_PROJ_TABLE, t.head as usize),
            (ENTITY_PROJ_TABLE, t.tail as usize),
            (RELATION_PROJ_TABLE, t.relation as usize),
        ]
    }

    fn apply_constraints(&mut self, touched: &[(TableId, usize)]) {
        for &(table, row) in touched {
            if table == ENTITY_TABLE {
                self.entities.project_row(row);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;

    fn tiny_model() -> TransD {
        let mut rng = seeded_rng(11);
        TransD::new(6, 3, 4, &mut rng)
    }

    #[test]
    fn reduces_to_transe_when_projections_are_zero() {
        let mut m = tiny_model();
        let dim = m.dim();
        for e in 0..6 {
            m.tables_mut()[ENTITY_PROJ_TABLE].set_row(e, &vec![0.0; dim]);
        }
        for r in 0..3 {
            m.tables_mut()[RELATION_PROJ_TABLE].set_row(r, &vec![0.0; dim]);
        }
        m.tables_mut()[ENTITY_TABLE].set_row(0, &[0.2, 0.0, 0.0, 0.0]);
        m.tables_mut()[RELATION_TABLE].set_row(0, &[0.1, 0.0, 0.0, 0.0]);
        m.tables_mut()[ENTITY_TABLE].set_row(1, &[0.3, 0.0, 0.0, 0.0]);
        let s = m.score(&Triple::new(0, 0, 1));
        assert!((s - 0.0).abs() < 1e-12);
    }

    #[test]
    fn projection_changes_the_score() {
        let mut m = tiny_model();
        let base = m.score(&Triple::new(0, 0, 1));
        let dim = m.dim();
        m.tables_mut()[RELATION_PROJ_TABLE].set_row(0, &vec![0.5; dim]);
        m.tables_mut()[ENTITY_PROJ_TABLE].set_row(0, &vec![0.5; dim]);
        let changed = m.score(&Triple::new(0, 0, 1));
        assert!((base - changed).abs() > 1e-9);
    }

    #[test]
    fn four_tables_and_parameter_rows() {
        let m = tiny_model();
        assert_eq!(m.tables().len(), 4);
        assert_eq!(m.num_parameters(), (6 + 3 + 6 + 3) * 4);
        let rows = m.parameter_rows(&Triple::new(1, 2, 4));
        assert_eq!(rows.len(), 6);
        assert!(rows.contains(&(ENTITY_PROJ_TABLE, 1)));
        assert!(rows.contains(&(ENTITY_PROJ_TABLE, 4)));
        assert!(rows.contains(&(RELATION_PROJ_TABLE, 2)));
    }

    #[test]
    fn constraints_touch_only_entity_embeddings() {
        let mut m = tiny_model();
        m.tables_mut()[ENTITY_TABLE].set_row(0, &[3.0, 0.0, 4.0, 0.0]);
        m.tables_mut()[ENTITY_PROJ_TABLE].set_row(0, &[3.0, 0.0, 4.0, 0.0]);
        m.apply_constraints(&[(ENTITY_TABLE, 0), (ENTITY_PROJ_TABLE, 0)]);
        assert!((m.tables()[ENTITY_TABLE].row_norm(0) - 1.0).abs() < 1e-12);
        assert!((m.tables()[ENTITY_PROJ_TABLE].row_norm(0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn kind_is_transd() {
        assert_eq!(tiny_model().kind(), ModelKind::TransD);
    }
}
