//! Knowledge-graph embedding models with analytic gradients.
//!
//! The paper evaluates NSCaching on five scoring functions (its Table III):
//! the translational-distance models TransE, TransH and TransD, and the
//! semantic-matching models DistMult and ComplEx. This crate implements those
//! five plus TransR and RESCAL as extensions, behind a single [`KgeModel`]
//! trait that exposes:
//!
//! * `score(h, r, t)` — the plausibility of a triple (larger = more
//!   plausible; translational models return the *negative* distance so the
//!   convention is uniform);
//! * `score_candidates` / `score_all_into` — the batched candidate-scoring
//!   fast path: query-side work is computed once per call and each candidate
//!   then costs one fused, allocation-free pass over the dimension (see the
//!   [`batch`] module docs for the invariants). The projection models
//!   (TransR, TransD) additionally memoise their per-`(relation, entity)`
//!   projections in the generation-stamped [`projcache`], turning the
//!   per-candidate cost from `O(d²)` into a warm `O(d)` lookup;
//! * `accumulate_score_gradient` — adds `coeff · ∂score/∂θ` into a sparse
//!   [`GradientSink`]: the slab-backed [`GradientArena`] on the training hot
//!   path (its sorted-slot view is what the optimizers in `nscaching-optim`
//!   consume), or the `HashMap`-backed [`GradientBuffer`] reference in the
//!   equivalence suites;
//! * parameter access as a list of [`EmbeddingTable`]s so that optimizers and
//!   serialisation stay model-agnostic.
//!
//! No autodiff framework is used; every gradient is hand-derived and verified
//! against central finite differences in the test-suite (`tests/grad_check.rs`).

pub mod arena;
pub mod batch;
pub mod complex;
pub mod distmult;
pub mod embedding;
pub mod factory;
pub mod gradient;
pub mod loss;
pub mod projcache;
pub mod regularizer;
pub mod rescal;
pub mod scorer;
pub mod transd;
pub mod transe;
pub mod transh;
pub mod transr;

pub use arena::{GradientArena, SparseRows, TableRun, TableRuns};
pub use complex::ComplEx;
pub use distmult::DistMult;
pub use embedding::EmbeddingTable;
pub use factory::{build_model, ModelConfig};
pub use gradient::{GradientBuffer, GradientSink, TableId};
pub use loss::{default_loss, LogisticLoss, Loss, LossKind, MarginRankingLoss, PairGradient};
pub use regularizer::L2Regularizer;
pub use rescal::Rescal;
pub use scorer::{KgeModel, LossType, ModelKind};
pub use transd::TransD;
pub use transe::TransE;
pub use transh::TransH;
pub use transr::TransR;
