//! Model construction from a declarative configuration.

use crate::complex::ComplEx;
use crate::distmult::DistMult;
use crate::rescal::Rescal;
use crate::scorer::{KgeModel, ModelKind};
use crate::transd::TransD;
use crate::transe::TransE;
use crate::transh::TransH;
use crate::transr::TransR;
use nscaching_math::seeded_rng;
use serde::{Deserialize, Serialize};

/// Declarative description of a model to build.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Which scoring function to use.
    pub kind: ModelKind,
    /// Embedding dimension `d` (complex dimension for ComplEx).
    pub dim: usize,
    /// Seed used for Xavier initialisation.
    pub seed: u64,
}

impl ModelConfig {
    /// A configuration with the workspace defaults (`d = 32`).
    pub fn new(kind: ModelKind) -> Self {
        Self {
            kind,
            dim: 32,
            seed: 0,
        }
    }

    /// Set the embedding dimension.
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Set the initialisation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Build a freshly initialised model for the given vocabulary sizes.
pub fn build_model(
    config: &ModelConfig,
    num_entities: usize,
    num_relations: usize,
) -> Box<dyn KgeModel> {
    let mut rng = seeded_rng(config.seed);
    let d = config.dim;
    match config.kind {
        ModelKind::TransE => Box::new(TransE::new(num_entities, num_relations, d, &mut rng)),
        ModelKind::TransH => Box::new(TransH::new(num_entities, num_relations, d, &mut rng)),
        ModelKind::TransD => Box::new(TransD::new(num_entities, num_relations, d, &mut rng)),
        ModelKind::TransR => Box::new(TransR::new(num_entities, num_relations, d, &mut rng)),
        ModelKind::DistMult => Box::new(DistMult::new(num_entities, num_relations, d, &mut rng)),
        ModelKind::ComplEx => Box::new(ComplEx::new(num_entities, num_relations, d, &mut rng)),
        ModelKind::Rescal => Box::new(Rescal::new(num_entities, num_relations, d, &mut rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_kg::Triple;

    #[test]
    fn every_kind_builds_with_matching_metadata() {
        for kind in ModelKind::ALL {
            let config = ModelConfig::new(kind).with_dim(6).with_seed(3);
            let model = build_model(&config, 11, 4);
            assert_eq!(model.kind(), kind, "{kind:?}");
            assert_eq!(model.num_entities(), 11);
            assert_eq!(model.num_relations(), 4);
            assert_eq!(model.dim(), 6);
            assert!(model.num_parameters() > 0);
            // scoring an arbitrary triple must be finite
            let s = model.score(&Triple::new(0, 0, 1));
            assert!(s.is_finite(), "{kind:?} produced a non-finite score");
        }
    }

    #[test]
    fn same_seed_gives_identical_models() {
        let config = ModelConfig::new(ModelKind::TransE)
            .with_dim(8)
            .with_seed(77);
        let a = build_model(&config, 20, 3);
        let b = build_model(&config, 20, 3);
        let t = Triple::new(3, 1, 7);
        assert_eq!(a.score(&t), b.score(&t));
    }

    #[test]
    fn different_seeds_give_different_models() {
        let a = build_model(&ModelConfig::new(ModelKind::TransE).with_seed(1), 20, 3);
        let b = build_model(&ModelConfig::new(ModelKind::TransE).with_seed(2), 20, 3);
        let t = Triple::new(3, 1, 7);
        assert_ne!(a.score(&t), b.score(&t));
    }

    #[test]
    fn builder_setters_apply() {
        let c = ModelConfig::new(ModelKind::ComplEx)
            .with_dim(12)
            .with_seed(9);
        assert_eq!(c.dim, 12);
        assert_eq!(c.seed, 9);
        assert_eq!(c.kind, ModelKind::ComplEx);
    }
}
