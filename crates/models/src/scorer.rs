//! The scoring-function trait every embedding model implements.

use crate::embedding::EmbeddingTable;
use crate::gradient::{GradientSink, TableId};
use nscaching_kg::{CorruptionSide, EntityId, Triple};
use serde::{Deserialize, Serialize};

/// Index of the entity-embedding table in every model's `tables()` list.
pub const ENTITY_TABLE: TableId = 0;
/// Index of the relation-embedding table in every model's `tables()` list.
pub const RELATION_TABLE: TableId = 1;

/// The scoring functions implemented by this crate (Table III of the paper
/// plus the TransR and RESCAL extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// `‖h + r − t‖₁` (negated) — Bordes et al., 2013.
    TransE,
    /// Hyperplane-projected TransE — Wang et al., 2014.
    TransH,
    /// Dynamic-mapping-matrix projection — Ji et al., 2015.
    TransD,
    /// Relation-specific projection matrix — Lin et al., 2015.
    TransR,
    /// `h · diag(r) · t` — Yang et al., 2015.
    DistMult,
    /// `Re(h · diag(r) · conj(t))` — Trouillon et al., 2016.
    ComplEx,
    /// `hᵀ M_r t` — Nickel et al., 2011.
    Rescal,
}

impl ModelKind {
    /// All model kinds, in the order used by the experiment tables.
    pub const ALL: [ModelKind; 7] = [
        ModelKind::TransE,
        ModelKind::TransH,
        ModelKind::TransD,
        ModelKind::TransR,
        ModelKind::DistMult,
        ModelKind::ComplEx,
        ModelKind::Rescal,
    ];

    /// The five scoring functions used in the paper's evaluation.
    pub const PAPER: [ModelKind; 5] = [
        ModelKind::TransE,
        ModelKind::TransH,
        ModelKind::TransD,
        ModelKind::DistMult,
        ModelKind::ComplEx,
    ];

    /// Human readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::TransE => "TransE",
            ModelKind::TransH => "TransH",
            ModelKind::TransD => "TransD",
            ModelKind::TransR => "TransR",
            ModelKind::DistMult => "DistMult",
            ModelKind::ComplEx => "ComplEx",
            ModelKind::Rescal => "RESCAL",
        }
    }

    /// Whether the model is a translational-distance model (margin loss) or a
    /// semantic-matching model (logistic loss), following Section II of the
    /// paper.
    pub fn loss_type(&self) -> LossType {
        match self {
            ModelKind::TransE | ModelKind::TransH | ModelKind::TransD | ModelKind::TransR => {
                LossType::MarginRanking
            }
            ModelKind::DistMult | ModelKind::ComplEx | ModelKind::Rescal => LossType::Logistic,
        }
    }
}

/// Which of the paper's two training objectives a model uses (Eq. (1) vs (2)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LossType {
    /// Pairwise margin ranking loss `[γ − f(pos) + f(neg)]₊` (Eq. (1)).
    MarginRanking,
    /// Pointwise logistic loss `ℓ(+1, f(pos)) + ℓ(−1, f(neg))` (Eq. (2)).
    Logistic,
}

/// A knowledge-graph embedding model: parameters plus a differentiable
/// scoring function.
///
/// Larger scores always mean "more plausible"; translational models return
/// the negative distance so that this convention holds uniformly, exactly as
/// in the paper's Eq. (1).
pub trait KgeModel: Send + Sync {
    /// Which scoring function this is.
    fn kind(&self) -> ModelKind;

    /// Entity vocabulary size.
    fn num_entities(&self) -> usize;

    /// Relation vocabulary size.
    fn num_relations(&self) -> usize;

    /// Embedding dimension `d` (for ComplEx this is the complex dimension;
    /// the real parameter count per entity is `2d`).
    fn dim(&self) -> usize;

    /// Plausibility score `f(h, r, t)`.
    fn score(&self, triple: &Triple) -> f64;

    /// Accumulate `coeff · ∂f(h,r,t)/∂θ` into `grads` (the training engine
    /// passes a `GradientArena`; the equivalence suites a `GradientBuffer`).
    fn accumulate_score_gradient(&self, triple: &Triple, coeff: f64, grads: &mut dyn GradientSink);

    /// The parameter tables, in a fixed order starting with
    /// `[ENTITY_TABLE, RELATION_TABLE, ...]`.
    fn tables(&self) -> Vec<&EmbeddingTable>;

    /// Mutable access to the parameter tables, same order as [`Self::tables`].
    fn tables_mut(&mut self) -> Vec<&mut EmbeddingTable>;

    /// Mutable access to a single parameter table.
    ///
    /// The optimizers' apply walk resolves each touched `(table, row)` pair
    /// through this instead of materialising the whole [`Self::tables_mut`]
    /// list, keeping the per-batch optimizer step free of heap allocation.
    /// Models override the default with a direct field match.
    fn table_mut(&mut self, table: TableId) -> &mut EmbeddingTable {
        self.tables_mut().swap_remove(table)
    }

    /// Parameter rows `(table, row)` involved in scoring `triple`; used for
    /// per-example L2 regularisation and constraint application.
    fn parameter_rows(&self, triple: &Triple) -> Vec<(TableId, usize)>;

    /// Re-impose model-specific constraints (unit-ball entity norms, unit
    /// normal vectors, …) on the given rows after an optimizer step.
    fn apply_constraints(&mut self, touched: &[(TableId, usize)]);

    /// Deep-copy the model behind the trait object.
    ///
    /// The clone owns independent parameter tables (and, for the
    /// projection-cached models, a fresh cache identity — see
    /// `projcache`), so mutating either copy never aliases the other. The
    /// pipelined trainer uses this to maintain the pre-step parameter
    /// snapshot that workers sample against while the main thread applies
    /// the previous batch.
    fn clone_box(&self) -> Box<dyn KgeModel>;

    /// Default loss for this model, derived from its kind.
    fn loss_type(&self) -> LossType {
        self.kind().loss_type()
    }

    /// Score each entity in `candidates` substituted at `side` of `triple`,
    /// appending one score per candidate to `out` (which is cleared first).
    ///
    /// This is the batched fast path used by the NSCaching sampler, the
    /// KBGAN/IGAN generators and the link-prediction ranker. Every model in
    /// this crate overrides it to hoist the query-side work (everything that
    /// depends only on the two fixed elements of `triple`) out of the
    /// candidate loop, so each candidate costs one fused, allocation-free
    /// pass over the embedding dimension.
    ///
    /// # Invariants
    ///
    /// * `out.len() == candidates.len()` on return, in candidate order.
    /// * Each score equals `self.score(&triple.corrupted(side, e))` up to
    ///   floating-point reassociation (within `1e-12` — enforced by the
    ///   equivalence proptests in `tests/batch_equivalence.rs`).
    /// * Candidate lists may be empty, contain duplicates, or contain the
    ///   positive's own entity; no deduplication or masking happens here.
    /// * Steady-state calls perform no heap allocation beyond growing `out`
    ///   and a thread-local query-context buffer to their high-water marks.
    fn score_candidates(
        &self,
        triple: &Triple,
        side: CorruptionSide,
        candidates: &[EntityId],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(candidates.len());
        for &e in candidates {
            out.push(self.score(&triple.corrupted(side, e)));
        }
    }

    /// Score *every* entity substituted at `side` of `triple` into `out`
    /// (cleared first; `out.len() == num_entities()` on return).
    ///
    /// Semantically identical to calling [`Self::score_candidates`] with
    /// `0..num_entities()`, but models override it to stream the entity table
    /// row-by-row instead of gathering through an index list. Same
    /// equivalence and allocation invariants as [`Self::score_candidates`].
    fn score_all_into(&self, triple: &Triple, side: CorruptionSide, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.num_entities());
        for e in 0..self.num_entities() as u32 {
            out.push(self.score(&triple.corrupted(side, e)));
        }
    }

    /// Score every entity substituted at `side` of `triple`.
    ///
    /// Allocating convenience wrapper around [`Self::score_all_into`]; hot
    /// paths should call the `_into` variant with a reused buffer instead.
    fn score_all(&self, triple: &Triple, side: CorruptionSide) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_entities());
        self.score_all_into(triple, side, &mut out);
        out
    }

    /// Total number of scalar parameters.
    fn num_parameters(&self) -> usize {
        self.tables().iter().map(|t| t.num_parameters()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_type_split_matches_the_paper() {
        assert_eq!(ModelKind::TransE.loss_type(), LossType::MarginRanking);
        assert_eq!(ModelKind::TransH.loss_type(), LossType::MarginRanking);
        assert_eq!(ModelKind::TransD.loss_type(), LossType::MarginRanking);
        assert_eq!(ModelKind::TransR.loss_type(), LossType::MarginRanking);
        assert_eq!(ModelKind::DistMult.loss_type(), LossType::Logistic);
        assert_eq!(ModelKind::ComplEx.loss_type(), LossType::Logistic);
        assert_eq!(ModelKind::Rescal.loss_type(), LossType::Logistic);
    }

    #[test]
    fn names_are_the_paper_names() {
        assert_eq!(ModelKind::TransE.name(), "TransE");
        assert_eq!(ModelKind::ComplEx.name(), "ComplEx");
        assert_eq!(ModelKind::Rescal.name(), "RESCAL");
    }

    #[test]
    fn paper_subset_is_five_models() {
        assert_eq!(ModelKind::PAPER.len(), 5);
        assert_eq!(ModelKind::ALL.len(), 7);
    }
}
