//! TransR (Lin et al., AAAI 2015):
//! `f(h,r,t) = −‖M_r h + r − M_r t‖₁` with a relation-specific projection
//! matrix `M_r ∈ ℝ^{d×d}`.
//!
//! TransR is not part of the paper's five evaluated scoring functions but is
//! listed among the translational models in its Section II-C; it is included
//! here as an extension and exercised by the ablation benches.

use crate::batch::with_query_scratch;
use crate::embedding::EmbeddingTable;
use crate::gradient::{GradientBuffer, TableId};
use crate::scorer::{KgeModel, ModelKind, ENTITY_TABLE, RELATION_TABLE};
use nscaching_kg::{CorruptionSide, EntityId, Triple};
use nscaching_math::vecops::{dot, signum};
use rand::Rng;

/// Index of the relation-matrix table (each row is a flattened `d×d` matrix).
pub const MATRIX_TABLE: TableId = 2;

/// TransR with L1 dissimilarity.
#[derive(Debug, Clone)]
pub struct TransR {
    entities: EmbeddingTable,
    relations: EmbeddingTable,
    matrices: EmbeddingTable,
    dim: usize,
}

impl TransR {
    /// Create a TransR model. Relation matrices are initialised to the
    /// identity (the standard warm start) plus small Xavier noise.
    pub fn new<R: Rng + ?Sized>(
        num_entities: usize,
        num_relations: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let entities = EmbeddingTable::xavier("entity", num_entities, dim, rng);
        let relations = EmbeddingTable::xavier("relation", num_relations, dim, rng);
        let mut matrices = EmbeddingTable::xavier("relation_matrix", num_relations, dim * dim, rng);
        for r in 0..num_relations {
            let row = matrices.row_mut(r);
            for i in 0..dim {
                // damp the noise and add the identity
                for j in 0..dim {
                    row[i * dim + j] *= 0.1;
                }
                row[i * dim + i] += 1.0;
            }
        }
        let mut model = Self {
            entities,
            relations,
            matrices,
            dim,
        };
        for i in 0..num_entities {
            model.entities.project_row(i);
        }
        model
    }

    /// `M_r v` for the matrix of relation `r`.
    fn project(&self, relation: u32, v: &[f64]) -> Vec<f64> {
        let m = self.matrices.row(relation as usize);
        let d = self.dim;
        (0..d).map(|i| dot(&m[i * d..(i + 1) * d], v)).collect()
    }

    fn residual(&self, t: &Triple) -> Vec<f64> {
        let h = self.entities.row(t.head as usize);
        let tl = self.entities.row(t.tail as usize);
        let r = self.relations.row(t.relation as usize);
        let hp = self.project(t.relation, h);
        let tp = self.project(t.relation, tl);
        (0..self.dim).map(|i| hp[i] + r[i] - tp[i]).collect()
    }

    /// Project the query side once: `q = M_r·h + r` for tail corruption,
    /// `q = r − M_r·t` for head corruption. The candidate still needs its own
    /// `M_r·e` product, so the per-candidate kernel stays `O(d²)` but fuses
    /// the matrix-vector product with the L1 accumulation and skips the
    /// query-side projection entirely.
    fn fill_query(&self, t: &Triple, side: CorruptionSide, q: &mut [f64]) {
        let m = self.matrices.row(t.relation as usize);
        let r = self.relations.row(t.relation as usize);
        let d = self.dim;
        match side {
            CorruptionSide::Tail => {
                let h = self.entities.row(t.head as usize);
                for i in 0..d {
                    q[i] = dot(&m[i * d..(i + 1) * d], h) + r[i];
                }
            }
            CorruptionSide::Head => {
                let tl = self.entities.row(t.tail as usize);
                for i in 0..d {
                    q[i] = r[i] - dot(&m[i * d..(i + 1) * d], tl);
                }
            }
        }
    }

    /// Fused `O(d²)` per-candidate kernel.
    #[inline]
    fn candidate_score(q: &[f64], m: &[f64], row: &[f64], side: CorruptionSide) -> f64 {
        let d = q.len();
        let mut dist = 0.0;
        match side {
            CorruptionSide::Tail => {
                for i in 0..d {
                    dist += (q[i] - dot(&m[i * d..(i + 1) * d], row)).abs();
                }
            }
            CorruptionSide::Head => {
                for i in 0..d {
                    dist += (dot(&m[i * d..(i + 1) * d], row) + q[i]).abs();
                }
            }
        }
        -dist
    }
}

impl KgeModel for TransR {
    fn kind(&self) -> ModelKind {
        ModelKind::TransR
    }

    fn num_entities(&self) -> usize {
        self.entities.rows()
    }

    fn num_relations(&self) -> usize {
        self.relations.rows()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn score(&self, t: &Triple) -> f64 {
        -self.residual(t).iter().map(|v| v.abs()).sum::<f64>()
    }

    fn score_candidates(
        &self,
        t: &Triple,
        side: CorruptionSide,
        candidates: &[EntityId],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(candidates.len());
        let m = self.matrices.row(t.relation as usize);
        with_query_scratch(self.dim, |q| {
            self.fill_query(t, side, q);
            for &e in candidates {
                let row = self.entities.row(e as usize);
                out.push(Self::candidate_score(q, m, row, side));
            }
        });
    }

    fn score_all_into(&self, t: &Triple, side: CorruptionSide, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.entities.rows());
        let m = self.matrices.row(t.relation as usize);
        with_query_scratch(self.dim, |q| {
            self.fill_query(t, side, q);
            for row in self.entities.rows_iter() {
                out.push(Self::candidate_score(q, m, row, side));
            }
        });
    }

    fn accumulate_score_gradient(&self, t: &Triple, coeff: f64, grads: &mut GradientBuffer) {
        // f = −‖u‖₁, u = M_r(h − t) + r, s = sign(u).
        //   ∂f/∂h   = −M_rᵀ s
        //   ∂f/∂t   = +M_rᵀ s
        //   ∂f/∂r   = −s
        //   ∂f/∂M_r = −s (h − t)ᵀ   (flattened row-major)
        let u = self.residual(t);
        let s = signum(&u);
        let d = self.dim;
        let m = self.matrices.row(t.relation as usize);
        let h = self.entities.row(t.head as usize);
        let tl = self.entities.row(t.tail as usize);

        // M_rᵀ s
        let mt_s: Vec<f64> = (0..d)
            .map(|j| (0..d).map(|i| m[i * d + j] * s[i]).sum())
            .collect();
        grads.add(ENTITY_TABLE, t.head as usize, &mt_s, -coeff);
        grads.add(ENTITY_TABLE, t.tail as usize, &mt_s, coeff);
        grads.add(RELATION_TABLE, t.relation as usize, &s, -coeff);

        let x: Vec<f64> = h.iter().zip(tl).map(|(a, b)| a - b).collect();
        let mut grad_m = vec![0.0; d * d];
        for i in 0..d {
            for j in 0..d {
                grad_m[i * d + j] = s[i] * x[j];
            }
        }
        grads.add(MATRIX_TABLE, t.relation as usize, &grad_m, -coeff);
    }

    fn tables(&self) -> Vec<&EmbeddingTable> {
        vec![&self.entities, &self.relations, &self.matrices]
    }

    fn tables_mut(&mut self) -> Vec<&mut EmbeddingTable> {
        vec![&mut self.entities, &mut self.relations, &mut self.matrices]
    }

    fn parameter_rows(&self, t: &Triple) -> Vec<(TableId, usize)> {
        vec![
            (ENTITY_TABLE, t.head as usize),
            (RELATION_TABLE, t.relation as usize),
            (ENTITY_TABLE, t.tail as usize),
            (MATRIX_TABLE, t.relation as usize),
        ]
    }

    fn apply_constraints(&mut self, touched: &[(TableId, usize)]) {
        for &(table, row) in touched {
            if table == ENTITY_TABLE {
                self.entities.project_row(row);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;

    fn tiny_model() -> TransR {
        let mut rng = seeded_rng(13);
        TransR::new(5, 2, 3, &mut rng)
    }

    #[test]
    fn identity_matrix_reduces_to_transe() {
        let mut m = tiny_model();
        let d = m.dim();
        let mut identity = vec![0.0; d * d];
        for i in 0..d {
            identity[i * d + i] = 1.0;
        }
        m.tables_mut()[MATRIX_TABLE].set_row(0, &identity);
        m.tables_mut()[ENTITY_TABLE].set_row(0, &[0.2, 0.1, 0.0]);
        m.tables_mut()[RELATION_TABLE].set_row(0, &[0.1, -0.1, 0.3]);
        m.tables_mut()[ENTITY_TABLE].set_row(1, &[0.3, 0.0, 0.3]);
        assert!((m.score(&Triple::new(0, 0, 1)) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_row_length_is_d_squared() {
        let m = tiny_model();
        assert_eq!(m.tables()[MATRIX_TABLE].dim(), 9);
        assert_eq!(m.num_parameters(), 5 * 3 + 2 * 3 + 2 * 9);
    }

    #[test]
    fn different_matrices_give_different_scores() {
        let mut m = tiny_model();
        let before = m.score(&Triple::new(0, 0, 1));
        let d = m.dim();
        m.tables_mut()[MATRIX_TABLE].set_row(0, &vec![0.33; d * d]);
        let after = m.score(&Triple::new(0, 0, 1));
        assert!((before - after).abs() > 1e-9);
    }

    #[test]
    fn parameter_rows_include_matrix() {
        let m = tiny_model();
        let rows = m.parameter_rows(&Triple::new(0, 1, 2));
        assert!(rows.contains(&(MATRIX_TABLE, 1)));
    }
}
