//! TransR (Lin et al., AAAI 2015):
//! `f(h,r,t) = −‖M_r h + r − M_r t‖₁` with a relation-specific projection
//! matrix `M_r ∈ ℝ^{d×d}`.
//!
//! TransR is not part of the paper's five evaluated scoring functions but is
//! listed among the translational models in its Section II-C; it is included
//! here as an extension and exercised by the ablation benches.
//!
//! # Projection cache
//!
//! Batched scoring goes through the shared relation-projection cache of
//! [`crate::projcache`]: `M_r·e` is memoised per `(relation, entity)` in a
//! process-wide panel registry, so a warm candidate costs one `O(d)` L1 pass
//! instead of the dense `O(d²)` matrix-vector product — and a panel warmed
//! by one thread is warm for every trainer shard and serving worker. The
//! **invalidation contract**:
//!
//! * every cache entry is stamped with
//!   `entities.version() + matrices.version()` at fill time;
//! * both versions increase on *any* mutable access to the respective table
//!   (optimizer steps through `row_mut`, constraint projection, `set_row`,
//!   `data_mut`), so after an embedding update every stamp mismatches and
//!   the next scoring call refills what it touches — there is no code path
//!   that mutates parameters without moving a version;
//! * cold entries are filled with exactly the arithmetic of the uncached
//!   kernel ([`TransR::score_candidates_uncached`]), so scores are
//!   bit-for-bit independent of warm/cold history, and the batched scores
//!   agree with the scalar [`KgeModel::score`] within the usual `1e-12`
//!   reassociation bound (pinned by `tests/batch_equivalence.rs`).
//!
//! Cold candidates are filled through a blocked `M_r`-panel loop
//! ([`PANEL_ROWS`] matrix rows at a time across all cold candidates) so the
//! matrix panel stays cache-resident while candidate rows stream past it.

use crate::batch::with_query_scratch;
use crate::embedding::EmbeddingTable;
use crate::gradient::{GradientSink, TableId};
use crate::projcache::{
    next_projection_model_id, projection_panel, query_from_projection, translational_score,
    with_panel_scratch, PanelGuard,
};
use crate::scorer::{KgeModel, ModelKind, ENTITY_TABLE, RELATION_TABLE};
use nscaching_kg::{CorruptionSide, EntityId, Triple};
use nscaching_math::vecops::{dot, signum};
use rand::Rng;

/// Index of the relation-matrix table (each row is a flattened `d×d` matrix).
pub const MATRIX_TABLE: TableId = 2;

/// Matrix rows per panel of the blocked cold-candidate fill: 8 rows × d
/// doubles stay L1-resident across the entire cold-candidate sweep.
const PANEL_ROWS: usize = 8;

/// TransR with L1 dissimilarity.
#[derive(Debug)]
pub struct TransR {
    entities: EmbeddingTable,
    relations: EmbeddingTable,
    matrices: EmbeddingTable,
    dim: usize,
    /// Projection-cache identity; unique per instance (clones re-draw it).
    cache_id: u64,
}

impl Clone for TransR {
    fn clone(&self) -> Self {
        Self {
            entities: self.entities.clone(),
            relations: self.relations.clone(),
            matrices: self.matrices.clone(),
            dim: self.dim,
            // A clone diverges from the original on its first update, so it
            // must never share cached projections with it.
            cache_id: next_projection_model_id(),
        }
    }
}

impl TransR {
    /// Create a TransR model. Relation matrices are initialised to the
    /// identity (the standard warm start) plus small Xavier noise.
    pub fn new<R: Rng + ?Sized>(
        num_entities: usize,
        num_relations: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let entities = EmbeddingTable::xavier("entity", num_entities, dim, rng);
        let relations = EmbeddingTable::xavier("relation", num_relations, dim, rng);
        let mut matrices = EmbeddingTable::xavier("relation_matrix", num_relations, dim * dim, rng);
        for r in 0..num_relations {
            let row = matrices.row_mut(r);
            for i in 0..dim {
                // damp the noise and add the identity
                for j in 0..dim {
                    row[i * dim + j] *= 0.1;
                }
                row[i * dim + i] += 1.0;
            }
        }
        let mut model = Self {
            entities,
            relations,
            matrices,
            dim,
            cache_id: next_projection_model_id(),
        };
        for i in 0..num_entities {
            model.entities.project_row(i);
        }
        model
    }

    /// `M_r v` for the matrix of relation `r`.
    fn project(&self, relation: u32, v: &[f64]) -> Vec<f64> {
        let m = self.matrices.row(relation as usize);
        let d = self.dim;
        (0..d).map(|i| dot(&m[i * d..(i + 1) * d], v)).collect()
    }

    fn residual(&self, t: &Triple) -> Vec<f64> {
        let h = self.entities.row(t.head as usize);
        let tl = self.entities.row(t.tail as usize);
        let r = self.relations.row(t.relation as usize);
        let hp = self.project(t.relation, h);
        let tp = self.project(t.relation, tl);
        (0..self.dim).map(|i| hp[i] + r[i] - tp[i]).collect()
    }

    /// Project the query side once: `q = M_r·h + r` for tail corruption,
    /// `q = r − M_r·t` for head corruption. The candidate still needs its own
    /// `M_r·e` product, so the per-candidate kernel stays `O(d²)` but fuses
    /// the matrix-vector product with the L1 accumulation and skips the
    /// query-side projection entirely.
    fn fill_query(&self, t: &Triple, side: CorruptionSide, q: &mut [f64]) {
        let m = self.matrices.row(t.relation as usize);
        let r = self.relations.row(t.relation as usize);
        let d = self.dim;
        match side {
            CorruptionSide::Tail => {
                let h = self.entities.row(t.head as usize);
                for i in 0..d {
                    q[i] = dot(&m[i * d..(i + 1) * d], h) + r[i];
                }
            }
            CorruptionSide::Head => {
                let tl = self.entities.row(t.tail as usize);
                for i in 0..d {
                    q[i] = r[i] - dot(&m[i * d..(i + 1) * d], tl);
                }
            }
        }
    }

    /// Fused `O(d²)` per-candidate kernel of the uncached reference path.
    #[inline]
    fn candidate_score_uncached(q: &[f64], m: &[f64], row: &[f64], side: CorruptionSide) -> f64 {
        let d = q.len();
        let mut dist = 0.0;
        match side {
            CorruptionSide::Tail => {
                for i in 0..d {
                    dist += (q[i] - dot(&m[i * d..(i + 1) * d], row)).abs();
                }
            }
            CorruptionSide::Head => {
                for i in 0..d {
                    dist += (dot(&m[i * d..(i + 1) * d], row) + q[i]).abs();
                }
            }
        }
        -dist
    }

    /// Combined source-table version the projection cache stamps against.
    #[inline]
    fn projection_version(&self) -> u64 {
        self.entities.version() + self.matrices.version()
    }

    /// `M_r·e` into `out` — per-element exactly the panel fill's dot
    /// products, so the loser-fallback inline projection is bit-identical
    /// to a warm panel row.
    #[inline]
    fn project_row_into(m: &[f64], row: &[f64], out: &mut [f64]) {
        let d = out.len();
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = dot(&m[i * d..(i + 1) * d], row);
        }
    }

    /// Fill every slot this thread claimed with `M_r·e`, blocked by
    /// `M_r`-panel: the outer loop walks [`PANEL_ROWS`] matrix rows at a
    /// time and the inner loop sweeps all claimed candidates, so a panel is
    /// loaded once per sweep instead of once per candidate. Each dot product
    /// is exactly the uncached kernel's, keeping the cache value-transparent.
    /// Publishes the batch at the end, making it warm for every thread.
    fn fill_claimed(&self, panel: &PanelGuard, m: &[f64], cold: &[EntityId]) {
        let d = self.dim;
        for i0 in (0..d).step_by(PANEL_ROWS) {
            let i1 = (i0 + PANEL_ROWS).min(d);
            for &e in cold {
                let row = self.entities.row(e as usize);
                // SAFETY: `cold` holds exactly the slots this thread won via
                // `claim_cold`, still unpublished.
                let slot = unsafe { panel.claimed_slot(e as usize) };
                for i in i0..i1 {
                    slot[i] = dot(&m[i * d..(i + 1) * d], row);
                }
            }
        }
        panel.publish(cold);
    }

    /// The retired fused batched path, kept as the measured baseline of the
    /// `transr_projection` bench and the equivalence oracle of the projection
    /// cache's tests: query-side projection hoisted, but every candidate
    /// still pays the dense `O(d²)` matrix-vector product.
    pub fn score_candidates_uncached(
        &self,
        t: &Triple,
        side: CorruptionSide,
        candidates: &[EntityId],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(candidates.len());
        let m = self.matrices.row(t.relation as usize);
        with_query_scratch(self.dim, |q| {
            self.fill_query(t, side, q);
            for &e in candidates {
                let row = self.entities.row(e as usize);
                out.push(Self::candidate_score_uncached(q, m, row, side));
            }
        });
    }
}

impl KgeModel for TransR {
    fn kind(&self) -> ModelKind {
        ModelKind::TransR
    }

    fn num_entities(&self) -> usize {
        self.entities.rows()
    }

    fn num_relations(&self) -> usize {
        self.relations.rows()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn score(&self, t: &Triple) -> f64 {
        -self.residual(t).iter().map(|v| v.abs()).sum::<f64>()
    }

    fn score_candidates(
        &self,
        t: &Triple,
        side: CorruptionSide,
        candidates: &[EntityId],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(candidates.len());
        let m = self.matrices.row(t.relation as usize);
        let query_entity = match side {
            CorruptionSide::Tail => t.head,
            CorruptionSide::Head => t.tail,
        };
        with_query_scratch(self.dim, |q| {
            with_panel_scratch(self.dim, |cold, fallback| {
                let panel = projection_panel(
                    self.cache_id,
                    t.relation,
                    self.entities.rows(),
                    self.dim,
                    self.projection_version(),
                );
                // Pass 1: one blocked fill warms the query-side entity and
                // every cold candidate this thread won the claim for
                // (duplicates are claimed at most once).
                panel.claim_cold(
                    std::iter::once(query_entity).chain(candidates.iter().copied()),
                    cold,
                );
                self.fill_claimed(&panel, m, cold);
                let r = self.relations.row(t.relation as usize);
                let p = panel.row_or_compute(query_entity as usize, fallback, |buf| {
                    Self::project_row_into(m, self.entities.row(query_entity as usize), buf)
                });
                query_from_projection(side, p, r, q);
                // Pass 2: score from the shared panel, computing inline when
                // another thread still owns a slot's in-flight fill.
                for &e in candidates {
                    let p = panel.row_or_compute(e as usize, fallback, |buf| {
                        Self::project_row_into(m, self.entities.row(e as usize), buf)
                    });
                    out.push(translational_score(side, q, p));
                }
            });
        });
    }

    fn score_all_into(&self, t: &Triple, side: CorruptionSide, out: &mut Vec<f64>) {
        out.clear();
        let n = self.entities.rows();
        out.reserve(n);
        let m = self.matrices.row(t.relation as usize);
        let query_entity = match side {
            CorruptionSide::Tail => t.head,
            CorruptionSide::Head => t.tail,
        };
        with_query_scratch(self.dim, |q| {
            with_panel_scratch(self.dim, |cold, fallback| {
                let panel = projection_panel(
                    self.cache_id,
                    t.relation,
                    n,
                    self.dim,
                    self.projection_version(),
                );
                panel.claim_cold(0..n as EntityId, cold);
                self.fill_claimed(&panel, m, cold);
                let r = self.relations.row(t.relation as usize);
                let p = panel.row_or_compute(query_entity as usize, fallback, |buf| {
                    Self::project_row_into(m, self.entities.row(query_entity as usize), buf)
                });
                query_from_projection(side, p, r, q);
                for e in 0..n {
                    let p = panel.row_or_compute(e, fallback, |buf| {
                        Self::project_row_into(m, self.entities.row(e), buf)
                    });
                    out.push(translational_score(side, q, p));
                }
            });
        });
    }

    fn accumulate_score_gradient(&self, t: &Triple, coeff: f64, grads: &mut dyn GradientSink) {
        // f = −‖u‖₁, u = M_r(h − t) + r, s = sign(u).
        //   ∂f/∂h   = −M_rᵀ s
        //   ∂f/∂t   = +M_rᵀ s
        //   ∂f/∂r   = −s
        //   ∂f/∂M_r = −s (h − t)ᵀ   (flattened row-major)
        let u = self.residual(t);
        let s = signum(&u);
        let d = self.dim;
        let m = self.matrices.row(t.relation as usize);
        let h = self.entities.row(t.head as usize);
        let tl = self.entities.row(t.tail as usize);

        // M_rᵀ s
        let mt_s: Vec<f64> = (0..d)
            .map(|j| (0..d).map(|i| m[i * d + j] * s[i]).sum())
            .collect();
        grads.add(ENTITY_TABLE, t.head as usize, &mt_s, -coeff);
        grads.add(ENTITY_TABLE, t.tail as usize, &mt_s, coeff);
        grads.add(RELATION_TABLE, t.relation as usize, &s, -coeff);

        let x: Vec<f64> = h.iter().zip(tl).map(|(a, b)| a - b).collect();
        let mut grad_m = vec![0.0; d * d];
        for i in 0..d {
            for j in 0..d {
                grad_m[i * d + j] = s[i] * x[j];
            }
        }
        grads.add(MATRIX_TABLE, t.relation as usize, &grad_m, -coeff);
    }

    fn tables(&self) -> Vec<&EmbeddingTable> {
        vec![&self.entities, &self.relations, &self.matrices]
    }

    fn tables_mut(&mut self) -> Vec<&mut EmbeddingTable> {
        vec![&mut self.entities, &mut self.relations, &mut self.matrices]
    }

    fn table_mut(&mut self, table: TableId) -> &mut EmbeddingTable {
        match table {
            ENTITY_TABLE => &mut self.entities,
            RELATION_TABLE => &mut self.relations,
            MATRIX_TABLE => &mut self.matrices,
            _ => panic!("TransR has no table {table}"),
        }
    }

    fn parameter_rows(&self, t: &Triple) -> Vec<(TableId, usize)> {
        vec![
            (ENTITY_TABLE, t.head as usize),
            (RELATION_TABLE, t.relation as usize),
            (ENTITY_TABLE, t.tail as usize),
            (MATRIX_TABLE, t.relation as usize),
        ]
    }

    fn apply_constraints(&mut self, touched: &[(TableId, usize)]) {
        for &(table, row) in touched {
            if table == ENTITY_TABLE {
                self.entities.project_row(row);
            }
        }
    }

    fn clone_box(&self) -> Box<dyn KgeModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;

    fn tiny_model() -> TransR {
        let mut rng = seeded_rng(13);
        TransR::new(5, 2, 3, &mut rng)
    }

    #[test]
    fn identity_matrix_reduces_to_transe() {
        let mut m = tiny_model();
        let d = m.dim();
        let mut identity = vec![0.0; d * d];
        for i in 0..d {
            identity[i * d + i] = 1.0;
        }
        m.tables_mut()[MATRIX_TABLE].set_row(0, &identity);
        m.tables_mut()[ENTITY_TABLE].set_row(0, &[0.2, 0.1, 0.0]);
        m.tables_mut()[RELATION_TABLE].set_row(0, &[0.1, -0.1, 0.3]);
        m.tables_mut()[ENTITY_TABLE].set_row(1, &[0.3, 0.0, 0.3]);
        assert!((m.score(&Triple::new(0, 0, 1)) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_row_length_is_d_squared() {
        let m = tiny_model();
        assert_eq!(m.tables()[MATRIX_TABLE].dim(), 9);
        assert_eq!(m.num_parameters(), 5 * 3 + 2 * 3 + 2 * 9);
    }

    #[test]
    fn different_matrices_give_different_scores() {
        let mut m = tiny_model();
        let before = m.score(&Triple::new(0, 0, 1));
        let d = m.dim();
        m.tables_mut()[MATRIX_TABLE].set_row(0, &vec![0.33; d * d]);
        let after = m.score(&Triple::new(0, 0, 1));
        assert!((before - after).abs() > 1e-9);
    }

    #[test]
    fn parameter_rows_include_matrix() {
        let m = tiny_model();
        let rows = m.parameter_rows(&Triple::new(0, 1, 2));
        assert!(rows.contains(&(MATRIX_TABLE, 1)));
    }

    #[test]
    fn cached_scoring_matches_the_uncached_reference() {
        let m = {
            let mut rng = seeded_rng(29);
            TransR::new(12, 3, 7, &mut rng)
        };
        let candidates: Vec<u32> = vec![0, 3, 3, 11, 5, 0, 7];
        let mut cached = Vec::new();
        let mut reference = Vec::new();
        for side in [CorruptionSide::Tail, CorruptionSide::Head] {
            for pass in 0..2 {
                let t = Triple::new(1, 2, 4);
                m.score_candidates(&t, side, &candidates, &mut cached);
                m.score_candidates_uncached(&t, side, &candidates, &mut reference);
                for (i, (c, r)) in cached.iter().zip(&reference).enumerate() {
                    assert!(
                        (c - r).abs() <= 1e-12,
                        "pass {pass} {side:?} candidate {i}: cached {c} vs uncached {r}"
                    );
                }
                // A warm second pass must return bit-identical scores.
                if pass == 1 {
                    let mut again = Vec::new();
                    m.score_candidates(&t, side, &candidates, &mut again);
                    assert_eq!(cached, again, "warm path must be bit-stable");
                }
            }
        }
    }

    #[test]
    fn embedding_update_invalidates_cached_projections() {
        let mut m = {
            let mut rng = seeded_rng(31);
            TransR::new(8, 2, 5, &mut rng)
        };
        let t = Triple::new(0, 1, 2);
        let candidates: Vec<u32> = (0..8).collect();
        let mut before = Vec::new();
        m.score_candidates(&t, CorruptionSide::Tail, &candidates, &mut before);

        // Mutate one candidate's embedding and the relation matrix.
        let dim = m.dim();
        m.tables_mut()[ENTITY_TABLE].set_row(5, &vec![0.21; dim]);
        m.tables_mut()[MATRIX_TABLE].set_row(1, &vec![0.12; dim * dim]);

        let mut after = Vec::new();
        m.score_candidates(&t, CorruptionSide::Tail, &candidates, &mut after);
        assert_ne!(before, after, "stale projections must not survive updates");
        // The refreshed scores must agree with the scalar oracle.
        for (&e, score) in candidates.iter().zip(&after) {
            let scalar = m.score(&t.corrupted(CorruptionSide::Tail, e));
            assert!(
                (score - scalar).abs() <= 1e-12,
                "candidate {e}: cached {score} vs scalar {scalar}"
            );
        }
    }

    #[test]
    fn projections_warmed_by_one_thread_serve_all_threads() {
        use std::sync::Arc;
        let m = Arc::new({
            let mut rng = seeded_rng(41);
            TransR::new(10, 2, 6, &mut rng)
        });
        let t = Triple::new(0, 1, 2);
        let candidates: Vec<u32> = (0..10).collect();
        // Warm the panel on the main thread; every worker must then read the
        // shared slots (or compute bit-identical fallbacks) — same scores.
        let mut expected = Vec::new();
        m.score_candidates(&t, CorruptionSide::Tail, &candidates, &mut expected);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                let candidates = candidates.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    m.score_candidates(&t, CorruptionSide::Tail, &candidates, &mut out);
                    assert_eq!(out, expected, "shared panels must be value-transparent");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn clones_do_not_share_cached_projections() {
        let m = {
            let mut rng = seeded_rng(37);
            TransR::new(6, 2, 4, &mut rng)
        };
        let t = Triple::new(0, 0, 1);
        let candidates: Vec<u32> = (0..6).collect();
        let mut original = Vec::new();
        m.score_candidates(&t, CorruptionSide::Tail, &candidates, &mut original);

        // Diverge the clone; its scores must reflect its own parameters even
        // though the original just warmed the same (relation, entity) keys.
        let mut c = m.clone();
        let dim = c.dim();
        c.tables_mut()[ENTITY_TABLE].set_row(3, &vec![0.4; dim]);
        let mut cloned = Vec::new();
        c.score_candidates(&t, CorruptionSide::Tail, &candidates, &mut cloned);
        let scalar = c.score(&t.corrupted(CorruptionSide::Tail, 3));
        assert!((cloned[3] - scalar).abs() <= 1e-12);
        assert_ne!(original[3], cloned[3]);
    }
}
