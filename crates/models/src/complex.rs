//! ComplEx (Trouillon et al., ICML 2016):
//! `f(h,r,t) = Re(⟨h, r, conj(t)⟩)` with complex-valued embeddings.
//!
//! Each embedding row stores the real part in components `0..d` and the
//! imaginary part in components `d..2d`, so the table dimension is `2d`.

use crate::batch::with_query_scratch;
use crate::embedding::EmbeddingTable;
use crate::gradient::{GradientSink, TableId};
use crate::scorer::{KgeModel, ModelKind, ENTITY_TABLE, RELATION_TABLE};
use nscaching_kg::{CorruptionSide, EntityId, Triple};
use nscaching_math::vecops::dot;
use rand::Rng;

/// ComplEx with the real/imaginary split-storage layout.
#[derive(Debug, Clone)]
pub struct ComplEx {
    entities: EmbeddingTable,
    relations: EmbeddingTable,
    dim: usize,
}

impl ComplEx {
    /// Create a Xavier-initialised ComplEx model with complex dimension `dim`
    /// (so `2·dim` real parameters per row).
    pub fn new<R: Rng + ?Sized>(
        num_entities: usize,
        num_relations: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        Self {
            entities: EmbeddingTable::xavier("entity", num_entities, 2 * dim, rng),
            relations: EmbeddingTable::xavier("relation", num_relations, 2 * dim, rng),
            dim,
        }
    }

    /// The score is linear in the candidate's `2d` real parameters, so the
    /// whole query side collapses into one vector `q` laid out like an entity
    /// row; each candidate then scores `q · e`.
    ///
    /// Tail corruption (`h = a+bi`, `r = c+di` fixed):
    /// `q[i] = a·c − b·d`, `q[d+i] = a·d + b·c`.
    /// Head corruption (`r = c+di`, `t = e+fi` fixed):
    /// `q[i] = c·e + d·f`, `q[d+i] = −d·e + c·f`.
    fn fill_query(&self, t: &Triple, side: CorruptionSide, q: &mut [f64]) {
        let r = self.relations.row(t.relation as usize);
        let d = self.dim;
        match side {
            CorruptionSide::Tail => {
                let h = self.entities.row(t.head as usize);
                for i in 0..d {
                    let (a, b) = (h[i], h[d + i]);
                    let (c, dd) = (r[i], r[d + i]);
                    q[i] = a * c - b * dd;
                    q[d + i] = a * dd + b * c;
                }
            }
            CorruptionSide::Head => {
                let tl = self.entities.row(t.tail as usize);
                for i in 0..d {
                    let (c, dd) = (r[i], r[d + i]);
                    let (e, f) = (tl[i], tl[d + i]);
                    q[i] = c * e + dd * f;
                    q[d + i] = -dd * e + c * f;
                }
            }
        }
    }
}

impl KgeModel for ComplEx {
    fn kind(&self) -> ModelKind {
        ModelKind::ComplEx
    }

    fn num_entities(&self) -> usize {
        self.entities.rows()
    }

    fn num_relations(&self) -> usize {
        self.relations.rows()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn score(&self, t: &Triple) -> f64 {
        let h = self.entities.row(t.head as usize);
        let r = self.relations.row(t.relation as usize);
        let tl = self.entities.row(t.tail as usize);
        let d = self.dim;
        let mut score = 0.0;
        for i in 0..d {
            // h = a + bi, r = c + di, t = e + fi;
            // Re((a+bi)(c+di)(e−fi)) = e(ac − bd) + f(ad + bc)
            let (a, b) = (h[i], h[d + i]);
            let (c, dd) = (r[i], r[d + i]);
            let (e, f) = (tl[i], tl[d + i]);
            score += e * (a * c - b * dd) + f * (a * dd + b * c);
        }
        score
    }

    fn score_candidates(
        &self,
        t: &Triple,
        side: CorruptionSide,
        candidates: &[EntityId],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(candidates.len());
        with_query_scratch(2 * self.dim, |q| {
            self.fill_query(t, side, q);
            for &e in candidates {
                out.push(dot(q, self.entities.row(e as usize)));
            }
        });
    }

    fn score_all_into(&self, t: &Triple, side: CorruptionSide, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.entities.rows());
        with_query_scratch(2 * self.dim, |q| {
            self.fill_query(t, side, q);
            for row in self.entities.rows_iter() {
                out.push(dot(q, row));
            }
        });
    }

    fn accumulate_score_gradient(&self, t: &Triple, coeff: f64, grads: &mut dyn GradientSink) {
        let h = self.entities.row(t.head as usize);
        let r = self.relations.row(t.relation as usize);
        let tl = self.entities.row(t.tail as usize);
        let d = self.dim;
        let mut grad_h = vec![0.0; 2 * d];
        let mut grad_r = vec![0.0; 2 * d];
        let mut grad_t = vec![0.0; 2 * d];
        for i in 0..d {
            let (a, b) = (h[i], h[d + i]);
            let (c, dd) = (r[i], r[d + i]);
            let (e, f) = (tl[i], tl[d + i]);
            // score_i = e(ac − bd) + f(ad + bc)
            grad_h[i] = c * e + dd * f; // ∂/∂a
            grad_h[d + i] = -dd * e + c * f; // ∂/∂b
            grad_r[i] = a * e + b * f; // ∂/∂c
            grad_r[d + i] = -b * e + a * f; // ∂/∂d
            grad_t[i] = a * c - b * dd; // ∂/∂e
            grad_t[d + i] = a * dd + b * c; // ∂/∂f
        }
        grads.add(ENTITY_TABLE, t.head as usize, &grad_h, coeff);
        grads.add(RELATION_TABLE, t.relation as usize, &grad_r, coeff);
        grads.add(ENTITY_TABLE, t.tail as usize, &grad_t, coeff);
    }

    fn tables(&self) -> Vec<&EmbeddingTable> {
        vec![&self.entities, &self.relations]
    }

    fn tables_mut(&mut self) -> Vec<&mut EmbeddingTable> {
        vec![&mut self.entities, &mut self.relations]
    }

    fn table_mut(&mut self, table: TableId) -> &mut EmbeddingTable {
        match table {
            ENTITY_TABLE => &mut self.entities,
            RELATION_TABLE => &mut self.relations,
            _ => panic!("ComplEx has no table {table}"),
        }
    }

    fn parameter_rows(&self, t: &Triple) -> Vec<(TableId, usize)> {
        vec![
            (ENTITY_TABLE, t.head as usize),
            (RELATION_TABLE, t.relation as usize),
            (ENTITY_TABLE, t.tail as usize),
        ]
    }

    fn apply_constraints(&mut self, _touched: &[(TableId, usize)]) {
        // Regularised, not constrained — see DistMult.
    }

    fn clone_box(&self) -> Box<dyn KgeModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;

    fn tiny_model() -> ComplEx {
        let mut rng = seeded_rng(23);
        ComplEx::new(4, 2, 3, &mut rng)
    }

    #[test]
    fn real_embeddings_reduce_to_distmult() {
        let mut m = tiny_model();
        // zero imaginary parts ⇒ score = Σ a c e (DistMult)
        m.tables_mut()[ENTITY_TABLE].set_row(0, &[1.0, 2.0, 3.0, 0.0, 0.0, 0.0]);
        m.tables_mut()[RELATION_TABLE].set_row(0, &[0.5, 0.5, 0.5, 0.0, 0.0, 0.0]);
        m.tables_mut()[ENTITY_TABLE].set_row(1, &[2.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        assert!((m.score(&Triple::new(0, 0, 1)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn imaginary_relation_makes_score_asymmetric() {
        let mut m = tiny_model();
        // purely imaginary relation embedding ⇒ f(h,r,t) = −f(t,r,h)
        m.tables_mut()[RELATION_TABLE].set_row(0, &[0.0, 0.0, 0.0, 0.7, -0.2, 0.4]);
        let t = Triple::new(0, 0, 1);
        let forward = m.score(&t);
        let backward = m.score(&t.reversed());
        assert!((forward + backward).abs() < 1e-12);
        assert!(forward.abs() > 1e-9, "score should be non-trivial");
    }

    #[test]
    fn table_dim_is_twice_the_complex_dim() {
        let m = tiny_model();
        assert_eq!(m.dim(), 3);
        assert_eq!(m.tables()[ENTITY_TABLE].dim(), 6);
        assert_eq!(m.num_parameters(), 4 * 6 + 2 * 6);
        assert_eq!(m.kind(), ModelKind::ComplEx);
    }

    #[test]
    fn score_matches_hand_computed_complex_product() {
        let mut m = tiny_model();
        // single complex dimension: use 3-dim model but set other dims to zero
        // h = 1 + 2i, r = 3 − i, t = 0.5 + 4i:
        // h·r = (1·3 − 2·(−1)) + (1·(−1) + 2·3) i = 5 + 5i
        // (5 + 5i)(0.5 − 4i) = 2.5 − 20i + 2.5i + 20 = 22.5 − 17.5i ⇒ Re = 22.5
        m.tables_mut()[ENTITY_TABLE].set_row(0, &[1.0, 0.0, 0.0, 2.0, 0.0, 0.0]);
        m.tables_mut()[RELATION_TABLE].set_row(1, &[3.0, 0.0, 0.0, -1.0, 0.0, 0.0]);
        m.tables_mut()[ENTITY_TABLE].set_row(2, &[0.5, 0.0, 0.0, 4.0, 0.0, 0.0]);
        assert!((m.score(&Triple::new(0, 1, 2)) - 22.5).abs() < 1e-12);
    }
}
