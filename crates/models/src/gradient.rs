//! Sparse gradient accumulation.
//!
//! A single SGD step in KG embedding touches only a handful of parameter rows
//! (the head, relation and tail of the positive and negative triples plus, for
//! some models, their projection vectors). Gradients are therefore
//! accumulated sparsely as `(table, row) → dense gradient` and applied by the
//! optimizers in `nscaching-optim` without ever materialising a full-model
//! gradient.
//!
//! Two accumulators implement the [`GradientSink`] contract:
//!
//! * [`GradientArena`](crate::arena::GradientArena) — the production engine:
//!   touched rows live in contiguous per-table slabs with a sorted
//!   `(table, row)` slot index, reused across batches (see the
//!   [`arena`](crate::arena) module);
//! * [`GradientBuffer`] (this module) — the original `HashMap`-backed
//!   accumulator, kept as the scalar reference that the arena engine is
//!   proven bit-identical against (`parallel_equivalence.rs`, the
//!   `arena_equivalence` proptests) and as the baseline of the
//!   `gradient_apply` bench.

use std::collections::HashMap;

/// Index of a parameter table inside a model's `tables()` list.
pub type TableId = usize;

/// Destination for sparse per-row gradient contributions.
///
/// The models' hand-derived `accumulate_score_gradient` implementations (and
/// the L2 regularizer) write through this trait, so the same emission code
/// drives both the slab-backed [`GradientArena`](crate::arena::GradientArena)
/// hot path and the `HashMap`-backed [`GradientBuffer`] reference.
///
/// Implementations must treat a row's contributions as an ordered sequence of
/// `grad[i] += coeff * value[i]` updates starting from zero: the arena/buffer
/// bit-for-bit equivalence contract relies on both sides performing the same
/// floating-point operations in the same per-row order.
pub trait GradientSink {
    /// Accumulate `coeff * values` into the gradient of `(table, row)`.
    /// A zero `coeff` must be a no-op (no row is created).
    fn add(&mut self, table: TableId, row: usize, values: &[f64], coeff: f64);

    /// Accumulate `coeff` into component `idx` of `(table, row)`, creating
    /// the row gradient with dimension `dim` if it does not exist yet.
    /// A zero `coeff` must be a no-op.
    fn add_component(&mut self, table: TableId, row: usize, dim: usize, idx: usize, coeff: f64);
}

/// A sparse gradient: dense per-row gradients keyed by `(table, row)`.
#[derive(Debug, Clone, Default)]
pub struct GradientBuffer {
    grads: HashMap<(TableId, usize), Vec<f64>>,
}

impl GradientBuffer {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate `coeff * values` into the gradient of `(table, row)`.
    pub fn add(&mut self, table: TableId, row: usize, values: &[f64], coeff: f64) {
        if coeff == 0.0 {
            return;
        }
        let entry = self
            .grads
            .entry((table, row))
            .or_insert_with(|| vec![0.0; values.len()]);
        debug_assert_eq!(entry.len(), values.len(), "gradient dimension mismatch");
        for (g, v) in entry.iter_mut().zip(values) {
            *g += coeff * v;
        }
    }

    /// Accumulate `coeff` into a single component of `(table, row)`, resizing
    /// the row gradient to `dim` if it does not exist yet.
    pub fn add_component(
        &mut self,
        table: TableId,
        row: usize,
        dim: usize,
        idx: usize,
        coeff: f64,
    ) {
        if coeff == 0.0 {
            return;
        }
        let entry = self
            .grads
            .entry((table, row))
            .or_insert_with(|| vec![0.0; dim]);
        entry[idx] += coeff;
    }

    /// Number of distinct `(table, row)` entries.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// Whether no gradients were accumulated.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Borrow the gradient of `(table, row)`, if any.
    pub fn get(&self, table: TableId, row: usize) -> Option<&[f64]> {
        self.grads.get(&(table, row)).map(|v| v.as_slice())
    }

    /// Iterate over `((table, row), gradient)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&(TableId, usize), &Vec<f64>)> {
        self.grads.iter()
    }

    /// Drain the buffer, yielding owned entries and leaving it empty.
    pub fn drain(&mut self) -> impl Iterator<Item = ((TableId, usize), Vec<f64>)> + '_ {
        self.grads.drain()
    }

    /// Remove all entries but keep the allocation.
    pub fn clear(&mut self) {
        self.grads.clear();
    }

    /// Add every entry of `other` into this buffer.
    ///
    /// This is the reduction step of the sharded trainer: each shard worker
    /// accumulates into its own buffer, and the main thread merges the
    /// per-shard buffers in ascending shard order. Because each `(table,
    /// row)` entry is summed independently (`self[k] += other[k]`
    /// element-wise), the merged values depend only on the order in which
    /// *buffers* are merged — fixed by the caller — and not on hash-map
    /// iteration order, so the reduction is bit-reproducible.
    pub fn merge(&mut self, other: &GradientBuffer) {
        for (&(table, row), grad) in other.iter() {
            self.add(table, row, grad, 1.0);
        }
    }

    /// Sum of squared components across all entries — the squared L2 norm of
    /// the full sparse gradient. Used by the Figure 10 instrumentation.
    ///
    /// Entries are summed in sorted `(table, row)` key order so the result is
    /// independent of hash-map iteration order (floating-point addition is
    /// not associative; an unordered sum would wobble in the last bits from
    /// run to run).
    pub fn squared_norm(&self) -> f64 {
        let mut keys: Vec<&(TableId, usize)> = self.grads.keys().collect();
        keys.sort_unstable();
        keys.iter()
            .map(|k| self.grads[*k].iter().map(|x| x * x).sum::<f64>())
            .sum()
    }

    /// L2 norm of the full sparse gradient.
    pub fn norm(&self) -> f64 {
        self.squared_norm().sqrt()
    }
}

impl GradientSink for GradientBuffer {
    fn add(&mut self, table: TableId, row: usize, values: &[f64], coeff: f64) {
        GradientBuffer::add(self, table, row, values, coeff);
    }

    fn add_component(&mut self, table: TableId, row: usize, dim: usize, idx: usize, coeff: f64) {
        GradientBuffer::add_component(self, table, row, dim, idx, coeff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_with_coefficients() {
        let mut g = GradientBuffer::new();
        g.add(0, 3, &[1.0, 2.0], 2.0);
        g.add(0, 3, &[1.0, 0.0], -1.0);
        assert_eq!(g.get(0, 3), Some(&[1.0, 4.0][..]));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn zero_coefficient_is_a_noop() {
        let mut g = GradientBuffer::new();
        g.add(1, 1, &[5.0], 0.0);
        assert!(g.is_empty());
        g.add_component(1, 1, 4, 2, 0.0);
        assert!(g.is_empty());
    }

    #[test]
    fn distinct_rows_are_kept_separate() {
        let mut g = GradientBuffer::new();
        g.add(0, 0, &[1.0], 1.0);
        g.add(0, 1, &[2.0], 1.0);
        g.add(1, 0, &[3.0], 1.0);
        assert_eq!(g.len(), 3);
        assert_eq!(g.get(1, 0), Some(&[3.0][..]));
        assert_eq!(g.get(2, 0), None);
    }

    #[test]
    fn add_component_creates_sized_rows() {
        let mut g = GradientBuffer::new();
        g.add_component(0, 7, 3, 1, 2.5);
        assert_eq!(g.get(0, 7), Some(&[0.0, 2.5, 0.0][..]));
    }

    #[test]
    fn norm_matches_manual_computation() {
        let mut g = GradientBuffer::new();
        g.add(0, 0, &[3.0], 1.0);
        g.add(1, 1, &[4.0], 1.0);
        assert!((g.squared_norm() - 25.0).abs() < 1e-12);
        assert!((g.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_entries_pairwise_and_keeps_disjoint_ones() {
        let mut a = GradientBuffer::new();
        a.add(0, 0, &[1.0, 2.0], 1.0);
        a.add(0, 1, &[3.0], 1.0);
        let mut b = GradientBuffer::new();
        b.add(0, 0, &[10.0, 20.0], 1.0);
        b.add(1, 5, &[7.0], 1.0);
        a.merge(&b);
        assert_eq!(a.get(0, 0), Some(&[11.0, 22.0][..]));
        assert_eq!(a.get(0, 1), Some(&[3.0][..]));
        assert_eq!(a.get(1, 5), Some(&[7.0][..]));
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 2, "merge borrows the source");
    }

    #[test]
    fn drain_and_clear_empty_the_buffer() {
        let mut g = GradientBuffer::new();
        g.add(0, 0, &[1.0], 1.0);
        let drained: Vec<_> = g.drain().collect();
        assert_eq!(drained.len(), 1);
        assert!(g.is_empty());

        g.add(0, 0, &[1.0], 1.0);
        g.clear();
        assert!(g.is_empty());
    }
}
