//! DistMult (Yang et al., ICLR 2015): `f(h,r,t) = Σ_i h_i r_i t_i`.

use crate::batch::with_query_scratch;
use crate::embedding::EmbeddingTable;
use crate::gradient::{GradientSink, TableId};
use crate::scorer::{KgeModel, ModelKind, ENTITY_TABLE, RELATION_TABLE};
use nscaching_kg::{CorruptionSide, EntityId, Triple};
use nscaching_math::vecops::{dot, hadamard};
use rand::Rng;

/// DistMult — a bilinear model with a diagonal relation matrix.
#[derive(Debug, Clone)]
pub struct DistMult {
    entities: EmbeddingTable,
    relations: EmbeddingTable,
    dim: usize,
}

impl DistMult {
    /// Create a Xavier-initialised DistMult model.
    pub fn new<R: Rng + ?Sized>(
        num_entities: usize,
        num_relations: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        Self {
            entities: EmbeddingTable::xavier("entity", num_entities, dim, rng),
            relations: EmbeddingTable::xavier("relation", num_relations, dim, rng),
            dim,
        }
    }

    /// Candidate-independent query vector `q = h ∘ r` (tail corruption) or
    /// `q = r ∘ t` (head corruption); each candidate then scores `q · e`.
    fn fill_query(&self, t: &Triple, side: CorruptionSide, q: &mut [f64]) {
        let r = self.relations.row(t.relation as usize);
        let fixed = match side {
            CorruptionSide::Tail => self.entities.row(t.head as usize),
            CorruptionSide::Head => self.entities.row(t.tail as usize),
        };
        for ((qi, fi), ri) in q.iter_mut().zip(fixed).zip(r) {
            *qi = fi * ri;
        }
    }
}

impl KgeModel for DistMult {
    fn kind(&self) -> ModelKind {
        ModelKind::DistMult
    }

    fn num_entities(&self) -> usize {
        self.entities.rows()
    }

    fn num_relations(&self) -> usize {
        self.relations.rows()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn score(&self, t: &Triple) -> f64 {
        let h = self.entities.row(t.head as usize);
        let r = self.relations.row(t.relation as usize);
        let tl = self.entities.row(t.tail as usize);
        h.iter().zip(r).zip(tl).map(|((a, b), c)| a * b * c).sum()
    }

    fn score_candidates(
        &self,
        t: &Triple,
        side: CorruptionSide,
        candidates: &[EntityId],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(candidates.len());
        with_query_scratch(self.dim, |q| {
            self.fill_query(t, side, q);
            for &e in candidates {
                out.push(dot(q, self.entities.row(e as usize)));
            }
        });
    }

    fn score_all_into(&self, t: &Triple, side: CorruptionSide, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.entities.rows());
        with_query_scratch(self.dim, |q| {
            self.fill_query(t, side, q);
            for row in self.entities.rows_iter() {
                out.push(dot(q, row));
            }
        });
    }

    fn accumulate_score_gradient(&self, t: &Triple, coeff: f64, grads: &mut dyn GradientSink) {
        let h = self.entities.row(t.head as usize);
        let r = self.relations.row(t.relation as usize);
        let tl = self.entities.row(t.tail as usize);
        grads.add(ENTITY_TABLE, t.head as usize, &hadamard(r, tl), coeff);
        grads.add(RELATION_TABLE, t.relation as usize, &hadamard(h, tl), coeff);
        grads.add(ENTITY_TABLE, t.tail as usize, &hadamard(h, r), coeff);
    }

    fn tables(&self) -> Vec<&EmbeddingTable> {
        vec![&self.entities, &self.relations]
    }

    fn tables_mut(&mut self) -> Vec<&mut EmbeddingTable> {
        vec![&mut self.entities, &mut self.relations]
    }

    fn table_mut(&mut self, table: TableId) -> &mut EmbeddingTable {
        match table {
            ENTITY_TABLE => &mut self.entities,
            RELATION_TABLE => &mut self.relations,
            _ => panic!("DistMult has no table {table}"),
        }
    }

    fn parameter_rows(&self, t: &Triple) -> Vec<(TableId, usize)> {
        vec![
            (ENTITY_TABLE, t.head as usize),
            (RELATION_TABLE, t.relation as usize),
            (ENTITY_TABLE, t.tail as usize),
        ]
    }

    fn apply_constraints(&mut self, _touched: &[(TableId, usize)]) {
        // Semantic-matching models are regularised (soft penalty) rather than
        // constrained, following the paper's Eq. (2) setup.
    }

    fn clone_box(&self) -> Box<dyn KgeModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_kg::CorruptionSide;
    use nscaching_math::seeded_rng;

    fn tiny_model() -> DistMult {
        let mut rng = seeded_rng(21);
        DistMult::new(4, 2, 3, &mut rng)
    }

    #[test]
    fn score_matches_manual_sum() {
        let mut m = tiny_model();
        m.tables_mut()[ENTITY_TABLE].set_row(0, &[1.0, 2.0, 3.0]);
        m.tables_mut()[RELATION_TABLE].set_row(0, &[0.5, 0.5, 0.5]);
        m.tables_mut()[ENTITY_TABLE].set_row(1, &[2.0, 1.0, 0.0]);
        // 1*0.5*2 + 2*0.5*1 + 3*0.5*0 = 1 + 1 + 0
        assert!((m.score(&Triple::new(0, 0, 1)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn score_is_symmetric_in_head_and_tail() {
        let m = tiny_model();
        let t = Triple::new(0, 1, 3);
        assert!((m.score(&t) - m.score(&t.reversed())).abs() < 1e-12);
    }

    #[test]
    fn score_all_matches_individual_scores() {
        let m = tiny_model();
        let t = Triple::new(0, 0, 1);
        let all = m.score_all(&t, CorruptionSide::Tail);
        assert_eq!(all.len(), 4);
        for (e, s) in all.iter().enumerate() {
            assert!((s - m.score(&t.with_tail(e as u32))).abs() < 1e-12);
        }
    }

    #[test]
    fn constraints_are_a_noop() {
        let mut m = tiny_model();
        m.tables_mut()[ENTITY_TABLE].set_row(0, &[5.0, 0.0, 0.0]);
        m.apply_constraints(&[(ENTITY_TABLE, 0)]);
        assert_eq!(m.tables()[ENTITY_TABLE].row(0), &[5.0, 0.0, 0.0]);
    }

    #[test]
    fn metadata() {
        let m = tiny_model();
        assert_eq!(m.kind(), ModelKind::DistMult);
        assert_eq!(m.num_parameters(), 4 * 3 + 2 * 3);
    }
}
