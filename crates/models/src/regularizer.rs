//! Per-example L2 regularisation for semantic-matching models.
//!
//! The paper tunes a penalty weight `λ ∈ {0.001, 0.01, 0.1}` for DistMult and
//! ComplEx (Section IV-A2, following Trouillon et al.). The penalty is applied
//! per training example to the embedding rows that the example touches, which
//! is the standard sparse approximation of the full-parameter L2 term.

use crate::gradient::GradientSink;
use crate::scorer::KgeModel;
use nscaching_kg::Triple;
use nscaching_math::vecops::sq_l2_norm;
use serde::{Deserialize, Serialize};

/// L2 penalty `λ · Σ‖θ_row‖²` over the rows involved in a training example.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct L2Regularizer {
    /// The penalty weight λ (0 disables regularisation).
    pub lambda: f64,
}

impl L2Regularizer {
    /// Create a regulariser with weight `lambda` (must be non-negative).
    pub fn new(lambda: f64) -> Self {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        Self { lambda }
    }

    /// A disabled regulariser.
    pub fn none() -> Self {
        Self { lambda: 0.0 }
    }

    /// Whether the regulariser does anything.
    pub fn is_active(&self) -> bool {
        self.lambda > 0.0
    }

    /// Penalty value for the rows of `model` touched by `triple`.
    pub fn penalty(&self, model: &dyn KgeModel, triple: &Triple) -> f64 {
        if !self.is_active() {
            return 0.0;
        }
        let tables = model.tables();
        self.lambda
            * model
                .parameter_rows(triple)
                .into_iter()
                .map(|(table, row)| sq_l2_norm(tables[table].row(row)))
                .sum::<f64>()
    }

    /// Accumulate `∂penalty/∂θ = 2λ·θ_row` for the touched rows into `grads`.
    pub fn accumulate_gradient(
        &self,
        model: &dyn KgeModel,
        triple: &Triple,
        grads: &mut dyn GradientSink,
    ) {
        if !self.is_active() {
            return;
        }
        let tables = model.tables();
        for (table, row) in model.parameter_rows(triple) {
            grads.add(table, row, tables[table].row(row), 2.0 * self.lambda);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distmult::DistMult;
    use crate::gradient::GradientBuffer;
    use crate::scorer::{ENTITY_TABLE, RELATION_TABLE};
    use nscaching_math::seeded_rng;

    fn model_with_known_rows() -> DistMult {
        let mut rng = seeded_rng(5);
        let mut m = DistMult::new(3, 1, 2, &mut rng);
        m.tables_mut()[ENTITY_TABLE].set_row(0, &[1.0, 0.0]);
        m.tables_mut()[ENTITY_TABLE].set_row(1, &[0.0, 2.0]);
        m.tables_mut()[RELATION_TABLE].set_row(0, &[3.0, 0.0]);
        m
    }

    #[test]
    fn penalty_sums_squared_norms_of_touched_rows() {
        let m = model_with_known_rows();
        let reg = L2Regularizer::new(0.1);
        let p = reg.penalty(&m, &Triple::new(0, 0, 1));
        // 0.1 * (1 + 4 + 9)
        assert!((p - 1.4).abs() < 1e-12);
    }

    #[test]
    fn gradient_is_two_lambda_theta() {
        let m = model_with_known_rows();
        let reg = L2Regularizer::new(0.1);
        let mut g = GradientBuffer::new();
        reg.accumulate_gradient(&m, &Triple::new(0, 0, 1), &mut g);
        let close = |got: Option<&[f64]>, want: [f64; 2]| {
            let got = got.expect("row gradient present");
            got.iter().zip(want).all(|(a, b)| (a - b).abs() < 1e-12)
        };
        assert!(close(g.get(ENTITY_TABLE, 0), [0.2, 0.0]));
        assert!(close(g.get(ENTITY_TABLE, 1), [0.0, 0.4]));
        assert!(close(g.get(RELATION_TABLE, 0), [0.6, 0.0]));
    }

    #[test]
    fn disabled_regularizer_is_a_noop() {
        let m = model_with_known_rows();
        let reg = L2Regularizer::none();
        assert!(!reg.is_active());
        assert_eq!(reg.penalty(&m, &Triple::new(0, 0, 1)), 0.0);
        let mut g = GradientBuffer::new();
        reg.accumulate_gradient(&m, &Triple::new(0, 0, 1), &mut g);
        assert!(g.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lambda_is_rejected() {
        let _ = L2Regularizer::new(-0.5);
    }
}
