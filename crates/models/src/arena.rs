//! Slab-backed sparse-gradient arena — the per-batch gradient engine.
//!
//! [`GradientArena`] replaces the `HashMap<(TableId, usize), Vec<f64>>` of
//! [`GradientBuffer`](crate::gradient::GradientBuffer) on every training hot
//! path. The layout is the cache-friendly one the hot loop wants:
//!
//! * **Per-table slabs.** Each parameter table gets one contiguous `Vec<f64>`
//!   holding the gradients of its touched rows back to back
//!   (dimension-strided: slot `s` of a table with dimension `d` occupies
//!   `grads[s·d .. (s+1)·d]`). Accumulating into a row is an array index plus
//!   a fused multiply-add pass — no hashing, no per-row heap allocation.
//! * **O(1) row lookup.** A per-table `row → slot` index (`u32` per row,
//!   grown geometrically to the table's high-water row) maps a touched row to
//!   its slab slot; untouched rows hold a sentinel.
//! * **Sorted slot index.** `(table, row)` pairs of all touched slots are
//!   materialised, sorted ascending, into a reusable vector the first time an
//!   ordered view is needed ([`rows`](GradientArena::rows),
//!   [`touched`](GradientArena::touched),
//!   [`squared_norm`](GradientArena::squared_norm), [`merge`](GradientArena::merge)).
//!   Every ordered consumer — the optimizers' apply walk, the shard-merge
//!   reduction, the gradient-norm instrumentation — reads this one index, so
//!   determinism comes from the layout itself instead of the post-hoc key
//!   sorting the `HashMap` engine needed.
//! * **Batch reuse.** [`clear`](GradientArena::clear) resets the touched-row
//!   index in `O(touched)` and keeps every allocation, so after the first few
//!   batches establish the high-water marks, a steady-state
//!   clear → accumulate → merge → apply cycle performs **zero heap
//!   allocations** (asserted by the `gradient_apply` bench).
//!
//! # Equivalence contract
//!
//! For any sequence of [`add`](GradientArena::add) /
//! [`add_component`](GradientArena::add_component) /
//! [`merge`](GradientArena::merge) calls, the arena holds bit-identical
//! per-row values to a `GradientBuffer` driven by the same calls: each row's
//! gradient is the same ordered sequence of `g[i] += coeff · v[i]` updates
//! from zero, and per-row updates are independent of the order rows are
//! visited in. [`squared_norm`](GradientArena::squared_norm) reproduces the
//! buffer's sorted-key summation order exactly. The `arena_equivalence`
//! proptests and `parallel_equivalence.rs` assert both.

use crate::gradient::{GradientSink, TableId};

/// Sentinel in the `row → slot` index marking an untouched row.
const NO_SLOT: u32 = u32::MAX;

/// One table's touched-row slab. See the module docs for the layout.
#[derive(Debug, Clone, Default)]
struct TableSlab {
    /// Row-gradient dimension; 0 until the table's first touch fixes it.
    dim: usize,
    /// `row → slot` index into `touched`/`grads`; `NO_SLOT` when untouched.
    slot_of_row: Vec<u32>,
    /// Touched rows in first-touch order (slot `s` holds row `touched[s]`).
    touched: Vec<u32>,
    /// Gradient slab: `touched.len() · dim` values, slot-major.
    grads: Vec<f64>,
}

impl TableSlab {
    /// Reset the touched set in `O(touched)`, keeping every allocation.
    fn clear(&mut self) {
        for &row in &self.touched {
            self.slot_of_row[row as usize] = NO_SLOT;
        }
        self.touched.clear();
        self.grads.clear();
    }
}

/// Reusable sparse-gradient arena: contiguous per-table slabs plus a sorted
/// `(table, row)` slot index. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct GradientArena {
    tables: Vec<TableSlab>,
    /// Sorted `(table, row)` pairs of all touched slots; rebuilt lazily.
    sorted: Vec<(TableId, usize)>,
    /// Whether `sorted` currently reflects the touched set.
    sorted_valid: bool,
    /// Total touched slots across all tables.
    len: usize,
}

impl GradientArena {
    /// Create an empty arena. Slabs grow to their high-water marks on first
    /// use and are kept across [`clear`](Self::clear).
    pub fn new() -> Self {
        Self {
            sorted_valid: true,
            ..Self::default()
        }
    }

    /// Number of distinct touched `(table, row)` slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no gradients were accumulated.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Accumulate `coeff * values` into the gradient of `(table, row)`.
    ///
    /// All rows of one table must share one dimension (every
    /// `EmbeddingTable` does); the first touch of a table fixes it.
    pub fn add(&mut self, table: TableId, row: usize, values: &[f64], coeff: f64) {
        if coeff == 0.0 {
            return;
        }
        let base = self.slot_base(table, row, values.len());
        let slab = &mut self.tables[table];
        for (g, v) in slab.grads[base..base + values.len()].iter_mut().zip(values) {
            *g += coeff * v;
        }
    }

    /// Accumulate `coeff` into component `idx` of `(table, row)`, creating
    /// the row gradient with dimension `dim` if it does not exist yet.
    pub fn add_component(
        &mut self,
        table: TableId,
        row: usize,
        dim: usize,
        idx: usize,
        coeff: f64,
    ) {
        if coeff == 0.0 {
            return;
        }
        let base = self.slot_base(table, row, dim);
        self.tables[table].grads[base + idx] += coeff;
    }

    /// Borrow the gradient of `(table, row)`, if touched.
    pub fn get(&self, table: TableId, row: usize) -> Option<&[f64]> {
        let slab = self.tables.get(table)?;
        let slot = *slab.slot_of_row.get(row)?;
        if slot == NO_SLOT {
            return None;
        }
        let base = slot as usize * slab.dim;
        Some(&slab.grads[base..base + slab.dim])
    }

    /// Remove all entries in `O(touched)`, keeping every allocation (the
    /// whole point of reusing one arena across batches).
    pub fn clear(&mut self) {
        for slab in &mut self.tables {
            slab.clear();
        }
        self.sorted.clear();
        self.sorted_valid = true;
        self.len = 0;
    }

    /// The sorted view over all touched rows, for the ordered consumers
    /// (optimizer apply walk, norm instrumentation). Sorts the slot index if
    /// new rows were touched since the last ordered access.
    pub fn rows(&mut self) -> SparseRows<'_> {
        self.ensure_sorted();
        SparseRows { arena: self }
    }

    /// The sorted `(table, row)` slot list — exactly the rows an optimizer
    /// step updates, in the order it updates them. The trainer feeds this to
    /// `KgeModel::apply_constraints`; the slice lives in the arena, so the
    /// steady state allocates nothing.
    pub fn touched(&mut self) -> &[(TableId, usize)] {
        self.ensure_sorted();
        &self.sorted
    }

    /// Add every entry of `other` into this arena, walking `other`'s sorted
    /// slot list.
    ///
    /// This is the reduction step of the sharded trainer: each shard worker
    /// accumulates into its own arena and the main thread merges the
    /// per-shard arenas in ascending shard order. Each `(table, row)` entry
    /// is summed independently (`self[k] += other[k]` element-wise), so the
    /// merged values depend only on the order in which *arenas* are merged —
    /// fixed by the caller — while the sorted walk keeps the slot-creation
    /// order (and with it every later ordered traversal) deterministic by
    /// construction.
    pub fn merge(&mut self, other: &mut GradientArena) {
        other.ensure_sorted();
        for i in 0..other.sorted.len() {
            let (table, row) = other.sorted[i];
            let slab = &other.tables[table];
            let base = slab.slot_of_row[row] as usize * slab.dim;
            self.add(table, row, &slab.grads[base..base + slab.dim], 1.0);
        }
    }

    /// Sum of squared components across all entries — the squared L2 norm of
    /// the full sparse gradient (Figure 10 instrumentation).
    ///
    /// Rows are summed in ascending `(table, row)` order — the same
    /// association as `GradientBuffer::squared_norm`'s sorted-key sum, so the
    /// two engines report bit-identical norms. Unlike the buffer, no key
    /// vector is collected or sorted per call: the arena's slot index *is*
    /// the sorted order.
    pub fn squared_norm(&mut self) -> f64 {
        self.ensure_sorted();
        self.sorted
            .iter()
            .map(|&(table, row)| {
                let slab = &self.tables[table];
                let base = slab.slot_of_row[row] as usize * slab.dim;
                slab.grads[base..base + slab.dim]
                    .iter()
                    .map(|x| x * x)
                    .sum::<f64>()
            })
            .sum()
    }

    /// L2 norm of the full sparse gradient.
    pub fn norm(&mut self) -> f64 {
        self.squared_norm().sqrt()
    }

    /// Resolve (creating if needed) the slab offset of `(table, row)`.
    fn slot_base(&mut self, table: TableId, row: usize, dim: usize) -> usize {
        if table >= self.tables.len() {
            self.tables.resize_with(table + 1, TableSlab::default);
        }
        let slab = &mut self.tables[table];
        if slab.dim == 0 {
            slab.dim = dim;
        }
        debug_assert_eq!(slab.dim, dim, "gradient dimension mismatch");
        if row >= slab.slot_of_row.len() {
            // Geometric growth keeps repeated first touches amortised O(1);
            // the index tops out at one u32 per table row.
            let grown = (row + 1).next_power_of_two().max(64);
            slab.slot_of_row.resize(grown, NO_SLOT);
        }
        let slot = slab.slot_of_row[row];
        if slot != NO_SLOT {
            return slot as usize * slab.dim;
        }
        let slot = slab.touched.len() as u32;
        slab.slot_of_row[row] = slot;
        slab.touched.push(row as u32);
        let base = slab.grads.len();
        slab.grads.resize(base + dim, 0.0);
        self.len += 1;
        self.sorted_valid = false;
        base
    }

    fn ensure_sorted(&mut self) {
        if self.sorted_valid {
            return;
        }
        self.sorted.clear();
        for (table, slab) in self.tables.iter().enumerate() {
            self.sorted
                .extend(slab.touched.iter().map(|&row| (table, row as usize)));
        }
        self.sorted.sort_unstable();
        self.sorted_valid = true;
    }
}

impl GradientSink for GradientArena {
    fn add(&mut self, table: TableId, row: usize, values: &[f64], coeff: f64) {
        GradientArena::add(self, table, row, values, coeff);
    }

    fn add_component(&mut self, table: TableId, row: usize, dim: usize, idx: usize, coeff: f64) {
        GradientArena::add_component(self, table, row, dim, idx, coeff);
    }
}

/// Sorted read-only view over an arena's touched rows, consumed by the
/// optimizers: ascending `(table, row)` order, one contiguous gradient slice
/// per row.
pub struct SparseRows<'a> {
    arena: &'a GradientArena,
}

impl<'a> SparseRows<'a> {
    /// Number of touched rows.
    pub fn len(&self) -> usize {
        self.arena.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.arena.len == 0
    }

    /// Iterate `(table, row, gradient)` in ascending `(table, row)` order.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, usize, &'a [f64])> + '_ {
        self.arena.sorted.iter().map(|&(table, row)| {
            let slab = &self.arena.tables[table];
            let base = slab.slot_of_row[row] as usize * slab.dim;
            (table, row, &slab.grads[base..base + slab.dim])
        })
    }

    /// Iterate the touched rows grouped into per-table runs, in ascending
    /// table order (rows ascending within each run).
    ///
    /// Because the slot index is sorted by `(table, row)`, each table's rows
    /// form one contiguous run of it — so grouping costs nothing. This is the
    /// view the optimizers walk: resolving the parameter table once per *run*
    /// instead of once per row hoists the virtual `KgeModel::table_mut`
    /// dispatch out of the per-row apply loop.
    pub fn by_table(&self) -> TableRuns<'a> {
        TableRuns {
            arena: self.arena,
            pos: 0,
        }
    }
}

/// Iterator over the per-table runs of a [`SparseRows`] view; see
/// [`SparseRows::by_table`].
pub struct TableRuns<'a> {
    arena: &'a GradientArena,
    pos: usize,
}

impl<'a> Iterator for TableRuns<'a> {
    type Item = (TableId, TableRun<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        let sorted = &self.arena.sorted;
        let start = self.pos;
        let (table, _) = *sorted.get(start)?;
        let mut end = start + 1;
        while sorted.get(end).is_some_and(|&(t, _)| t == table) {
            end += 1;
        }
        self.pos = end;
        Some((
            table,
            TableRun {
                arena: self.arena,
                start,
                end,
            },
        ))
    }
}

/// One table's contiguous run of touched rows (ascending row order).
pub struct TableRun<'a> {
    arena: &'a GradientArena,
    start: usize,
    end: usize,
}

impl<'a> TableRun<'a> {
    /// Number of touched rows in this run.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the run is empty (never produced by [`TableRuns`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Gradient dimension of this table's rows.
    pub fn dim(&self) -> usize {
        let (table, _) = self.arena.sorted[self.start];
        self.arena.tables[table].dim
    }

    /// Iterate `(row, gradient)` in ascending row order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &'a [f64])> + '_ {
        self.arena.sorted[self.start..self.end]
            .iter()
            .map(|&(table, row)| {
                let slab = &self.arena.tables[table];
                let base = slab.slot_of_row[row] as usize * slab.dim;
                (row, &slab.grads[base..base + slab.dim])
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::GradientBuffer;

    #[test]
    fn add_accumulates_with_coefficients() {
        let mut a = GradientArena::new();
        a.add(0, 3, &[1.0, 2.0], 2.0);
        a.add(0, 3, &[1.0, 0.0], -1.0);
        assert_eq!(a.get(0, 3), Some(&[1.0, 4.0][..]));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn zero_coefficient_is_a_noop() {
        let mut a = GradientArena::new();
        a.add(1, 1, &[5.0], 0.0);
        assert!(a.is_empty());
        a.add_component(1, 1, 4, 2, 0.0);
        assert!(a.is_empty());
    }

    #[test]
    fn add_component_creates_sized_rows() {
        let mut a = GradientArena::new();
        a.add_component(0, 7, 3, 1, 2.5);
        assert_eq!(a.get(0, 7), Some(&[0.0, 2.5, 0.0][..]));
    }

    #[test]
    fn rows_iterate_in_sorted_table_row_order() {
        let mut a = GradientArena::new();
        // Touch out of order, across tables.
        a.add(1, 5, &[1.0], 1.0);
        a.add(0, 9, &[2.0], 1.0);
        a.add(0, 2, &[3.0], 1.0);
        a.add(1, 0, &[4.0], 1.0);
        let order: Vec<(TableId, usize)> = a.rows().iter().map(|(t, r, _)| (t, r)).collect();
        assert_eq!(order, vec![(0, 2), (0, 9), (1, 0), (1, 5)]);
        assert_eq!(a.touched(), &[(0, 2), (0, 9), (1, 0), (1, 5)]);
        let values: Vec<f64> = a.rows().iter().map(|(_, _, g)| g[0]).collect();
        assert_eq!(values, vec![3.0, 2.0, 4.0, 1.0]);
    }

    #[test]
    fn clear_keeps_slabs_reusable_and_resets_entries() {
        let mut a = GradientArena::new();
        a.add(0, 1, &[1.0, 1.0], 1.0);
        a.add(2, 8, &[2.0], 1.0);
        assert_eq!(a.len(), 2);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.get(0, 1), None);
        assert_eq!(a.get(2, 8), None);
        assert!(a.rows().iter().next().is_none());
        // Re-touching after clear starts from zero again.
        a.add(0, 1, &[5.0, 0.0], 1.0);
        assert_eq!(a.get(0, 1), Some(&[5.0, 0.0][..]));
    }

    #[test]
    fn merge_adds_entries_pairwise_and_keeps_disjoint_ones() {
        let mut a = GradientArena::new();
        a.add(0, 0, &[1.0, 2.0], 1.0);
        a.add(0, 1, &[3.0, 0.0], 1.0);
        let mut b = GradientArena::new();
        b.add(0, 0, &[10.0, 20.0], 1.0);
        b.add(1, 5, &[7.0], 1.0);
        a.merge(&mut b);
        assert_eq!(a.get(0, 0), Some(&[11.0, 22.0][..]));
        assert_eq!(a.get(0, 1), Some(&[3.0, 0.0][..]));
        assert_eq!(a.get(1, 5), Some(&[7.0][..]));
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 2, "merge borrows the source");
    }

    #[test]
    fn norms_match_the_hashmap_reference_bit_for_bit() {
        let mut arena = GradientArena::new();
        let mut buffer = GradientBuffer::new();
        // Irrational-ish values so any reassociation would show in the bits.
        for (i, &(t, r)) in [(0, 3), (1, 0), (0, 1), (2, 7), (0, 3)].iter().enumerate() {
            let v = [0.1 + i as f64 / 3.0, -1.0 / (i as f64 + 2.0)];
            arena.add(t, r, &v, 1.7);
            buffer.add(t, r, &v, 1.7);
        }
        assert_eq!(
            arena.squared_norm().to_bits(),
            buffer.squared_norm().to_bits()
        );
        assert_eq!(arena.norm().to_bits(), buffer.norm().to_bits());
    }

    #[test]
    fn values_match_the_hashmap_reference_bit_for_bit() {
        let mut arena = GradientArena::new();
        let mut buffer = GradientBuffer::new();
        let ops: &[(TableId, usize, [f64; 2], f64)] = &[
            (0, 4, [0.3, -0.7], 1.0),
            (1, 2, [1.1, 2.2], -0.5),
            (0, 4, [0.9, 0.1], 0.25),
            (0, 0, [5.0, -5.0], 1.0 / 3.0),
        ];
        for &(t, r, v, c) in ops {
            arena.add(t, r, &v, c);
            buffer.add(t, r, &v, c);
        }
        arena.add_component(1, 2, 2, 1, 0.125);
        buffer.add_component(1, 2, 2, 1, 0.125);
        for (t, r, g) in arena.rows().iter() {
            let reference = buffer.get(t, r).expect("same touched set");
            assert_eq!(g.len(), reference.len());
            for (a, b) in g.iter().zip(reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "({t}, {r}) diverged");
            }
        }
        assert_eq!(arena.len(), buffer.len());
    }

    #[test]
    fn by_table_groups_the_sorted_rows_into_runs() {
        let mut a = GradientArena::new();
        a.add(2, 1, &[9.0], 1.0);
        a.add(0, 5, &[1.0, 2.0], 1.0);
        a.add(0, 2, &[3.0, 4.0], 1.0);
        a.add(2, 0, &[8.0], 1.0);
        let runs: Vec<(TableId, Vec<usize>, usize)> = a
            .rows()
            .by_table()
            .map(|(t, run)| (t, run.iter().map(|(r, _)| r).collect(), run.dim()))
            .collect();
        assert_eq!(runs, vec![(0, vec![2, 5], 2), (2, vec![0, 1], 1)]);
        // The grouped walk visits exactly the rows of the flat sorted walk,
        // in the same order.
        let flat: Vec<(TableId, usize)> = a.rows().iter().map(|(t, r, _)| (t, r)).collect();
        let grouped: Vec<(TableId, usize)> = a
            .rows()
            .by_table()
            .flat_map(|(t, run)| run.iter().map(move |(r, _)| (t, r)).collect::<Vec<_>>())
            .collect();
        assert_eq!(flat, grouped);
        let (_, first_run) = a.rows().by_table().next().unwrap();
        assert_eq!(first_run.len(), 2);
        assert!(!first_run.is_empty());
    }

    #[test]
    fn sink_trait_routes_to_the_inherent_methods() {
        fn fill(sink: &mut dyn GradientSink) {
            sink.add(0, 1, &[2.0], 1.5);
            sink.add_component(0, 2, 1, 0, -1.0);
        }
        let mut a = GradientArena::new();
        fill(&mut a);
        assert_eq!(a.get(0, 1), Some(&[3.0][..]));
        assert_eq!(a.get(0, 2), Some(&[-1.0][..]));
    }
}
