//! TransH (Wang et al., AAAI 2014):
//! `f(h,r,t) = −‖(h − wᵣᵀh·wᵣ) + r − (t − wᵣᵀt·wᵣ)‖₁`,
//! i.e. TransE on the hyperplane with unit normal `wᵣ`.

use crate::batch::with_query_scratch;
use crate::embedding::EmbeddingTable;
use crate::gradient::{GradientSink, TableId};
use crate::scorer::{KgeModel, ModelKind, ENTITY_TABLE, RELATION_TABLE};
use nscaching_kg::{CorruptionSide, EntityId, Triple};
use nscaching_math::vecops::{dot, l1_combine, signum};
use rand::Rng;

/// Index of the relation-normal table `wᵣ` in [`TransH::tables`].
pub const NORMAL_TABLE: TableId = 2;

/// TransH with L1 dissimilarity.
#[derive(Debug, Clone)]
pub struct TransH {
    entities: EmbeddingTable,
    relations: EmbeddingTable,
    normals: EmbeddingTable,
    dim: usize,
}

impl TransH {
    /// Create a Xavier-initialised TransH model. Relation normals are
    /// normalised to unit length immediately, as required by the model.
    pub fn new<R: Rng + ?Sized>(
        num_entities: usize,
        num_relations: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let entities = EmbeddingTable::xavier("entity", num_entities, dim, rng);
        let relations = EmbeddingTable::xavier("relation", num_relations, dim, rng);
        let mut normals = EmbeddingTable::xavier("relation_normal", num_relations, dim, rng);
        normals.normalize_rows();
        let mut model = Self {
            entities,
            relations,
            normals,
            dim,
        };
        for i in 0..num_entities {
            model.entities.project_row(i);
        }
        model
    }

    /// Residual on the relation hyperplane:
    /// `u = (h − t) − (wᵣ·(h − t))·wᵣ + r`.
    fn residual(&self, t: &Triple) -> (Vec<f64>, Vec<f64>, f64) {
        let h = self.entities.row(t.head as usize);
        let r = self.relations.row(t.relation as usize);
        let tl = self.entities.row(t.tail as usize);
        let w = self.normals.row(t.relation as usize);
        let x: Vec<f64> = h.iter().zip(tl).map(|(a, b)| a - b).collect();
        let wx = dot(w, &x);
        let u: Vec<f64> = x
            .iter()
            .zip(r)
            .zip(w)
            .map(|((xi, ri), wi)| xi + ri - wx * wi)
            .collect();
        (u, x, wx)
    }

    /// Candidate-independent part of the hyperplane residual.
    ///
    /// Corrupting the tail: `q_i = h_i + r_i − (w·h)·w_i` and the residual of
    /// candidate `t` is `q − t + (w·t)·w`. Corrupting the head:
    /// `q_i = r_i − t_i + (w·t)·w_i` and the residual of candidate `h` is
    /// `h + q − (w·h)·w`.
    fn fill_query(&self, t: &Triple, side: CorruptionSide, q: &mut [f64]) {
        let r = self.relations.row(t.relation as usize);
        let w = self.normals.row(t.relation as usize);
        match side {
            CorruptionSide::Tail => {
                let h = self.entities.row(t.head as usize);
                let wh = dot(w, h);
                for i in 0..q.len() {
                    q[i] = h[i] + r[i] - wh * w[i];
                }
            }
            CorruptionSide::Head => {
                let tl = self.entities.row(t.tail as usize);
                let wt = dot(w, tl);
                for i in 0..q.len() {
                    q[i] = r[i] - tl[i] + wt * w[i];
                }
            }
        }
    }

    /// Fused per-candidate kernel shared by the two batched entry points:
    /// one dot with the hyperplane normal, then one vectorised residual pass
    /// (`sign` folds the tail/head orientation, `c` the projection scalar).
    #[inline]
    fn candidate_score(q: &[f64], w: &[f64], row: &[f64], side: CorruptionSide) -> f64 {
        let wc = dot(w, row);
        match side {
            CorruptionSide::Tail => -l1_combine(q, row, w, -1.0, wc),
            CorruptionSide::Head => -l1_combine(q, row, w, 1.0, -wc),
        }
    }
}

impl KgeModel for TransH {
    fn kind(&self) -> ModelKind {
        ModelKind::TransH
    }

    fn num_entities(&self) -> usize {
        self.entities.rows()
    }

    fn num_relations(&self) -> usize {
        self.relations.rows()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn score(&self, t: &Triple) -> f64 {
        let (u, _, _) = self.residual(t);
        -u.iter().map(|v| v.abs()).sum::<f64>()
    }

    fn score_candidates(
        &self,
        t: &Triple,
        side: CorruptionSide,
        candidates: &[EntityId],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(candidates.len());
        let w = self.normals.row(t.relation as usize);
        with_query_scratch(self.dim, |q| {
            self.fill_query(t, side, q);
            for &e in candidates {
                let row = self.entities.row(e as usize);
                out.push(Self::candidate_score(q, w, row, side));
            }
        });
    }

    fn score_all_into(&self, t: &Triple, side: CorruptionSide, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.entities.rows());
        let w = self.normals.row(t.relation as usize);
        with_query_scratch(self.dim, |q| {
            self.fill_query(t, side, q);
            for row in self.entities.rows_iter() {
                out.push(Self::candidate_score(q, w, row, side));
            }
        });
    }

    fn accumulate_score_gradient(&self, t: &Triple, coeff: f64, grads: &mut dyn GradientSink) {
        // f = −‖u‖₁, u = x + r − (w·x)·w with x = h − t.
        // ∂f/∂u = −s (s = sign(u)).
        // ∂u/∂h = I − w wᵀ           ⇒ ∂f/∂h = −(s − (w·s) w)
        // ∂u/∂t = −(I − w wᵀ)        ⇒ ∂f/∂t = +(s − (w·s) w)
        // ∂u/∂r = I                  ⇒ ∂f/∂r = −s
        // ∂u/∂w = −(w xᵀ + (w·x) I)  ⇒ ∂f/∂w = (w·s) x + (w·x) s  … times −(−1)
        let (u, x, wx) = self.residual(t);
        let s = signum(&u);
        let w = self.normals.row(t.relation as usize);
        let ws = dot(w, &s);

        let proj_s: Vec<f64> = s.iter().zip(w).map(|(si, wi)| si - ws * wi).collect();
        grads.add(ENTITY_TABLE, t.head as usize, &proj_s, -coeff);
        grads.add(ENTITY_TABLE, t.tail as usize, &proj_s, coeff);
        grads.add(RELATION_TABLE, t.relation as usize, &s, -coeff);

        // ∂f/∂w_j = −Σ_i s_i ∂u_i/∂w_j = −Σ_i s_i (−x_j w_i − wx δ_ij)
        //         = (w·s) x_j + wx s_j, all multiplied by −1 from f = −‖u‖₁
        // (the −1 is already folded into s's role; derive carefully:)
        //   ∂f/∂w = +((w·s) x + wx s) with f = −‖u‖₁ and the minus signs above
        //   cancelling — verified against finite differences in tests.
        let grad_w: Vec<f64> = x.iter().zip(&s).map(|(xi, si)| ws * xi + wx * si).collect();
        grads.add(NORMAL_TABLE, t.relation as usize, &grad_w, coeff);
    }

    fn tables(&self) -> Vec<&EmbeddingTable> {
        vec![&self.entities, &self.relations, &self.normals]
    }

    fn tables_mut(&mut self) -> Vec<&mut EmbeddingTable> {
        vec![&mut self.entities, &mut self.relations, &mut self.normals]
    }

    fn table_mut(&mut self, table: TableId) -> &mut EmbeddingTable {
        match table {
            ENTITY_TABLE => &mut self.entities,
            RELATION_TABLE => &mut self.relations,
            NORMAL_TABLE => &mut self.normals,
            _ => panic!("TransH has no table {table}"),
        }
    }

    fn parameter_rows(&self, t: &Triple) -> Vec<(TableId, usize)> {
        vec![
            (ENTITY_TABLE, t.head as usize),
            (RELATION_TABLE, t.relation as usize),
            (ENTITY_TABLE, t.tail as usize),
            (NORMAL_TABLE, t.relation as usize),
        ]
    }

    fn apply_constraints(&mut self, touched: &[(TableId, usize)]) {
        for &(table, row) in touched {
            match table {
                ENTITY_TABLE => self.entities.project_row(row),
                NORMAL_TABLE => self.normals.normalize_row(row),
                _ => {}
            }
        }
    }

    fn clone_box(&self) -> Box<dyn KgeModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;

    fn tiny_model() -> TransH {
        let mut rng = seeded_rng(7);
        TransH::new(6, 3, 5, &mut rng)
    }

    #[test]
    fn normals_start_unit_length() {
        let m = tiny_model();
        for i in 0..3 {
            assert!((m.tables()[NORMAL_TABLE].row_norm(i) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn projection_removes_the_normal_component() {
        let mut m = tiny_model();
        let dim = m.dim();
        // Set w = e1; then the first component of h and t is projected away,
        // so the score must not depend on it.
        let mut w = vec![0.0; dim];
        w[0] = 1.0;
        m.tables_mut()[NORMAL_TABLE].set_row(0, &w);
        let mut h = vec![0.1; dim];
        m.tables_mut()[ENTITY_TABLE].set_row(0, &h);
        let base = m.score(&Triple::new(0, 0, 1));
        h[0] = 0.9; // only change the projected-away component
        m.tables_mut()[ENTITY_TABLE].set_row(0, &h);
        let changed = m.score(&Triple::new(0, 0, 1));
        assert!((base - changed).abs() < 1e-9);
    }

    #[test]
    fn constraints_renormalise_touched_rows() {
        let mut m = tiny_model();
        m.tables_mut()[NORMAL_TABLE].set_row(1, &[2.0, 0.0, 0.0, 0.0, 0.0]);
        m.tables_mut()[ENTITY_TABLE].set_row(2, &[0.0, 3.0, 0.0, 0.0, 4.0]);
        m.apply_constraints(&[(NORMAL_TABLE, 1), (ENTITY_TABLE, 2)]);
        assert!((m.tables()[NORMAL_TABLE].row_norm(1) - 1.0).abs() < 1e-12);
        assert!((m.tables()[ENTITY_TABLE].row_norm(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parameter_rows_include_normal_vector() {
        let m = tiny_model();
        let rows = m.parameter_rows(&Triple::new(0, 2, 5));
        assert!(rows.contains(&(NORMAL_TABLE, 2)));
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn table_count_and_parameters() {
        let m = tiny_model();
        assert_eq!(m.tables().len(), 3);
        assert_eq!(m.num_parameters(), 6 * 5 + 3 * 5 + 3 * 5);
        assert_eq!(m.kind(), ModelKind::TransH);
    }
}
