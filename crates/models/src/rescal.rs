//! RESCAL (Nickel et al., ICML 2011): `f(h,r,t) = hᵀ M_r t` with a full
//! relation matrix `M_r ∈ ℝ^{d×d}`.

use crate::batch::with_query_scratch;
use crate::embedding::EmbeddingTable;
use crate::gradient::{GradientSink, TableId};
use crate::scorer::{KgeModel, ModelKind, ENTITY_TABLE};
use nscaching_kg::{CorruptionSide, EntityId, Triple};
use nscaching_math::vecops::dot;
use rand::Rng;

/// Index of the relation-matrix table (each row is a flattened `d×d` matrix).
/// RESCAL has no relation *vector*; the second table is the matrix table so
/// that `RELATION_TABLE` still addresses per-relation parameters.
pub const MATRIX_TABLE: TableId = 1;

/// RESCAL — the original bilinear tensor-factorisation model.
#[derive(Debug, Clone)]
pub struct Rescal {
    entities: EmbeddingTable,
    matrices: EmbeddingTable,
    dim: usize,
}

impl Rescal {
    /// Create a Xavier-initialised RESCAL model.
    pub fn new<R: Rng + ?Sized>(
        num_entities: usize,
        num_relations: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        Self {
            entities: EmbeddingTable::xavier("entity", num_entities, dim, rng),
            matrices: EmbeddingTable::xavier("relation_matrix", num_relations, dim * dim, rng),
            dim,
        }
    }

    /// The bilinear form is linear in the candidate, so the whole query side
    /// collapses into one vector: `q = hᵀ·M_r` for tail corruption,
    /// `q = M_r·t` for head corruption; each candidate then scores `q · e`.
    fn fill_query(&self, t: &Triple, side: CorruptionSide, q: &mut [f64]) {
        let m = self.matrices.row(t.relation as usize);
        let d = self.dim;
        match side {
            CorruptionSide::Tail => {
                let h = self.entities.row(t.head as usize);
                for (i, &hi) in h.iter().enumerate() {
                    let mi = &m[i * d..(i + 1) * d];
                    for (qj, mij) in q.iter_mut().zip(mi) {
                        *qj += hi * mij;
                    }
                }
            }
            CorruptionSide::Head => {
                let tl = self.entities.row(t.tail as usize);
                for (i, qi) in q.iter_mut().enumerate() {
                    *qi = dot(&m[i * d..(i + 1) * d], tl);
                }
            }
        }
    }
}

impl KgeModel for Rescal {
    fn kind(&self) -> ModelKind {
        ModelKind::Rescal
    }

    fn num_entities(&self) -> usize {
        self.entities.rows()
    }

    fn num_relations(&self) -> usize {
        self.matrices.rows()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn score(&self, t: &Triple) -> f64 {
        let h = self.entities.row(t.head as usize);
        let tl = self.entities.row(t.tail as usize);
        let m = self.matrices.row(t.relation as usize);
        let d = self.dim;
        (0..d).map(|i| h[i] * dot(&m[i * d..(i + 1) * d], tl)).sum()
    }

    fn score_candidates(
        &self,
        t: &Triple,
        side: CorruptionSide,
        candidates: &[EntityId],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(candidates.len());
        with_query_scratch(self.dim, |q| {
            self.fill_query(t, side, q);
            for &e in candidates {
                out.push(dot(q, self.entities.row(e as usize)));
            }
        });
    }

    fn score_all_into(&self, t: &Triple, side: CorruptionSide, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.entities.rows());
        with_query_scratch(self.dim, |q| {
            self.fill_query(t, side, q);
            for row in self.entities.rows_iter() {
                out.push(dot(q, row));
            }
        });
    }

    fn accumulate_score_gradient(&self, t: &Triple, coeff: f64, grads: &mut dyn GradientSink) {
        // f = hᵀ M t ⇒ ∂f/∂h = M t, ∂f/∂t = Mᵀ h, ∂f/∂M = h tᵀ.
        let h = self.entities.row(t.head as usize);
        let tl = self.entities.row(t.tail as usize);
        let m = self.matrices.row(t.relation as usize);
        let d = self.dim;

        let m_t: Vec<f64> = (0..d).map(|i| dot(&m[i * d..(i + 1) * d], tl)).collect();
        let mt_h: Vec<f64> = (0..d)
            .map(|j| (0..d).map(|i| m[i * d + j] * h[i]).sum())
            .collect();
        grads.add(ENTITY_TABLE, t.head as usize, &m_t, coeff);
        grads.add(ENTITY_TABLE, t.tail as usize, &mt_h, coeff);

        let mut grad_m = vec![0.0; d * d];
        for i in 0..d {
            for j in 0..d {
                grad_m[i * d + j] = h[i] * tl[j];
            }
        }
        grads.add(MATRIX_TABLE, t.relation as usize, &grad_m, coeff);
    }

    fn tables(&self) -> Vec<&EmbeddingTable> {
        vec![&self.entities, &self.matrices]
    }

    fn tables_mut(&mut self) -> Vec<&mut EmbeddingTable> {
        vec![&mut self.entities, &mut self.matrices]
    }

    fn table_mut(&mut self, table: TableId) -> &mut EmbeddingTable {
        match table {
            ENTITY_TABLE => &mut self.entities,
            1 => &mut self.matrices,
            _ => panic!("RESCAL has no table {table}"),
        }
    }

    fn parameter_rows(&self, t: &Triple) -> Vec<(TableId, usize)> {
        vec![
            (ENTITY_TABLE, t.head as usize),
            (MATRIX_TABLE, t.relation as usize),
            (ENTITY_TABLE, t.tail as usize),
        ]
    }

    fn apply_constraints(&mut self, _touched: &[(TableId, usize)]) {}

    fn clone_box(&self) -> Box<dyn KgeModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;

    fn tiny_model() -> Rescal {
        let mut rng = seeded_rng(31);
        Rescal::new(4, 2, 2, &mut rng)
    }

    #[test]
    fn score_matches_manual_bilinear_form() {
        let mut m = tiny_model();
        m.tables_mut()[ENTITY_TABLE].set_row(0, &[1.0, 2.0]);
        m.tables_mut()[ENTITY_TABLE].set_row(1, &[3.0, -1.0]);
        // M = [[1, 0], [2, 1]]
        m.tables_mut()[MATRIX_TABLE].set_row(0, &[1.0, 0.0, 2.0, 1.0]);
        // hᵀ M t = [1,2]·[[1,0],[2,1]]·[3,-1] = [1,2]·[3, 5]... compute:
        // M t = [1*3 + 0*(-1), 2*3 + 1*(-1)] = [3, 5]; h·[3,5] = 3 + 10 = 13
        assert!((m.score(&Triple::new(0, 0, 1)) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn identity_matrix_reduces_to_dot_product() {
        let mut m = tiny_model();
        m.tables_mut()[ENTITY_TABLE].set_row(0, &[0.5, -0.25]);
        m.tables_mut()[ENTITY_TABLE].set_row(2, &[2.0, 4.0]);
        m.tables_mut()[MATRIX_TABLE].set_row(1, &[1.0, 0.0, 0.0, 1.0]);
        assert!((m.score(&Triple::new(0, 1, 2)) - (0.5 * 2.0 - 0.25 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_matrix_gives_asymmetric_scores() {
        let mut m = tiny_model();
        m.tables_mut()[ENTITY_TABLE].set_row(0, &[1.0, 0.0]);
        m.tables_mut()[ENTITY_TABLE].set_row(1, &[0.0, 1.0]);
        m.tables_mut()[MATRIX_TABLE].set_row(0, &[0.0, 1.0, 0.0, 0.0]);
        let t = Triple::new(0, 0, 1);
        assert!((m.score(&t) - 1.0).abs() < 1e-12);
        assert!((m.score(&t.reversed()) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn metadata_and_parameter_count() {
        let m = tiny_model();
        assert_eq!(m.kind(), ModelKind::Rescal);
        assert_eq!(m.num_relations(), 2);
        assert_eq!(m.num_parameters(), 4 * 2 + 2 * 4);
        let rows = m.parameter_rows(&Triple::new(0, 1, 3));
        assert!(rows.contains(&(MATRIX_TABLE, 1)));
    }
}
