//! Property-based tests for the knowledge-graph substrate.

use nscaching_kg::{
    io, BernoulliStats, CorruptionSide, FilterIndex, KnowledgeGraph, Triple, Vocab,
};
use proptest::prelude::*;
use std::io::Cursor;

/// Strategy generating a set of triples over a small vocabulary.
fn triples_strategy(
    num_entities: u32,
    num_relations: u32,
    max_len: usize,
) -> impl Strategy<Value = Vec<Triple>> {
    prop::collection::vec(
        (0..num_entities, 0..num_relations, 0..num_entities)
            .prop_map(|(h, r, t)| Triple::new(h, r, t)),
        1..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_contains_exactly_the_inserted_triples(triples in triples_strategy(20, 4, 200)) {
        let g = KnowledgeGraph::from_triples(20, 4, triples.clone()).unwrap();
        for t in &triples {
            prop_assert!(g.contains(t));
        }
        // every stored triple came from the input
        for t in g.triples() {
            prop_assert!(triples.contains(t));
        }
        // stored triples are distinct
        let mut unique = triples.clone();
        unique.sort();
        unique.dedup();
        prop_assert_eq!(g.len(), unique.len());
    }

    #[test]
    fn adjacency_indexes_are_consistent_with_membership(triples in triples_strategy(15, 3, 120)) {
        let g = KnowledgeGraph::from_triples(15, 3, triples).unwrap();
        for t in g.triples() {
            prop_assert!(g.tails_of(t.head, t.relation).contains(&t.tail));
            prop_assert!(g.heads_of(t.relation, t.tail).contains(&t.head));
        }
        for (h, r) in g.head_relation_keys() {
            for &tail in g.tails_of(h, r) {
                prop_assert!(g.contains(&Triple::new(h, r, tail)));
            }
        }
    }

    #[test]
    fn filter_index_agrees_with_naive_membership(triples in triples_strategy(12, 3, 100)) {
        let idx = FilterIndex::from_triples(triples.iter().copied());
        for h in 0..12u32 {
            for r in 0..3u32 {
                for t in 0..12u32 {
                    let probe = Triple::new(h, r, t);
                    prop_assert_eq!(idx.contains(&probe), triples.contains(&probe));
                }
            }
        }
    }

    #[test]
    fn false_negative_check_matches_direct_containment(
        triples in triples_strategy(10, 2, 60),
        candidate in 0u32..10,
    ) {
        let idx = FilterIndex::from_triples(triples.iter().copied());
        for pos in &triples {
            for side in CorruptionSide::BOTH {
                let expected = idx.contains(&pos.corrupted(side, candidate));
                prop_assert_eq!(idx.is_false_negative(pos, side, candidate), expected);
            }
        }
    }

    #[test]
    fn bernoulli_probabilities_are_valid(triples in triples_strategy(20, 5, 200)) {
        let stats = BernoulliStats::from_train(&triples, 5);
        for r in 0..5u32 {
            let p = stats.head_probability(r);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert_eq!(stats.corruption_side(r, 0.0), CorruptionSide::Head);
            prop_assert_eq!(stats.corruption_side(r, 0.999_999), CorruptionSide::Tail);
        }
        let total_count: usize = stats.all().iter().map(|s| s.count).sum();
        prop_assert_eq!(total_count, triples.len());
    }

    #[test]
    fn tsv_roundtrip_preserves_triples_by_name(triples in triples_strategy(16, 4, 80)) {
        let entities = Vocab::synthetic("e", 16);
        let relations = Vocab::synthetic("r", 4);
        let mut buf = Vec::new();
        io::write_triples(&mut buf, &triples, &entities, &relations).unwrap();
        let mut e2 = Vocab::new();
        let mut r2 = Vocab::new();
        let back = io::read_triples(Cursor::new(buf), &mut e2, &mut r2).unwrap();
        prop_assert_eq!(back.len(), triples.len());
        for (orig, round) in triples.iter().zip(&back) {
            prop_assert_eq!(entities.name(orig.head), e2.name(round.head));
            prop_assert_eq!(relations.name(orig.relation), r2.name(round.relation));
            prop_assert_eq!(entities.name(orig.tail), e2.name(round.tail));
        }
    }
}
