//! String ↔ id vocabularies for entities and relations.

use crate::error::KgError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A bidirectional mapping between names and dense ids.
///
/// Ids are assigned in insertion order starting from 0, which matches the
/// convention of the public benchmark `entity2id.txt` / `relation2id.txt`
/// files.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocab {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Vocab {
    /// Create an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a vocabulary of `n` synthetic names `prefix0..prefix{n-1}`.
    pub fn synthetic(prefix: &str, n: usize) -> Self {
        let mut v = Self::new();
        for i in 0..n {
            v.get_or_insert(&format!("{prefix}{i}"));
        }
        v
    }

    /// Number of names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Insert `name` if missing and return its id.
    pub fn get_or_insert(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Look up the id of `name`.
    pub fn id(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Look up the id of `name`, returning an error naming the missing entry.
    pub fn require(&self, name: &str) -> Result<u32, KgError> {
        self.id(name)
            .ok_or_else(|| KgError::UnknownName(name.to_owned()))
    }

    /// The name of `id`, if it exists.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(|s| s.as_str())
    }

    /// Iterate over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_assigns_dense_ids_in_order() {
        let mut v = Vocab::new();
        assert_eq!(v.get_or_insert("a"), 0);
        assert_eq!(v.get_or_insert("b"), 1);
        assert_eq!(v.get_or_insert("a"), 0, "re-insert must be idempotent");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn lookup_both_directions() {
        let mut v = Vocab::new();
        v.get_or_insert("x");
        v.get_or_insert("y");
        assert_eq!(v.id("y"), Some(1));
        assert_eq!(v.name(1), Some("y"));
        assert_eq!(v.id("z"), None);
        assert_eq!(v.name(9), None);
    }

    #[test]
    fn require_reports_unknown_names() {
        let v = Vocab::new();
        let err = v.require("missing").unwrap_err();
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn synthetic_builds_prefixed_names() {
        let v = Vocab::synthetic("e", 3);
        assert_eq!(v.len(), 3);
        assert_eq!(v.name(2), Some("e2"));
        assert_eq!(v.id("e0"), Some(0));
    }

    #[test]
    fn iter_is_in_id_order() {
        let v = Vocab::synthetic("r", 4);
        let pairs: Vec<(u32, &str)> = v.iter().collect();
        assert_eq!(pairs[0], (0, "r0"));
        assert_eq!(pairs[3], (3, "r3"));
    }

    #[test]
    fn empty_vocab_reports_empty() {
        assert!(Vocab::new().is_empty());
        assert!(!Vocab::synthetic("e", 1).is_empty());
    }
}
