//! Indexed triple collections.

use crate::error::KgError;
use crate::triple::{EntityId, RelationId, Triple};
use std::collections::{HashMap, HashSet};

/// An indexed set of facts over fixed entity/relation vocabularies.
///
/// The structure maintains exactly the indexes negative sampling and filtered
/// evaluation need:
///
/// * membership test `contains(h, r, t)` — used to reject false negatives;
/// * `tails_of(h, r)` — every known tail of `(h, r, ·)`;
/// * `heads_of(r, t)` — every known head of `(·, r, t)`.
///
/// Duplicate insertions are ignored so the triple list stays a set.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeGraph {
    num_entities: usize,
    num_relations: usize,
    triples: Vec<Triple>,
    membership: HashSet<Triple>,
    tails_by_hr: HashMap<(EntityId, RelationId), Vec<EntityId>>,
    heads_by_rt: HashMap<(RelationId, EntityId), Vec<EntityId>>,
    triples_per_relation: Vec<usize>,
}

impl KnowledgeGraph {
    /// Create an empty graph over `num_entities` entities and
    /// `num_relations` relations.
    pub fn new(num_entities: usize, num_relations: usize) -> Self {
        Self {
            num_entities,
            num_relations,
            triples: Vec::new(),
            membership: HashSet::new(),
            tails_by_hr: HashMap::new(),
            heads_by_rt: HashMap::new(),
            triples_per_relation: vec![0; num_relations],
        }
    }

    /// Build a graph from a triple list, validating every id.
    pub fn from_triples(
        num_entities: usize,
        num_relations: usize,
        triples: impl IntoIterator<Item = Triple>,
    ) -> Result<Self, KgError> {
        let mut g = Self::new(num_entities, num_relations);
        for t in triples {
            g.insert(t)?;
        }
        Ok(g)
    }

    /// Number of entities in the vocabulary (not the number of *used* entities).
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// Number of relations in the vocabulary.
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// Number of distinct triples stored.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the graph stores no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Insert one triple. Returns `Ok(true)` if it was new, `Ok(false)` if it
    /// was already present, and an error if any id is out of range.
    pub fn insert(&mut self, t: Triple) -> Result<bool, KgError> {
        self.validate(t)?;
        if !self.membership.insert(t) {
            return Ok(false);
        }
        self.triples.push(t);
        self.tails_by_hr
            .entry((t.head, t.relation))
            .or_default()
            .push(t.tail);
        self.heads_by_rt
            .entry((t.relation, t.tail))
            .or_default()
            .push(t.head);
        self.triples_per_relation[t.relation as usize] += 1;
        Ok(true)
    }

    fn validate(&self, t: Triple) -> Result<(), KgError> {
        if (t.head as usize) >= self.num_entities {
            return Err(KgError::IdOutOfRange {
                what: "head entity",
                id: t.head as u64,
                bound: self.num_entities as u64,
            });
        }
        if (t.tail as usize) >= self.num_entities {
            return Err(KgError::IdOutOfRange {
                what: "tail entity",
                id: t.tail as u64,
                bound: self.num_entities as u64,
            });
        }
        if (t.relation as usize) >= self.num_relations {
            return Err(KgError::IdOutOfRange {
                what: "relation",
                id: t.relation as u64,
                bound: self.num_relations as u64,
            });
        }
        Ok(())
    }

    /// Membership test for a fully specified triple.
    pub fn contains(&self, t: &Triple) -> bool {
        self.membership.contains(t)
    }

    /// All stored triples in insertion order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Known tails of `(h, r, ·)` (empty slice if none).
    pub fn tails_of(&self, head: EntityId, relation: RelationId) -> &[EntityId] {
        self.tails_by_hr
            .get(&(head, relation))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Known heads of `(·, r, t)` (empty slice if none).
    pub fn heads_of(&self, relation: RelationId, tail: EntityId) -> &[EntityId] {
        self.heads_by_rt
            .get(&(relation, tail))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of triples using each relation.
    pub fn triples_per_relation(&self) -> &[usize] {
        &self.triples_per_relation
    }

    /// Distinct `(h, r)` keys — the index set of the paper's tail cache `T`.
    pub fn head_relation_keys(&self) -> impl Iterator<Item = (EntityId, RelationId)> + '_ {
        self.tails_by_hr.keys().copied()
    }

    /// Distinct `(r, t)` keys — the index set of the paper's head cache `H`.
    pub fn relation_tail_keys(&self) -> impl Iterator<Item = (RelationId, EntityId)> + '_ {
        self.heads_by_rt.keys().copied()
    }

    /// Number of entities that appear in at least one stored triple.
    pub fn used_entities(&self) -> usize {
        let mut used: HashSet<EntityId> = HashSet::new();
        for t in &self.triples {
            used.insert(t.head);
            used.insert(t.tail);
        }
        used.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> KnowledgeGraph {
        KnowledgeGraph::from_triples(
            5,
            2,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 2),
                Triple::new(3, 0, 1),
                Triple::new(1, 1, 4),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_counts_and_membership() {
        let g = sample_graph();
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_entities(), 5);
        assert_eq!(g.num_relations(), 2);
        assert!(g.contains(&Triple::new(0, 0, 1)));
        assert!(!g.contains(&Triple::new(0, 0, 4)));
        assert!(!g.is_empty());
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let mut g = sample_graph();
        assert!(!g.insert(Triple::new(0, 0, 1)).unwrap());
        assert_eq!(g.len(), 4);
        assert_eq!(g.tails_of(0, 0), &[1, 2]);
    }

    #[test]
    fn indexes_answer_adjacency_queries() {
        let g = sample_graph();
        assert_eq!(g.tails_of(0, 0), &[1, 2]);
        assert_eq!(g.heads_of(0, 1), &[0, 3]);
        assert!(g.tails_of(4, 0).is_empty());
        assert!(g.heads_of(1, 0).is_empty());
    }

    #[test]
    fn out_of_range_ids_are_rejected() {
        let mut g = KnowledgeGraph::new(3, 1);
        assert!(g.insert(Triple::new(3, 0, 0)).is_err());
        assert!(g.insert(Triple::new(0, 1, 0)).is_err());
        assert!(g.insert(Triple::new(0, 0, 3)).is_err());
        assert!(g.is_empty());
    }

    #[test]
    fn per_relation_counts() {
        let g = sample_graph();
        assert_eq!(g.triples_per_relation(), &[3, 1]);
    }

    #[test]
    fn cache_key_sets_match_distinct_pairs() {
        let g = sample_graph();
        let hr: HashSet<_> = g.head_relation_keys().collect();
        assert_eq!(hr.len(), 3);
        assert!(hr.contains(&(0, 0)));
        let rt: HashSet<_> = g.relation_tail_keys().collect();
        assert_eq!(rt.len(), 3);
        assert!(rt.contains(&(0, 1)));
    }

    #[test]
    fn used_entities_ignores_isolated_ids() {
        let g = sample_graph();
        // entity ids 0..5 declared, all of 0,1,2,3,4 appear.
        assert_eq!(g.used_entities(), 5);
        let g2 = KnowledgeGraph::from_triples(10, 1, vec![Triple::new(0, 0, 1)]).unwrap();
        assert_eq!(g2.used_entities(), 2);
    }
}
