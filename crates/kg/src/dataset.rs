//! Train/valid/test datasets and the filtered-evaluation index.

use crate::error::KgError;
use crate::graph::KnowledgeGraph;
use crate::triple::{CorruptionSide, EntityId, RelationId, Triple};
use crate::vocab::Vocab;
use std::collections::{HashMap, HashSet};

/// Which split of a dataset a triple belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// Training split.
    Train,
    /// Validation split.
    Valid,
    /// Test split.
    Test,
}

impl Split {
    /// All splits in canonical order.
    pub const ALL: [Split; 3] = [Split::Train, Split::Valid, Split::Test];

    /// Conventional file stem (`train`, `valid`, `test`).
    pub fn stem(self) -> &'static str {
        match self {
            Split::Train => "train",
            Split::Valid => "valid",
            Split::Test => "test",
        }
    }
}

/// A complete benchmark dataset: vocabularies plus train/valid/test splits.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name, e.g. `"wn18-synthetic"`.
    pub name: String,
    /// Entity vocabulary.
    pub entities: Vocab,
    /// Relation vocabulary.
    pub relations: Vocab,
    /// Training triples.
    pub train: Vec<Triple>,
    /// Validation triples.
    pub valid: Vec<Triple>,
    /// Test triples.
    pub test: Vec<Triple>,
}

impl Dataset {
    /// Assemble a dataset and validate that every id is within range and that
    /// the training split is non-empty.
    pub fn new(
        name: impl Into<String>,
        entities: Vocab,
        relations: Vocab,
        train: Vec<Triple>,
        valid: Vec<Triple>,
        test: Vec<Triple>,
    ) -> Result<Self, KgError> {
        let ds = Self {
            name: name.into(),
            entities,
            relations,
            train,
            valid,
            test,
        };
        if ds.train.is_empty() {
            return Err(KgError::Invalid("training split is empty".into()));
        }
        let ne = ds.num_entities() as u64;
        let nr = ds.num_relations() as u64;
        for t in ds.all_triples() {
            if t.head as u64 >= ne || t.tail as u64 >= ne {
                return Err(KgError::IdOutOfRange {
                    what: "entity",
                    id: t.head.max(t.tail) as u64,
                    bound: ne,
                });
            }
            if t.relation as u64 >= nr {
                return Err(KgError::IdOutOfRange {
                    what: "relation",
                    id: t.relation as u64,
                    bound: nr,
                });
            }
        }
        Ok(ds)
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// The requested split.
    pub fn split(&self, split: Split) -> &[Triple] {
        match split {
            Split::Train => &self.train,
            Split::Valid => &self.valid,
            Split::Test => &self.test,
        }
    }

    /// Iterate over every triple in every split.
    pub fn all_triples(&self) -> impl Iterator<Item = &Triple> {
        self.train
            .iter()
            .chain(self.valid.iter())
            .chain(self.test.iter())
    }

    /// Build the indexed training graph used by samplers.
    pub fn train_graph(&self) -> KnowledgeGraph {
        KnowledgeGraph::from_triples(
            self.num_entities(),
            self.num_relations(),
            self.train.iter().copied(),
        )
        .expect("dataset was validated at construction")
    }

    /// Build the filter index over *all* splits — the paper's "Filtered"
    /// setting removes corrupted triplets that exist in train, valid or test.
    pub fn filter_index(&self) -> FilterIndex {
        FilterIndex::from_triples(self.all_triples().copied())
    }

    /// A compact single-line summary (used by example binaries).
    pub fn summary(&self) -> String {
        format!(
            "{}: {} entities, {} relations, {} train / {} valid / {} test triples",
            self.name,
            self.num_entities(),
            self.num_relations(),
            self.train.len(),
            self.valid.len(),
            self.test.len()
        )
    }
}

/// Index of every known triple, used to implement the filtered ranking
/// protocol and to avoid false negatives during sampling.
///
/// Internally stores, for every `(h, r)`, the set of known tails and, for
/// every `(r, t)`, the set of known heads.
#[derive(Debug, Clone, Default)]
pub struct FilterIndex {
    tails: HashMap<(EntityId, RelationId), HashSet<EntityId>>,
    heads: HashMap<(RelationId, EntityId), HashSet<EntityId>>,
    len: usize,
}

impl FilterIndex {
    /// Build from an iterator of triples.
    pub fn from_triples(triples: impl IntoIterator<Item = Triple>) -> Self {
        let mut idx = Self::default();
        for t in triples {
            idx.insert(t);
        }
        idx
    }

    /// Insert a triple.
    pub fn insert(&mut self, t: Triple) {
        let newly_tail = self
            .tails
            .entry((t.head, t.relation))
            .or_default()
            .insert(t.tail);
        self.heads
            .entry((t.relation, t.tail))
            .or_default()
            .insert(t.head);
        if newly_tail {
            self.len += 1;
        }
    }

    /// Number of distinct triples indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is `(h, r, t)` a known (true) triple?
    pub fn contains(&self, t: &Triple) -> bool {
        self.tails
            .get(&(t.head, t.relation))
            .is_some_and(|s| s.contains(&t.tail))
    }

    /// Would corrupting `positive` on `side` with `candidate` produce a known
    /// (true) triple? Candidates for which this returns `true` must be
    /// filtered out of the ranking in the filtered protocol, and are the
    /// "false negatives" the paper's Bernoulli scheme tries to avoid.
    pub fn is_false_negative(
        &self,
        positive: &Triple,
        side: CorruptionSide,
        candidate: EntityId,
    ) -> bool {
        self.contains(&positive.corrupted(side, candidate))
    }

    /// Known tails of `(h, r, ·)`.
    pub fn known_tails(&self, head: EntityId, relation: RelationId) -> Option<&HashSet<EntityId>> {
        self.tails.get(&(head, relation))
    }

    /// Known heads of `(·, r, t)`.
    pub fn known_heads(&self, relation: RelationId, tail: EntityId) -> Option<&HashSet<EntityId>> {
        self.heads.get(&(relation, tail))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        let entities = Vocab::synthetic("e", 6);
        let relations = Vocab::synthetic("r", 2);
        Dataset::new(
            "tiny",
            entities,
            relations,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 2),
                Triple::new(3, 1, 4),
            ],
            vec![Triple::new(1, 0, 2)],
            vec![Triple::new(2, 1, 5)],
        )
        .unwrap()
    }

    #[test]
    fn dataset_counts_and_split_access() {
        let ds = tiny_dataset();
        assert_eq!(ds.num_entities(), 6);
        assert_eq!(ds.num_relations(), 2);
        assert_eq!(ds.split(Split::Train).len(), 3);
        assert_eq!(ds.split(Split::Valid).len(), 1);
        assert_eq!(ds.split(Split::Test).len(), 1);
        assert_eq!(ds.all_triples().count(), 5);
        assert!(ds.summary().contains("tiny"));
    }

    #[test]
    fn empty_train_split_is_rejected() {
        let err = Dataset::new(
            "bad",
            Vocab::synthetic("e", 2),
            Vocab::synthetic("r", 1),
            vec![],
            vec![],
            vec![Triple::new(0, 0, 1)],
        )
        .unwrap_err();
        assert!(err.to_string().contains("training split"));
    }

    #[test]
    fn out_of_range_ids_are_rejected() {
        let err = Dataset::new(
            "bad",
            Vocab::synthetic("e", 2),
            Vocab::synthetic("r", 1),
            vec![Triple::new(0, 0, 7)],
            vec![],
            vec![],
        )
        .unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn train_graph_only_contains_training_triples() {
        let ds = tiny_dataset();
        let g = ds.train_graph();
        assert_eq!(g.len(), 3);
        assert!(g.contains(&Triple::new(0, 0, 1)));
        assert!(
            !g.contains(&Triple::new(1, 0, 2)),
            "valid triple must not leak"
        );
    }

    #[test]
    fn filter_index_spans_all_splits() {
        let ds = tiny_dataset();
        let idx = ds.filter_index();
        assert_eq!(idx.len(), 5);
        assert!(
            idx.contains(&Triple::new(1, 0, 2)),
            "valid triples are filtered"
        );
        assert!(
            idx.contains(&Triple::new(2, 1, 5)),
            "test triples are filtered"
        );
        assert!(!idx.contains(&Triple::new(5, 0, 0)));
    }

    #[test]
    fn false_negative_detection() {
        let ds = tiny_dataset();
        let idx = ds.filter_index();
        let pos = Triple::new(0, 0, 1);
        // replacing tail 1 with 2 produces (0,0,2) which is a known triple
        assert!(idx.is_false_negative(&pos, CorruptionSide::Tail, 2));
        // replacing tail with 5 produces an unknown triple
        assert!(!idx.is_false_negative(&pos, CorruptionSide::Tail, 5));
        // replacing head 0 with 1 produces (1,0,1) which is unknown
        assert!(!idx.is_false_negative(&pos, CorruptionSide::Head, 1));
    }

    #[test]
    fn filter_index_deduplicates() {
        let idx = FilterIndex::from_triples(vec![Triple::new(0, 0, 1), Triple::new(0, 0, 1)]);
        assert_eq!(idx.len(), 1);
        assert!(!idx.is_empty());
    }

    #[test]
    fn known_neighbourhoods() {
        let ds = tiny_dataset();
        let idx = ds.filter_index();
        let tails = idx.known_tails(0, 0).unwrap();
        assert!(tails.contains(&1) && tails.contains(&2));
        let heads = idx.known_heads(0, 2).unwrap();
        assert!(heads.contains(&0) && heads.contains(&1));
        assert!(idx.known_tails(5, 1).is_none());
    }
}
