//! Dataset statistics: Bernoulli corruption probabilities, relation
//! categories and the summary counts of Table II.

use crate::dataset::Dataset;
use crate::triple::{CorruptionSide, RelationId, Triple};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Mapping category of a relation, determined by the average number of tails
/// per head (`tph`) and heads per tail (`hpt`), using the conventional 1.5
/// threshold from the TransH paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelationCategory {
    /// `tph < 1.5` and `hpt < 1.5`.
    OneToOne,
    /// `tph ≥ 1.5` and `hpt < 1.5`.
    OneToMany,
    /// `tph < 1.5` and `hpt ≥ 1.5`.
    ManyToOne,
    /// `tph ≥ 1.5` and `hpt ≥ 1.5`.
    ManyToMany,
}

/// Per-relation corruption statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelationStats {
    /// Average number of distinct tails per (head, relation) pair.
    pub tph: f64,
    /// Average number of distinct heads per (relation, tail) pair.
    pub hpt: f64,
    /// Number of training triples using this relation.
    pub count: usize,
}

impl RelationStats {
    /// Probability of corrupting the *head* under the Bernoulli scheme of
    /// Wang et al. (2014): `tph / (tph + hpt)`.
    ///
    /// Intuition: for a one-to-many relation (`tph` large) replacing the head
    /// is more likely to produce a true negative, so heads are replaced more
    /// often.
    pub fn head_corruption_probability(&self) -> f64 {
        let denom = self.tph + self.hpt;
        if denom <= 0.0 {
            0.5
        } else {
            self.tph / denom
        }
    }

    /// The relation's mapping category.
    pub fn category(&self) -> RelationCategory {
        match (self.tph >= 1.5, self.hpt >= 1.5) {
            (false, false) => RelationCategory::OneToOne,
            (true, false) => RelationCategory::OneToMany,
            (false, true) => RelationCategory::ManyToOne,
            (true, true) => RelationCategory::ManyToMany,
        }
    }
}

/// Bernoulli sampling statistics for every relation, computed from the
/// training split only (as in the original implementation).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BernoulliStats {
    per_relation: Vec<RelationStats>,
}

impl BernoulliStats {
    /// Compute statistics from training triples.
    pub fn from_train(triples: &[Triple], num_relations: usize) -> Self {
        let mut tails: HashMap<(u32, u32), HashSet<u32>> = HashMap::new();
        let mut heads: HashMap<(u32, u32), HashSet<u32>> = HashMap::new();
        let mut counts = vec![0usize; num_relations];
        for t in triples {
            tails
                .entry((t.head, t.relation))
                .or_default()
                .insert(t.tail);
            heads
                .entry((t.relation, t.tail))
                .or_default()
                .insert(t.head);
            counts[t.relation as usize] += 1;
        }
        let mut tph_sum = vec![0usize; num_relations];
        let mut tph_cnt = vec![0usize; num_relations];
        for ((_, r), ts) in &tails {
            tph_sum[*r as usize] += ts.len();
            tph_cnt[*r as usize] += 1;
        }
        let mut hpt_sum = vec![0usize; num_relations];
        let mut hpt_cnt = vec![0usize; num_relations];
        for ((r, _), hs) in &heads {
            hpt_sum[*r as usize] += hs.len();
            hpt_cnt[*r as usize] += 1;
        }
        let per_relation = (0..num_relations)
            .map(|r| RelationStats {
                tph: if tph_cnt[r] == 0 {
                    0.0
                } else {
                    tph_sum[r] as f64 / tph_cnt[r] as f64
                },
                hpt: if hpt_cnt[r] == 0 {
                    0.0
                } else {
                    hpt_sum[r] as f64 / hpt_cnt[r] as f64
                },
                count: counts[r],
            })
            .collect();
        Self { per_relation }
    }

    /// Statistics for one relation (panics if the id is out of range).
    pub fn relation(&self, r: RelationId) -> &RelationStats {
        &self.per_relation[r as usize]
    }

    /// All per-relation statistics.
    pub fn all(&self) -> &[RelationStats] {
        &self.per_relation
    }

    /// Probability of corrupting the head for relation `r`.
    pub fn head_probability(&self, r: RelationId) -> f64 {
        self.relation(r).head_corruption_probability()
    }

    /// Decide which side to corrupt given a uniform random draw `u ∈ [0,1)`.
    pub fn corruption_side(&self, r: RelationId, u: f64) -> CorruptionSide {
        if u < self.head_probability(r) {
            CorruptionSide::Head
        } else {
            CorruptionSide::Tail
        }
    }

    /// Count of relations in each category `(1-1, 1-N, N-1, N-N)`.
    pub fn category_counts(&self) -> [usize; 4] {
        let mut c = [0usize; 4];
        for s in &self.per_relation {
            if s.count == 0 {
                continue;
            }
            match s.category() {
                RelationCategory::OneToOne => c[0] += 1,
                RelationCategory::OneToMany => c[1] += 1,
                RelationCategory::ManyToOne => c[2] += 1,
                RelationCategory::ManyToMany => c[3] += 1,
            }
        }
        c
    }
}

/// Summary counts reported in Table II of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of entities.
    pub entities: usize,
    /// Number of relations.
    pub relations: usize,
    /// Training triples.
    pub train: usize,
    /// Validation triples.
    pub valid: usize,
    /// Test triples.
    pub test: usize,
}

impl DatasetStats {
    /// Compute the summary of a dataset.
    pub fn of(ds: &Dataset) -> Self {
        Self {
            name: ds.name.clone(),
            entities: ds.num_entities(),
            relations: ds.num_relations(),
            train: ds.train.len(),
            valid: ds.valid.len(),
            test: ds.test.len(),
        }
    }

    /// Render as a TSV row matching Table II's column order.
    pub fn tsv_row(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            self.name, self.entities, self.relations, self.train, self.valid, self.test
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocab;

    fn one_to_many_triples() -> Vec<Triple> {
        // relation 0: head 0 connects to 4 tails (1..=4); each tail has 1 head.
        // relation 1: 3 heads connect to tail 9; each head has 1 tail.
        vec![
            Triple::new(0, 0, 1),
            Triple::new(0, 0, 2),
            Triple::new(0, 0, 3),
            Triple::new(0, 0, 4),
            Triple::new(5, 1, 9),
            Triple::new(6, 1, 9),
            Triple::new(7, 1, 9),
        ]
    }

    #[test]
    fn tph_hpt_are_computed_per_relation() {
        let stats = BernoulliStats::from_train(&one_to_many_triples(), 2);
        let r0 = stats.relation(0);
        assert!((r0.tph - 4.0).abs() < 1e-12);
        assert!((r0.hpt - 1.0).abs() < 1e-12);
        assert_eq!(r0.count, 4);
        assert_eq!(r0.category(), RelationCategory::OneToMany);

        let r1 = stats.relation(1);
        assert!((r1.tph - 1.0).abs() < 1e-12);
        assert!((r1.hpt - 3.0).abs() < 1e-12);
        assert_eq!(r1.category(), RelationCategory::ManyToOne);
    }

    #[test]
    fn bernoulli_probability_prefers_head_for_one_to_many() {
        let stats = BernoulliStats::from_train(&one_to_many_triples(), 2);
        // 1-N relation: corrupting the head is safer -> probability 4/5.
        assert!((stats.head_probability(0) - 0.8).abs() < 1e-12);
        // N-1 relation: corrupting the tail is safer -> head probability 1/4.
        assert!((stats.head_probability(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn corruption_side_uses_the_threshold() {
        let stats = BernoulliStats::from_train(&one_to_many_triples(), 2);
        assert_eq!(stats.corruption_side(0, 0.5), CorruptionSide::Head);
        assert_eq!(stats.corruption_side(0, 0.9), CorruptionSide::Tail);
    }

    #[test]
    fn unused_relation_defaults_to_half() {
        let stats = BernoulliStats::from_train(&one_to_many_triples(), 3);
        assert!((stats.head_probability(2) - 0.5).abs() < 1e-12);
        assert_eq!(stats.relation(2).count, 0);
    }

    #[test]
    fn category_counts_skip_unused_relations() {
        let stats = BernoulliStats::from_train(&one_to_many_triples(), 3);
        assert_eq!(stats.category_counts(), [0, 1, 1, 0]);
        assert_eq!(stats.all().len(), 3);
    }

    #[test]
    fn one_to_one_and_many_to_many_categories() {
        let one_one = RelationStats {
            tph: 1.0,
            hpt: 1.0,
            count: 5,
        };
        assert_eq!(one_one.category(), RelationCategory::OneToOne);
        let many_many = RelationStats {
            tph: 3.2,
            hpt: 2.7,
            count: 5,
        };
        assert_eq!(many_many.category(), RelationCategory::ManyToMany);
        let degenerate = RelationStats {
            tph: 0.0,
            hpt: 0.0,
            count: 0,
        };
        assert!((degenerate.head_corruption_probability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dataset_stats_row() {
        let ds = Dataset::new(
            "demo",
            Vocab::synthetic("e", 4),
            Vocab::synthetic("r", 1),
            vec![Triple::new(0, 0, 1), Triple::new(1, 0, 2)],
            vec![Triple::new(2, 0, 3)],
            vec![],
        )
        .unwrap();
        let s = DatasetStats::of(&ds);
        assert_eq!(s.entities, 4);
        assert_eq!(s.train, 2);
        assert_eq!(s.valid, 1);
        assert_eq!(s.test, 0);
        assert_eq!(s.tsv_row(), "demo\t4\t1\t2\t1\t0");
    }
}
