//! Knowledge-graph substrate for the NSCaching reproduction.
//!
//! A knowledge graph is a set of facts `(h, r, t)` over entity and relation
//! vocabularies. This crate provides:
//!
//! * [`Triple`] and the id types used throughout the workspace;
//! * [`Vocab`] — string ↔ id mapping for entities and relations;
//! * [`KnowledgeGraph`] — an indexed triple collection supporting the lookups
//!   every negative sampler needs (`(h,r) → tails`, `(r,t) → heads`,
//!   membership tests);
//! * [`Dataset`] — train/valid/test splits plus a filter index implementing
//!   the paper's "Filtered" evaluation setting;
//! * [`stats`] — Bernoulli corruption statistics (`tph`/`hpt`), relation
//!   categories (1-1 / 1-N / N-1 / N-N) and dataset summaries (Table II);
//! * [`io`] — plain-TSV readers/writers compatible with the public
//!   WN18/FB15K file layout, so the real benchmark files can be dropped in
//!   when available.

pub mod dataset;
pub mod error;
pub mod graph;
pub mod io;
pub mod stats;
pub mod triple;
pub mod vocab;

pub use dataset::{Dataset, FilterIndex, Split};
pub use error::KgError;
pub use graph::KnowledgeGraph;
pub use stats::{BernoulliStats, DatasetStats, RelationCategory, RelationStats};
pub use triple::{CorruptionSide, EntityId, RelationId, Triple};
pub use vocab::Vocab;
