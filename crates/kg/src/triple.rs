//! The triple (fact) type and the id types used across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Entity identifier — a dense index into the entity vocabulary.
pub type EntityId = u32;

/// Relation identifier — a dense index into the relation vocabulary.
pub type RelationId = u32;

/// A fact `(h, r, t)`: head entity `h` is connected to tail entity `t` by the
/// directed relation `r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Triple {
    /// Head entity.
    pub head: EntityId,
    /// Relation.
    pub relation: RelationId,
    /// Tail entity.
    pub tail: EntityId,
}

impl Triple {
    /// Construct a triple.
    pub const fn new(head: EntityId, relation: RelationId, tail: EntityId) -> Self {
        Self {
            head,
            relation,
            tail,
        }
    }

    /// The `(h, r)` key used by the tail cache `T` of the paper.
    pub const fn head_relation(&self) -> (EntityId, RelationId) {
        (self.head, self.relation)
    }

    /// The `(r, t)` key used by the head cache `H` of the paper.
    pub const fn relation_tail(&self) -> (RelationId, EntityId) {
        (self.relation, self.tail)
    }

    /// Return a copy of this triple with the head replaced by `new_head`.
    pub const fn with_head(&self, new_head: EntityId) -> Self {
        Self::new(new_head, self.relation, self.tail)
    }

    /// Return a copy of this triple with the tail replaced by `new_tail`.
    pub const fn with_tail(&self, new_tail: EntityId) -> Self {
        Self::new(self.head, self.relation, new_tail)
    }

    /// Return the triple with head and tail swapped (used when synthesising
    /// inverse-duplicate relations in the dataset generator).
    pub const fn reversed(&self) -> Self {
        Self::new(self.tail, self.relation, self.head)
    }

    /// Replace either the head or the tail depending on `side`.
    pub const fn corrupted(&self, side: CorruptionSide, entity: EntityId) -> Self {
        match side {
            CorruptionSide::Head => self.with_head(entity),
            CorruptionSide::Tail => self.with_tail(entity),
        }
    }

    /// The entity currently occupying `side`.
    pub const fn entity_at(&self, side: CorruptionSide) -> EntityId {
        match side {
            CorruptionSide::Head => self.head,
            CorruptionSide::Tail => self.tail,
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.head, self.relation, self.tail)
    }
}

/// Which side of a positive triple is replaced to build a negative triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorruptionSide {
    /// Replace the head entity (`(h̄, r, t)`).
    Head,
    /// Replace the tail entity (`(h, r, t̄)`).
    Tail,
}

impl CorruptionSide {
    /// The opposite side.
    pub const fn flipped(self) -> Self {
        match self {
            CorruptionSide::Head => CorruptionSide::Tail,
            CorruptionSide::Tail => CorruptionSide::Head,
        }
    }

    /// Both sides, in the order the paper enumerates them.
    pub const BOTH: [CorruptionSide; 2] = [CorruptionSide::Head, CorruptionSide::Tail];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_extract_the_right_pairs() {
        let t = Triple::new(3, 7, 11);
        assert_eq!(t.head_relation(), (3, 7));
        assert_eq!(t.relation_tail(), (7, 11));
    }

    #[test]
    fn with_head_and_tail_replace_only_one_slot() {
        let t = Triple::new(1, 2, 3);
        assert_eq!(t.with_head(9), Triple::new(9, 2, 3));
        assert_eq!(t.with_tail(9), Triple::new(1, 2, 9));
    }

    #[test]
    fn reversed_swaps_head_and_tail() {
        assert_eq!(Triple::new(1, 2, 3).reversed(), Triple::new(3, 2, 1));
    }

    #[test]
    fn corrupted_uses_the_requested_side() {
        let t = Triple::new(1, 2, 3);
        assert_eq!(t.corrupted(CorruptionSide::Head, 7), Triple::new(7, 2, 3));
        assert_eq!(t.corrupted(CorruptionSide::Tail, 7), Triple::new(1, 2, 7));
        assert_eq!(t.entity_at(CorruptionSide::Head), 1);
        assert_eq!(t.entity_at(CorruptionSide::Tail), 3);
    }

    #[test]
    fn corruption_side_flips() {
        assert_eq!(CorruptionSide::Head.flipped(), CorruptionSide::Tail);
        assert_eq!(CorruptionSide::Tail.flipped(), CorruptionSide::Head);
    }

    #[test]
    fn display_is_parenthesised() {
        assert_eq!(Triple::new(1, 2, 3).to_string(), "(1, 2, 3)");
    }
}
