//! Error type for the knowledge-graph substrate.

use std::fmt;
use std::io;

/// Errors produced while building or loading knowledge graphs.
#[derive(Debug)]
pub enum KgError {
    /// An entity or relation id refers outside the declared vocabulary.
    IdOutOfRange {
        /// Human readable description of the offending field.
        what: &'static str,
        /// The offending id.
        id: u64,
        /// The exclusive upper bound.
        bound: u64,
    },
    /// A text line could not be parsed as a triple.
    ParseError {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A name was looked up in a vocabulary that does not contain it.
    UnknownName(String),
    /// Underlying I/O failure.
    Io(io::Error),
    /// The dataset violates a structural invariant (e.g. empty split).
    Invalid(String),
}

impl fmt::Display for KgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KgError::IdOutOfRange { what, id, bound } => {
                write!(f, "{what} id {id} out of range (must be < {bound})")
            }
            KgError::ParseError { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            KgError::UnknownName(name) => write!(f, "unknown name: {name}"),
            KgError::Io(e) => write!(f, "io error: {e}"),
            KgError::Invalid(msg) => write!(f, "invalid dataset: {msg}"),
        }
    }
}

impl std::error::Error for KgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KgError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for KgError {
    fn from(e: io::Error) -> Self {
        KgError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = KgError::IdOutOfRange {
            what: "entity",
            id: 10,
            bound: 5,
        };
        assert!(e.to_string().contains("entity id 10"));
        let e = KgError::ParseError {
            line: 3,
            message: "expected 3 columns".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(KgError::UnknownName("foo".into())
            .to_string()
            .contains("foo"));
        assert!(KgError::Invalid("empty".into())
            .to_string()
            .contains("empty"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: KgError = io::Error::new(io::ErrorKind::NotFound, "nope").into();
        assert!(e.to_string().contains("nope"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
