//! A blocking client for the front door, with deadline-aware I/O and a
//! retry policy that only ever re-sends what is safe to re-send.
//!
//! # Retry policy
//!
//! A request is retried only when **both** gates pass:
//!
//! 1. the failure is *transient*: a retryable wire code
//!    ([`ErrorCode::is_retryable`] — `Overloaded`, `ShuttingDown`,
//!    `DeadlineExceeded`) or a transport failure (torn connection, socket
//!    timeout), **and**
//! 2. the request is *idempotent* ([`Request::idempotent`]) — a transport
//!    failure leaves the client unsure whether the server executed the
//!    request, so anything with effects must surface the error instead.
//!
//! Non-retryable typed errors (`Malformed`, `EntityOutOfRange`, …) come back
//! immediately: retrying a request the server rejected *by its content*
//! cannot succeed and only adds load exactly when the server least wants it.
//!
//! Between attempts the client sleeps a capped exponential backoff with
//! multiplicative jitter in `[0.5, 1.0)` — jitter is what keeps a thousand
//! clients that were all shed by the same overloaded server from
//! re-converging on it in lockstep.

use crate::wire::{ErrorCode, Request, Response, FRAME_HEADER_LEN, MAX_FRAME_LEN};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side knobs. Defaults suit an interactive caller; batch loaders
/// usually raise `max_attempts` and the backoff cap.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Socket read deadline per response.
    pub read_timeout: Duration,
    /// Socket write deadline per request.
    pub write_timeout: Duration,
    /// Total attempts per call (1 = no retries).
    pub max_attempts: u32,
    /// First backoff delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the jitter stream (deterministic per client).
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(2),
            max_attempts: 4,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(500),
            seed: 0x5ca1ab1e,
        }
    }
}

/// A successful call: the answer plus the degradation level the server was
/// at when it answered (0 = full service).
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Server degradation level (see the server's degradation ladder).
    pub degradation: u8,
    /// The decoded answer.
    pub answer: crate::wire::Answer,
}

/// Why a call failed after the retry policy gave up.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read or write).
    Io(io::Error),
    /// The server answered with a typed wire error.
    Server {
        /// The wire error code.
        code: ErrorCode,
        /// Human-readable server detail.
        detail: String,
        /// Degradation level the server reported.
        degradation: u8,
    },
    /// The server's bytes did not decode as a response.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server { code, detail, .. } => {
                write!(f, "server error: {code}: {detail}")
            }
            ClientError::Protocol(what) => write!(f, "protocol error: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Counters of what the retry layer actually did — load generators read
/// these to report shed/retry rates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Calls that returned an answer.
    pub ok: u64,
    /// Calls that gave up with an error.
    pub failed: u64,
    /// Individual retries performed (attempts beyond the first).
    pub retries: u64,
    /// Typed retryable rejections observed (before any retry succeeded).
    pub rejected: u64,
    /// Reconnections after transport failures.
    pub reconnects: u64,
}

/// A blocking connection to one server, with lazy reconnect.
pub struct NetClient {
    addr: SocketAddr,
    config: ClientConfig,
    stream: Option<TcpStream>,
    rng: StdRng,
    stats: ClientStats,
    buf: Vec<u8>,
    frame: Vec<u8>,
}

impl NetClient {
    /// Create a client for `addr`. No connection is made until the first
    /// call (and a broken connection re-dials transparently).
    pub fn new(addr: SocketAddr, config: ClientConfig) -> Self {
        Self {
            addr,
            config,
            stream: None,
            rng: StdRng::seed_from_u64(config.seed),
            stats: ClientStats::default(),
            buf: Vec::new(),
            frame: Vec::new(),
        }
    }

    /// What the retry layer has done so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Issue one request, applying the retry policy described in the module
    /// docs. Returns the first conclusive outcome.
    pub fn call(&mut self, request: &Request) -> Result<Reply, ClientError> {
        let mut attempt: u32 = 0;
        loop {
            match self.call_once(request) {
                Ok(Response {
                    degradation,
                    result: Ok(answer),
                }) => {
                    self.stats.ok += 1;
                    return Ok(Reply {
                        degradation,
                        answer,
                    });
                }
                Ok(Response {
                    degradation,
                    result: Err((code, detail)),
                }) => {
                    attempt += 1;
                    if code.is_retryable() {
                        self.stats.rejected += 1;
                        if request.idempotent() && attempt < self.config.max_attempts {
                            self.stats.retries += 1;
                            self.backoff(attempt - 1);
                            continue;
                        }
                    }
                    self.stats.failed += 1;
                    return Err(ClientError::Server {
                        code,
                        detail,
                        degradation,
                    });
                }
                Err(ClientError::Io(e)) => {
                    // The connection is in an unknown state; never reuse it.
                    self.stream = None;
                    attempt += 1;
                    if request.idempotent() && attempt < self.config.max_attempts {
                        self.stats.retries += 1;
                        self.backoff(attempt - 1);
                        continue;
                    }
                    self.stats.failed += 1;
                    return Err(ClientError::Io(e));
                }
                Err(e) => {
                    self.stream = None;
                    self.stats.failed += 1;
                    return Err(e);
                }
            }
        }
    }

    /// One attempt: (re)connect if needed, write the frame, read the reply.
    fn call_once(&mut self, request: &Request) -> Result<Response, ClientError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)
                .map_err(ClientError::Io)?;
            stream
                .set_read_timeout(Some(self.config.read_timeout))
                .map_err(ClientError::Io)?;
            stream
                .set_write_timeout(Some(self.config.write_timeout))
                .map_err(ClientError::Io)?;
            if self.stats.ok + self.stats.failed + self.stats.retries > 0 {
                self.stats.reconnects += 1;
            }
            self.stream = Some(stream);
        }
        let stream = self.stream.as_mut().expect("connected above");

        request.encode(&mut self.buf);
        self.frame.clear();
        self.frame
            .extend_from_slice(&(self.buf.len() as u32).to_le_bytes());
        self.frame.extend_from_slice(&self.buf);
        stream.write_all(&self.frame).map_err(ClientError::Io)?;

        let mut header = [0u8; FRAME_HEADER_LEN];
        stream.read_exact(&mut header).map_err(ClientError::Io)?;
        let len = u32::from_le_bytes(header);
        if len > MAX_FRAME_LEN {
            return Err(ClientError::Protocol("oversized response frame"));
        }
        self.buf.clear();
        self.buf.resize(len as usize, 0);
        stream.read_exact(&mut self.buf).map_err(ClientError::Io)?;
        Response::decode(&self.buf, request)
            .map_err(|_| ClientError::Protocol("undecodable response body"))
    }

    /// Sleep `min(cap, base · 2^attempt)` scaled by jitter in `[0.5, 1.0)`.
    fn backoff(&mut self, attempt: u32) {
        let base = self.config.backoff_base.as_secs_f64();
        let cap = self.config.backoff_cap.as_secs_f64();
        let exp = base * f64::from(2u32.saturating_pow(attempt.min(20)));
        let jitter = self.rng.gen_range(0.5f64..1.0);
        std::thread::sleep(Duration::from_secs_f64(exp.min(cap) * jitter));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Answer;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// A hand-rolled one-connection server that replies from a script:
    /// each entry is a full response to encode, or `None` to slam the
    /// connection shut mid-exchange.
    fn scripted_server(script: Vec<Option<Response>>) -> (SocketAddr, Arc<AtomicU64>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let requests_seen = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&requests_seen);
        std::thread::spawn(move || {
            let mut script = script.into_iter();
            'conns: loop {
                let Ok((mut socket, _)) = listener.accept() else {
                    return;
                };
                loop {
                    let mut header = [0u8; 4];
                    if socket.read_exact(&mut header).is_err() {
                        continue 'conns;
                    }
                    let mut body = vec![0u8; u32::from_le_bytes(header) as usize];
                    if socket.read_exact(&mut body).is_err() {
                        continue 'conns;
                    }
                    seen.fetch_add(1, Ordering::SeqCst);
                    match script.next() {
                        Some(Some(response)) => {
                            let mut buf = Vec::new();
                            response.encode(&mut buf);
                            let mut frame = (buf.len() as u32).to_le_bytes().to_vec();
                            frame.extend_from_slice(&buf);
                            socket.write_all(&frame).unwrap();
                        }
                        Some(None) => {
                            drop(socket);
                            continue 'conns;
                        }
                        None => return,
                    }
                }
            }
        });
        (addr, requests_seen)
    }

    fn fast_config() -> ClientConfig {
        ClientConfig {
            max_attempts: 4,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(1),
            seed: 7,
        }
    }

    #[test]
    fn retries_overloaded_until_success() {
        let (addr, seen) = scripted_server(vec![
            Some(Response::error(1, ErrorCode::Overloaded, "queue full")),
            Some(Response::error(2, ErrorCode::Overloaded, "queue full")),
            Some(Response::ok(0, Answer::Pong)),
        ]);
        let mut client = NetClient::new(addr, fast_config());
        let reply = client.call(&Request::Ping).unwrap();
        assert_eq!(reply.answer, Answer::Pong);
        assert_eq!(seen.load(Ordering::SeqCst), 3);
        let stats = client.stats();
        assert_eq!(stats.ok, 1);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.rejected, 2);
    }

    #[test]
    fn non_retryable_errors_surface_immediately() {
        let (addr, seen) = scripted_server(vec![Some(Response::error(
            0,
            ErrorCode::EntityOutOfRange,
            "entity 999 out of range",
        ))]);
        let mut client = NetClient::new(addr, fast_config());
        match client.call(&Request::Ping) {
            Err(ClientError::Server { code, detail, .. }) => {
                assert_eq!(code, ErrorCode::EntityOutOfRange);
                assert!(detail.contains("999"));
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Exactly one request hit the wire: no retry of a content error.
        assert_eq!(seen.load(Ordering::SeqCst), 1);
        assert_eq!(client.stats().retries, 0);
    }

    #[test]
    fn transport_failures_reconnect_and_retry_idempotent_requests() {
        let (addr, seen) = scripted_server(vec![
            None, // accept the request, then cut the connection
            Some(Response::ok(0, Answer::Pong)),
        ]);
        let mut client = NetClient::new(addr, fast_config());
        let reply = client.call(&Request::Ping).unwrap();
        assert_eq!(reply.answer, Answer::Pong);
        assert_eq!(seen.load(Ordering::SeqCst), 2);
        assert_eq!(client.stats().reconnects, 1);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let script = (0..4)
            .map(|_| Some(Response::error(2, ErrorCode::Overloaded, "still full")))
            .collect();
        let (addr, seen) = scripted_server(script);
        let mut client = NetClient::new(addr, fast_config());
        match client.call(&Request::Ping) {
            Err(ClientError::Server {
                code, degradation, ..
            }) => {
                assert_eq!(code, ErrorCode::Overloaded);
                assert_eq!(degradation, 2);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(seen.load(Ordering::SeqCst), 4);
        let stats = client.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.retries, 3);
    }

    #[test]
    fn backoff_is_capped_and_jittered() {
        let mut client = NetClient::new(
            "127.0.0.1:1".parse().unwrap(),
            ClientConfig {
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(8),
                ..fast_config()
            },
        );
        // Even a huge attempt index must not sleep longer than the cap.
        let start = std::time::Instant::now();
        client.backoff(30);
        let elapsed = start.elapsed();
        assert!(elapsed < Duration::from_millis(100), "{elapsed:?}");
    }
}
