//! The fault-tolerant network front door for the NSCaching serving engine:
//! a TCP server over a length-prefixed binary protocol, a retrying client,
//! and a deterministic fault-injection harness for proving the whole stack
//! survives a hostile network.
//!
//! The serving engine ([`nscaching_serve::KnowledgeServer`]) answers top-k /
//! score / rank queries in-process; this crate puts it behind a socket
//! without giving up its typed error surface — every
//! [`nscaching_serve::QueryError`] maps onto a stable wire code
//! ([`wire::ErrorCode`]), so remote callers dispatch on errors exactly as
//! in-process callers match on enums.
//!
//! # Operator's guide
//!
//! ## Deadline knobs ([`NetServerConfig`])
//!
//! | knob | guards against | default |
//! |------|----------------|---------|
//! | `read_timeout` | slow-loris frames: once a frame starts it must finish | 2 s |
//! | `write_timeout` | clients that stop draining their socket | 2 s |
//! | `idle_timeout` | silent connections pinning threads (idle reaper) | 30 s |
//! | `queue_deadline` | executing work nobody is waiting for any more | 1 s |
//! | `reply_deadline` | a connection waiting forever on a wedged worker | 5 s |
//! | `drain_grace` | a drain held hostage by chatty connections | 1 s |
//!
//! ## Queueing and load shedding
//!
//! `workers × queue_depth` bounds everything the server will hold. Admission
//! is `try_send` across the per-worker queues — when all are full the
//! request is **shed** with [`wire::ErrorCode::Overloaded`] in microseconds.
//! There is no unbounded backlog anywhere: under overload, clients see fast
//! typed rejections (which their retry layer spreads with jittered backoff)
//! instead of collapsing tail latency for everyone. Size `queue_depth` so
//! that `queue_depth × typical_service_time ≲ queue_deadline`, otherwise
//! admitted requests can expire in the queue.
//!
//! ## The degradation ladder
//!
//! Queue occupancy drives service levels, reported in every response header
//! (so clients and load balancers can see pressure *before* the shedding
//! starts):
//!
//! | level | meaning | operator signal |
//! |-------|---------|-----------------|
//! | 0 | full service | — |
//! | 1 | top-k `k` clamped to `degraded_k_clamp` | sustained l1 → add workers |
//! | 2 | cache-only: live result-cache hits served, everything else shed | capacity incident |
//!
//! ### Watching the ladder from the outside
//!
//! Send the `Stats` opcode ([`wire::opcode::STATS`]) — answered inline on
//! the connection thread at **every** level, drain included, so telemetry
//! survives the incident it is describing. The exposition maps onto the
//! ladder like this:
//!
//! | question | metric |
//! |----------|--------|
//! | how close to the cliff? | `nsc_net_in_flight` vs `nsc_net_queue_capacity` (occupancy = the ladder's input) |
//! | how long at each level? | `nsc_net_degradation_ms_total{level="0"/"1"/"2"}` (reaper-tick resolution) |
//! | how much work degraded? | `nsc_net_responses_degraded_total{level=…}` |
//! | is shedding happening? | `nsc_net_requests_shed_total`, `nsc_net_deadline_exceeded_total` |
//! | is cache-only viable? | `nsc_serve_cache_hits_total{cache="topk"}` rate vs `nsc_net_requests_shed_total` rate at level 2 |
//! | client latency? | `nsc_net_request_latency_us{op=…,q="p50"/"p90"/"p99"/"max"}` (decode→write, per opcode) |
//!
//! Rules of thumb: occupancy pinned above `clamp_threshold` with a flat
//! cache hit rate → add workers; occupancy spiking to `cache_only_threshold`
//! with a *healthy* hit rate → the ladder is doing its job, ride it out;
//! `nsc_net_deadline_exceeded_total` climbing while occupancy is low →
//! deadlines are mis-sized, not capacity. Counters named `nsc_net_*_total`
//! are the same atomics behind [`NetStatsSnapshot`] — the wire view and the
//! in-process view cannot disagree.
//!
//! ## Wire error codes
//!
//! See [`wire`] for the full table; the short version: codes 5–7
//! (`Overloaded`, `ShuttingDown`, `DeadlineExceeded`) mean "not executed,
//! retry elsewhere/later" and everything else means "the request itself is
//! wrong — do not retry". The numbering is pinned by a golden-bytes test;
//! treat it as a deployment contract.
//!
//! ## Hot reload & recovery runbook
//!
//! The `Reload` opcode ([`wire::opcode::RELOAD`]) swaps the serving model to
//! a snapshot file **without a restart**: send `Reload { path }` on any
//! connection and the server loads + validates the snapshot *off* the worker
//! queues, then swaps it in under one write-lock acquisition (the result
//! cache self-invalidates through its version stamps). The operational
//! contract, proven by `tests/reload.rs` under live traffic:
//!
//! * a **valid** snapshot answers `Reloaded` and bumps `reload_ok`;
//! * a **corrupt / truncated / missing** snapshot answers a typed
//!   `Internal` error whose detail ends in *"serving model unchanged"*,
//!   bumps `reload_failed`, and the previous model keeps serving
//!   bit-identically — a bad push can never take the server down;
//! * concurrent queries never fail because of a reload, good or bad.
//!
//! Recovery after a crash: point [`NetServer::bind_snapshot`] (or the
//! serving engine's loader) at the newest file a
//! [`nscaching_serve::CheckpointManager`] directory recovers — its
//! `recover()` walks newest → oldest, quarantines corrupt files aside with
//! a typed reason suffix (`*.bad-checksum`, …) and returns the last-good
//! checkpoint. Quarantined files are evidence: inspect, then delete by
//! hand. See the `nscaching_serve::manager` docs for the full directory
//! protocol and the kill-anywhere guarantees behind it.
//!
//! ## Drain semantics
//!
//! [`NetServer::shutdown`] = stop accepting → finish every request already
//! received (socket-buffered frames included) → flush worker queues → stop.
//! Zero accepted requests are dropped: the counters satisfy
//! `decoded + protocol_errors == written + write_failures` across a drain,
//! and the chaos suite enforces it. Budget
//! `drain_grace + queue_deadline + reply_deadline` as the worst-case drain
//! time when orchestrating rolling restarts.
//!
//! # Fault injection
//!
//! [`fault::FaultPlan`] sits between the server and its sockets and injects
//! short reads, torn writes, stalls, mid-frame disconnects and I/O errors —
//! deterministically from a seed, per connection. `tests/chaos.rs` drives
//! thousands of requests through a faulty transport and asserts the
//! accounting above; `benches/net_load.rs` (in `nscaching-bench`) measures
//! p50/p99, saturation QPS and shed behaviour.

#![warn(missing_docs)]

pub mod client;
pub mod fault;
pub mod metrics;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, ClientError, ClientStats, NetClient, Reply};
pub use fault::{FaultPlan, FaultyStream, Transport};
pub use metrics::{op_index, NetMetrics, OP_NAMES};
pub use server::{BindSnapshotError, NetServer, NetServerConfig, NetStatsSnapshot};
pub use wire::{code_of_query_error, Answer, ErrorCode, Request, Response};
