//! Deterministic fault injection between the server and its streams.
//!
//! A [`FaultPlan`] is a seeded description of *how often* each fault class
//! fires; [`FaultPlan::script_for`] derives an independent per-connection
//! [`FaultScript`] (SplitMix-style seed split on the connection id), so a
//! chaos run is reproducible from `(plan seed, connection id, operation
//! sequence)` alone — rerunning a failing seed replays the exact fault
//! timeline.
//!
//! Faults are strictly *transport-level*: truncated reads, torn writes,
//! stalls, mid-frame disconnects and injected `io::Error`s. The layer never
//! corrupts bytes in flight — silent corruption is the checksum layer's
//! department (snapshots); the network layer's failure model is the socket
//! dying at the worst possible moment, which is what these faults simulate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// The byte-stream surface the server and client speak through.
///
/// [`TcpStream`] is the production implementation; [`FaultyStream`] wraps any
/// transport and applies a [`FaultScript`]. Keeping the surface minimal
/// (reads may be partial, writes are all-or-error) is what lets a fault layer
/// sit in the middle without the server knowing.
pub trait Transport: Send {
    /// Read into `buf`, returning the number of bytes read (0 = EOF). May
    /// return fewer bytes than requested; `WouldBlock`/`TimedOut` signal a
    /// read-timeout tick, every other error is connection death.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// Write all of `buf` or fail. A failure may have written a prefix (a
    /// torn write) — the connection is dead either way.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Bound every subsequent [`read`](Self::read) call.
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()>;

    /// Bound every subsequent [`write_all`](Self::write_all) call.
    fn set_write_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()>;

    /// Tear the connection down (both directions, best-effort).
    fn shutdown(&mut self);
}

impl Transport for TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, buf)
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }

    fn set_write_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, timeout)
    }

    fn shutdown(&mut self) {
        let _ = TcpStream::shutdown(self, std::net::Shutdown::Both);
    }
}

/// Seeded description of a fault mix. All rates are per-operation
/// probabilities in `[0, 1]`; the default plan injects nothing.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Master seed; per-connection scripts split off it.
    pub seed: u64,
    /// Probability a read is truncated to a single byte (exercises partial
    /// frame reassembly).
    pub short_read: f64,
    /// Probability a write delivers only a prefix and then fails (the peer
    /// sees a torn, undecodable frame).
    pub torn_write: f64,
    /// Probability of an injected stall before an operation.
    pub stall: f64,
    /// Upper bound on an injected stall.
    pub max_stall: Duration,
    /// Probability the connection dies mid-operation (socket torn down, the
    /// op reports EOF or `ConnectionReset`).
    pub disconnect: f64,
    /// Probability of a spurious `io::Error` without tearing the socket.
    pub io_error: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (the identity layer).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            short_read: 0.0,
            torn_write: 0.0,
            stall: 0.0,
            max_stall: Duration::ZERO,
            disconnect: 0.0,
            io_error: 0.0,
        }
    }

    /// The chaos-suite mix: every fault class armed at `rate`, stalls capped
    /// at `max_stall`.
    pub fn chaos(seed: u64, rate: f64, max_stall: Duration) -> Self {
        Self {
            seed,
            short_read: (rate * 4.0).min(1.0), // frequent: cheap, always survivable
            torn_write: rate,
            stall: rate,
            max_stall,
            disconnect: rate,
            io_error: rate,
        }
    }

    /// Whether any fault class can fire.
    pub fn is_armed(&self) -> bool {
        self.short_read > 0.0
            || self.torn_write > 0.0
            || self.stall > 0.0
            || self.disconnect > 0.0
            || self.io_error > 0.0
    }

    /// The deterministic per-connection fault timeline.
    pub fn script_for(&self, conn_id: u64) -> FaultScript {
        FaultScript {
            plan: *self,
            rng: StdRng::seed_from_u64(self.seed ^ conn_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            dead: false,
        }
    }
}

/// One connection's deterministic fault sequence (see [`FaultPlan`]).
#[derive(Debug)]
pub struct FaultScript {
    plan: FaultPlan,
    rng: StdRng,
    /// Once a disconnect fired, every later operation fails too.
    dead: bool,
}

/// Which transport operation a verdict is for.
#[derive(Clone, Copy, PartialEq)]
enum Op {
    Read,
    Write,
}

/// What the script decided for one operation.
enum Verdict {
    Clean,
    /// Read only: truncate to one byte.
    Short,
    /// Write only: deliver a prefix, then die.
    Torn,
    Disconnect,
    IoError,
}

impl FaultScript {
    fn stall(&mut self) {
        if self.plan.stall > 0.0 && self.rng.gen_bool(self.plan.stall) {
            let nanos = self.plan.max_stall.as_nanos() as u64;
            if nanos > 0 {
                std::thread::sleep(Duration::from_nanos(self.rng.gen_range(0..nanos)));
            }
        }
    }

    fn verdict(&mut self, op: Op) -> Verdict {
        if self.dead {
            return Verdict::Disconnect;
        }
        self.stall();
        if self.plan.disconnect > 0.0 && self.rng.gen_bool(self.plan.disconnect) {
            self.dead = true;
            return Verdict::Disconnect;
        }
        if self.plan.io_error > 0.0 && self.rng.gen_bool(self.plan.io_error) {
            return Verdict::IoError;
        }
        let partial_rate = match op {
            Op::Read => self.plan.short_read,
            Op::Write => self.plan.torn_write,
        };
        if partial_rate > 0.0 && self.rng.gen_bool(partial_rate) {
            return match op {
                Op::Read => Verdict::Short,
                Op::Write => Verdict::Torn,
            };
        }
        Verdict::Clean
    }
}

/// A [`Transport`] wrapper applying a [`FaultScript`] to every operation.
pub struct FaultyStream<T: Transport> {
    inner: T,
    script: FaultScript,
}

impl<T: Transport> FaultyStream<T> {
    /// Wrap `inner`, driving faults from `script`.
    pub fn new(inner: T, script: FaultScript) -> Self {
        Self { inner, script }
    }
}

fn injected_error() -> io::Error {
    io::Error::other("injected io fault")
}

fn reset_error() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionReset, "injected disconnect")
}

impl<T: Transport> Transport for FaultyStream<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.script.verdict(Op::Read) {
            Verdict::Disconnect => {
                self.inner.shutdown();
                Err(reset_error())
            }
            Verdict::IoError => Err(injected_error()),
            Verdict::Short if buf.len() > 1 => self.inner.read(&mut buf[..1]),
            _ => self.inner.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.script.verdict(Op::Write) {
            Verdict::Disconnect => {
                self.inner.shutdown();
                Err(reset_error())
            }
            Verdict::IoError => Err(injected_error()),
            Verdict::Torn if buf.len() > 1 => {
                // Deliver a strict prefix, then tear the connection: the peer
                // holds half a frame it can never complete.
                let cut = 1 + self.script.rng.gen_range(0..buf.len() - 1);
                let _ = self.inner.write_all(&buf[..cut]);
                self.script.dead = true;
                self.inner.shutdown();
                Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected torn write",
                ))
            }
            _ => self.inner.write_all(buf),
        }
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(timeout)
    }

    fn set_write_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(timeout)
    }

    fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory transport recording what reached it.
    #[derive(Default)]
    struct MemStream {
        incoming: Vec<u8>,
        pos: usize,
        written: Vec<u8>,
        shutdowns: usize,
    }

    impl Transport for MemStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(self.incoming.len() - self.pos);
            buf[..n].copy_from_slice(&self.incoming[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }

        fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
            self.written.extend_from_slice(buf);
            Ok(())
        }

        fn set_read_timeout(&mut self, _: Option<Duration>) -> io::Result<()> {
            Ok(())
        }

        fn set_write_timeout(&mut self, _: Option<Duration>) -> io::Result<()> {
            Ok(())
        }

        fn shutdown(&mut self) {
            self.shutdowns += 1;
        }
    }

    #[test]
    fn scripts_are_deterministic_per_connection() {
        let plan = FaultPlan::chaos(7, 0.2, Duration::ZERO);
        for conn in 0..4u64 {
            let mut a = plan.script_for(conn);
            let mut b = plan.script_for(conn);
            for i in 0..64 {
                let op = if i % 2 == 0 { Op::Read } else { Op::Write };
                assert_eq!(
                    matches!(a.verdict(op), Verdict::Clean),
                    matches!(b.verdict(op), Verdict::Clean),
                    "same (seed, conn, op) must decide identically"
                );
            }
        }
    }

    #[test]
    fn none_plan_is_transparent() {
        let mut s = FaultyStream::new(
            MemStream {
                incoming: vec![1, 2, 3, 4],
                ..Default::default()
            },
            FaultPlan::none(1).script_for(0),
        );
        let mut buf = [0u8; 4];
        assert_eq!(s.read(&mut buf).unwrap(), 4);
        assert_eq!(buf, [1, 2, 3, 4]);
        s.write_all(&[9, 9]).unwrap();
        assert_eq!(s.inner.written, vec![9, 9]);
    }

    #[test]
    fn short_reads_truncate_to_one_byte() {
        let plan = FaultPlan {
            short_read: 1.0,
            ..FaultPlan::none(3)
        };
        let mut s = FaultyStream::new(
            MemStream {
                incoming: vec![1, 2, 3, 4],
                ..Default::default()
            },
            plan.script_for(0),
        );
        let mut buf = [0u8; 4];
        assert_eq!(s.read(&mut buf).unwrap(), 1, "read was truncated");
        assert_eq!(buf[0], 1);
    }

    #[test]
    fn torn_writes_deliver_a_strict_prefix_then_kill_the_connection() {
        let plan = FaultPlan {
            torn_write: 1.0,
            ..FaultPlan::none(5)
        };
        let mut s = FaultyStream::new(MemStream::default(), plan.script_for(0));
        let payload = [7u8; 32];
        let err = s.write_all(&payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(!s.inner.written.is_empty(), "a prefix was delivered");
        assert!(s.inner.written.len() < payload.len(), "but not all of it");
        assert_eq!(s.inner.shutdowns, 1, "the socket was torn down");
        // The connection stays dead afterwards.
        assert!(s.write_all(&payload).is_err());
        let mut buf = [0u8; 4];
        assert!(s.read(&mut buf).is_err());
    }

    #[test]
    fn disconnects_are_sticky() {
        let plan = FaultPlan {
            disconnect: 1.0,
            ..FaultPlan::none(9)
        };
        let mut s = FaultyStream::new(MemStream::default(), plan.script_for(0));
        let mut buf = [0u8; 4];
        assert_eq!(
            s.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        assert!(s.write_all(&[1]).is_err());
        assert!(s.inner.shutdowns >= 1);
    }
}
