//! Front-door telemetry: per-opcode request latency, queue-pressure gauges,
//! time-at-degradation-level counters — all on one [`MetricsRegistry`]
//! shared with the serving engine, rendered by the `STATS` wire opcode.
//!
//! # What records where
//!
//! * **Per-opcode latency** (`nsc_net_request_latency_us{op=…}`) is timed on
//!   the connection thread from the moment a request decodes to the moment
//!   its response write returns — queue wait, worker execution and the
//!   response write are all inside the window, which is what a client
//!   experiences minus socket transit. Two `Instant` reads per request are
//!   noise next to a socket round-trip.
//! * **Queue pressure** (`nsc_net_in_flight`, `nsc_net_active_connections`,
//!   `nsc_net_queue_capacity`) are gauges refreshed at scrape time from the
//!   server's own admission counters — the hot path maintains those anyway.
//! * **Time at degradation level** (`nsc_net_degradation_ms_total{level=…}`)
//!   is accumulated by the idle reaper's poll tick: each tick attributes its
//!   elapsed wall time to the level observed at the tick. Resolution is the
//!   poll interval, which already bounds every other reaction latency in the
//!   server.
//! * The request/response **ledger counters** (`nsc_net_*_total`) live on
//!   the registry too — the server's [`NetStatsSnapshot`] is read back from
//!   the same counters, so the wire exposition and the in-process API can
//!   never disagree.
//!
//! [`NetStatsSnapshot`]: crate::NetStatsSnapshot

use crate::wire::Request;
use nscaching_obs::{Counter, Gauge, LatencyHistogram, MetricsRegistry};
use nscaching_serve::ServeMetrics;
use std::sync::Arc;

/// Opcode label values, indexed by [`op_index`]. Order matches the wire
/// opcode numbering (`ping` = opcode 1 at index 0, … `stats` = opcode 6 at
/// index 5).
pub const OP_NAMES: [&str; 6] = ["ping", "top_k", "score", "rank", "reload", "stats"];

/// Histogram slot for a request's opcode (see [`OP_NAMES`]).
pub fn op_index(request: &Request) -> usize {
    match request {
        Request::Ping => 0,
        Request::TopK(_) => 1,
        Request::Score { .. } => 2,
        Request::Rank { .. } => 3,
        Request::Reload { .. } => 4,
        Request::Stats => 5,
    }
}

/// Registered handles for the front door's non-ledger metrics, plus the
/// registry itself and the serving engine's handle set (one registry serves
/// all layers).
pub struct NetMetrics {
    /// The registry every layer of this server registers on; rendering it
    /// is the `STATS` answer.
    pub registry: Arc<MetricsRegistry>,
    /// Decode→write latency per opcode, microseconds.
    pub request_latency: [Arc<LatencyHistogram>; 6],
    /// Wall-clock milliseconds spent at each degradation level.
    pub degradation_ms: [Arc<Counter>; 3],
    /// Jobs admitted but not yet executed (scrape-time gauge).
    pub in_flight: Arc<Gauge>,
    /// Open connections (scrape-time gauge).
    pub active_connections: Arc<Gauge>,
    /// Total queue slots (`workers × queue_depth`), set once at bind.
    pub queue_capacity: Arc<Gauge>,
    /// The serving engine's metrics, attached to the engine at bind so
    /// cache and checkpoint telemetry land on the same registry.
    pub serve: Arc<ServeMetrics>,
}

impl NetMetrics {
    /// Register every front-door metric on `registry`.
    pub fn register(registry: &Arc<MetricsRegistry>) -> Self {
        let latency =
            |op: &str| registry.histogram_with("nsc_net_request_latency_us", &[("op", op)]);
        let degraded = |level: &str| {
            registry.counter_with("nsc_net_degradation_ms_total", &[("level", level)])
        };
        Self {
            registry: Arc::clone(registry),
            request_latency: [
                latency(OP_NAMES[0]),
                latency(OP_NAMES[1]),
                latency(OP_NAMES[2]),
                latency(OP_NAMES[3]),
                latency(OP_NAMES[4]),
                latency(OP_NAMES[5]),
            ],
            degradation_ms: [degraded("0"), degraded("1"), degraded("2")],
            in_flight: registry.gauge("nsc_net_in_flight"),
            active_connections: registry.gauge("nsc_net_active_connections"),
            queue_capacity: registry.gauge("nsc_net_queue_capacity"),
            serve: ServeMetrics::register(registry),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::opcode;

    #[test]
    fn op_index_matches_the_wire_opcode_numbering() {
        let requests = [
            (Request::Ping, opcode::PING),
            (
                Request::TopK(nscaching_serve::TopKQuery::tails(0, 0, 1)),
                opcode::TOP_K,
            ),
            (
                Request::Score {
                    head: 0,
                    relation: 0,
                    tail: 0,
                },
                opcode::SCORE,
            ),
            (
                Request::Rank {
                    head: 0,
                    relation: 0,
                    tail: 0,
                    side: nscaching_kg::CorruptionSide::Head,
                },
                opcode::RANK,
            ),
            (
                Request::Reload {
                    path: String::new(),
                },
                opcode::RELOAD,
            ),
            (Request::Stats, opcode::STATS),
        ];
        for (request, op) in requests {
            assert_eq!(op_index(&request) as u8, op - 1, "{request:?}");
        }
        assert_eq!(OP_NAMES.len(), 6);
    }

    #[test]
    fn register_lands_every_metric_family_on_the_registry() {
        let registry = Arc::new(MetricsRegistry::new());
        let metrics = NetMetrics::register(&registry);
        metrics.request_latency[0].record(10);
        metrics.degradation_ms[2].add(5);
        metrics.queue_capacity.set(128.0);
        let text = registry.render();
        assert!(text.contains("nsc_net_request_latency_us{op=\"ping\",q=\"p50\"}"));
        assert!(text.contains("nsc_net_degradation_ms_total{level=\"2\"} 5"));
        assert!(text.contains("nsc_net_queue_capacity 128"));
        assert!(text.contains("nsc_serve_cache_hits_total{cache=\"topk\"}"));
    }
}
