//! The length-prefixed binary wire protocol.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! offset  size  content
//! 0       4     body length L, u32 LE (L ≤ MAX_FRAME_LEN)
//! 4       L     body
//! ```
//!
//! All multi-byte integers are little-endian; `f64` values travel as raw
//! IEEE-754 bit patterns (the same convention as the snapshot format, so
//! scores round-trip bit-for-bit).
//!
//! # Request bodies
//!
//! | opcode | request | body after the opcode byte |
//! |--------|---------|----------------------------|
//! | 1      | Ping    | *(empty)* |
//! | 2      | TopK    | `u32` relation, `u32` entity, `u8` direction (0 = tail, 1 = head), `u32` k |
//! | 3      | Score   | `u32` head, `u32` relation, `u32` tail |
//! | 4      | Rank    | `u32` head, `u32` relation, `u32` tail, `u8` side (0 = tail, 1 = head) |
//! | 5      | Reload  | `u32` path length, UTF-8 snapshot path (admin: hot-swap the served model) |
//! | 6      | Stats   | *(empty)* — metrics exposition text (read-only, served at every degradation level) |
//!
//! # Response bodies
//!
//! `u8` status ([`ErrorCode`]; 0 = OK) + `u8` degradation level, then:
//!
//! * on success — the opcode-specific payload: TopK is `u32` count followed
//!   by `count × (u32 entity, u64 score bits)`; Score and Rank are one `u64`
//!   of `f64` bits; Ping is empty; Stats is a length-prefixed UTF-8
//!   exposition text (`u32` length + bytes, the `nscaching_obs` format);
//! * on error — a length-prefixed UTF-8 detail string (`u32` length + bytes).
//!
//! # Error codes
//!
//! The numbering is a **wire contract** — deployed clients dispatch on it —
//! and is pinned by `tests/wire_golden.rs`:
//!
//! | code | name | retryable |
//! |------|------|-----------|
//! | 1 | `Malformed` | no |
//! | 2 | `UnsupportedOp` | no |
//! | 3 | `EntityOutOfRange` | no |
//! | 4 | `RelationOutOfRange` | no |
//! | 5 | `Overloaded` | **yes** |
//! | 6 | `ShuttingDown` | **yes** |
//! | 7 | `DeadlineExceeded` | **yes** |
//! | 8 | `Internal` | no |
//!
//! Only codes 5–7 are retryable: they mean "the request was *not* executed,
//! try elsewhere/later". Everything else is a property of the request itself
//! and retrying verbatim can never succeed. The four query opcodes are
//! idempotent reads, so a client may also retry a transport failure (torn
//! connection, timeout) without risking double effects; `Reload` mutates
//! server state and is the one opcode the retry layer refuses to re-send —
//! see [`Request::idempotent`].

use nscaching_kg::CorruptionSide;
use nscaching_serve::{QueryError, RankedEntity, TopKQuery};

/// Hard upper bound on a frame body. An untrusted length prefix beyond this
/// is rejected as [`ErrorCode::Malformed`] before any allocation happens.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Bytes of the length prefix in front of every body.
pub const FRAME_HEADER_LEN: usize = 4;

/// Request opcodes (wire contract, pinned by the golden-bytes test).
pub mod opcode {
    /// Liveness probe.
    pub const PING: u8 = 1;
    /// Top-k link prediction.
    pub const TOP_K: u8 = 2;
    /// Scalar triple score.
    pub const SCORE: u8 = 3;
    /// Competition rank of a triple.
    pub const RANK: u8 = 4;
    /// Admin: hot-reload the served model from a snapshot path.
    pub const RELOAD: u8 = 5;
    /// Read-only metrics scrape: the server's exposition text.
    pub const STATS: u8 = 6;
}

/// Stable wire error codes. `0` on the wire means success and has no enum
/// variant; see the module docs for the full table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame could not be decoded (bad length, bad opcode body, length
    /// prefix over [`MAX_FRAME_LEN`]).
    Malformed = 1,
    /// The opcode is unknown to this server (a newer client).
    UnsupportedOp = 2,
    /// An entity id beyond the served vocabulary.
    EntityOutOfRange = 3,
    /// A relation id beyond the served vocabulary.
    RelationOutOfRange = 4,
    /// Admission control shed the request (bounded queues were full, or the
    /// degradation ladder is in cache-only mode and the answer was cold).
    Overloaded = 5,
    /// The server is draining; it will not accept new work.
    ShuttingDown = 6,
    /// The server gave up on the request's processing deadline.
    DeadlineExceeded = 7,
    /// An unexpected server-side failure.
    Internal = 8,
}

impl ErrorCode {
    /// Decode a wire status byte (`0` = success = `None`).
    pub fn from_wire(code: u8) -> Option<Result<(), ErrorCode>> {
        Some(match code {
            0 => Ok(()),
            1 => Err(ErrorCode::Malformed),
            2 => Err(ErrorCode::UnsupportedOp),
            3 => Err(ErrorCode::EntityOutOfRange),
            4 => Err(ErrorCode::RelationOutOfRange),
            5 => Err(ErrorCode::Overloaded),
            6 => Err(ErrorCode::ShuttingDown),
            7 => Err(ErrorCode::DeadlineExceeded),
            8 => Err(ErrorCode::Internal),
            _ => return None,
        })
    }

    /// Whether a client may retry the request verbatim. Only the transient
    /// "not executed" codes qualify; request-shaped failures never do.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Overloaded | ErrorCode::ShuttingDown | ErrorCode::DeadlineExceeded
        )
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed request",
            ErrorCode::UnsupportedOp => "unsupported opcode",
            ErrorCode::EntityOutOfRange => "entity out of range",
            ErrorCode::RelationOutOfRange => "relation out of range",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting down",
            ErrorCode::DeadlineExceeded => "deadline exceeded",
            ErrorCode::Internal => "internal error",
        };
        write!(f, "{name} (code {})", *self as u8)
    }
}

/// Map the serving engine's typed [`QueryError`] onto its wire code.
pub fn code_of_query_error(e: &QueryError) -> ErrorCode {
    match e {
        QueryError::EntityOutOfRange { .. } => ErrorCode::EntityOutOfRange,
        QueryError::RelationOutOfRange { .. } => ErrorCode::RelationOutOfRange,
    }
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered without touching the model.
    Ping,
    /// Top-k link prediction (the cacheable query shape).
    TopK(TopKQuery),
    /// Scalar score of one triple.
    Score {
        /// Head entity id.
        head: u32,
        /// Relation id.
        relation: u32,
        /// Tail entity id.
        tail: u32,
    },
    /// Competition rank of one triple among corruptions of `side`.
    Rank {
        /// Head entity id.
        head: u32,
        /// Relation id.
        relation: u32,
        /// Tail entity id.
        tail: u32,
        /// Which side is corrupted.
        side: CorruptionSide,
    },
    /// Admin: atomically swap the served model for the snapshot at `path`
    /// (a path on the **server's** filesystem). The snapshot is loaded and
    /// validated off the serving path; any failure leaves the current model
    /// serving and returns a typed error.
    Reload {
        /// Snapshot or checkpoint file to load, as seen by the server.
        path: String,
    },
    /// Read-only metrics scrape. Touches only the metrics registry — never
    /// the model — so the server answers it inline at every degradation
    /// level, including cache-only mode and drain (operators need telemetry
    /// *most* when the ladder is engaged).
    Stats,
}

impl Request {
    /// Whether executing this request twice is indistinguishable from once.
    /// The retry layer refuses to re-send non-idempotent requests after a
    /// transport failure. The query opcodes are all idempotent reads;
    /// `Reload` mutates the served model (a repeat swaps again, bumping the
    /// model generation and invalidating the result cache a second time), so
    /// it must not be silently retried.
    pub fn idempotent(&self) -> bool {
        match self {
            Request::Ping
            | Request::TopK(_)
            | Request::Score { .. }
            | Request::Rank { .. }
            | Request::Stats => true,
            Request::Reload { .. } => false,
        }
    }

    /// Encode into a frame body (no length prefix).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.clear();
        match self {
            Request::Ping => buf.push(opcode::PING),
            Request::TopK(q) => {
                buf.push(opcode::TOP_K);
                buf.extend_from_slice(&q.relation.to_le_bytes());
                buf.extend_from_slice(&q.entity.to_le_bytes());
                buf.push(side_to_wire(q.direction));
                buf.extend_from_slice(&q.k.to_le_bytes());
            }
            Request::Score {
                head,
                relation,
                tail,
            } => {
                buf.push(opcode::SCORE);
                buf.extend_from_slice(&head.to_le_bytes());
                buf.extend_from_slice(&relation.to_le_bytes());
                buf.extend_from_slice(&tail.to_le_bytes());
            }
            Request::Rank {
                head,
                relation,
                tail,
                side,
            } => {
                buf.push(opcode::RANK);
                buf.extend_from_slice(&head.to_le_bytes());
                buf.extend_from_slice(&relation.to_le_bytes());
                buf.extend_from_slice(&tail.to_le_bytes());
                buf.push(side_to_wire(*side));
            }
            Request::Reload { path } => {
                buf.push(opcode::RELOAD);
                buf.extend_from_slice(&(path.len() as u32).to_le_bytes());
                buf.extend_from_slice(path.as_bytes());
            }
            Request::Stats => buf.push(opcode::STATS),
        }
    }

    /// Decode a frame body. A structurally broken body is
    /// [`ErrorCode::Malformed`]; an unknown opcode is
    /// [`ErrorCode::UnsupportedOp`] (so old servers reject new opcodes with a
    /// typed, non-retryable error instead of closing the connection).
    pub fn decode(body: &[u8]) -> Result<Self, ErrorCode> {
        let mut c = Cursor::new(body);
        let op = c.u8().ok_or(ErrorCode::Malformed)?;
        let request = match op {
            opcode::PING => Request::Ping,
            opcode::TOP_K => {
                let relation = c.u32().ok_or(ErrorCode::Malformed)?;
                let entity = c.u32().ok_or(ErrorCode::Malformed)?;
                let direction = side_from_wire(c.u8().ok_or(ErrorCode::Malformed)?)?;
                let k = c.u32().ok_or(ErrorCode::Malformed)?;
                Request::TopK(TopKQuery {
                    relation,
                    entity,
                    direction,
                    k,
                })
            }
            opcode::SCORE => Request::Score {
                head: c.u32().ok_or(ErrorCode::Malformed)?,
                relation: c.u32().ok_or(ErrorCode::Malformed)?,
                tail: c.u32().ok_or(ErrorCode::Malformed)?,
            },
            opcode::RANK => Request::Rank {
                head: c.u32().ok_or(ErrorCode::Malformed)?,
                relation: c.u32().ok_or(ErrorCode::Malformed)?,
                tail: c.u32().ok_or(ErrorCode::Malformed)?,
                side: side_from_wire(c.u8().ok_or(ErrorCode::Malformed)?)?,
            },
            opcode::RELOAD => {
                let len = c.u32().ok_or(ErrorCode::Malformed)? as usize;
                let bytes = c.take(len).ok_or(ErrorCode::Malformed)?;
                let path = String::from_utf8(bytes.to_vec()).map_err(|_| ErrorCode::Malformed)?;
                Request::Reload { path }
            }
            opcode::STATS => Request::Stats,
            _ => return Err(ErrorCode::UnsupportedOp),
        };
        if !c.is_exhausted() {
            return Err(ErrorCode::Malformed);
        }
        Ok(request)
    }
}

/// A successful response payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// Ping reply.
    Pong,
    /// Ranked top-k candidates, best first.
    TopK(Vec<RankedEntity>),
    /// One scalar score.
    Score(f64),
    /// One competition rank.
    Rank(f64),
    /// The served model was swapped for the requested snapshot.
    Reloaded,
    /// The metrics exposition text (the `nscaching_obs` line format).
    Stats(String),
}

/// A decoded response: degradation level plus either an answer or a typed
/// error with its detail string.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Degradation level the server was at when it answered (0 = full
    /// service; see the server's degradation ladder).
    pub degradation: u8,
    /// The answer, or the wire error plus its human-readable detail.
    pub result: Result<Answer, (ErrorCode, String)>,
}

impl Response {
    /// A success at the given degradation level.
    pub fn ok(degradation: u8, answer: Answer) -> Self {
        Self {
            degradation,
            result: Ok(answer),
        }
    }

    /// A typed error at the given degradation level.
    pub fn error(degradation: u8, code: ErrorCode, detail: impl Into<String>) -> Self {
        Self {
            degradation,
            result: Err((code, detail.into())),
        }
    }

    /// Encode into a frame body (no length prefix).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.clear();
        match &self.result {
            Ok(answer) => {
                buf.push(0);
                buf.push(self.degradation);
                match answer {
                    Answer::Pong | Answer::Reloaded => {}
                    Answer::TopK(ranked) => {
                        buf.extend_from_slice(&(ranked.len() as u32).to_le_bytes());
                        for r in ranked {
                            buf.extend_from_slice(&r.entity.to_le_bytes());
                            buf.extend_from_slice(&r.score.to_bits().to_le_bytes());
                        }
                    }
                    Answer::Score(v) | Answer::Rank(v) => {
                        buf.extend_from_slice(&v.to_bits().to_le_bytes());
                    }
                    Answer::Stats(text) => {
                        buf.extend_from_slice(&(text.len() as u32).to_le_bytes());
                        buf.extend_from_slice(text.as_bytes());
                    }
                }
            }
            Err((code, detail)) => {
                buf.push(*code as u8);
                buf.push(self.degradation);
                buf.extend_from_slice(&(detail.len() as u32).to_le_bytes());
                buf.extend_from_slice(detail.as_bytes());
            }
        }
    }

    /// Decode a frame body. The expected answer shape comes from the request
    /// that elicited the response (the protocol is strictly
    /// request/response in order, so the client always knows it).
    pub fn decode(body: &[u8], request: &Request) -> Result<Self, ErrorCode> {
        let mut c = Cursor::new(body);
        let status = c.u8().ok_or(ErrorCode::Malformed)?;
        let degradation = c.u8().ok_or(ErrorCode::Malformed)?;
        let outcome = ErrorCode::from_wire(status).ok_or(ErrorCode::Malformed)?;
        let result = match outcome {
            Err(code) => {
                let len = c.u32().ok_or(ErrorCode::Malformed)? as usize;
                let bytes = c.take(len).ok_or(ErrorCode::Malformed)?;
                let detail = String::from_utf8(bytes.to_vec()).map_err(|_| ErrorCode::Malformed)?;
                Err((code, detail))
            }
            Ok(()) => Ok(match request {
                Request::Ping => Answer::Pong,
                Request::TopK(_) => {
                    let count = c.u32().ok_or(ErrorCode::Malformed)? as usize;
                    if count.saturating_mul(12) > c.remaining() {
                        return Err(ErrorCode::Malformed);
                    }
                    let mut ranked = Vec::with_capacity(count);
                    for _ in 0..count {
                        let entity = c.u32().ok_or(ErrorCode::Malformed)?;
                        let bits = c.u64().ok_or(ErrorCode::Malformed)?;
                        ranked.push(RankedEntity {
                            entity,
                            score: f64::from_bits(bits),
                        });
                    }
                    Answer::TopK(ranked)
                }
                Request::Score { .. } => {
                    Answer::Score(f64::from_bits(c.u64().ok_or(ErrorCode::Malformed)?))
                }
                Request::Rank { .. } => {
                    Answer::Rank(f64::from_bits(c.u64().ok_or(ErrorCode::Malformed)?))
                }
                Request::Reload { .. } => Answer::Reloaded,
                Request::Stats => {
                    let len = c.u32().ok_or(ErrorCode::Malformed)? as usize;
                    let bytes = c.take(len).ok_or(ErrorCode::Malformed)?;
                    let text =
                        String::from_utf8(bytes.to_vec()).map_err(|_| ErrorCode::Malformed)?;
                    Answer::Stats(text)
                }
            }),
        };
        if !c.is_exhausted() {
            return Err(ErrorCode::Malformed);
        }
        Ok(Response {
            degradation,
            result,
        })
    }
}

fn side_to_wire(side: CorruptionSide) -> u8 {
    match side {
        CorruptionSide::Tail => 0,
        CorruptionSide::Head => 1,
    }
}

fn side_from_wire(byte: u8) -> Result<CorruptionSide, ErrorCode> {
    match byte {
        0 => Ok(CorruptionSide::Tail),
        1 => Ok(CorruptionSide::Head),
        _ => Err(ErrorCode::Malformed),
    }
}

/// Minimal bounds-checked body cursor.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(request: Request) {
        let mut buf = Vec::new();
        request.encode(&mut buf);
        assert_eq!(Request::decode(&buf), Ok(request));
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::TopK(TopKQuery::tails(7, 3, 10)));
        round_trip_request(Request::TopK(TopKQuery::heads(u32::MAX, 0, 1)));
        round_trip_request(Request::Score {
            head: 1,
            relation: 2,
            tail: 3,
        });
        round_trip_request(Request::Rank {
            head: 4,
            relation: 5,
            tail: 6,
            side: CorruptionSide::Head,
        });
        round_trip_request(Request::Reload {
            path: "/var/lib/nscaching/model.ckpt".into(),
        });
        round_trip_request(Request::Reload {
            path: String::new(),
        });
        round_trip_request(Request::Stats);
    }

    #[test]
    fn stats_responses_round_trip() {
        let request = Request::Stats;
        let ok = Response::ok(2, Answer::Stats("nsc_net_requests_total 42\n".to_string()));
        let mut buf = Vec::new();
        ok.encode(&mut buf);
        assert_eq!(Response::decode(&buf, &request), Ok(ok));
        let empty = Response::ok(0, Answer::Stats(String::new()));
        empty.encode(&mut buf);
        assert_eq!(Response::decode(&buf, &request), Ok(empty));
    }

    #[test]
    fn stats_is_idempotent() {
        assert!(Request::Stats.idempotent());
    }

    #[test]
    fn stats_length_cannot_overrun_the_body() {
        let mut buf = vec![0u8, 0];
        buf.extend_from_slice(&200u32.to_le_bytes());
        buf.extend_from_slice(b"short");
        assert_eq!(
            Response::decode(&buf, &Request::Stats),
            Err(ErrorCode::Malformed)
        );
    }

    #[test]
    fn only_reload_is_non_idempotent() {
        assert!(Request::Ping.idempotent());
        assert!(Request::TopK(TopKQuery::tails(1, 1, 2)).idempotent());
        assert!(!Request::Reload {
            path: "x.ckpt".into()
        }
        .idempotent());
    }

    #[test]
    fn reload_length_cannot_overrun_the_body() {
        let mut buf = Vec::new();
        Request::Reload { path: "abc".into() }.encode(&mut buf);
        buf[1] = 200; // claim a longer path than the body holds
        assert_eq!(Request::decode(&buf), Err(ErrorCode::Malformed));
    }

    #[test]
    fn reload_responses_round_trip() {
        let request = Request::Reload {
            path: "m.ckpt".into(),
        };
        let ok = Response::ok(0, Answer::Reloaded);
        let mut buf = Vec::new();
        ok.encode(&mut buf);
        assert_eq!(Response::decode(&buf, &request), Ok(ok));
        let err = Response::error(0, ErrorCode::Internal, "checksum mismatch");
        err.encode(&mut buf);
        assert_eq!(Response::decode(&buf, &request), Ok(err));
    }

    #[test]
    fn responses_round_trip() {
        let request = Request::TopK(TopKQuery::tails(1, 1, 2));
        let response = Response::ok(
            1,
            Answer::TopK(vec![
                RankedEntity {
                    entity: 9,
                    score: -1.25,
                },
                RankedEntity {
                    entity: 3,
                    score: f64::NEG_INFINITY,
                },
            ]),
        );
        let mut buf = Vec::new();
        response.encode(&mut buf);
        assert_eq!(Response::decode(&buf, &request), Ok(response));

        let err = Response::error(2, ErrorCode::Overloaded, "queue full");
        err.encode(&mut buf);
        assert_eq!(Response::decode(&buf, &request), Ok(err));

        let score = Response::ok(0, Answer::Score(3.5));
        score.encode(&mut buf);
        assert_eq!(
            Response::decode(
                &buf,
                &Request::Score {
                    head: 0,
                    relation: 0,
                    tail: 0
                }
            ),
            Ok(score)
        );
    }

    #[test]
    fn truncated_and_trailing_bytes_are_malformed() {
        let mut buf = Vec::new();
        Request::TopK(TopKQuery::tails(1, 1, 2)).encode(&mut buf);
        for cut in 0..buf.len() {
            assert_eq!(
                Request::decode(&buf[..cut]),
                Err(ErrorCode::Malformed),
                "cut at {cut}"
            );
        }
        buf.push(0);
        assert_eq!(Request::decode(&buf), Err(ErrorCode::Malformed));
    }

    #[test]
    fn unknown_opcodes_are_unsupported_not_malformed() {
        assert_eq!(Request::decode(&[99]), Err(ErrorCode::UnsupportedOp));
    }

    #[test]
    fn bad_direction_bytes_are_malformed() {
        let mut buf = Vec::new();
        Request::TopK(TopKQuery::tails(1, 1, 2)).encode(&mut buf);
        buf[9] = 7; // direction byte
        assert_eq!(Request::decode(&buf), Err(ErrorCode::Malformed));
    }

    #[test]
    fn only_transient_codes_are_retryable() {
        let retryable = [
            ErrorCode::Overloaded,
            ErrorCode::ShuttingDown,
            ErrorCode::DeadlineExceeded,
        ];
        let fatal = [
            ErrorCode::Malformed,
            ErrorCode::UnsupportedOp,
            ErrorCode::EntityOutOfRange,
            ErrorCode::RelationOutOfRange,
            ErrorCode::Internal,
        ];
        for code in retryable {
            assert!(code.is_retryable(), "{code}");
        }
        for code in fatal {
            assert!(!code.is_retryable(), "{code}");
        }
    }

    #[test]
    fn query_errors_map_onto_their_codes() {
        assert_eq!(
            code_of_query_error(&QueryError::EntityOutOfRange {
                entity: 9,
                num_entities: 5
            }),
            ErrorCode::EntityOutOfRange
        );
        assert_eq!(
            code_of_query_error(&QueryError::RelationOutOfRange {
                relation: 9,
                num_relations: 5
            }),
            ErrorCode::RelationOutOfRange
        );
    }

    #[test]
    fn topk_count_cannot_drive_allocation() {
        // A response claiming 2^30 entries with a 2-byte payload must be
        // rejected before `Vec::with_capacity` sees the count.
        let mut buf = vec![0u8, 0];
        buf.extend_from_slice(&(1u32 << 30).to_le_bytes());
        buf.extend_from_slice(&[1, 2]);
        assert_eq!(
            Response::decode(&buf, &Request::TopK(TopKQuery::tails(0, 0, 1))),
            Err(ErrorCode::Malformed)
        );
    }
}
