//! The TCP front door: accept loop, per-connection deadlines, bounded
//! per-worker queues with admission control, a degradation ladder, an idle
//! reaper and graceful drain.
//!
//! # Architecture
//!
//! ```text
//!                 ┌──────────────┐    bounded sync queues (depth = queue_depth)
//!   accept loop ─▶│ conn thread  │──▶ worker 0 ─┐ KnowledgeServer clone
//!   (1 thread)    │ (1 / socket) │──▶ worker 1 ─┤ + per-worker QueryScratch
//!                 │ read frame   │──▶ …         ┘
//!                 │ write frame  │◀── rendezvous reply channel
//!                 └──────────────┘
//!                    ▲ idle reaper (1 thread) tears down silent sockets
//! ```
//!
//! Connection threads do only I/O and admission; all model work happens on
//! the fixed worker pool, each worker reusing one [`QueryScratch`]. A request
//! that cannot be queued is **shed immediately** with a typed
//! [`ErrorCode::Overloaded`] — the queues are the only buffer, and they are
//! bounded, so overload turns into fast rejections instead of an unbounded
//! backlog and latency collapse.
//!
//! # Degradation ladder
//!
//! Queue occupancy (`in-flight / (workers × queue_depth)`) drives three
//! service levels, reported in every response header:
//!
//! | level | trigger | behaviour |
//! |-------|---------|-----------|
//! | 0     | occupancy < `clamp_threshold` | full service |
//! | 1     | occupancy ≥ `clamp_threshold` | top-k `k` clamped to `degraded_k_clamp` |
//! | 2     | occupancy ≥ `cache_only_threshold` | top-k served **only** from the result cache (an `Arc` clone, no model work); cold top-k and all score/rank queries shed as `Overloaded` |
//!
//! The ladder degrades *before* it sheds: clamping bounds per-request work,
//! cache-only keeps absorbing the hot head of a skewed stream at near-zero
//! cost, and only what is left over is rejected. The result cache behind
//! `top_k_cached` is the serving engine's sharded, policy-pluggable cache
//! (`nscaching_serve::CacheConfig`): sharding widens the cache-only path's
//! concurrency under fan-out, the eviction policy shapes *which* hot head
//! survives to be servable at level 2, and version-stamp invalidation means
//! a stale entry is dropped — never served — even mid-incident.
//!
//! # Deadlines
//!
//! * **read**: once the first byte of a frame arrives the whole frame must
//!   complete within `read_timeout`, or the connection is answered with
//!   [`ErrorCode::DeadlineExceeded`] and closed (a slow-loris client cannot
//!   pin a connection thread).
//! * **write**: `write_timeout` on the socket; a blocked writer fails the
//!   write and the connection is closed.
//! * **queue**: a job older than `queue_deadline` when a worker picks it up
//!   is answered `DeadlineExceeded` *without being executed* (it is
//!   retryable precisely because it never ran).
//! * **idle**: the reaper closes sockets silent for `idle_timeout`.
//!
//! # Graceful drain
//!
//! [`NetServer::shutdown`] stops the accept loop, lets every connection
//! finish the requests it has already received (including frames buffered in
//! the socket when the drain began), waits for the workers to empty their
//! queues, and only then tears the threads down. Every request the server
//! decoded receives exactly one response — the chaos suite asserts the
//! ledger: `decoded + protocol_errors == written + write_failures`, drain
//! included. Connections that keep streaming during a drain are cut off
//! after `drain_grace` with [`ErrorCode::ShuttingDown`].

use crate::fault::{FaultPlan, FaultyStream, Transport};
use crate::metrics::{op_index, NetMetrics};
use crate::wire::{
    code_of_query_error, Answer, ErrorCode, Request, Response, FRAME_HEADER_LEN, MAX_FRAME_LEN,
};
use nscaching_kg::Triple;
use nscaching_obs::{Counter, MetricsRegistry};
use nscaching_serve::{CacheConfig, KnowledgeServer, QueryScratch, SnapshotError, TopKQuery};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Every knob of the front door. See the module docs for how they interact;
/// the defaults are production-shaped (seconds-scale deadlines), tests dial
/// them down to milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct NetServerConfig {
    /// Worker threads executing queries (each owns a [`QueryScratch`]).
    pub workers: usize,
    /// Bounded queue depth per worker — the only buffering in the server.
    pub queue_depth: usize,
    /// Frame-completion deadline once a frame's first byte arrived.
    pub read_timeout: Duration,
    /// Socket write deadline per response frame.
    pub write_timeout: Duration,
    /// Idle sockets are reaped after this long without a frame.
    pub idle_timeout: Duration,
    /// Poll tick bounding drain/idle reaction latency.
    pub poll_interval: Duration,
    /// A job older than this when a worker picks it up is dropped with
    /// `DeadlineExceeded` instead of executed.
    pub queue_deadline: Duration,
    /// How long a connection thread waits for its worker reply before
    /// answering `DeadlineExceeded` itself.
    pub reply_deadline: Duration,
    /// During a drain, connections that keep sending are cut off with
    /// `ShuttingDown` after this grace period.
    pub drain_grace: Duration,
    /// Frames declaring a longer body are rejected before allocation.
    pub max_frame_len: u32,
    /// Concurrent connection cap; excess accepts are closed immediately.
    pub max_connections: usize,
    /// Level-1 degradation clamps top-k `k` to this.
    pub degraded_k_clamp: u32,
    /// Queue occupancy at which level 1 (k-clamp) engages.
    pub clamp_threshold: f64,
    /// Queue occupancy at which level 2 (cache-only) engages.
    pub cache_only_threshold: f64,
    /// Result-cache configuration (eviction policy, shard count, optional
    /// score cache) used when the server builds its own engine from a
    /// snapshot path ([`NetServer::bind_snapshot`]). Ignored by the
    /// pre-built-engine constructors, which carry their own cache.
    pub cache: CacheConfig,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(4),
            queue_depth: 64,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(20),
            queue_deadline: Duration::from_secs(1),
            reply_deadline: Duration::from_secs(5),
            drain_grace: Duration::from_secs(1),
            max_frame_len: MAX_FRAME_LEN,
            max_connections: 1024,
            degraded_k_clamp: 16,
            clamp_threshold: 0.5,
            cache_only_threshold: 0.8,
            cache: CacheConfig::default(),
        }
    }
}

/// Why [`NetServer::bind_snapshot`] failed: the snapshot or the socket.
#[derive(Debug)]
pub enum BindSnapshotError {
    /// The snapshot failed to load or validate (typed, never a panic).
    Load(SnapshotError),
    /// The listening socket could not be bound.
    Io(io::Error),
}

impl std::fmt::Display for BindSnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindSnapshotError::Load(e) => write!(f, "snapshot load failed: {e}"),
            BindSnapshotError::Io(e) => write!(f, "bind failed: {e}"),
        }
    }
}

impl std::error::Error for BindSnapshotError {}

/// Monotonic counters of everything the server did. All counters are
/// cumulative since bind and live on the server's [`MetricsRegistry`] —
/// [`NetStatsSnapshot`] and the `STATS` wire exposition read the *same*
/// atomics, so the two views can never disagree.
#[derive(Debug)]
struct NetStats {
    accepted: Arc<Counter>,
    rejected: Arc<Counter>,
    reaped: Arc<Counter>,
    decoded: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    written: Arc<Counter>,
    ok: Arc<Counter>,
    typed_errors: Arc<Counter>,
    shed: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    degraded_l1: Arc<Counter>,
    degraded_l2: Arc<Counter>,
    write_failures: Arc<Counter>,
    read_failures: Arc<Counter>,
    reload_ok: Arc<Counter>,
    reload_failed: Arc<Counter>,
}

impl NetStats {
    fn register(registry: &MetricsRegistry) -> Self {
        Self {
            accepted: registry.counter("nsc_net_connections_accepted_total"),
            rejected: registry.counter("nsc_net_connections_rejected_total"),
            reaped: registry.counter("nsc_net_connections_reaped_total"),
            decoded: registry.counter("nsc_net_requests_decoded_total"),
            protocol_errors: registry.counter("nsc_net_protocol_errors_total"),
            written: registry.counter("nsc_net_responses_written_total"),
            ok: registry.counter("nsc_net_responses_ok_total"),
            typed_errors: registry.counter("nsc_net_responses_error_total"),
            shed: registry.counter("nsc_net_requests_shed_total"),
            deadline_exceeded: registry.counter("nsc_net_deadline_exceeded_total"),
            degraded_l1: registry
                .counter_with("nsc_net_responses_degraded_total", &[("level", "1")]),
            degraded_l2: registry
                .counter_with("nsc_net_responses_degraded_total", &[("level", "2")]),
            write_failures: registry.counter("nsc_net_write_failures_total"),
            read_failures: registry.counter("nsc_net_read_failures_total"),
            reload_ok: registry.counter_with("nsc_net_reloads_total", &[("outcome", "ok")]),
            reload_failed: registry.counter_with("nsc_net_reloads_total", &[("outcome", "failed")]),
        }
    }
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections closed immediately (over `max_connections`).
    pub rejected: u64,
    /// Connections torn down by the idle reaper.
    pub reaped: u64,
    /// Requests fully received and decoded.
    pub decoded: u64,
    /// Frames that failed to decode (malformed / unsupported opcode).
    pub protocol_errors: u64,
    /// Response frames fully written.
    pub written: u64,
    /// …of which successes.
    pub ok: u64,
    /// …of which typed errors.
    pub typed_errors: u64,
    /// Requests shed by admission control (`Overloaded` responses).
    pub shed: u64,
    /// Requests dropped on a deadline (`DeadlineExceeded` responses).
    pub deadline_exceeded: u64,
    /// Responses served at degradation level 1 (k-clamp).
    pub degraded_l1: u64,
    /// Responses served at degradation level 2 (cache-only).
    pub degraded_l2: u64,
    /// Response writes that failed (connection died mid-write).
    pub write_failures: u64,
    /// Connections that died mid-read (torn frames, resets).
    pub read_failures: u64,
    /// Hot reloads that swapped the served model.
    pub reload_ok: u64,
    /// Hot reloads rejected with a typed error (model kept serving).
    pub reload_failed: u64,
    /// Jobs admitted but not yet executed at snapshot time (instantaneous,
    /// not cumulative).
    pub in_flight: u64,
    /// Open connections at snapshot time (instantaneous, not cumulative).
    pub active_connections: u64,
}

impl NetStatsSnapshot {
    /// Responses the server attempted (every decoded or undecodable frame
    /// produces exactly one).
    pub fn attempted(&self) -> u64 {
        self.written + self.write_failures
    }

    /// Shed responses as a fraction of decoded requests.
    pub fn shed_rate(&self) -> f64 {
        if self.decoded == 0 {
            0.0
        } else {
            self.shed as f64 / self.decoded as f64
        }
    }

    /// Fraction of written responses served degraded (level ≥ 1).
    pub fn degraded_fraction(&self) -> f64 {
        if self.written == 0 {
            0.0
        } else {
            (self.degraded_l1 + self.degraded_l2) as f64 / self.written as f64
        }
    }

    /// The response ledger: every frame the server decoded — plus every
    /// frame it could not decode — produced exactly one response attempt.
    /// Holds at every quiescent point (no request mid-flight), drain
    /// included; the chaos suite asserts it after every scenario.
    pub fn ledger_balanced(&self) -> bool {
        self.decoded + self.protocol_errors == self.written + self.write_failures
    }
}

/// One queued unit of work.
struct Job {
    request: Request,
    degradation: u8,
    enqueued: Instant,
    reply: SyncSender<Response>,
}

/// State shared by every thread of one server.
struct Shared {
    engine: KnowledgeServer,
    config: NetServerConfig,
    stats: NetStats,
    metrics: NetMetrics,
    draining: AtomicBool,
    /// Millis since `epoch` at which the drain started (0 = not draining).
    drain_since_ms: AtomicU64,
    epoch: Instant,
    in_flight: AtomicUsize,
    active_connections: AtomicUsize,
    /// Reaper registry: conn id → (socket handle, last-active millis).
    registry: Mutex<HashMap<u64, (TcpStream, Arc<AtomicU64>)>>,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    fn drain_expired(&self) -> bool {
        let since = self.drain_since_ms.load(Ordering::Acquire);
        since != 0
            && self.now_ms().saturating_sub(since) > self.config.drain_grace.as_millis() as u64
    }

    /// The in-process counter view, including the instantaneous
    /// in-flight/connection levels.
    fn stats_snapshot(&self) -> NetStatsSnapshot {
        let stats = &self.stats;
        NetStatsSnapshot {
            accepted: stats.accepted.get(),
            rejected: stats.rejected.get(),
            reaped: stats.reaped.get(),
            decoded: stats.decoded.get(),
            protocol_errors: stats.protocol_errors.get(),
            written: stats.written.get(),
            ok: stats.ok.get(),
            typed_errors: stats.typed_errors.get(),
            shed: stats.shed.get(),
            deadline_exceeded: stats.deadline_exceeded.get(),
            degraded_l1: stats.degraded_l1.get(),
            degraded_l2: stats.degraded_l2.get(),
            write_failures: stats.write_failures.get(),
            read_failures: stats.read_failures.get(),
            reload_ok: stats.reload_ok.get(),
            reload_failed: stats.reload_failed.get(),
            in_flight: self.in_flight.load(Ordering::Relaxed) as u64,
            active_connections: self.active_connections.load(Ordering::Relaxed) as u64,
        }
    }

    /// Refresh the scrape-time gauges and bridged counters, then render the
    /// registry. This is the `STATS` answer; it runs on a connection thread
    /// and touches no lock the query path contends on (the registry mutex
    /// guards only the entry list, and the engine bridge reads cache stats
    /// the same way [`KnowledgeServer::cache_stats`] does).
    fn render_stats(&self) -> String {
        self.metrics
            .in_flight
            .set(self.in_flight.load(Ordering::Relaxed) as f64);
        self.metrics
            .active_connections
            .set(self.active_connections.load(Ordering::Relaxed) as f64);
        self.engine.publish_metrics();
        self.metrics.registry.render()
    }

    /// Current degradation level from queue occupancy.
    fn degradation_level(&self) -> u8 {
        let capacity = (self.config.workers * self.config.queue_depth).max(1);
        let occupancy = self.in_flight.load(Ordering::Relaxed) as f64 / capacity as f64;
        if occupancy >= self.config.cache_only_threshold {
            2
        } else if occupancy >= self.config.clamp_threshold {
            1
        } else {
            0
        }
    }
}

/// A running front door. Bind with [`NetServer::bind`]; stop with
/// [`NetServer::shutdown`] (graceful drain). Dropping the server without
/// calling `shutdown` drains it too.
pub struct NetServer {
    shared: Arc<Shared>,
    queues: Vec<SyncSender<Job>>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Bind on `addr` (use port 0 for an ephemeral port) and start serving
    /// `engine`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: KnowledgeServer,
        config: NetServerConfig,
    ) -> io::Result<Self> {
        Self::bind_with_faults(addr, engine, config, None)
    }

    /// Bind on `addr` serving the snapshot (or checkpoint) at `path`,
    /// building the engine with the result-cache configuration carried in
    /// `config.cache` — the one-call production entry point that wires
    /// eviction policy, cache shards and the optional score cache through
    /// from the front-door configuration.
    pub fn bind_snapshot(
        addr: impl ToSocketAddrs,
        path: &Path,
        config: NetServerConfig,
    ) -> Result<Self, BindSnapshotError> {
        let engine = KnowledgeServer::load_with_cache(path, config.cache)
            .map_err(BindSnapshotError::Load)?;
        Self::bind(addr, engine, config).map_err(BindSnapshotError::Io)
    }

    /// [`bind`](Self::bind), with a [`FaultPlan`] layered between the server
    /// and every accepted stream (the chaos harness entry point).
    pub fn bind_with_faults(
        addr: impl ToSocketAddrs,
        engine: KnowledgeServer,
        config: NetServerConfig,
        faults: Option<FaultPlan>,
    ) -> io::Result<Self> {
        assert!(config.workers >= 1, "need at least one worker");
        assert!(config.queue_depth >= 1, "queues must hold at least one job");
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let registry = Arc::new(MetricsRegistry::new());
        let metrics = NetMetrics::register(&registry);
        metrics
            .queue_capacity
            .set((config.workers * config.queue_depth) as f64);
        engine.attach_metrics(Arc::clone(&metrics.serve));
        let shared = Arc::new(Shared {
            engine,
            config,
            stats: NetStats::register(&registry),
            metrics,
            draining: AtomicBool::new(false),
            drain_since_ms: AtomicU64::new(0),
            epoch: Instant::now(),
            in_flight: AtomicUsize::new(0),
            active_connections: AtomicUsize::new(0),
            registry: Mutex::new(HashMap::new()),
        });

        let mut queues = Vec::with_capacity(config.workers);
        let mut workers = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth);
            queues.push(tx);
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("nsc-net-worker-{w}"))
                    .spawn(move || worker_loop(&shared, rx))
                    .expect("spawn worker"),
            );
        }

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            let queues = queues.clone();
            std::thread::Builder::new()
                .name("nsc-net-accept".into())
                .spawn(move || accept_loop(&shared, &listener, &queues, &conns, faults))
                .expect("spawn accept loop")
        };

        let reaper = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("nsc-net-reaper".into())
                .spawn(move || reaper_loop(&shared))
                .expect("spawn reaper")
        };

        Ok(Self {
            shared,
            queues,
            addr: local,
            accept: Some(accept),
            workers,
            reaper: Some(reaper),
            conns,
        })
    }

    /// The bound address (resolved port for `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.shared.stats_snapshot()
    }

    /// The metrics registry every layer of this server (net, serve) records
    /// on. Registering further metrics on it is allowed; they will appear in
    /// the `STATS` exposition.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.shared.metrics.registry
    }

    /// The current metrics exposition — exactly the text a `STATS` request
    /// receives over the wire (gauges refreshed, cache counters bridged).
    pub fn exposition(&self) -> String {
        self.shared.render_stats()
    }

    /// The current degradation level (diagnostics; responses carry it too).
    pub fn degradation_level(&self) -> u8 {
        self.shared.degradation_level()
    }

    /// Graceful drain: stop accepting, finish every request already
    /// received, flush the queues, then stop all threads. Returns the final
    /// counters.
    pub fn shutdown(mut self) -> NetStatsSnapshot {
        self.shutdown_inner();
        self.shared.stats_snapshot()
    }

    fn shutdown_inner(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.shared
            .drain_since_ms
            .store(self.shared.now_ms().max(1), Ordering::Release);
        self.shared.draining.store(true, Ordering::Release);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Connections drain themselves once they see the flag; join them all
        // (no new ones can appear — the accept loop is gone).
        loop {
            let handle = self.conns.lock().expect("conn registry").pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        // With every producer gone, closing the queues stops the workers
        // after they finish what was enqueued.
        self.queues.clear();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.reaper.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Accept connections until the drain flag rises.
fn accept_loop(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    queues: &[SyncSender<Job>],
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    faults: Option<FaultPlan>,
) {
    let mut next_conn_id: u64 = 0;
    loop {
        let socket = match listener.accept() {
            Ok((socket, _)) => socket,
            Err(_) => {
                if shared.draining() {
                    break;
                }
                continue;
            }
        };
        if shared.draining() {
            // The wake-up connection (or a late client); refuse silently.
            drop(socket);
            break;
        }
        if shared.active_connections.load(Ordering::Relaxed) >= shared.config.max_connections {
            shared.stats.rejected.inc();
            drop(socket);
            continue;
        }
        let conn_id = next_conn_id;
        next_conn_id += 1;
        shared.stats.accepted.inc();
        shared.active_connections.fetch_add(1, Ordering::Relaxed);

        let last_active = Arc::new(AtomicU64::new(shared.now_ms()));
        if let Ok(clone) = socket.try_clone() {
            shared
                .registry
                .lock()
                .expect("reaper registry")
                .insert(conn_id, (clone, Arc::clone(&last_active)));
        }
        let transport: Box<dyn Transport> = match &faults {
            Some(plan) if plan.is_armed() => {
                Box::new(FaultyStream::new(socket, plan.script_for(conn_id)))
            }
            _ => Box::new(socket),
        };
        let shared = Arc::clone(shared);
        let queues = queues.to_vec();
        let handle = std::thread::Builder::new()
            .name(format!("nsc-net-conn-{conn_id}"))
            .spawn(move || {
                serve_connection(&shared, &queues, transport, &last_active);
                shared
                    .registry
                    .lock()
                    .expect("reaper registry")
                    .remove(&conn_id);
                shared.active_connections.fetch_sub(1, Ordering::Relaxed);
            })
            .expect("spawn connection thread");
        conns.lock().expect("conn registry").push(handle);
    }
}

/// Tear down sockets that have been silent past the idle deadline.
fn reaper_loop(shared: &Arc<Shared>) {
    let tick = shared
        .config
        .poll_interval
        .max(Duration::from_millis(5))
        .min(shared.config.idle_timeout / 2 + Duration::from_millis(1));
    let budget = shared.config.idle_timeout.as_millis() as u64;
    let mut level_since = Instant::now();
    while !shared.draining() {
        std::thread::sleep(tick);
        // Attribute the elapsed tick to the level observed now — resolution
        // is the poll interval, same as every other reaction latency here.
        let level = shared.degradation_level() as usize;
        let elapsed = level_since.elapsed().as_millis() as u64;
        level_since = Instant::now();
        shared.metrics.degradation_ms[level].add(elapsed);
        let now = shared.now_ms();
        let mut registry = shared.registry.lock().expect("reaper registry");
        registry.retain(|_, (socket, last_active)| {
            if now.saturating_sub(last_active.load(Ordering::Relaxed)) > budget {
                let _ = TcpStream::shutdown(socket, std::net::Shutdown::Both);
                shared.stats.reaped.inc();
                false
            } else {
                true
            }
        });
    }
}

/// Outcome of one frame-read attempt.
enum FrameOutcome {
    /// A complete body is in the buffer.
    Frame,
    /// Clean EOF at a frame boundary.
    Closed,
    /// The connection died (reset, injected fault, EOF mid-frame).
    Dead,
    /// The frame started but missed the read deadline.
    Deadline,
    /// The declared body length exceeds the configured bound.
    TooLarge(u32),
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Read one frame. Between frames this returns to the caller every
/// `poll_interval` via the transport's read timeout so drain and idle checks
/// stay responsive; once a frame begins it must finish within `read_timeout`.
fn read_frame(
    transport: &mut dyn Transport,
    shared: &Shared,
    body: &mut Vec<u8>,
    last_active: &AtomicU64,
) -> FrameOutcome {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut got = 0usize;
    let mut frame_deadline: Option<Instant> = None;
    while got < FRAME_HEADER_LEN {
        match transport.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 {
                    FrameOutcome::Closed
                } else {
                    FrameOutcome::Dead
                };
            }
            Ok(n) => {
                if frame_deadline.is_none() {
                    frame_deadline = Some(Instant::now() + shared.config.read_timeout);
                }
                got += n;
            }
            Err(e) if is_timeout(&e) => match frame_deadline {
                // Idle tick: nothing started. Drain and idle policy live in
                // the caller; just report the boundary.
                None => {
                    if shared.draining() {
                        return FrameOutcome::Closed;
                    }
                    continue;
                }
                Some(d) if Instant::now() >= d => return FrameOutcome::Deadline,
                Some(_) => continue,
            },
            Err(_) => return FrameOutcome::Dead,
        }
    }
    let len = u32::from_le_bytes(header);
    if len > shared.config.max_frame_len {
        return FrameOutcome::TooLarge(len);
    }
    let deadline = frame_deadline.unwrap_or_else(|| Instant::now() + shared.config.read_timeout);
    body.clear();
    body.resize(len as usize, 0);
    let mut got = 0usize;
    while got < body.len() {
        match transport.read(&mut body[got..]) {
            Ok(0) => return FrameOutcome::Dead,
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => {
                if Instant::now() >= deadline {
                    return FrameOutcome::Deadline;
                }
            }
            Err(_) => return FrameOutcome::Dead,
        }
    }
    last_active.store(shared.now_ms(), Ordering::Relaxed);
    FrameOutcome::Frame
}

/// Encode `response` and write it as one frame, maintaining the response
/// ledger (`written`/`write_failures` and the per-class counters).
fn write_response(
    transport: &mut dyn Transport,
    shared: &Shared,
    response: &Response,
    scratch: &mut Vec<u8>,
    frame: &mut Vec<u8>,
) -> bool {
    response.encode(scratch);
    frame.clear();
    frame.extend_from_slice(&(scratch.len() as u32).to_le_bytes());
    frame.extend_from_slice(scratch);
    let stats = &shared.stats;
    match transport.write_all(frame) {
        Ok(()) => {
            stats.written.inc();
            match &response.result {
                Ok(_) => {
                    stats.ok.inc();
                }
                Err((code, _)) => {
                    stats.typed_errors.inc();
                    match code {
                        ErrorCode::Overloaded => {
                            stats.shed.inc();
                        }
                        ErrorCode::DeadlineExceeded => {
                            stats.deadline_exceeded.inc();
                        }
                        _ => {}
                    }
                }
            }
            match response.degradation {
                0 => {}
                1 => {
                    stats.degraded_l1.inc();
                }
                _ => {
                    stats.degraded_l2.inc();
                }
            }
            true
        }
        Err(_) => {
            stats.write_failures.inc();
            false
        }
    }
}

/// One connection's life: read frames, admit, dispatch, respond — until the
/// socket dies, the client leaves, the reaper strikes, or a drain finishes.
fn serve_connection(
    shared: &Arc<Shared>,
    queues: &[SyncSender<Job>],
    mut transport: Box<dyn Transport>,
    last_active: &AtomicU64,
) {
    let _ = transport.set_read_timeout(Some(shared.config.poll_interval));
    let _ = transport.set_write_timeout(Some(shared.config.write_timeout));
    let mut body = Vec::new();
    let mut scratch = Vec::new();
    let mut frame = Vec::new();
    let mut next_worker = 0usize;
    loop {
        match read_frame(transport.as_mut(), shared, &mut body, last_active) {
            FrameOutcome::Frame => {}
            FrameOutcome::Closed => break,
            FrameOutcome::Dead => {
                shared.stats.read_failures.inc();
                break;
            }
            FrameOutcome::Deadline => {
                // The slow client gets a typed, retryable goodbye (ledger:
                // no decoded request, so this write is not counted against
                // the request ledger — it is a connection-level notice).
                let notice = Response::error(
                    shared.degradation_level(),
                    ErrorCode::DeadlineExceeded,
                    "frame read deadline exceeded",
                );
                response_bytes(&notice, &mut scratch, &mut frame);
                let _ = transport.write_all(&frame);
                shared.stats.read_failures.inc();
                break;
            }
            FrameOutcome::TooLarge(len) => {
                shared.stats.protocol_errors.inc();
                let response = Response::error(
                    shared.degradation_level(),
                    ErrorCode::Malformed,
                    format!("frame length {len} exceeds limit"),
                );
                write_response(
                    transport.as_mut(),
                    shared,
                    &response,
                    &mut scratch,
                    &mut frame,
                );
                break; // framing cannot be trusted any more
            }
        }

        if shared.draining() && shared.drain_expired() {
            let response = Response::error(
                0,
                ErrorCode::ShuttingDown,
                "server draining; connection grace expired",
            );
            shared.stats.protocol_errors.inc();
            write_response(
                transport.as_mut(),
                shared,
                &response,
                &mut scratch,
                &mut frame,
            );
            break;
        }

        let request = match Request::decode(&body) {
            Ok(request) => request,
            Err(code) => {
                shared.stats.protocol_errors.inc();
                let response =
                    Response::error(shared.degradation_level(), code, "undecodable request");
                let written = write_response(
                    transport.as_mut(),
                    shared,
                    &response,
                    &mut scratch,
                    &mut frame,
                );
                if !written || code == ErrorCode::Malformed {
                    // Malformed framing: resynchronisation is impossible.
                    break;
                }
                continue;
            }
        };
        shared.stats.decoded.inc();

        // The latency window a client experiences minus socket transit:
        // admission, queue wait, execution and the response write.
        let op = op_index(&request);
        let started = Instant::now();
        let response = handle_request(shared, queues, &mut next_worker, request);
        let written = write_response(
            transport.as_mut(),
            shared,
            &response,
            &mut scratch,
            &mut frame,
        );
        shared.metrics.request_latency[op].observe(started.elapsed());
        if !written {
            break;
        }
    }
    transport.shutdown();
}

/// Encode a response frame without touching the ledger (connection-level
/// notices).
fn response_bytes(response: &Response, scratch: &mut Vec<u8>, frame: &mut Vec<u8>) {
    response.encode(scratch);
    frame.clear();
    frame.extend_from_slice(&(scratch.len() as u32).to_le_bytes());
    frame.extend_from_slice(scratch);
}

/// Admission control + degradation ladder + dispatch. Always produces
/// exactly one response.
fn handle_request(
    shared: &Arc<Shared>,
    queues: &[SyncSender<Job>],
    next_worker: &mut usize,
    request: Request,
) -> Response {
    let level = shared.degradation_level();
    // Pings answer inline: the liveness probe must work precisely when the
    // queues are in trouble.
    if matches!(request, Request::Ping) {
        return Response::ok(level, Answer::Pong);
    }

    // Stats answer inline too, and *before* the cache-only branch: the
    // telemetry you need during an incident must not be shed by the
    // incident. Rendering touches no model state and no worker queue.
    if matches!(request, Request::Stats) {
        return Response::ok(level, Answer::Stats(shared.render_stats()));
    }

    // Reloads run here on the connection thread, off the worker queues: the
    // load + validation happens on a snapshot nobody is serving yet, so query
    // workers keep draining at full speed and the swap itself is one write
    // lock acquisition inside the engine. Any typed failure leaves the
    // serving model untouched (the engine validates *before* swapping).
    if let Request::Reload { path } = &request {
        return match shared.engine.reload(Path::new(path)) {
            Ok(()) => {
                shared.stats.reload_ok.inc();
                Response::ok(level, Answer::Reloaded)
            }
            Err(e) => {
                shared.stats.reload_failed.inc();
                Response::error(
                    level,
                    ErrorCode::Internal,
                    format!("reload of {path:?} rejected ({e}); serving model unchanged"),
                )
            }
        };
    }

    if level >= 2 {
        // Cache-only mode: serve LRU hits (both the full-k and the clamped
        // key — traffic clamped at level 1 warmed the latter), shed the rest.
        if let Request::TopK(query) = &request {
            let clamped = TopKQuery {
                k: query.k.min(shared.config.degraded_k_clamp),
                ..*query
            };
            for candidate in [query, &clamped] {
                match shared.engine.top_k_cached(candidate) {
                    Ok(Some(answer)) => {
                        return Response::ok(2, Answer::TopK(answer.to_vec()));
                    }
                    Ok(None) => {}
                    Err(e) => {
                        return Response::error(2, code_of_query_error(&e), e.to_string());
                    }
                }
            }
        }
        return Response::error(
            2,
            ErrorCode::Overloaded,
            "cache-only degradation: cold query shed",
        );
    }

    let request = match (&request, level) {
        (Request::TopK(query), 1) if query.k > shared.config.degraded_k_clamp => {
            Request::TopK(TopKQuery {
                k: shared.config.degraded_k_clamp,
                ..*query
            })
        }
        _ => request,
    };

    let (reply_tx, reply_rx) = mpsc::sync_channel::<Response>(1);
    let mut job = Job {
        request,
        degradation: level,
        enqueued: Instant::now(),
        reply: reply_tx,
    };
    let workers = queues.len();
    let start = *next_worker;
    *next_worker = (*next_worker + 1) % workers;
    for probe in 0..workers {
        let target = &queues[(start + probe) % workers];
        // Count the job in-flight *before* it can reach a worker: the worker
        // decrements after executing, and with the opposite order a fast
        // worker could decrement first, wrapping the unsigned counter and
        // spuriously engaging cache-only degradation for everyone.
        shared.in_flight.fetch_add(1, Ordering::Relaxed);
        match target.try_send(job) {
            Ok(()) => {
                return match reply_rx.recv_timeout(shared.config.reply_deadline) {
                    Ok(response) => response,
                    Err(mpsc::RecvTimeoutError::Timeout) => Response::error(
                        level,
                        ErrorCode::DeadlineExceeded,
                        "reply deadline exceeded",
                    ),
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        Response::error(level, ErrorCode::Internal, "worker vanished")
                    }
                };
            }
            Err(TrySendError::Full(j)) => {
                shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                job = j;
            }
            Err(TrySendError::Disconnected(_)) => {
                shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                return Response::error(level, ErrorCode::ShuttingDown, "worker queues closed");
            }
        }
    }
    Response::error(level, ErrorCode::Overloaded, "all worker queues full")
}

/// Worker thread: execute jobs, enforcing the queue deadline.
fn worker_loop(shared: &Arc<Shared>, queue: mpsc::Receiver<Job>) {
    let mut scratch = QueryScratch::default();
    while let Ok(job) = queue.recv() {
        let response = if job.enqueued.elapsed() > shared.config.queue_deadline {
            Response::error(
                job.degradation,
                ErrorCode::DeadlineExceeded,
                "queue wait exceeded deadline",
            )
        } else {
            execute(&shared.engine, &mut scratch, &job.request, job.degradation)
        };
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
        // The connection may have died while we worked; that is its problem.
        let _ = job.reply.send(response);
    }
}

/// Run one request against the engine. Panics are converted into typed
/// `Internal` errors — untrusted traffic must never take a worker down.
fn execute(
    engine: &KnowledgeServer,
    scratch: &mut QueryScratch,
    request: &Request,
    degradation: u8,
) -> Response {
    let outcome = catch_unwind(AssertUnwindSafe(|| match request {
        Request::Ping => Ok(Answer::Pong),
        Request::TopK(query) => engine
            .top_k(query, scratch)
            .map(|answer| Answer::TopK(answer.to_vec())),
        Request::Score {
            head,
            relation,
            tail,
        } => engine
            .score(&Triple::new(*head, *relation, *tail))
            .map(Answer::Score),
        Request::Rank {
            head,
            relation,
            tail,
            side,
        } => engine
            .rank(&Triple::new(*head, *relation, *tail), *side, scratch)
            .map(Answer::Rank),
        // Reloads and stats are answered on the connection thread in
        // handle_request and never enqueued; a job carrying one is a
        // programming error that the catch_unwind below converts into a
        // typed Internal response.
        Request::Reload { .. } => unreachable!("reload jobs are never queued"),
        Request::Stats => unreachable!("stats jobs are never queued"),
    }));
    match outcome {
        Ok(Ok(answer)) => Response::ok(degradation, answer),
        Ok(Err(e)) => Response::error(degradation, code_of_query_error(&e), e.to_string()),
        Err(_) => Response::error(degradation, ErrorCode::Internal, "query execution panicked"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_models::{build_model, ModelConfig, ModelKind};
    use std::io::Read;

    fn engine() -> KnowledgeServer {
        let model = build_model(
            &ModelConfig::new(ModelKind::TransE).with_dim(8).with_seed(5),
            40,
            6,
        );
        KnowledgeServer::new(model, 64)
    }

    fn test_config() -> NetServerConfig {
        NetServerConfig {
            workers: 2,
            queue_depth: 8,
            read_timeout: Duration::from_millis(250),
            write_timeout: Duration::from_millis(500),
            idle_timeout: Duration::from_secs(5),
            poll_interval: Duration::from_millis(5),
            queue_deadline: Duration::from_millis(500),
            reply_deadline: Duration::from_secs(2),
            drain_grace: Duration::from_millis(500),
            ..NetServerConfig::default()
        }
    }

    fn send_raw(stream: &mut TcpStream, body: &[u8]) {
        io::Write::write_all(stream, &(body.len() as u32).to_le_bytes()).unwrap();
        io::Write::write_all(stream, body).unwrap();
    }

    fn recv_raw(stream: &mut TcpStream) -> Vec<u8> {
        let mut header = [0u8; 4];
        stream.read_exact(&mut header).unwrap();
        let mut body = vec![0u8; u32::from_le_bytes(header) as usize];
        stream.read_exact(&mut body).unwrap();
        body
    }

    fn call(stream: &mut TcpStream, request: &Request) -> Response {
        let mut buf = Vec::new();
        request.encode(&mut buf);
        send_raw(stream, &buf);
        Response::decode(&recv_raw(stream), request).expect("decodable response")
    }

    #[test]
    fn ping_and_queries_round_trip_over_tcp() {
        let engine = engine();
        let server = NetServer::bind("127.0.0.1:0", engine.clone(), test_config()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();

        let pong = call(&mut stream, &Request::Ping);
        assert_eq!(pong.result, Ok(Answer::Pong));
        assert_eq!(pong.degradation, 0);

        let query = TopKQuery::tails(3, 1, 5);
        let response = call(&mut stream, &Request::TopK(query));
        let mut scratch = QueryScratch::default();
        let expected = engine.top_k(&query, &mut scratch).unwrap();
        match response.result {
            Ok(Answer::TopK(got)) => assert_eq!(got.as_slice(), &*expected),
            other => panic!("unexpected response: {other:?}"),
        }

        let score = call(
            &mut stream,
            &Request::Score {
                head: 1,
                relation: 2,
                tail: 3,
            },
        );
        let expected = engine.score(&Triple::new(1, 2, 3)).unwrap();
        assert_eq!(score.result, Ok(Answer::Score(expected)));

        let stats = server.shutdown();
        assert_eq!(stats.decoded, 3);
        assert_eq!(stats.written, 3);
        assert_eq!(stats.ok, 3);
        assert_eq!(stats.write_failures, 0);
    }

    #[test]
    fn out_of_range_ids_come_back_as_typed_wire_errors() {
        let server = NetServer::bind("127.0.0.1:0", engine(), test_config()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let response = call(&mut stream, &Request::TopK(TopKQuery::tails(9999, 0, 3)));
        match response.result {
            Err((ErrorCode::EntityOutOfRange, detail)) => {
                assert!(detail.contains("out of range"), "{detail}");
            }
            other => panic!("unexpected: {other:?}"),
        }
        // The connection survives a typed rejection.
        assert_eq!(call(&mut stream, &Request::Ping).result, Ok(Answer::Pong));
        server.shutdown();
    }

    #[test]
    fn malformed_and_oversized_frames_are_rejected() {
        let server = NetServer::bind("127.0.0.1:0", engine(), test_config()).unwrap();

        // Unknown opcode: typed error, connection survives.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        send_raw(&mut stream, &[200]);
        let response = Response::decode(&recv_raw(&mut stream), &Request::Ping).unwrap();
        assert!(matches!(
            response.result,
            Err((ErrorCode::UnsupportedOp, _))
        ));
        assert_eq!(call(&mut stream, &Request::Ping).result, Ok(Answer::Pong));

        // Truncated body: malformed, connection closed after the response.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        send_raw(&mut stream, &[crate::wire::opcode::TOP_K, 1, 2]);
        let response = Response::decode(&recv_raw(&mut stream), &Request::Ping).unwrap();
        assert!(matches!(response.result, Err((ErrorCode::Malformed, _))));

        // Oversized length prefix: malformed before any allocation.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        io::Write::write_all(&mut stream, &(MAX_FRAME_LEN + 1).to_le_bytes()).unwrap();
        let response = Response::decode(&recv_raw(&mut stream), &Request::Ping).unwrap();
        assert!(matches!(response.result, Err((ErrorCode::Malformed, _))));

        server.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped() {
        let config = NetServerConfig {
            idle_timeout: Duration::from_millis(60),
            ..test_config()
        };
        let server = NetServer::bind("127.0.0.1:0", engine(), config).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        assert_eq!(call(&mut stream, &Request::Ping).result, Ok(Answer::Pong));
        // Go silent; the reaper must cut us off.
        let mut buf = [0u8; 4];
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let outcome = io::Read::read(&mut stream, &mut buf);
        assert!(
            matches!(outcome, Ok(0)) || outcome.is_err(),
            "socket should be closed by the reaper, got {outcome:?}"
        );
        let stats = server.shutdown();
        assert!(stats.reaped >= 1, "reaper recorded the kill: {stats:?}");
    }

    #[test]
    fn slow_loris_hits_the_read_deadline() {
        let server = NetServer::bind("127.0.0.1:0", engine(), test_config()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // First half of a frame header, then silence.
        io::Write::write_all(&mut stream, &[5, 0]).unwrap();
        let mut header = [0u8; 4];
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.read_exact(&mut header).unwrap();
        let mut body = vec![0u8; u32::from_le_bytes(header) as usize];
        stream.read_exact(&mut body).unwrap();
        let response = Response::decode(&body, &Request::Ping).unwrap();
        assert!(matches!(
            response.result,
            Err((ErrorCode::DeadlineExceeded, _))
        ));
        server.shutdown();
    }

    #[test]
    fn drain_without_traffic_shuts_down_cleanly() {
        let server = NetServer::bind("127.0.0.1:0", engine(), test_config()).unwrap();
        let addr = server.addr();
        let _idle = TcpStream::connect(addr).unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.write_failures, 0);
        // The port is released: a fresh bind on the same address works.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "{rebind:?}");
    }
}
