//! End-to-end pins for the `Stats` wire opcode: a live server under real
//! traffic must expose its per-opcode latency quantiles and its ledger
//! counters, and the wire exposition must agree with the in-process views
//! ([`NetServer::exposition`], [`NetServer::stats`]).

use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_net::client::{ClientConfig, NetClient};
use nscaching_net::server::{NetServer, NetServerConfig};
use nscaching_net::wire::{Answer, Request};
use nscaching_serve::{KnowledgeServer, TopKQuery};
use std::collections::BTreeSet;
use std::time::Duration;

fn engine() -> KnowledgeServer {
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(16)
            .with_seed(11),
        50,
        6,
    );
    KnowledgeServer::new(model, 64)
}

fn config() -> NetServerConfig {
    NetServerConfig {
        workers: 2,
        queue_depth: 8,
        poll_interval: Duration::from_millis(5),
        ..NetServerConfig::default()
    }
}

/// The value of the first exposition line with this exact prefix.
fn metric_value(text: &str, prefix: &str) -> Option<f64> {
    text.lines()
        .find(|line| line.starts_with(prefix))
        .and_then(|line| line.rsplit(' ').next())
        .and_then(|value| value.parse().ok())
}

#[test]
fn live_server_exposes_per_opcode_latency_and_ledger_counters() {
    const PINGS: u64 = 5;
    const TOPKS: u64 = 12;
    const SCORES: u64 = 3;

    let server = NetServer::bind("127.0.0.1:0", engine(), config()).unwrap();
    let mut client = NetClient::new(server.addr(), ClientConfig::default());

    for _ in 0..PINGS {
        client.call(&Request::Ping).unwrap();
    }
    for i in 0..TOPKS {
        // Distinct queries so the top-k path does real (cold) work.
        let query = TopKQuery::tails((i % 50) as u32, (i % 6) as u32, 4 + i as u32);
        client.call(&Request::TopK(query)).unwrap();
    }
    for i in 0..SCORES {
        client
            .call(&Request::Score {
                head: i as u32,
                relation: 0,
                tail: (i + 1) as u32,
            })
            .unwrap();
    }

    let reply = client.call(&Request::Stats).unwrap();
    let text = match reply.answer {
        Answer::Stats(text) => text,
        other => panic!("expected a stats answer, got {other:?}"),
    };

    // Exposition shape: sorted lines, trailing newline.
    assert!(text.ends_with('\n'), "missing trailing newline");
    let lines: Vec<&str> = text.lines().collect();
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    assert_eq!(lines, sorted, "exposition must be byte-sorted");

    // Ledger counters: the stats request itself was the last decoded frame,
    // but its response had not been written when the text rendered.
    let decoded = PINGS + TOPKS + SCORES + 1;
    assert_eq!(
        metric_value(&text, "nsc_net_requests_decoded_total "),
        Some(decoded as f64),
        "{text}"
    );
    assert_eq!(
        metric_value(&text, "nsc_net_responses_written_total "),
        Some((decoded - 1) as f64),
        "{text}"
    );
    assert_eq!(
        metric_value(&text, "nsc_net_responses_ok_total "),
        Some((decoded - 1) as f64),
        "{text}"
    );

    // Per-opcode latency histograms: counts are exact, quantiles present.
    for (op, count) in [("ping", PINGS), ("top_k", TOPKS), ("score", SCORES)] {
        assert_eq!(
            metric_value(
                &text,
                &format!("nsc_net_request_latency_us_count{{op=\"{op}\"}}")
            ),
            Some(count as f64),
            "{op} count\n{text}"
        );
        for q in ["p50", "p90", "p99", "max"] {
            let prefix = format!("nsc_net_request_latency_us{{op=\"{op}\",q=\"{q}\"}}");
            assert!(
                metric_value(&text, &prefix).is_some(),
                "missing {prefix}\n{text}"
            );
        }
    }
    // Real traffic takes real time: the slowest top-k round trip is ≥ 1 µs.
    let topk_max = metric_value(&text, "nsc_net_request_latency_us{op=\"top_k\",q=\"max\"}");
    assert!(topk_max.unwrap() >= 1.0, "{topk_max:?}");

    // The serve layer shares the registry: cold top-k queries were misses.
    assert_eq!(
        metric_value(&text, "nsc_serve_cache_misses_total{cache=\"topk\"}"),
        Some(TOPKS as f64),
        "{text}"
    );

    // Queue-pressure gauges are present (idle at scrape: nothing in flight).
    assert_eq!(metric_value(&text, "nsc_net_in_flight "), Some(0.0));
    assert_eq!(metric_value(&text, "nsc_net_queue_capacity "), Some(16.0));

    // The in-process exposition is the same document (same metric set; the
    // stats round trip itself moved some counter values since).
    let names = |text: &str| -> BTreeSet<String> {
        text.lines()
            .filter_map(|line| line.rsplit_once(' ').map(|(name, _)| name.to_string()))
            .collect()
    };
    assert_eq!(names(&text), names(&server.exposition()));

    // And the typed snapshot reads the same atomics. The stats reply lands
    // on the client a beat before the server's `written` increment (response
    // bytes first, ledger second), so give the live counter a bounded moment
    // to settle before pinning the balance.
    let settle = std::time::Instant::now();
    let mut stats = server.stats();
    while !stats.ledger_balanced() && settle.elapsed() < Duration::from_secs(2) {
        std::thread::sleep(Duration::from_millis(1));
        stats = server.stats();
    }
    assert_eq!(stats.decoded, decoded);
    assert_eq!(stats.active_connections, 1);
    assert!(stats.ledger_balanced(), "{stats:?}");
    server.shutdown();
}
