//! Chaos suite: drive thousands of requests through a deliberately hostile
//! transport and prove the front door's invariants hold.
//!
//! * **No panics** — injected faults become typed errors, never crashes.
//! * **Exactly-one-outcome** — every request the server decoded gets exactly
//!   one response attempt: `decoded + protocol_errors == written +
//!   write_failures` (the response ledger).
//! * **Conclusive clients** — every client call terminates with an answer or
//!   a typed error; nothing hangs.
//! * **Zero-loss drain** — a graceful shutdown under live traffic loses no
//!   in-flight responses.
//! * **Typed overload** — saturation produces `Overloaded` rejections, not
//!   queue collapse.

use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_net::client::{ClientConfig, ClientError, NetClient};
use nscaching_net::fault::FaultPlan;
use nscaching_net::server::{NetServer, NetServerConfig};
use nscaching_net::wire::{ErrorCode, Request};
use nscaching_serve::{KnowledgeServer, TopKQuery};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const NUM_ENTITIES: usize = 60;
const NUM_RELATIONS: usize = 8;

fn engine() -> KnowledgeServer {
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(16)
            .with_seed(42),
        NUM_ENTITIES,
        NUM_RELATIONS,
    );
    KnowledgeServer::new(model, 256)
}

fn chaos_server_config() -> NetServerConfig {
    NetServerConfig {
        workers: 2,
        queue_depth: 16,
        read_timeout: Duration::from_millis(400),
        write_timeout: Duration::from_millis(500),
        idle_timeout: Duration::from_secs(10),
        poll_interval: Duration::from_millis(5),
        queue_deadline: Duration::from_millis(500),
        reply_deadline: Duration::from_secs(2),
        drain_grace: Duration::from_millis(300),
        ..NetServerConfig::default()
    }
}

/// A deterministic request mix: mostly valid queries of all four kinds, with
/// a sprinkle of out-of-range ids to exercise the typed error path.
fn request_for(rng: &mut StdRng) -> Request {
    let entity = rng.gen_range(0u32..NUM_ENTITIES as u32);
    let relation = rng.gen_range(0u32..NUM_RELATIONS as u32);
    match rng.gen_range(0u32..20) {
        0 => Request::Ping,
        1 => Request::TopK(TopKQuery::tails(9_999, relation, 4)), // typed error
        2..=9 => Request::TopK(TopKQuery::tails(entity, relation, rng.gen_range(1u32..12))),
        10..=14 => Request::Score {
            head: entity,
            relation,
            tail: (entity + 1) % NUM_ENTITIES as u32,
        },
        _ => Request::Rank {
            head: entity,
            relation,
            tail: (entity + 3) % NUM_ENTITIES as u32,
            side: if rng.gen_bool(0.5) {
                nscaching_kg::CorruptionSide::Head
            } else {
                nscaching_kg::CorruptionSide::Tail
            },
        },
    }
}

/// ≥1000 requests through a seeded fault plan: short reads, torn writes,
/// stalls, mid-frame disconnects and injected I/O errors. Every call must
/// reach a conclusive outcome and the server's response ledger must balance.
#[test]
fn chaos_faulty_transport_keeps_every_invariant() {
    const CLIENTS: usize = 8;
    const CALLS_PER_CLIENT: usize = 150; // 1200 total

    let plan = FaultPlan::chaos(0xC4A05, 0.04, Duration::from_millis(15));
    let server =
        NetServer::bind_with_faults("127.0.0.1:0", engine(), chaos_server_config(), Some(plan))
            .unwrap();
    let addr = server.addr();

    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        handles.push(std::thread::spawn(move || {
            let mut client = NetClient::new(
                addr,
                ClientConfig {
                    max_attempts: 6,
                    backoff_base: Duration::from_millis(1),
                    backoff_cap: Duration::from_millis(10),
                    read_timeout: Duration::from_secs(3),
                    seed: 0xBEEF + c as u64,
                    ..ClientConfig::default()
                },
            );
            let mut rng = StdRng::seed_from_u64(0xFEED + c as u64);
            let (mut answers, mut typed, mut transport) = (0u64, 0u64, 0u64);
            for _ in 0..CALLS_PER_CLIENT {
                // Every call must terminate conclusively — an answer, a
                // typed server error, or a transport error after retries.
                match client.call(&request_for(&mut rng)) {
                    Ok(_) => answers += 1,
                    Err(ClientError::Server { .. }) => typed += 1,
                    Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => transport += 1,
                }
            }
            (answers, typed, transport)
        }));
    }

    let (mut answers, mut typed, mut transport) = (0u64, 0u64, 0u64);
    for handle in handles {
        let (a, t, x) = handle.join().expect("client thread must not panic");
        answers += a;
        typed += t;
        transport += x;
    }
    let total = answers + typed + transport;
    assert_eq!(total, (CLIENTS * CALLS_PER_CLIENT) as u64);
    // The fault rate is low; the vast majority of calls must succeed even on
    // a hostile transport (retries absorb the transients).
    assert!(
        answers * 10 >= total * 8,
        "too few successes: {answers}/{total} (typed {typed}, transport {transport})"
    );
    // The out-of-range sprinkle guarantees typed errors flowed end-to-end.
    assert!(typed > 0, "expected typed server errors in the mix");

    let stats = server.shutdown();
    // The response ledger: every request the server decoded (or rejected at
    // the protocol layer) got exactly one response attempt.
    assert!(
        stats.ledger_balanced(),
        "response ledger out of balance: {stats:?}"
    );
    assert!(stats.decoded >= 1000, "chaos run too small: {stats:?}");
    // Faults actually fired (otherwise this test proves nothing).
    assert!(
        stats.read_failures + stats.write_failures > 0,
        "fault plan injected nothing: {stats:?}"
    );
}

/// Raw-socket client loop used by the drain test: no retries, counts
/// responses until the server closes the connection.
fn drain_client(addr: std::net::SocketAddr, stop: Arc<AtomicBool>, seed: u64) -> (u64, u64) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = Vec::new();
    let (mut sent, mut received) = (0u64, 0u64);
    loop {
        let request = request_for(&mut rng);
        request.encode(&mut buf);
        let mut frame = (buf.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&buf);
        if stream.write_all(&frame).is_err() {
            break;
        }
        sent += 1;
        let mut header = [0u8; 4];
        if stream.read_exact(&mut header).is_err() {
            break;
        }
        let mut body = vec![0u8; u32::from_le_bytes(header) as usize];
        if stream.read_exact(&mut body).is_err() {
            break;
        }
        received += 1;
        if stop.load(Ordering::Relaxed) && received > 10 {
            // Keep a couple of stragglers going into the drain itself.
            if received % 4 == 0 {
                break;
            }
        }
    }
    (sent, received)
}

/// Shut the server down in the middle of live traffic: every request the
/// server accepted must still be answered — zero lost responses.
#[test]
fn graceful_drain_loses_zero_inflight_responses() {
    let server = NetServer::bind("127.0.0.1:0", engine(), chaos_server_config()).unwrap();
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for c in 0..4 {
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            drain_client(addr, stop, 0xD12A1 + c as u64)
        }));
    }

    // Let traffic build, then pull the plug mid-flight.
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    let stats = server.shutdown();

    let (mut sent, mut received) = (0u64, 0u64);
    for handle in handles {
        let (s, r) = handle.join().expect("drain client must not panic");
        sent += s;
        received += r;
    }
    assert!(received > 100, "drain test saw too little traffic");

    // Zero loss, server side: every decoded request was answered and every
    // answer reached the socket (balanced ledger with zero write failures).
    assert_eq!(stats.write_failures, 0, "{stats:?}");
    assert!(stats.ledger_balanced(), "{stats:?}");
    // Zero loss, client side: everything the server wrote was read. A
    // client's final request may race the drain close (never decoded, so
    // never owed a response) — hence ≤, with the server's own ledger pinning
    // the exact count.
    assert_eq!(received, stats.written, "{stats:?}");
    assert!(sent >= received, "{stats:?}");
}

/// Saturate a deliberately tiny server: overload must surface as fast typed
/// `Overloaded` rejections (admission control), not as unbounded queueing.
#[test]
fn overload_sheds_with_typed_rejections_not_collapse() {
    let config = NetServerConfig {
        workers: 1,
        queue_depth: 2,
        ..chaos_server_config()
    };
    // A heavier model makes each query slow enough to pile up.
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(64)
            .with_seed(1),
        20_000,
        4,
    );
    let server = NetServer::bind("127.0.0.1:0", KnowledgeServer::new(model, 8), config).unwrap();
    let addr = server.addr();

    let mut handles = Vec::new();
    for c in 0..8u32 {
        handles.push(std::thread::spawn(move || {
            let mut client = NetClient::new(
                addr,
                ClientConfig {
                    max_attempts: 1, // no retries: observe raw rejections
                    read_timeout: Duration::from_secs(10),
                    ..ClientConfig::default()
                },
            );
            let mut rng = StdRng::seed_from_u64(c as u64);
            let (mut served, mut shed, mut other) = (0u64, 0u64, 0u64);
            for _ in 0..60 {
                // Distinct k per call defeats the LRU so every request costs
                // real scoring work.
                let query = TopKQuery::tails(
                    rng.gen_range(0u32..20_000),
                    rng.gen_range(0u32..4),
                    rng.gen_range(1u32..200),
                );
                match client.call(&Request::TopK(query)) {
                    Ok(_) => served += 1,
                    Err(ClientError::Server {
                        code: ErrorCode::Overloaded | ErrorCode::DeadlineExceeded,
                        ..
                    }) => shed += 1,
                    Err(_) => other += 1,
                }
            }
            (served, shed, other)
        }));
    }

    let (mut served, mut shed, mut other) = (0u64, 0u64, 0u64);
    for handle in handles {
        let (s, d, o) = handle.join().expect("overload client must not panic");
        served += s;
        shed += d;
        other += o;
    }
    let stats = server.shutdown();
    assert_eq!(served + shed + other, 8 * 60);
    assert_eq!(other, 0, "only typed outcomes expected: {stats:?}");
    assert!(served > 0, "some requests must be admitted: {stats:?}");
    assert!(
        shed > 0,
        "a 2-slot server hammered by 8 clients must shed: {stats:?}"
    );
    // Admission control is the mechanism: the server's own counters agree.
    assert!(stats.shed + stats.deadline_exceeded >= shed, "{stats:?}");
    assert!(stats.ledger_balanced(), "{stats:?}");
}

/// Telemetry must survive the incident it is describing: the `Stats` opcode
/// is answered inline on the connection thread, so it works while the
/// worker queues are saturated and while a drain is in progress.
#[test]
fn stats_opcode_answers_during_overload_and_drain() {
    use nscaching_net::wire::{Answer, Response};

    let config = NetServerConfig {
        workers: 1,
        queue_depth: 2,
        drain_grace: Duration::from_secs(2),
        ..chaos_server_config()
    };
    // A heavier model makes each query slow enough to pile up.
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(64)
            .with_seed(7),
        20_000,
        4,
    );
    let server = NetServer::bind("127.0.0.1:0", KnowledgeServer::new(model, 8), config).unwrap();
    let addr = server.addr();

    // Hammer the tiny server with cold, expensive top-k queries.
    let stop = Arc::new(AtomicBool::new(false));
    let mut hammers = Vec::new();
    for c in 0..6u64 {
        let stop = Arc::clone(&stop);
        hammers.push(std::thread::spawn(move || {
            let mut client = NetClient::new(
                addr,
                ClientConfig {
                    max_attempts: 1,
                    read_timeout: Duration::from_secs(10),
                    ..ClientConfig::default()
                },
            );
            let mut rng = StdRng::seed_from_u64(0x57A75 + c);
            while !stop.load(Ordering::Relaxed) {
                let query = TopKQuery::tails(
                    rng.gen_range(0u32..20_000),
                    rng.gen_range(0u32..4),
                    rng.gen_range(1u32..200),
                );
                let _ = client.call(&Request::TopK(query));
            }
        }));
    }

    // A raw stats probe on its own connection, mid-overload.
    let stats_call = |stream: &mut TcpStream| -> Response {
        let mut buf = Vec::new();
        Request::Stats.encode(&mut buf);
        let mut frame = (buf.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&buf);
        stream.write_all(&frame).unwrap();
        let mut header = [0u8; 4];
        stream.read_exact(&mut header).unwrap();
        let mut body = vec![0u8; u32::from_le_bytes(header) as usize];
        stream.read_exact(&mut body).unwrap();
        Response::decode(&body, &Request::Stats).expect("decodable stats response")
    };
    let mut probe = TcpStream::connect(addr).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(200)); // let the pile-up form
    let during_overload = stats_call(&mut probe);
    match &during_overload.result {
        Ok(Answer::Stats(text)) => {
            assert!(
                text.contains("nsc_net_request_latency_us{op=\"top_k\",q=\"p99\"}"),
                "per-opcode latency missing from exposition:\n{text}"
            );
            assert!(text.contains("nsc_net_in_flight"), "{text}");
        }
        other => panic!("stats must answer during overload, got {other:?}"),
    }

    // Now drain the server under live traffic with stats frames already in
    // the probe's socket: the zero-loss drain contract says every frame
    // received before the drain finishes its grace gets an answer, so both
    // probes must come back even though the second one is (with high
    // probability) rendered mid-drain.
    let mut buf = Vec::new();
    Request::Stats.encode(&mut buf);
    let mut frame = (buf.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&buf);
    let mut pipelined = frame.clone();
    pipelined.extend_from_slice(&frame);
    probe.write_all(&pipelined).unwrap();
    let shutdown = std::thread::spawn(move || server.shutdown());
    for _ in 0..2 {
        let mut header = [0u8; 4];
        probe.read_exact(&mut header).unwrap();
        let mut body = vec![0u8; u32::from_le_bytes(header) as usize];
        probe.read_exact(&mut body).unwrap();
        let response = Response::decode(&body, &Request::Stats).unwrap();
        assert!(
            matches!(response.result, Ok(Answer::Stats(_))),
            "stats must answer across a drain, got {:?}",
            response.result
        );
    }
    drop(probe);
    stop.store(true, Ordering::Relaxed);
    for handle in hammers {
        handle.join().expect("hammer thread must not panic");
    }
    let stats = shutdown.join().expect("shutdown must complete");
    assert!(stats.ledger_balanced(), "{stats:?}");
    // The overload was real while stats kept answering.
    assert!(
        stats.shed + stats.deadline_exceeded + stats.degraded_l1 + stats.degraded_l2 > 0,
        "expected pressure during the stats probes: {stats:?}"
    );
}
