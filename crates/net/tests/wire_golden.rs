//! Golden-bytes pins for the wire protocol.
//!
//! These tests freeze the exact byte layout of every frame kind and the
//! error-code numbering. They are a **deployment contract**: clients built
//! against today's protocol must keep working against tomorrow's server. If
//! one of these assertions fails, the change is a wire break — bump a
//! protocol version, don't update the constants.

use nscaching_kg::CorruptionSide;
use nscaching_net::wire::{opcode, Answer, ErrorCode, Request, Response};
use nscaching_serve::{RankedEntity, TopKQuery};

fn encoded_request(request: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    request.encode(&mut buf);
    buf
}

fn encoded_response(response: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    response.encode(&mut buf);
    buf
}

#[test]
fn request_bytes_are_pinned() {
    assert_eq!(encoded_request(&Request::Ping), [1]);
    assert_eq!(encoded_request(&Request::Stats), [6]);

    // TopK: opcode, relation u32, entity u32, direction u8, k u32 — all LE.
    assert_eq!(
        encoded_request(&Request::TopK(TopKQuery::tails(7, 2, 5))),
        [2, 2, 0, 0, 0, 7, 0, 0, 0, 0, 5, 0, 0, 0]
    );
    // heads() flips the direction byte to 1.
    assert_eq!(
        encoded_request(&Request::TopK(TopKQuery::heads(7, 2, 5)))[9],
        1
    );

    assert_eq!(
        encoded_request(&Request::Score {
            head: 1,
            relation: 2,
            tail: 3
        }),
        [3, 1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0]
    );

    assert_eq!(
        encoded_request(&Request::Rank {
            head: 4,
            relation: 5,
            tail: 6,
            side: CorruptionSide::Head
        }),
        [4, 4, 0, 0, 0, 5, 0, 0, 0, 6, 0, 0, 0, 1]
    );
}

#[test]
fn response_bytes_are_pinned() {
    // Success: status 0, degradation, payload.
    assert_eq!(encoded_response(&Response::ok(0, Answer::Pong)), [0, 0]);

    // TopK payload: count u32, then (entity u32, score f64 bits) pairs.
    // 1.5f64 == 0x3FF8_0000_0000_0000.
    assert_eq!(
        encoded_response(&Response::ok(
            1,
            Answer::TopK(vec![RankedEntity {
                entity: 9,
                score: 1.5
            }])
        )),
        [0, 1, 1, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xF8, 0x3F]
    );

    // Score payload: one f64 as raw bits. -2.0f64 == 0xC000_0000_0000_0000.
    assert_eq!(
        encoded_response(&Response::ok(0, Answer::Score(-2.0))),
        [0, 0, 0, 0, 0, 0, 0, 0, 0, 0xC0]
    );

    // Error: status = code, degradation, u32 detail length, UTF-8 bytes.
    assert_eq!(
        encoded_response(&Response::error(2, ErrorCode::Overloaded, "full")),
        [5, 2, 4, 0, 0, 0, b'f', b'u', b'l', b'l']
    );
}

#[test]
fn opcodes_are_pinned() {
    assert_eq!(opcode::PING, 1);
    assert_eq!(opcode::TOP_K, 2);
    assert_eq!(opcode::SCORE, 3);
    assert_eq!(opcode::RANK, 4);
    assert_eq!(opcode::RELOAD, 5);
    assert_eq!(opcode::STATS, 6);
}

#[test]
fn stats_response_bytes_are_pinned() {
    // Stats payload: u32 text length, then the UTF-8 exposition bytes.
    assert_eq!(
        encoded_response(&Response::ok(2, Answer::Stats("a 1\n".into()))),
        [0, 2, 4, 0, 0, 0, b'a', b' ', b'1', b'\n']
    );
}

#[test]
fn error_code_numbering_is_pinned() {
    let table: [(ErrorCode, u8, bool); 8] = [
        (ErrorCode::Malformed, 1, false),
        (ErrorCode::UnsupportedOp, 2, false),
        (ErrorCode::EntityOutOfRange, 3, false),
        (ErrorCode::RelationOutOfRange, 4, false),
        (ErrorCode::Overloaded, 5, true),
        (ErrorCode::ShuttingDown, 6, true),
        (ErrorCode::DeadlineExceeded, 7, true),
        (ErrorCode::Internal, 8, false),
    ];
    for (code, wire, retryable) in table {
        assert_eq!(code as u8, wire, "{code}");
        assert_eq!(ErrorCode::from_wire(wire), Some(Err(code)));
        assert_eq!(code.is_retryable(), retryable, "{code}");
    }
    // 0 is success, everything past the table is undecodable.
    assert_eq!(ErrorCode::from_wire(0), Some(Ok(())));
    for unknown in 9..=255u8 {
        assert_eq!(ErrorCode::from_wire(unknown), None, "{unknown}");
    }
}

#[test]
fn frame_prefix_is_little_endian_u32() {
    // A framed ping: length 1, then the body. The prefix layout is what
    // every client implementation hard-codes first.
    let body = encoded_request(&Request::Ping);
    let mut frame = (body.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&body);
    assert_eq!(frame, [1, 0, 0, 0, 1]);
}
