//! Hot-reload behaviour of the front door, including the tentpole guarantee:
//! a corrupt snapshot pushed through the admin opcode **never interrupts
//! serving** — the rejected reload rolls back to the serving model while live
//! traffic keeps flowing, and the outcome is counted in the stats ledger.

use nscaching_models::{build_model, KgeModel, ModelConfig, ModelKind};
use nscaching_net::{Answer, ErrorCode, NetServer, NetServerConfig, Request, Response};
use nscaching_serve::{save_model, KnowledgeServer};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const NUM_ENTITIES: usize = 40;
const NUM_RELATIONS: usize = 6;

fn model(seed: u64) -> Box<dyn KgeModel> {
    build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(8)
            .with_seed(seed),
        NUM_ENTITIES,
        NUM_RELATIONS,
    )
}

fn tempfile(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nscaching-net-reload");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn test_config() -> NetServerConfig {
    NetServerConfig {
        workers: 2,
        queue_depth: 16,
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        idle_timeout: Duration::from_secs(10),
        poll_interval: Duration::from_millis(5),
        queue_deadline: Duration::from_secs(1),
        reply_deadline: Duration::from_secs(3),
        drain_grace: Duration::from_secs(1),
        ..NetServerConfig::default()
    }
}

fn call(stream: &mut TcpStream, request: &Request) -> Response {
    let mut body = Vec::new();
    request.encode(&mut body);
    stream
        .write_all(&(body.len() as u32).to_le_bytes())
        .unwrap();
    stream.write_all(&body).unwrap();
    let mut header = [0u8; 4];
    stream.read_exact(&mut header).unwrap();
    let len = u32::from_le_bytes(header) as usize;
    let mut reply = vec![0u8; len];
    stream.read_exact(&mut reply).unwrap();
    Response::decode(&reply, request).unwrap()
}

fn score_request() -> Request {
    Request::Score {
        head: 1,
        relation: 2,
        tail: 3,
    }
}

fn score_of(response: &Response) -> f64 {
    match &response.result {
        Ok(Answer::Score(v)) => *v,
        other => panic!("expected a score, got {other:?}"),
    }
}

#[test]
fn good_reload_swaps_the_served_model() {
    let snapshot = tempfile("good-reload.snap");
    save_model(&snapshot, model(99).as_ref()).unwrap();

    let server = NetServer::bind(
        "127.0.0.1:0",
        KnowledgeServer::new(model(5), 64),
        test_config(),
    )
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();

    let before = score_of(&call(&mut stream, &score_request()));
    let reload = call(
        &mut stream,
        &Request::Reload {
            path: snapshot.to_string_lossy().into_owned(),
        },
    );
    assert_eq!(reload.result, Ok(Answer::Reloaded));
    let after = score_of(&call(&mut stream, &score_request()));
    assert_ne!(
        before.to_bits(),
        after.to_bits(),
        "a different model must score differently"
    );

    let stats = server.shutdown();
    assert_eq!(stats.reload_ok, 1);
    assert_eq!(stats.reload_failed, 0);
    let _ = std::fs::remove_file(&snapshot);
}

#[test]
fn corrupt_reload_is_rejected_and_never_interrupts_serving() {
    // A corrupt "snapshot", a truncated-real one, and a missing path: all
    // three must yield a typed error and leave the model serving bit-
    // identically, while concurrent traffic keeps succeeding.
    let garbage = tempfile("corrupt-reload.snap");
    std::fs::write(&garbage, b"these are not snapshot bytes").unwrap();
    let truncated = tempfile("truncated-reload.snap");
    {
        let valid = tempfile("victim.snap");
        save_model(&valid, model(7).as_ref()).unwrap();
        let bytes = std::fs::read(&valid).unwrap();
        std::fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();
        let _ = std::fs::remove_file(&valid);
    }
    let missing = tempfile("missing-reload.snap");

    let server = NetServer::bind(
        "127.0.0.1:0",
        KnowledgeServer::new(model(5), 64),
        test_config(),
    )
    .unwrap();
    let addr = server.addr();

    // Live traffic: hammer queries from two background connections for the
    // whole duration; every response must be a success (no Internal errors,
    // no torn connections) regardless of what the admin connection does.
    let stop = Arc::new(AtomicBool::new(false));
    let traffic: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let response = call(&mut stream, &score_request());
                    assert!(
                        response.result.is_ok(),
                        "live traffic failed during reload: {response:?}"
                    );
                    served += 1;
                }
                served
            })
        })
        .collect();

    let mut admin = TcpStream::connect(addr).unwrap();
    let baseline = score_of(&call(&mut admin, &score_request()));
    for path in [&garbage, &truncated, &missing] {
        for _ in 0..5 {
            let reload = call(
                &mut admin,
                &Request::Reload {
                    path: path.to_string_lossy().into_owned(),
                },
            );
            match &reload.result {
                Err((ErrorCode::Internal, detail)) => {
                    assert!(
                        detail.contains("serving model unchanged"),
                        "detail should state the rollback: {detail}"
                    );
                }
                other => panic!("corrupt reload must be a typed Internal error, got {other:?}"),
            }
            // Rollback proof: the serving model still answers, bit-identically.
            let now = score_of(&call(&mut admin, &score_request()));
            assert_eq!(
                baseline.to_bits(),
                now.to_bits(),
                "model changed after a failed reload"
            );
        }
    }

    stop.store(true, Ordering::Relaxed);
    let served: u64 = traffic.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(served > 0, "traffic threads never got a response in");

    let stats = server.shutdown();
    assert_eq!(stats.reload_ok, 0);
    assert_eq!(stats.reload_failed, 15);
    // Every reload failure is also a typed error in the response ledger.
    assert!(stats.typed_errors >= 15);
    assert_eq!(
        stats.decoded + stats.protocol_errors,
        stats.written + stats.write_failures,
        "response ledger must balance"
    );
    for path in [&garbage, &truncated, &missing] {
        let _ = std::fs::remove_file(path);
    }
}
