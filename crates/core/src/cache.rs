//! The negative-sample cache (the `H` and `T` structures of Algorithm 2).
//!
//! A cache maps an index pair — `(r, t)` for the head cache, `(h, r)` for the
//! tail cache — to at most `N1` candidate entity ids. Entries are created
//! lazily with uniformly random entities the first time a key is touched,
//! which matches the reference implementation's initialisation and gives the
//! "easy samples first" behaviour discussed in the self-paced-learning
//! section of the paper.

use nscaching_kg::EntityId;
use rand::Rng;
use std::collections::HashMap;

/// A cache key: `(relation, tail)` for the head cache `H`, `(head, relation)`
/// for the tail cache `T`.
pub type CacheKey = (u32, u32);

/// A fixed-capacity cache of high-scoring corruption candidates per key.
#[derive(Debug, Clone)]
pub struct NegativeCache {
    capacity: usize,
    num_entities: u32,
    entries: HashMap<CacheKey, Vec<EntityId>>,
    changed_elements: u64,
    /// Reusable sort buffer for change counting in `replace_from_slice`; kept
    /// here so steady-state refreshes allocate nothing.
    sorted_scratch: Vec<EntityId>,
}

impl NegativeCache {
    /// Create a cache of per-key capacity `N1` over `num_entities` entities.
    pub fn new(capacity: usize, num_entities: usize) -> Self {
        assert!(capacity > 0, "cache capacity N1 must be positive");
        assert!(num_entities > 1, "need at least two entities");
        Self {
            capacity,
            num_entities: num_entities as u32,
            entries: HashMap::new(),
            changed_elements: 0,
            sorted_scratch: Vec::new(),
        }
    }

    /// Per-key capacity `N1`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of keys with materialised entries.
    pub fn num_keys(&self) -> usize {
        self.entries.len()
    }

    /// Total number of cached entity slots across all keys.
    pub fn num_cached_entities(&self) -> usize {
        self.entries.values().map(|v| v.len()).sum()
    }

    /// Borrow the candidates for `key`, materialising a random entry if the
    /// key has never been seen.
    pub fn get_or_init<R: Rng + ?Sized>(&mut self, key: CacheKey, rng: &mut R) -> &[EntityId] {
        let capacity = self.capacity;
        let num_entities = self.num_entities;
        self.entries
            .entry(key)
            .or_insert_with(|| {
                (0..capacity)
                    .map(|_| rng.gen_range(0..num_entities))
                    .collect()
            })
            .as_slice()
    }

    /// Peek at the candidates for `key` without materialising anything.
    pub fn peek(&self, key: CacheKey) -> Option<&[EntityId]> {
        self.entries.get(&key).map(|v| v.as_slice())
    }

    /// Replace the entry for `key`, returning how many cached entities
    /// actually changed (the "CE" measure of Figure 8). The replacement is
    /// truncated to the cache capacity.
    pub fn replace(&mut self, key: CacheKey, new_entries: Vec<EntityId>) -> usize {
        self.replace_from_slice(key, &new_entries)
    }

    /// Like [`Self::replace`] but borrows the replacement, reusing the
    /// existing entry's storage. The sampler's refresh path calls this with a
    /// scratch buffer so a steady-state cache update performs no heap
    /// allocation at all.
    pub fn replace_from_slice(&mut self, key: CacheKey, new_entries: &[EntityId]) -> usize {
        let new_entries = &new_entries[..new_entries.len().min(self.capacity)];
        let changed = match self.entries.get_mut(&key) {
            Some(old) => {
                self.sorted_scratch.clear();
                self.sorted_scratch.extend_from_slice(old);
                self.sorted_scratch.sort_unstable();
                let changed = new_entries
                    .iter()
                    .filter(|e| self.sorted_scratch.binary_search(e).is_err())
                    .count();
                old.clear();
                old.extend_from_slice(new_entries);
                changed
            }
            None => {
                self.entries.insert(key, new_entries.to_vec());
                new_entries.len()
            }
        };
        self.changed_elements += changed as u64;
        changed
    }

    /// Total number of changed cache elements since the last call to
    /// [`take_changed_elements`](Self::take_changed_elements).
    pub fn take_changed_elements(&mut self) -> u64 {
        std::mem::take(&mut self.changed_elements)
    }

    /// Changed-element counter without resetting it.
    pub fn changed_elements(&self) -> u64 {
        self.changed_elements
    }

    /// Snapshot of a probed key's cache contents (used by the Table VI /
    /// self-paced-learning experiment).
    pub fn probe(&self, key: CacheKey) -> CacheProbe {
        CacheProbe {
            key,
            entities: self.peek(key).map(|s| s.to_vec()).unwrap_or_default(),
        }
    }

    /// Approximate memory footprint of the cache in bytes (entity slots only),
    /// used by the Table I space comparison.
    pub fn memory_bytes(&self) -> usize {
        self.num_cached_entities() * std::mem::size_of::<EntityId>()
    }

    /// Every materialised entry as `(key, entities)`, **sorted by key** so
    /// the capture is deterministic despite the hash map's arbitrary
    /// iteration order. Entity order within an entry is preserved — sampling
    /// indexes into it, so it is part of the trajectory.
    pub fn export_entries(&self) -> Vec<(CacheKey, Vec<EntityId>)> {
        let mut entries: Vec<(CacheKey, Vec<EntityId>)> =
            self.entries.iter().map(|(k, v)| (*k, v.clone())).collect();
        entries.sort_unstable_by_key(|(k, _)| *k);
        entries
    }

    /// Materialise one entry with externally captured contents (checkpoint
    /// restore). Rejects entries that violate the cache's invariants — an
    /// over-capacity entry or an out-of-vocabulary entity id means the
    /// capture does not belong to this cache's configuration.
    pub fn restore_entry(&mut self, key: CacheKey, entities: Vec<EntityId>) -> Result<(), String> {
        if entities.len() > self.capacity {
            return Err(format!(
                "cache entry for {key:?} holds {} entities, capacity is {}",
                entities.len(),
                self.capacity
            ));
        }
        if let Some(&bad) = entities.iter().find(|&&e| e >= self.num_entities) {
            return Err(format!(
                "cache entry for {key:?} holds entity {bad}, vocabulary has {}",
                self.num_entities
            ));
        }
        self.entries.insert(key, entities);
        Ok(())
    }

    /// Overwrite the pending changed-element counter (checkpoint restore —
    /// the counter is trajectory state until the next `take_changed_elements`
    /// drains it into the epoch statistics).
    pub fn set_changed_elements(&mut self, changed: u64) {
        self.changed_elements = changed;
    }
}

/// A snapshot of one key's cache contents at some training step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheProbe {
    /// The probed key.
    pub key: CacheKey,
    /// The cached entity ids (empty if the key was never materialised).
    pub entities: Vec<EntityId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;

    #[test]
    fn lazily_initialised_entries_have_capacity_entities() {
        let mut cache = NegativeCache::new(8, 100);
        let mut rng = seeded_rng(1);
        assert_eq!(cache.num_keys(), 0);
        let entry = cache.get_or_init((3, 4), &mut rng).to_vec();
        assert_eq!(entry.len(), 8);
        assert!(entry.iter().all(|e| *e < 100));
        assert_eq!(cache.num_keys(), 1);
        // second access returns the same entry
        let again = cache.get_or_init((3, 4), &mut rng).to_vec();
        assert_eq!(entry, again);
    }

    #[test]
    fn replace_counts_changed_elements() {
        let mut cache = NegativeCache::new(4, 50);
        let mut rng = seeded_rng(2);
        let _ = cache.get_or_init((0, 0), &mut rng);
        let old = cache.peek((0, 0)).unwrap().to_vec();
        // keep two old entries, add two new ones that are guaranteed fresh
        let fresh: Vec<u32> = vec![old[0], old[1], 47, 48];
        let changed = cache.replace((0, 0), fresh);
        let expected = [47u32, 48].iter().filter(|e| !old.contains(e)).count();
        assert_eq!(changed, expected);
        assert_eq!(cache.changed_elements(), expected as u64);
        assert_eq!(cache.take_changed_elements(), expected as u64);
        assert_eq!(cache.changed_elements(), 0);
    }

    #[test]
    fn replace_on_missing_key_counts_everything_and_truncates() {
        let mut cache = NegativeCache::new(3, 50);
        let changed = cache.replace((9, 9), vec![1, 2, 3, 4, 5]);
        assert_eq!(changed, 3, "truncated to capacity before counting");
        assert_eq!(cache.peek((9, 9)).unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn probe_returns_empty_for_unknown_keys() {
        let cache = NegativeCache::new(4, 10);
        let p = cache.probe((1, 2));
        assert_eq!(p.key, (1, 2));
        assert!(p.entities.is_empty());
    }

    #[test]
    fn memory_accounting_counts_slots() {
        let mut cache = NegativeCache::new(16, 1000);
        let mut rng = seeded_rng(3);
        for k in 0..10u32 {
            let _ = cache.get_or_init((k, 0), &mut rng);
        }
        assert_eq!(cache.num_cached_entities(), 160);
        assert_eq!(cache.memory_bytes(), 160 * 4);
    }

    #[test]
    #[should_panic(expected = "N1 must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = NegativeCache::new(0, 10);
    }
}
