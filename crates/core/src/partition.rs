//! Frequency-aware, deterministic shard partitions.
//!
//! The parallel trainer routes every positive to a shard by its tail-cache
//! key `(h, r)`. The original assignment hashed the key uniformly
//! ([`shard_of_key`](crate::sampler::shard_of_key)), which balances the
//! number of *keys* per shard but not the number of *positives*: on skewed
//! graphs a few hub heads can concentrate most of the training triples in
//! one shard and leave the other workers idle.
//!
//! [`ShardPartition`] fixes that with the observed key frequencies. Keys are
//! taken in descending weight (ties broken by the key's SplitMix64 hash —
//! the same rendezvous-style mixing the uniform assignment uses — then by
//! the key itself, so the order is total and platform-independent) and each
//! key goes to the currently lightest shard, lowest index on load ties: the
//! classic LPT greedy, whose heaviest shard is bounded by
//! `average + max key weight`. The construction reads nothing but the
//! `(key, weight)` list, so a fixed `(dataset, shards)` pair always yields
//! the same partition — the determinism contract the bit-reproducible
//! trainer needs — and the assignment stays *key-based*, so the shard-
//! disjointness of keyed sampler state is preserved by construction.

use crate::sampler::shard_of_key;
use nscaching_kg::Triple;
use nscaching_math::split_seed;
use std::collections::{BTreeMap, HashMap};

/// A cache key: the `(h, r)` (or `(r, t)`) index pair of the paper's caches.
pub type PartitionKey = (u32, u32);

/// A deterministic, load-balanced `key → shard` map. See the module docs.
#[derive(Debug, Clone)]
pub struct ShardPartition {
    shards: usize,
    assignment: HashMap<PartitionKey, u32>,
    loads: Vec<u64>,
}

impl ShardPartition {
    /// Build the LPT-greedy partition of `counts` (a list of unique keys
    /// with their observed frequencies) over `shards` shards.
    pub fn balanced(counts: &[(PartitionKey, u64)], shards: usize) -> Self {
        let shards = shards.max(1);
        let mut order: Vec<usize> = (0..counts.len()).collect();
        order.sort_by_key(|&i| {
            let ((a, b), w) = counts[i];
            (std::cmp::Reverse(w), split_seed(a as u64, b as u64), (a, b))
        });
        let mut loads = vec![0u64; shards];
        let mut assignment = HashMap::with_capacity(counts.len());
        for &i in &order {
            let (key, w) = counts[i];
            let lightest = (0..shards)
                .min_by_key(|&s| (loads[s], s))
                .expect("at least one shard");
            // Weight-0 keys still occupy a slot so repeated zeros spread out.
            loads[lightest] += w.max(1);
            let previous = assignment.insert(key, lightest as u32);
            debug_assert!(previous.is_none(), "keys must be unique");
        }
        Self {
            shards,
            assignment,
            loads,
        }
    }

    /// Shard count this partition was built for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`, or `None` for keys not in the observed set
    /// (callers fall back to the uniform hash assignment).
    #[inline]
    pub fn shard_of(&self, key: PartitionKey) -> Option<usize> {
        self.assignment.get(&key).map(|&s| s as usize)
    }

    /// Total observed weight assigned to each shard.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }
}

/// Frequency-observed `(h, r) → shard` routing with uniform-hash fallback —
/// the one piece of partition state every sampler shares.
///
/// Samplers call [`observe`](Self::observe) once with the training split,
/// [`prepare`](Self::prepare) from their `prepare_shards` hook, and
/// [`shard_of`](Self::shard_of) from their `shard_of` hook. When frequencies
/// were observed and a partition is built for the current shard count, keys
/// route through the balanced [`ShardPartition`]; otherwise (unobserved keys,
/// hand-constructed samplers, `shards = 1`) they fall back to the uniform
/// [`shard_of_key`] hash. Both paths are pure functions of
/// `(key, shards, observed split)`, preserving the bit-reproducibility
/// contract of the parallel trainer.
#[derive(Debug, Clone, Default)]
pub struct ObservedPartition {
    /// Observed key frequencies, sorted by key; `None` until observed.
    counts: Option<Vec<(PartitionKey, u64)>>,
    /// Balanced routing built from `counts` by [`prepare`](Self::prepare).
    partition: Option<ShardPartition>,
}

impl ObservedPartition {
    /// Record the `(h, r)` key frequencies of `triples` (normally the
    /// training split), sorted by key so later partitions are pure functions
    /// of `(split, shard count)`. Drops any previously built partition.
    pub fn observe(&mut self, triples: &[Triple]) {
        let mut counts: BTreeMap<PartitionKey, u64> = BTreeMap::new();
        for t in triples {
            *counts.entry((t.head, t.relation)).or_insert(0) += 1;
        }
        self.counts = Some(counts.into_iter().collect());
        self.partition = None;
    }

    /// (Re)build the balanced partition for `shards`. Cheap when the shard
    /// count is unchanged: one comparison per epoch.
    pub fn prepare(&mut self, shards: usize) {
        if shards <= 1 {
            self.partition = None;
        } else if self.partition.as_ref().is_none_or(|p| p.shards() != shards) {
            self.partition = self
                .counts
                .as_deref()
                .map(|counts| ShardPartition::balanced(counts, shards));
        }
    }

    /// Route `key` under `shards` shards: balanced partition when one is
    /// built for this shard count, else the uniform hash.
    #[inline]
    pub fn shard_of(&self, key: PartitionKey, shards: usize) -> usize {
        if shards <= 1 {
            return 0;
        }
        if let Some(partition) = &self.partition {
            if partition.shards() == shards {
                if let Some(s) = partition.shard_of(key) {
                    return s;
                }
            }
        }
        shard_of_key(key.0, key.1, shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_counts() -> Vec<(PartitionKey, u64)> {
        // One hub key with 60% of the mass plus a tail of small keys.
        let mut counts = vec![((0u32, 0u32), 600u64)];
        counts.extend((1..41u32).map(|h| ((h, h % 3), 10u64)));
        counts
    }

    #[test]
    fn every_key_is_assigned_in_range() {
        let counts = skewed_counts();
        let p = ShardPartition::balanced(&counts, 4);
        assert_eq!(p.shards(), 4);
        for &(key, _) in &counts {
            let s = p.shard_of(key).expect("observed key must be assigned");
            assert!(s < 4);
        }
        assert_eq!(p.shard_of((999, 999)), None, "unknown keys fall back");
    }

    #[test]
    fn construction_is_deterministic() {
        let counts = skewed_counts();
        let a = ShardPartition::balanced(&counts, 4);
        let b = ShardPartition::balanced(&counts, 4);
        for &(key, _) in &counts {
            assert_eq!(a.shard_of(key), b.shard_of(key));
        }
        assert_eq!(a.loads(), b.loads());
    }

    #[test]
    fn hub_keys_do_not_starve_the_other_shards() {
        // Uniform hashing of the hub key gives one shard ≥600 of 1000; the
        // LPT greedy puts the hub alone on one shard and spreads the tail
        // over the rest, so the heaviest shard holds exactly the hub.
        let counts = skewed_counts();
        let p = ShardPartition::balanced(&counts, 4);
        let max = *p.loads().iter().max().unwrap();
        let min = *p.loads().iter().min().unwrap();
        assert_eq!(max, 600, "the hub is isolated");
        assert!(
            min >= 130,
            "the tail spreads over the remaining shards: {:?}",
            p.loads()
        );
        // The LPT bound: max load ≤ average + max single weight.
        let total: u64 = counts.iter().map(|&(_, w)| w).sum();
        assert!(max <= total / 4 + 600);
    }

    #[test]
    fn single_shard_partition_maps_everything_to_zero() {
        let p = ShardPartition::balanced(&skewed_counts(), 1);
        assert_eq!(p.shard_of((0, 0)), Some(0));
        assert_eq!(p.loads().len(), 1);
    }

    #[test]
    fn observed_routing_is_balanced_when_observed_and_hashed_otherwise() {
        let triples: Vec<Triple> = (0..40u32).map(|h| Triple::new(h, h % 3, h + 50)).collect();
        let mut observed = ObservedPartition::default();
        let unobserved = ObservedPartition::default();
        observed.observe(&triples);
        observed.prepare(4);

        for t in &triples {
            let key = (t.head, t.relation);
            let s = observed.shard_of(key, 4);
            assert!(s < 4);
            assert_eq!(s, observed.shard_of(key, 4), "routing is pure");
            // The unobserved router must agree with the raw uniform hash.
            assert_eq!(unobserved.shard_of(key, 4), shard_of_key(key.0, key.1, 4));
            // Single shard always routes to 0.
            assert_eq!(observed.shard_of(key, 1), 0);
        }
        // Keys outside the observed split fall back to the uniform hash.
        assert_eq!(observed.shard_of((999, 7), 4), shard_of_key(999, 7, 4));

        // Re-preparing for a new shard count rebuilds; shards = 1 drops it.
        observed.prepare(2);
        assert!(triples
            .iter()
            .all(|t| observed.shard_of((t.head, t.relation), 2) < 2));
        observed.prepare(1);
        assert_eq!(observed.shard_of((0, 0), 1), 0);
    }
}
