//! Choosing which side of a positive triple to corrupt.

use nscaching_kg::{BernoulliStats, CorruptionSide, Triple};
use rand::Rng;

/// Policy for choosing between replacing the head or the tail.
///
/// The paper uses the Bernoulli policy of Wang et al. (2014) for the
/// Bernoulli baseline and also to pick between `(h̄, r, t)` and `(h, r, t̄)`
/// inside KBGAN and NSCaching (Section IV-B1).
#[derive(Debug, Clone)]
pub enum CorruptionPolicy {
    /// Flip a fair coin.
    Uniform,
    /// Corrupt the head with probability `tph / (tph + hpt)` for the triple's
    /// relation.
    Bernoulli(BernoulliStats),
}

impl CorruptionPolicy {
    /// Build the Bernoulli policy from training triples.
    pub fn bernoulli_from_train(train: &[Triple], num_relations: usize) -> Self {
        CorruptionPolicy::Bernoulli(BernoulliStats::from_train(train, num_relations))
    }

    /// Decide which side of `positive` to corrupt.
    pub fn choose<R: Rng + ?Sized>(&self, positive: &Triple, rng: &mut R) -> CorruptionSide {
        match self {
            CorruptionPolicy::Uniform => {
                if rng.gen::<bool>() {
                    CorruptionSide::Head
                } else {
                    CorruptionSide::Tail
                }
            }
            CorruptionPolicy::Bernoulli(stats) => {
                stats.corruption_side(positive.relation, rng.gen::<f64>())
            }
        }
    }

    /// Probability of corrupting the head for the triple's relation.
    pub fn head_probability(&self, positive: &Triple) -> f64 {
        match self {
            CorruptionPolicy::Uniform => 0.5,
            CorruptionPolicy::Bernoulli(stats) => stats.head_probability(positive.relation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;

    fn one_to_many_train() -> Vec<Triple> {
        vec![
            Triple::new(0, 0, 1),
            Triple::new(0, 0, 2),
            Triple::new(0, 0, 3),
            Triple::new(0, 0, 4),
        ]
    }

    #[test]
    fn uniform_policy_is_roughly_balanced() {
        let policy = CorruptionPolicy::Uniform;
        let mut rng = seeded_rng(1);
        let pos = Triple::new(0, 0, 1);
        let heads = (0..10_000)
            .filter(|_| policy.choose(&pos, &mut rng) == CorruptionSide::Head)
            .count();
        assert!((heads as f64 / 10_000.0 - 0.5).abs() < 0.03);
        assert_eq!(policy.head_probability(&pos), 0.5);
    }

    #[test]
    fn bernoulli_policy_prefers_the_safer_side() {
        let policy = CorruptionPolicy::bernoulli_from_train(&one_to_many_train(), 1);
        let pos = Triple::new(0, 0, 1);
        // tph = 4, hpt = 1 ⇒ corrupt head with probability 0.8
        assert!((policy.head_probability(&pos) - 0.8).abs() < 1e-12);
        let mut rng = seeded_rng(2);
        let heads = (0..20_000)
            .filter(|_| policy.choose(&pos, &mut rng) == CorruptionSide::Head)
            .count();
        assert!((heads as f64 / 20_000.0 - 0.8).abs() < 0.02);
    }
}
