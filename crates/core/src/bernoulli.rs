//! Bernoulli negative sampling (Wang et al., 2014) — the paper's baseline.

use crate::corruption::CorruptionPolicy;
use crate::sampler::{NegativeSampler, SampledNegative, ShardSampler};
use crate::uniform::UniformSampler;
use nscaching_kg::{KnowledgeGraph, Triple};
use nscaching_models::KgeModel;
use rand::rngs::StdRng;
use std::sync::Arc;

/// Uniform entity replacement, but the corrupted *side* is chosen per
/// relation with probability `tph / (tph + hpt)` so that one-to-many
/// relations corrupt heads and many-to-one relations corrupt tails, reducing
/// false negatives.
#[derive(Debug, Clone)]
pub struct BernoulliSampler {
    inner: UniformSampler,
}

impl BernoulliSampler {
    /// Build from the training split (the statistics are computed here).
    pub fn new(train: &[Triple], num_entities: usize, num_relations: usize) -> Self {
        let policy = CorruptionPolicy::bernoulli_from_train(train, num_relations);
        Self {
            inner: UniformSampler::new(num_entities).with_policy(policy),
        }
    }

    /// Also reject corruptions that are known training triples.
    pub fn with_false_negative_filter(mut self, train: Arc<KnowledgeGraph>) -> Self {
        self.inner = self.inner.with_false_negative_filter(train);
        self
    }
}

impl NegativeSampler for BernoulliSampler {
    fn name(&self) -> &'static str {
        "Bernoulli"
    }

    fn sample(
        &mut self,
        positive: &Triple,
        model: &dyn KgeModel,
        rng: &mut StdRng,
    ) -> SampledNegative {
        self.inner.sample(positive, model, rng)
    }

    fn prepare_shards(&mut self, shards: usize) {
        self.inner.prepare_shards(shards);
    }

    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn shard_workers(&mut self) -> Vec<Box<dyn ShardSampler + '_>> {
        self.inner.shard_workers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_kg::CorruptionSide;
    use nscaching_math::seeded_rng;
    use nscaching_models::{build_model, ModelConfig, ModelKind};

    #[test]
    fn side_choice_follows_the_relation_statistics() {
        // relation 0 is 1-to-many (head 0 has 5 tails), so heads are corrupted
        // with probability 5/6.
        let train: Vec<Triple> = (1..6u32).map(|t| Triple::new(0, 0, t)).collect();
        let mut sampler = BernoulliSampler::new(&train, 10, 1);
        let model = build_model(&ModelConfig::new(ModelKind::TransE).with_dim(4), 10, 1);
        let mut rng = seeded_rng(3);
        let pos = Triple::new(0, 0, 1);
        let n = 20_000;
        let heads = (0..n)
            .filter(|_| sampler.sample(&pos, model.as_ref(), &mut rng).side == CorruptionSide::Head)
            .count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 5.0 / 6.0).abs() < 0.02, "head fraction {frac}");
    }

    #[test]
    fn name_is_bernoulli() {
        let sampler = BernoulliSampler::new(&[Triple::new(0, 0, 1)], 4, 1);
        assert_eq!(sampler.name(), "Bernoulli");
    }

    #[test]
    fn filter_variant_still_samples() {
        let train = vec![Triple::new(0, 0, 1), Triple::new(1, 0, 2)];
        let graph = Arc::new(KnowledgeGraph::from_triples(5, 1, train.clone()).unwrap());
        let mut sampler = BernoulliSampler::new(&train, 5, 1).with_false_negative_filter(graph);
        let model = build_model(&ModelConfig::new(ModelKind::TransE).with_dim(4), 5, 1);
        let mut rng = seeded_rng(4);
        for _ in 0..100 {
            let neg = sampler.sample(&Triple::new(0, 0, 1), model.as_ref(), &mut rng);
            assert!(neg.entity < 5);
        }
    }
}
