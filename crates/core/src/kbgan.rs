//! The KBGAN baseline (Cai & Wang, NAACL 2018).
//!
//! KBGAN draws a small uniformly-random candidate set `Neg`, lets a jointly
//! trained *generator* embedding model put a softmax distribution over the
//! candidates, and samples the negative from that distribution. The
//! discriminator (the target KG embedding model) scores the chosen negative;
//! that score is the generator's reward, and the generator is updated with
//! the REINFORCE estimator using a moving-average baseline for variance
//! reduction — exactly the setup the paper compares NSCaching against.
//!
//! Under sharded training the generator is shared read-only across the
//! shard workers (scoring is `&self`); each worker buffers its REINFORCE
//! gradient contributions and rewards in its own shard slot against the
//! batch-start baseline, and [`NegativeSampler::merge_batch`] folds them back
//! in ascending shard order with one generator optimizer step per mini-batch.

use crate::corruption::CorruptionPolicy;
use crate::partition::ObservedPartition;
use crate::sampler::{NegativeSampler, SampledNegative, ShardSampler};
use crate::state::{
    capture_generator_tables, restore_generator_tables, GeneratorKind, GeneratorState, SamplerState,
};
use nscaching_kg::{CorruptionSide, EntityId, Triple};
use nscaching_math::{sample_distinct_uniform_into, sample_one_weighted, softmax_in_place};
use nscaching_models::{GradientArena, KgeModel};
use nscaching_optim::{build_optimizer, Optimizer, OptimizerConfig};
use rand::rngs::StdRng;

/// The generator's last choice, kept until the discriminator reports a reward.
struct PendingChoice {
    positive: Triple,
    side: CorruptionSide,
    candidates: Vec<EntityId>,
    probs: Vec<f64>,
    chosen: usize,
}

/// One shard's private REINFORCE workspace: the pending draw, buffered
/// gradients/rewards and the recycled sampling buffers.
#[derive(Default)]
struct KbGanShardSlot {
    pending: Option<PendingChoice>,
    /// Gradient contributions accumulated against the batch-start baseline.
    grads: GradientArena,
    /// Rewards observed this batch, in processing order.
    rewards: Vec<f64>,
    /// Scratch for drawing distinct candidate indices without allocating.
    idx_scratch: Vec<usize>,
    /// Buffers recycled between consecutive `PendingChoice`s so the
    /// steady-state sample → feedback cycle reuses its allocations.
    spare_candidates: Vec<EntityId>,
    spare_probs: Vec<f64>,
}

impl KbGanShardSlot {
    /// Return a pending choice's buffers to the spare pool for reuse.
    fn recycle(&mut self, pending: PendingChoice) {
        self.spare_candidates = pending.candidates;
        self.spare_probs = pending.probs;
    }
}

/// KBGAN negative sampler: candidate-set generator trained with REINFORCE.
pub struct KbGanSampler {
    generator: Box<dyn KgeModel>,
    optimizer: Box<dyn Optimizer>,
    candidate_size: usize,
    num_entities: usize,
    policy: CorruptionPolicy,
    baseline: f64,
    baseline_decay: f64,
    feedback_steps: u64,
    /// Per-shard workspaces; slot 0 doubles as the sequential path's state.
    slots: Vec<KbGanShardSlot>,
    /// Recycled gradient arena for `merge_batch` (and the sequential path's
    /// per-positive REINFORCE step, which is otherwise idle while sharded).
    merge_scratch: GradientArena,
    /// Shard routing. KBGAN keeps no keyed state, so *any* deterministic
    /// partition routes it correctly — observing the training key
    /// frequencies lets it reuse the trainer's load-balanced partition
    /// instead of the uniform hash.
    routing: ObservedPartition,
}

impl KbGanSampler {
    /// Create a KBGAN sampler.
    ///
    /// * `generator` — the generator embedding model (the paper uses the
    ///   simplest model, TransE, as the generator);
    /// * `candidate_size` — size of the uniformly-drawn candidate set `Neg`
    ///   (matched to NSCaching's `N1` for fairness, as in the paper);
    /// * `generator_lr` — Adam learning rate for the generator.
    pub fn new(
        generator: Box<dyn KgeModel>,
        candidate_size: usize,
        generator_lr: f64,
        policy: CorruptionPolicy,
    ) -> Self {
        assert!(candidate_size > 0, "candidate set must be non-empty");
        let num_entities = generator.num_entities();
        let mut optimizer = build_optimizer(&OptimizerConfig::adam(generator_lr));
        // Pre-size the generator optimizer's state slabs: REINFORCE steps
        // then never allocate optimizer state mid-epoch.
        optimizer.bind(generator.as_ref());
        Self {
            generator,
            optimizer,
            candidate_size: candidate_size.min(num_entities),
            num_entities,
            policy,
            baseline: 0.0,
            baseline_decay: 0.99,
            feedback_steps: 0,
            slots: vec![KbGanShardSlot::default()],
            merge_scratch: GradientArena::new(),
            routing: ObservedPartition::default(),
        }
    }

    /// Record the `(h, r)` key frequencies of `triples` (normally the
    /// training split) so `prepare_shards` builds the load-balanced
    /// partition the trainer also uses for NSCaching, instead of the uniform
    /// hash routing (see [`ObservedPartition`]).
    pub fn with_observed_keys(mut self, triples: &[Triple]) -> Self {
        self.routing.observe(triples);
        self
    }

    /// The generator's current moving-average reward baseline.
    pub fn baseline(&self) -> f64 {
        self.baseline
    }

    /// Number of REINFORCE updates applied so far.
    pub fn feedback_steps(&self) -> u64 {
        self.feedback_steps
    }

    /// Immutable access to the generator (used in tests and reports).
    pub fn generator(&self) -> &dyn KgeModel {
        self.generator.as_ref()
    }

    /// Draw a candidate set, score it with the generator and sample the
    /// negative — shared by the sequential hook and the shard workers.
    fn sample_in_slot(
        generator: &dyn KgeModel,
        candidate_size: usize,
        num_entities: usize,
        policy: &CorruptionPolicy,
        slot: &mut KbGanShardSlot,
        positive: &Triple,
        rng: &mut StdRng,
    ) -> SampledNegative {
        let side = policy.choose(positive, rng);
        // Uniform candidate set Neg, excluding the positive's own entity so a
        // candidate can never reproduce the positive triple (Eq. (5)). The
        // candidate and probability buffers are recycled from the previous
        // draw, and scoring goes through the batched fast path.
        let excluded = positive.entity_at(side);
        sample_distinct_uniform_into(rng, num_entities, candidate_size, &mut slot.idx_scratch);
        let mut candidates = std::mem::take(&mut slot.spare_candidates);
        candidates.clear();
        candidates.extend(slot.idx_scratch.iter().map(|&e| {
            let e = e as EntityId;
            if e == excluded {
                (e + 1) % num_entities as EntityId
            } else {
                e
            }
        }));
        let mut probs = std::mem::take(&mut slot.spare_probs);
        generator.score_candidates(positive, side, &candidates, &mut probs);
        softmax_in_place(&mut probs);
        let chosen = sample_one_weighted(rng, &probs);
        let entity = candidates[chosen];
        slot.pending = Some(PendingChoice {
            positive: *positive,
            side,
            candidates,
            probs,
            chosen,
        });
        SampledNegative::new(positive, side, entity)
    }

    /// Take the slot's pending choice if it matches the reported draw.
    fn matching_pending(
        slot: &mut KbGanShardSlot,
        positive: &Triple,
        negative: &SampledNegative,
    ) -> Option<PendingChoice> {
        let pending = slot.pending.take()?;
        // Only apply the update if the feedback matches the recorded draw
        // (the trainer always calls sample → feedback in lockstep).
        if pending.positive != *positive
            || pending.side != negative.side
            || pending.candidates[pending.chosen] != negative.entity
        {
            slot.recycle(pending);
            return None;
        }
        Some(pending)
    }

    /// Accumulate `advantage · ∂ log p(chosen)/∂θ` for a recorded choice.
    ///
    /// `∂ log p(chosen) / ∂ score_i = δ_{i = chosen} − p_i`. We *maximise*
    /// advantage · log p(chosen), so the minimising optimizer receives the
    /// negated gradient.
    fn accumulate_reinforce(
        generator: &dyn KgeModel,
        pending: &PendingChoice,
        advantage: f64,
        grads: &mut GradientArena,
    ) {
        for (i, (&entity, &p)) in pending.candidates.iter().zip(&pending.probs).enumerate() {
            let indicator = if i == pending.chosen { 1.0 } else { 0.0 };
            let coeff = -advantage * (indicator - p);
            if coeff != 0.0 {
                let triple = pending.positive.corrupted(pending.side, entity);
                generator.accumulate_score_gradient(&triple, coeff, grads);
            }
        }
    }

    /// Sequential-path REINFORCE: immediate baseline update and one optimizer
    /// step per positive, exactly the original KBGAN schedule.
    fn reinforce_now(&mut self, pending: PendingChoice, reward: f64) {
        let advantage = reward - self.baseline;
        self.baseline = self.baseline_decay * self.baseline + (1.0 - self.baseline_decay) * reward;
        self.feedback_steps += 1;
        if advantage == 0.0 {
            self.slots[0].recycle(pending);
            return;
        }
        // The merge arena is idle on the sequential path; reusing it keeps
        // the per-positive REINFORCE step allocation-free in steady state.
        let mut grads = std::mem::take(&mut self.merge_scratch);
        grads.clear();
        Self::accumulate_reinforce(self.generator.as_ref(), &pending, advantage, &mut grads);
        self.optimizer.step(self.generator.as_mut(), &mut grads);
        self.generator.apply_constraints(grads.touched());
        self.merge_scratch = grads;
        self.slots[0].recycle(pending);
    }
}

/// Worker view over one KBGAN shard: shared read-only generator, private
/// REINFORCE accumulation against the batch-start baseline.
struct KbGanShardWorker<'a> {
    generator: &'a dyn KgeModel,
    policy: &'a CorruptionPolicy,
    candidate_size: usize,
    num_entities: usize,
    /// The moving-average baseline snapshotted when the batch started; all of
    /// the batch's advantages are computed against it so the result does not
    /// depend on cross-shard interleaving.
    baseline: f64,
    slot: &'a mut KbGanShardSlot,
}

impl ShardSampler for KbGanShardWorker<'_> {
    fn sample(
        &mut self,
        positive: &Triple,
        _model: &dyn KgeModel,
        rng: &mut StdRng,
    ) -> SampledNegative {
        KbGanSampler::sample_in_slot(
            self.generator,
            self.candidate_size,
            self.num_entities,
            self.policy,
            self.slot,
            positive,
            rng,
        )
    }

    fn feedback(
        &mut self,
        positive: &Triple,
        negative: &SampledNegative,
        reward: f64,
        _rng: &mut StdRng,
    ) {
        let Some(pending) = KbGanSampler::matching_pending(self.slot, positive, negative) else {
            return;
        };
        self.slot.rewards.push(reward);
        let advantage = reward - self.baseline;
        if advantage != 0.0 {
            KbGanSampler::accumulate_reinforce(
                self.generator,
                &pending,
                advantage,
                &mut self.slot.grads,
            );
        }
        self.slot.recycle(pending);
    }
}

impl NegativeSampler for KbGanSampler {
    fn name(&self) -> &'static str {
        "KBGAN"
    }

    fn sample(
        &mut self,
        positive: &Triple,
        _model: &dyn KgeModel,
        rng: &mut StdRng,
    ) -> SampledNegative {
        Self::sample_in_slot(
            self.generator.as_ref(),
            self.candidate_size,
            self.num_entities,
            &self.policy,
            &mut self.slots[0],
            positive,
            rng,
        )
    }

    fn feedback(
        &mut self,
        positive: &Triple,
        negative: &SampledNegative,
        reward: f64,
        _rng: &mut StdRng,
    ) {
        let Some(pending) = Self::matching_pending(&mut self.slots[0], positive, negative) else {
            return;
        };
        self.reinforce_now(pending, reward);
    }

    fn prepare_shards(&mut self, shards: usize) {
        let shards = shards.max(1);
        self.routing.prepare(shards);
        if self.slots.len() != shards {
            self.slots = (0..shards).map(|_| KbGanShardSlot::default()).collect();
        }
    }

    fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// Load-balanced `(h, r)` routing when key frequencies were observed,
    /// uniform hash otherwise. KBGAN keeps no keyed state, so the partition
    /// only has to be a deterministic pure function of `(positive, shards)`
    /// — which both [`ObservedPartition`] paths are.
    fn shard_of(&self, positive: &Triple, shards: usize) -> usize {
        self.routing
            .shard_of((positive.head, positive.relation), shards)
    }

    fn shard_workers(&mut self) -> Vec<Box<dyn ShardSampler + '_>> {
        let generator = self.generator.as_ref();
        let policy = &self.policy;
        let candidate_size = self.candidate_size;
        let num_entities = self.num_entities;
        let baseline = self.baseline;
        self.slots
            .iter_mut()
            .map(|slot| {
                Box::new(KbGanShardWorker {
                    generator,
                    policy,
                    candidate_size,
                    num_entities,
                    baseline,
                    slot,
                }) as Box<dyn ShardSampler>
            })
            .collect()
    }

    fn merge_batch(&mut self) {
        // Deterministic reduction: rewards update the baseline and gradients
        // merge in ascending shard order, then one optimizer step applies the
        // whole batch's REINFORCE update to the shared generator.
        let mut merged = std::mem::take(&mut self.merge_scratch);
        merged.clear();
        for slot in self.slots.iter_mut() {
            for &reward in &slot.rewards {
                self.baseline =
                    self.baseline_decay * self.baseline + (1.0 - self.baseline_decay) * reward;
                self.feedback_steps += 1;
            }
            slot.rewards.clear();
            merged.merge(&mut slot.grads);
            slot.grads.clear();
        }
        if !merged.is_empty() {
            self.optimizer.step(self.generator.as_mut(), &mut merged);
            self.generator.apply_constraints(merged.touched());
        }
        self.merge_scratch = merged;
    }

    fn extra_parameters(&self) -> usize {
        self.generator.num_parameters()
    }

    fn export_state(&self) -> SamplerState {
        SamplerState::Generator(GeneratorState {
            kind: GeneratorKind::KbGan,
            baseline: self.baseline,
            feedback_steps: self.feedback_steps,
            tables: capture_generator_tables(self.generator.as_ref()),
            optimizer: self.optimizer.export_state(),
        })
    }

    fn import_state(&mut self, state: SamplerState) -> Result<(), String> {
        let state = match state {
            SamplerState::Stateless => return Ok(()),
            SamplerState::Generator(g) if g.kind == GeneratorKind::KbGan => g,
            other => {
                return Err(format!(
                    "KBGAN sampler cannot import {} state",
                    other.kind_name()
                ))
            }
        };
        restore_generator_tables(self.generator.as_mut(), &state.tables)?;
        self.optimizer.import_state(state.optimizer)?;
        // Re-bind so the slabs stay pre-sized even if the capture was taken
        // before the optimizer ever touched some table.
        self.optimizer.bind(self.generator.as_ref());
        self.baseline = state.baseline;
        self.feedback_steps = state.feedback_steps;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;
    use nscaching_models::{build_model, ModelConfig, ModelKind};

    fn generator(n: usize) -> Box<dyn KgeModel> {
        build_model(
            &ModelConfig::new(ModelKind::TransE).with_dim(6).with_seed(3),
            n,
            2,
        )
    }

    fn discriminator(n: usize) -> Box<dyn KgeModel> {
        build_model(
            &ModelConfig::new(ModelKind::TransD).with_dim(6).with_seed(9),
            n,
            2,
        )
    }

    #[test]
    fn sampled_negative_comes_from_the_candidate_set() {
        let mut s = KbGanSampler::new(generator(50), 10, 0.01, CorruptionPolicy::Uniform);
        let d = discriminator(50);
        let mut rng = seeded_rng(1);
        let pos = Triple::new(0, 0, 1);
        let neg = s.sample(&pos, d.as_ref(), &mut rng);
        assert!(neg.entity < 50);
        assert_eq!(s.extra_parameters(), s.generator().num_parameters());
        assert_eq!(s.name(), "KBGAN");
    }

    #[test]
    fn feedback_updates_the_baseline_and_generator() {
        let mut s = KbGanSampler::new(generator(40), 8, 0.05, CorruptionPolicy::Uniform);
        let d = discriminator(40);
        let mut rng = seeded_rng(2);
        let pos = Triple::new(2, 1, 5);
        let before: f64 = {
            let neg = s.sample(&pos, d.as_ref(), &mut rng);
            s.generator().score(&neg.triple)
        };
        let _ = before;
        assert_eq!(s.feedback_steps(), 0);
        for _ in 0..20 {
            let neg = s.sample(&pos, d.as_ref(), &mut rng);
            let reward = d.score(&neg.triple);
            s.feedback(&pos, &neg, reward, &mut rng);
        }
        assert_eq!(s.feedback_steps(), 20);
        assert!(s.baseline().abs() > 0.0, "baseline should move off zero");
    }

    #[test]
    fn reinforce_increases_generator_probability_of_rewarded_entities() {
        // Reward entity 7 only; after many updates the generator's softmax
        // over the full entity set should assign entity 7 more than the
        // uniform 1/20 share on both corruption sides.
        let gen = build_model(
            &ModelConfig::new(ModelKind::DistMult)
                .with_dim(6)
                .with_seed(3),
            20,
            2,
        );
        let mut s = KbGanSampler::new(gen, 20, 0.1, CorruptionPolicy::Uniform);
        let d = discriminator(20);
        let mut rng = seeded_rng(3);
        let pos = Triple::new(0, 0, 1);
        for _ in 0..600 {
            let neg = s.sample(&pos, d.as_ref(), &mut rng);
            let reward = if neg.entity == 7 { 5.0 } else { -5.0 };
            s.feedback(&pos, &neg, reward, &mut rng);
        }
        let probability_of = |side: nscaching_kg::CorruptionSide| {
            let scores = s.generator().score_all(&pos, side);
            let probs = nscaching_math::softmax(&scores);
            probs[7]
        };
        let p_head = probability_of(nscaching_kg::CorruptionSide::Head);
        let p_tail = probability_of(nscaching_kg::CorruptionSide::Tail);
        assert!(
            p_head > 0.05 || p_tail > 0.05,
            "rewarded entity should exceed the uniform share (head {p_head:.3}, tail {p_tail:.3})"
        );
        assert!(
            p_head + p_tail > 0.15,
            "combined preference should be clearly above uniform ({:.3})",
            p_head + p_tail
        );
    }

    #[test]
    fn mismatched_feedback_is_ignored() {
        let mut s = KbGanSampler::new(generator(30), 5, 0.01, CorruptionPolicy::Uniform);
        let d = discriminator(30);
        let mut rng = seeded_rng(4);
        let pos = Triple::new(0, 0, 1);
        let neg = s.sample(&pos, d.as_ref(), &mut rng);
        let wrong = SampledNegative::new(&Triple::new(9, 1, 9), neg.side, neg.entity);
        s.feedback(&Triple::new(9, 1, 9), &wrong, 1.0, &mut rng);
        assert_eq!(s.feedback_steps(), 0);
        // feedback without a pending draw is also a no-op
        s.feedback(&pos, &neg, 1.0, &mut rng);
        assert_eq!(s.feedback_steps(), 0);
    }

    #[test]
    fn sharded_feedback_is_deferred_until_merge() {
        let mut s = KbGanSampler::new(generator(40), 6, 0.05, CorruptionPolicy::Uniform);
        let d = discriminator(40);
        s.prepare_shards(2);
        assert_eq!(s.shard_count(), 2);
        let positives = [Triple::new(0, 0, 1), Triple::new(5, 1, 9)];
        {
            let mut workers = s.shard_workers();
            assert_eq!(workers.len(), 2);
            for (w, pos) in workers.iter_mut().zip(&positives) {
                let mut rng = seeded_rng(5);
                let neg = w.sample(pos, d.as_ref(), &mut rng);
                w.feedback(pos, &neg, d.score(&neg.triple), &mut rng);
            }
        }
        assert_eq!(s.feedback_steps(), 0, "feedback is buffered in the shards");
        s.merge_batch();
        assert_eq!(s.feedback_steps(), 2, "merge folds both shards' rewards");
        assert!(s.baseline().abs() > 0.0);
        // a second merge with no new feedback is a no-op
        s.merge_batch();
        assert_eq!(s.feedback_steps(), 2);
    }

    #[test]
    #[should_panic(expected = "candidate set must be non-empty")]
    fn zero_candidate_size_is_rejected() {
        let _ = KbGanSampler::new(generator(10), 0, 0.01, CorruptionPolicy::Uniform);
    }
}
