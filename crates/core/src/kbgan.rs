//! The KBGAN baseline (Cai & Wang, NAACL 2018).
//!
//! KBGAN draws a small uniformly-random candidate set `Neg`, lets a jointly
//! trained *generator* embedding model put a softmax distribution over the
//! candidates, and samples the negative from that distribution. The
//! discriminator (the target KG embedding model) scores the chosen negative;
//! that score is the generator's reward, and the generator is updated with
//! the REINFORCE estimator using a moving-average baseline for variance
//! reduction — exactly the setup the paper compares NSCaching against.

use crate::corruption::CorruptionPolicy;
use crate::sampler::{NegativeSampler, SampledNegative};
use nscaching_kg::{CorruptionSide, EntityId, Triple};
use nscaching_math::{sample_distinct_uniform_into, sample_one_weighted, softmax_in_place};
use nscaching_models::{GradientBuffer, KgeModel};
use nscaching_optim::{build_optimizer, Optimizer, OptimizerConfig};
use rand::rngs::StdRng;

/// The generator's last choice, kept until the discriminator reports a reward.
struct PendingChoice {
    positive: Triple,
    side: CorruptionSide,
    candidates: Vec<EntityId>,
    probs: Vec<f64>,
    chosen: usize,
}

/// KBGAN negative sampler: candidate-set generator trained with REINFORCE.
pub struct KbGanSampler {
    generator: Box<dyn KgeModel>,
    optimizer: Box<dyn Optimizer>,
    candidate_size: usize,
    num_entities: usize,
    policy: CorruptionPolicy,
    baseline: f64,
    baseline_decay: f64,
    pending: Option<PendingChoice>,
    feedback_steps: u64,
    /// Scratch for drawing distinct candidate indices without allocating.
    idx_scratch: Vec<usize>,
    /// Buffers recycled between consecutive `PendingChoice`s so the
    /// steady-state sample → feedback cycle reuses its allocations.
    spare_candidates: Vec<EntityId>,
    spare_probs: Vec<f64>,
}

impl KbGanSampler {
    /// Create a KBGAN sampler.
    ///
    /// * `generator` — the generator embedding model (the paper uses the
    ///   simplest model, TransE, as the generator);
    /// * `candidate_size` — size of the uniformly-drawn candidate set `Neg`
    ///   (matched to NSCaching's `N1` for fairness, as in the paper);
    /// * `generator_lr` — Adam learning rate for the generator.
    pub fn new(
        generator: Box<dyn KgeModel>,
        candidate_size: usize,
        generator_lr: f64,
        policy: CorruptionPolicy,
    ) -> Self {
        assert!(candidate_size > 0, "candidate set must be non-empty");
        let num_entities = generator.num_entities();
        Self {
            generator,
            optimizer: build_optimizer(&OptimizerConfig::adam(generator_lr)),
            candidate_size: candidate_size.min(num_entities),
            num_entities,
            policy,
            baseline: 0.0,
            baseline_decay: 0.99,
            pending: None,
            feedback_steps: 0,
            idx_scratch: Vec::new(),
            spare_candidates: Vec::new(),
            spare_probs: Vec::new(),
        }
    }

    /// The generator's current moving-average reward baseline.
    pub fn baseline(&self) -> f64 {
        self.baseline
    }

    /// Number of REINFORCE updates applied so far.
    pub fn feedback_steps(&self) -> u64 {
        self.feedback_steps
    }

    /// Immutable access to the generator (used in tests and reports).
    pub fn generator(&self) -> &dyn KgeModel {
        self.generator.as_ref()
    }

    /// Apply the REINFORCE update for a recorded choice.
    fn reinforce(&mut self, pending: PendingChoice, reward: f64) {
        // Advantage with moving-average baseline.
        let advantage = reward - self.baseline;
        self.baseline = self.baseline_decay * self.baseline + (1.0 - self.baseline_decay) * reward;
        self.feedback_steps += 1;
        if advantage == 0.0 {
            self.recycle(pending);
            return;
        }
        // ∂ log p(chosen) / ∂ score_i = δ_{i = chosen} − p_i. We *maximise*
        // advantage · log p(chosen), so we hand the minimising optimizer the
        // negated gradient.
        let mut grads = GradientBuffer::new();
        for (i, (&entity, &p)) in pending.candidates.iter().zip(&pending.probs).enumerate() {
            let indicator = if i == pending.chosen { 1.0 } else { 0.0 };
            let coeff = -advantage * (indicator - p);
            if coeff != 0.0 {
                let triple = pending.positive.corrupted(pending.side, entity);
                self.generator
                    .accumulate_score_gradient(&triple, coeff, &mut grads);
            }
        }
        let touched = self.optimizer.step(self.generator.as_mut(), &grads);
        self.generator.apply_constraints(&touched);
        self.recycle(pending);
    }

    /// Return a pending choice's buffers to the spare pool for reuse.
    fn recycle(&mut self, pending: PendingChoice) {
        self.spare_candidates = pending.candidates;
        self.spare_probs = pending.probs;
    }
}

impl NegativeSampler for KbGanSampler {
    fn name(&self) -> &'static str {
        "KBGAN"
    }

    fn sample(
        &mut self,
        positive: &Triple,
        _model: &dyn KgeModel,
        rng: &mut StdRng,
    ) -> SampledNegative {
        let side = self.policy.choose(positive, rng);
        // Uniform candidate set Neg, excluding the positive's own entity so a
        // candidate can never reproduce the positive triple (Eq. (5)). The
        // candidate and probability buffers are recycled from the previous
        // draw, and scoring goes through the batched fast path.
        let excluded = positive.entity_at(side);
        sample_distinct_uniform_into(
            rng,
            self.num_entities,
            self.candidate_size,
            &mut self.idx_scratch,
        );
        let mut candidates = std::mem::take(&mut self.spare_candidates);
        candidates.clear();
        candidates.extend(self.idx_scratch.iter().map(|&e| {
            let e = e as EntityId;
            if e == excluded {
                (e + 1) % self.num_entities as EntityId
            } else {
                e
            }
        }));
        let mut probs = std::mem::take(&mut self.spare_probs);
        self.generator
            .score_candidates(positive, side, &candidates, &mut probs);
        softmax_in_place(&mut probs);
        let chosen = sample_one_weighted(rng, &probs);
        let entity = candidates[chosen];
        self.pending = Some(PendingChoice {
            positive: *positive,
            side,
            candidates,
            probs,
            chosen,
        });
        SampledNegative::new(positive, side, entity)
    }

    fn feedback(
        &mut self,
        positive: &Triple,
        negative: &SampledNegative,
        reward: f64,
        _rng: &mut StdRng,
    ) {
        let Some(pending) = self.pending.take() else {
            return;
        };
        // Only apply the update if the feedback matches the recorded draw
        // (the trainer always calls sample → feedback in lockstep).
        if pending.positive != *positive
            || pending.side != negative.side
            || pending.candidates[pending.chosen] != negative.entity
        {
            self.recycle(pending);
            return;
        }
        self.reinforce(pending, reward);
    }

    fn extra_parameters(&self) -> usize {
        self.generator.num_parameters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;
    use nscaching_models::{build_model, ModelConfig, ModelKind};

    fn generator(n: usize) -> Box<dyn KgeModel> {
        build_model(
            &ModelConfig::new(ModelKind::TransE).with_dim(6).with_seed(3),
            n,
            2,
        )
    }

    fn discriminator(n: usize) -> Box<dyn KgeModel> {
        build_model(
            &ModelConfig::new(ModelKind::TransD).with_dim(6).with_seed(9),
            n,
            2,
        )
    }

    #[test]
    fn sampled_negative_comes_from_the_candidate_set() {
        let mut s = KbGanSampler::new(generator(50), 10, 0.01, CorruptionPolicy::Uniform);
        let d = discriminator(50);
        let mut rng = seeded_rng(1);
        let pos = Triple::new(0, 0, 1);
        let neg = s.sample(&pos, d.as_ref(), &mut rng);
        assert!(neg.entity < 50);
        assert_eq!(s.extra_parameters(), s.generator().num_parameters());
        assert_eq!(s.name(), "KBGAN");
    }

    #[test]
    fn feedback_updates_the_baseline_and_generator() {
        let mut s = KbGanSampler::new(generator(40), 8, 0.05, CorruptionPolicy::Uniform);
        let d = discriminator(40);
        let mut rng = seeded_rng(2);
        let pos = Triple::new(2, 1, 5);
        let before: f64 = {
            let neg = s.sample(&pos, d.as_ref(), &mut rng);
            s.generator().score(&neg.triple)
        };
        let _ = before;
        assert_eq!(s.feedback_steps(), 0);
        for _ in 0..20 {
            let neg = s.sample(&pos, d.as_ref(), &mut rng);
            let reward = d.score(&neg.triple);
            s.feedback(&pos, &neg, reward, &mut rng);
        }
        assert_eq!(s.feedback_steps(), 20);
        assert!(s.baseline().abs() > 0.0, "baseline should move off zero");
    }

    #[test]
    fn reinforce_increases_generator_probability_of_rewarded_entities() {
        // Reward entity 7 only; after many updates the generator's softmax
        // over the full entity set should assign entity 7 more than the
        // uniform 1/20 share on both corruption sides.
        let gen = build_model(
            &ModelConfig::new(ModelKind::DistMult)
                .with_dim(6)
                .with_seed(3),
            20,
            2,
        );
        let mut s = KbGanSampler::new(gen, 20, 0.1, CorruptionPolicy::Uniform);
        let d = discriminator(20);
        let mut rng = seeded_rng(3);
        let pos = Triple::new(0, 0, 1);
        for _ in 0..600 {
            let neg = s.sample(&pos, d.as_ref(), &mut rng);
            let reward = if neg.entity == 7 { 5.0 } else { -5.0 };
            s.feedback(&pos, &neg, reward, &mut rng);
        }
        let probability_of = |side: nscaching_kg::CorruptionSide| {
            let scores = s.generator().score_all(&pos, side);
            let probs = nscaching_math::softmax(&scores);
            probs[7]
        };
        let p_head = probability_of(nscaching_kg::CorruptionSide::Head);
        let p_tail = probability_of(nscaching_kg::CorruptionSide::Tail);
        assert!(
            p_head > 0.05 || p_tail > 0.05,
            "rewarded entity should exceed the uniform share (head {p_head:.3}, tail {p_tail:.3})"
        );
        assert!(
            p_head + p_tail > 0.15,
            "combined preference should be clearly above uniform ({:.3})",
            p_head + p_tail
        );
    }

    #[test]
    fn mismatched_feedback_is_ignored() {
        let mut s = KbGanSampler::new(generator(30), 5, 0.01, CorruptionPolicy::Uniform);
        let d = discriminator(30);
        let mut rng = seeded_rng(4);
        let pos = Triple::new(0, 0, 1);
        let neg = s.sample(&pos, d.as_ref(), &mut rng);
        let wrong = SampledNegative::new(&Triple::new(9, 1, 9), neg.side, neg.entity);
        s.feedback(&Triple::new(9, 1, 9), &wrong, 1.0, &mut rng);
        assert_eq!(s.feedback_steps(), 0);
        // feedback without a pending draw is also a no-op
        s.feedback(&pos, &neg, 1.0, &mut rng);
        assert_eq!(s.feedback_steps(), 0);
    }

    #[test]
    #[should_panic(expected = "candidate set must be non-empty")]
    fn zero_candidate_size_is_rejected() {
        let _ = KbGanSampler::new(generator(10), 0, 0.01, CorruptionPolicy::Uniform);
    }
}
