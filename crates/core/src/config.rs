//! Sampler configuration and factory.

use crate::bernoulli::BernoulliSampler;
use crate::corruption::CorruptionPolicy;
use crate::igan::IganSampler;
use crate::kbgan::KbGanSampler;
use crate::nscaching::NsCachingSampler;
use crate::sampler::NegativeSampler;
use crate::strategy::{SampleStrategy, UpdateStrategy};
use crate::uniform::UniformSampler;
use nscaching_kg::Dataset;
use nscaching_models::{build_model, ModelConfig, ModelKind};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Hyper-parameters of the NSCaching sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NsCachingConfig {
    /// Cache size `N1` (the paper uses 50 on all datasets).
    pub cache_size: usize,
    /// Random-subset size `N2` used when refreshing the cache (also 50).
    pub random_size: usize,
    /// How negatives are drawn from the cache (step 6 of Algorithm 2).
    pub sample_strategy: SampleStrategy,
    /// How the cache is refreshed (Algorithm 3).
    pub update_strategy: UpdateStrategy,
    /// Lazy-update period `n`: the cache is refreshed only every `n + 1`
    /// epochs. The paper's default is `n = 0` (refresh every epoch).
    pub lazy_update_epochs: usize,
}

impl NsCachingConfig {
    /// The paper's default configuration with explicit `N1`/`N2`.
    pub fn new(cache_size: usize, random_size: usize) -> Self {
        assert!(cache_size > 0, "N1 must be positive");
        assert!(random_size > 0, "N2 must be positive");
        Self {
            cache_size,
            random_size,
            sample_strategy: SampleStrategy::Uniform,
            update_strategy: UpdateStrategy::Importance,
            lazy_update_epochs: 0,
        }
    }

    /// `N1 = N2 = 50`, uniform sampling, IS update — the paper's default.
    pub fn paper_default() -> Self {
        Self::new(50, 50)
    }

    /// Override the sample-from-cache strategy.
    pub fn with_sample_strategy(mut self, strategy: SampleStrategy) -> Self {
        self.sample_strategy = strategy;
        self
    }

    /// Override the cache-update strategy.
    pub fn with_update_strategy(mut self, strategy: UpdateStrategy) -> Self {
        self.update_strategy = strategy;
        self
    }

    /// Set the lazy-update period `n`.
    pub fn with_lazy_update(mut self, epochs: usize) -> Self {
        self.lazy_update_epochs = epochs;
        self
    }
}

impl Default for NsCachingConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Declarative description of which negative sampler to build.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SamplerConfig {
    /// Uniform corruption without cardinality statistics.
    Uniform,
    /// Bernoulli corruption (the paper's baseline).
    Bernoulli,
    /// The paper's NSCaching sampler.
    NsCaching(NsCachingConfig),
    /// The KBGAN baseline.
    KbGan {
        /// Generator scoring function (the paper uses TransE).
        generator: ModelKind,
        /// Generator embedding dimension.
        generator_dim: usize,
        /// Candidate-set size (matched to `N1` in the paper).
        candidate_size: usize,
        /// Generator learning rate.
        generator_lr: f64,
    },
    /// The IGAN-style full-softmax baseline.
    Igan {
        /// Generator scoring function.
        generator: ModelKind,
        /// Generator embedding dimension.
        generator_dim: usize,
        /// Generator learning rate.
        generator_lr: f64,
    },
}

impl SamplerConfig {
    /// Paper-default KBGAN configuration.
    pub fn kbgan_default() -> Self {
        SamplerConfig::KbGan {
            generator: ModelKind::TransE,
            generator_dim: 32,
            candidate_size: 50,
            generator_lr: 0.01,
        }
    }

    /// Paper-style IGAN configuration.
    pub fn igan_default() -> Self {
        SamplerConfig::Igan {
            generator: ModelKind::TransE,
            generator_dim: 32,
            generator_lr: 0.01,
        }
    }

    /// Short display name used in reports and result tables.
    pub fn display_name(&self) -> &'static str {
        match self {
            SamplerConfig::Uniform => "Uniform",
            SamplerConfig::Bernoulli => "Bernoulli",
            SamplerConfig::NsCaching(_) => "NSCaching",
            SamplerConfig::KbGan { .. } => "KBGAN",
            SamplerConfig::Igan { .. } => "IGAN",
        }
    }
}

/// Build a sampler for the given dataset.
///
/// The Bernoulli corruption-side statistics and the false-negative filter are
/// derived from the dataset's training split, mirroring the reference
/// implementation; `seed` controls the initialisation of any generator model.
pub fn build_sampler(
    config: &SamplerConfig,
    dataset: &Dataset,
    seed: u64,
) -> Box<dyn NegativeSampler> {
    let num_entities = dataset.num_entities();
    let num_relations = dataset.num_relations();
    let policy = CorruptionPolicy::bernoulli_from_train(&dataset.train, num_relations);
    match config {
        SamplerConfig::Uniform => Box::new(
            UniformSampler::new(num_entities)
                .with_false_negative_filter(Arc::new(dataset.train_graph())),
        ),
        SamplerConfig::Bernoulli => Box::new(
            BernoulliSampler::new(&dataset.train, num_entities, num_relations)
                .with_false_negative_filter(Arc::new(dataset.train_graph())),
        ),
        SamplerConfig::NsCaching(ns) => Box::new(
            // Observing the training key frequencies lets prepare_shards
            // build a load-balanced shard partition for parallel training.
            NsCachingSampler::new(*ns, num_entities, policy).with_observed_keys(&dataset.train),
        ),
        SamplerConfig::KbGan {
            generator,
            generator_dim,
            candidate_size,
            generator_lr,
        } => {
            let gen_model = build_model(
                &ModelConfig::new(*generator)
                    .with_dim(*generator_dim)
                    .with_seed(seed),
                num_entities,
                num_relations,
            );
            Box::new(
                // The generator is keyless, so the observed keys only steer
                // parallel shard routing onto the balanced partition.
                KbGanSampler::new(gen_model, *candidate_size, *generator_lr, policy)
                    .with_observed_keys(&dataset.train),
            )
        }
        SamplerConfig::Igan {
            generator,
            generator_dim,
            generator_lr,
        } => {
            let gen_model = build_model(
                &ModelConfig::new(*generator)
                    .with_dim(*generator_dim)
                    .with_seed(seed),
                num_entities,
                num_relations,
            );
            Box::new(
                IganSampler::new(gen_model, *generator_lr, policy)
                    .with_observed_keys(&dataset.train),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_datagen::GeneratorConfig;
    use nscaching_math::seeded_rng;

    fn dataset() -> Dataset {
        let mut c = GeneratorConfig::small("factory");
        c.num_entities = 120;
        c.num_train = 800;
        c.num_valid = 50;
        c.num_test = 50;
        nscaching_datagen::generate(&c).unwrap()
    }

    #[test]
    fn paper_default_matches_section_iv() {
        let c = NsCachingConfig::paper_default();
        assert_eq!(c.cache_size, 50);
        assert_eq!(c.random_size, 50);
        assert_eq!(c.sample_strategy, SampleStrategy::Uniform);
        assert_eq!(c.update_strategy, UpdateStrategy::Importance);
        assert_eq!(c.lazy_update_epochs, 0);
        assert_eq!(NsCachingConfig::default(), c);
    }

    #[test]
    #[should_panic(expected = "N1 must be positive")]
    fn zero_cache_size_is_rejected() {
        let _ = NsCachingConfig::new(0, 10);
    }

    #[test]
    fn builders_set_the_strategies() {
        let c = NsCachingConfig::new(10, 20)
            .with_sample_strategy(SampleStrategy::Top)
            .with_update_strategy(UpdateStrategy::Top)
            .with_lazy_update(3);
        assert_eq!(c.sample_strategy, SampleStrategy::Top);
        assert_eq!(c.update_strategy, UpdateStrategy::Top);
        assert_eq!(c.lazy_update_epochs, 3);
    }

    #[test]
    fn factory_builds_every_sampler_kind() {
        let ds = dataset();
        let model = build_model(
            &ModelConfig::new(ModelKind::TransE).with_dim(8),
            ds.num_entities(),
            ds.num_relations(),
        );
        let mut rng = seeded_rng(0);
        let configs = vec![
            SamplerConfig::Uniform,
            SamplerConfig::Bernoulli,
            SamplerConfig::NsCaching(NsCachingConfig::new(10, 10)),
            SamplerConfig::kbgan_default(),
            SamplerConfig::igan_default(),
        ];
        for config in configs {
            let mut sampler = build_sampler(&config, &ds, 1);
            assert_eq!(sampler.name(), config.display_name());
            let pos = ds.train[0];
            let neg = sampler.sample(&pos, model.as_ref(), &mut rng);
            assert!(neg.entity < ds.num_entities() as u32);
            assert_ne!(neg.triple, pos);
            // generator-based samplers must report extra parameters
            match config {
                SamplerConfig::KbGan { .. } | SamplerConfig::Igan { .. } => {
                    assert!(sampler.extra_parameters() > 0)
                }
                _ => assert_eq!(sampler.extra_parameters(), 0),
            }
        }
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(SamplerConfig::Uniform.display_name(), "Uniform");
        assert_eq!(SamplerConfig::Bernoulli.display_name(), "Bernoulli");
        assert_eq!(
            SamplerConfig::NsCaching(NsCachingConfig::paper_default()).display_name(),
            "NSCaching"
        );
        assert_eq!(SamplerConfig::kbgan_default().display_name(), "KBGAN");
        assert_eq!(SamplerConfig::igan_default().display_name(), "IGAN");
    }
}
