//! An IGAN-style baseline (Wang et al., AAAI 2018).
//!
//! IGAN's generator models a probability distribution over the *entire*
//! entity set for each positive triple, so both sampling and the REINFORCE
//! update cost `O(|E|·d)` per triple — the defining property the paper's
//! Table I contrasts with NSCaching's `O((N1+N2)·d)`. The original code was
//! never released; this re-implementation follows the description in the
//! NSCaching and IGAN papers (two-layer generator replaced by an embedding
//! generator, which preserves the complexity and training behaviour that the
//! comparison relies on).
//!
//! Sharded training mirrors KBGAN: the generator is scored read-only by the
//! shard workers, REINFORCE contributions accumulate per shard against the
//! batch-start baseline, and `merge_batch` applies one deterministic
//! generator step per mini-batch.

use crate::corruption::CorruptionPolicy;
use crate::partition::ObservedPartition;
use crate::sampler::{NegativeSampler, SampledNegative, ShardSampler};
use crate::state::{
    capture_generator_tables, restore_generator_tables, GeneratorKind, GeneratorState, SamplerState,
};
use nscaching_kg::{CorruptionSide, Triple};
use nscaching_math::{sample_one_weighted, softmax_in_place};
use nscaching_models::{GradientArena, KgeModel};
use nscaching_optim::{build_optimizer, Optimizer, OptimizerConfig};
use rand::rngs::StdRng;

struct PendingChoice {
    positive: Triple,
    side: CorruptionSide,
    probs: Vec<f64>,
    chosen: usize,
}

/// One shard's private workspace: pending draw, buffered REINFORCE feedback
/// and the recycled `O(|E|)` probability buffer.
#[derive(Default)]
struct IganShardSlot {
    pending: Option<PendingChoice>,
    grads: GradientArena,
    rewards: Vec<f64>,
    /// Probability buffer recycled between consecutive `PendingChoice`s so
    /// the O(|E|) softmax reuses its allocation across positives.
    spare_probs: Vec<f64>,
}

/// IGAN-style sampler: full-softmax generator over all entities.
pub struct IganSampler {
    generator: Box<dyn KgeModel>,
    optimizer: Box<dyn Optimizer>,
    policy: CorruptionPolicy,
    baseline: f64,
    baseline_decay: f64,
    feedback_steps: u64,
    /// Cap on how many entities receive a REINFORCE gradient per step (the
    /// chosen entity always does). `usize::MAX` means the faithful full
    /// update; smaller values trade fidelity for speed in smoke tests.
    gradient_fanout: usize,
    /// Per-shard workspaces; slot 0 doubles as the sequential path's state.
    slots: Vec<IganShardSlot>,
    /// Recycled gradient arena for `merge_batch` (and the sequential path's
    /// per-positive REINFORCE step).
    merge_scratch: GradientArena,
    /// Shard routing: balanced when key frequencies were observed, uniform
    /// hash otherwise (IGAN is keyless; see the KBGAN field of the same
    /// name).
    routing: ObservedPartition,
}

impl IganSampler {
    /// Create an IGAN-style sampler with a full `O(|E|)` REINFORCE update.
    pub fn new(generator: Box<dyn KgeModel>, generator_lr: f64, policy: CorruptionPolicy) -> Self {
        let mut optimizer = build_optimizer(&OptimizerConfig::adam(generator_lr));
        optimizer.bind(generator.as_ref());
        Self {
            generator,
            optimizer,
            policy,
            baseline: 0.0,
            baseline_decay: 0.99,
            feedback_steps: 0,
            gradient_fanout: usize::MAX,
            slots: vec![IganShardSlot::default()],
            merge_scratch: GradientArena::new(),
            routing: ObservedPartition::default(),
        }
    }

    /// Record the `(h, r)` key frequencies of `triples` so `prepare_shards`
    /// builds the load-balanced partition instead of routing shards by the
    /// uniform hash (see [`ObservedPartition`]).
    pub fn with_observed_keys(mut self, triples: &[Triple]) -> Self {
        self.routing.observe(triples);
        self
    }

    /// Limit the REINFORCE update to the `fanout` highest-probability
    /// entities (plus the chosen one). Only used to keep smoke tests fast.
    pub fn with_gradient_fanout(mut self, fanout: usize) -> Self {
        self.gradient_fanout = fanout.max(1);
        self
    }

    /// Number of REINFORCE updates applied so far.
    pub fn feedback_steps(&self) -> u64 {
        self.feedback_steps
    }

    /// Immutable access to the generator.
    pub fn generator(&self) -> &dyn KgeModel {
        self.generator.as_ref()
    }

    /// Draw from the full-softmax generator distribution — shared by the
    /// sequential hook and the shard workers.
    fn sample_in_slot(
        generator: &dyn KgeModel,
        policy: &CorruptionPolicy,
        slot: &mut IganShardSlot,
        positive: &Triple,
        rng: &mut StdRng,
    ) -> SampledNegative {
        let side = policy.choose(positive, rng);
        // Full distribution over every entity — the O(|E|·d) step, streamed
        // through the batched fast path into a recycled buffer. The
        // positive's own entity is masked out, matching the negative set
        // definition of Eq. (5).
        let mut probs = std::mem::take(&mut slot.spare_probs);
        generator.score_all_into(positive, side, &mut probs);
        probs[positive.entity_at(side) as usize] = f64::NEG_INFINITY;
        softmax_in_place(&mut probs);
        let chosen = sample_one_weighted(rng, &probs);
        slot.pending = Some(PendingChoice {
            positive: *positive,
            side,
            probs,
            chosen,
        });
        SampledNegative::new(positive, side, chosen as u32)
    }

    /// Take the slot's pending choice if it matches the reported draw.
    fn matching_pending(
        slot: &mut IganShardSlot,
        positive: &Triple,
        negative: &SampledNegative,
    ) -> Option<PendingChoice> {
        let pending = slot.pending.take()?;
        if pending.positive != *positive
            || pending.side != negative.side
            || pending.chosen as u32 != negative.entity
        {
            slot.spare_probs = pending.probs;
            return None;
        }
        Some(pending)
    }

    /// Accumulate the (optionally fanout-limited) REINFORCE gradient of a
    /// recorded choice into `grads`.
    fn accumulate_reinforce(
        generator: &dyn KgeModel,
        gradient_fanout: usize,
        pending: &PendingChoice,
        advantage: f64,
        grads: &mut GradientArena,
    ) {
        let mut order: Vec<usize> = (0..pending.probs.len()).collect();
        if gradient_fanout < pending.probs.len() {
            order.sort_by(|&a, &b| pending.probs[b].partial_cmp(&pending.probs[a]).unwrap());
            order.truncate(gradient_fanout);
            if !order.contains(&pending.chosen) {
                order.push(pending.chosen);
            }
        }
        for &i in &order {
            let indicator = if i == pending.chosen { 1.0 } else { 0.0 };
            let coeff = -advantage * (indicator - pending.probs[i]);
            if coeff != 0.0 {
                let triple = pending.positive.corrupted(pending.side, i as u32);
                generator.accumulate_score_gradient(&triple, coeff, grads);
            }
        }
    }

    /// Sequential-path REINFORCE: immediate baseline update and one optimizer
    /// step per positive, the original IGAN schedule.
    fn reinforce_now(&mut self, pending: PendingChoice, reward: f64) {
        let advantage = reward - self.baseline;
        self.baseline = self.baseline_decay * self.baseline + (1.0 - self.baseline_decay) * reward;
        self.feedback_steps += 1;
        if advantage == 0.0 {
            self.slots[0].spare_probs = pending.probs;
            return;
        }
        // The merge arena is idle on the sequential path; reuse it so the
        // O(|E|)-row REINFORCE step allocates nothing in steady state.
        let mut grads = std::mem::take(&mut self.merge_scratch);
        grads.clear();
        Self::accumulate_reinforce(
            self.generator.as_ref(),
            self.gradient_fanout,
            &pending,
            advantage,
            &mut grads,
        );
        self.optimizer.step(self.generator.as_mut(), &mut grads);
        self.generator.apply_constraints(grads.touched());
        self.merge_scratch = grads;
        self.slots[0].spare_probs = pending.probs;
    }
}

/// Worker view over one IGAN shard.
struct IganShardWorker<'a> {
    generator: &'a dyn KgeModel,
    policy: &'a CorruptionPolicy,
    gradient_fanout: usize,
    /// Baseline snapshotted at batch start (see the KBGAN worker).
    baseline: f64,
    slot: &'a mut IganShardSlot,
}

impl ShardSampler for IganShardWorker<'_> {
    fn sample(
        &mut self,
        positive: &Triple,
        _model: &dyn KgeModel,
        rng: &mut StdRng,
    ) -> SampledNegative {
        IganSampler::sample_in_slot(self.generator, self.policy, self.slot, positive, rng)
    }

    fn feedback(
        &mut self,
        positive: &Triple,
        negative: &SampledNegative,
        reward: f64,
        _rng: &mut StdRng,
    ) {
        let Some(pending) = IganSampler::matching_pending(self.slot, positive, negative) else {
            return;
        };
        self.slot.rewards.push(reward);
        let advantage = reward - self.baseline;
        if advantage != 0.0 {
            IganSampler::accumulate_reinforce(
                self.generator,
                self.gradient_fanout,
                &pending,
                advantage,
                &mut self.slot.grads,
            );
        }
        self.slot.spare_probs = pending.probs;
    }
}

impl NegativeSampler for IganSampler {
    fn name(&self) -> &'static str {
        "IGAN"
    }

    fn sample(
        &mut self,
        positive: &Triple,
        _model: &dyn KgeModel,
        rng: &mut StdRng,
    ) -> SampledNegative {
        Self::sample_in_slot(
            self.generator.as_ref(),
            &self.policy,
            &mut self.slots[0],
            positive,
            rng,
        )
    }

    fn feedback(
        &mut self,
        positive: &Triple,
        negative: &SampledNegative,
        reward: f64,
        _rng: &mut StdRng,
    ) {
        let Some(pending) = Self::matching_pending(&mut self.slots[0], positive, negative) else {
            return;
        };
        self.reinforce_now(pending, reward);
    }

    fn prepare_shards(&mut self, shards: usize) {
        let shards = shards.max(1);
        self.routing.prepare(shards);
        if self.slots.len() != shards {
            self.slots = (0..shards).map(|_| IganShardSlot::default()).collect();
        }
    }

    fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// Balanced `(h, r)` routing when key frequencies were observed, uniform
    /// hash otherwise (IGAN is keyless; see the KBGAN override).
    fn shard_of(&self, positive: &Triple, shards: usize) -> usize {
        self.routing
            .shard_of((positive.head, positive.relation), shards)
    }

    fn shard_workers(&mut self) -> Vec<Box<dyn ShardSampler + '_>> {
        let generator = self.generator.as_ref();
        let policy = &self.policy;
        let gradient_fanout = self.gradient_fanout;
        let baseline = self.baseline;
        self.slots
            .iter_mut()
            .map(|slot| {
                Box::new(IganShardWorker {
                    generator,
                    policy,
                    gradient_fanout,
                    baseline,
                    slot,
                }) as Box<dyn ShardSampler>
            })
            .collect()
    }

    fn merge_batch(&mut self) {
        let mut merged = std::mem::take(&mut self.merge_scratch);
        merged.clear();
        for slot in self.slots.iter_mut() {
            for &reward in &slot.rewards {
                self.baseline =
                    self.baseline_decay * self.baseline + (1.0 - self.baseline_decay) * reward;
                self.feedback_steps += 1;
            }
            slot.rewards.clear();
            merged.merge(&mut slot.grads);
            slot.grads.clear();
        }
        if !merged.is_empty() {
            self.optimizer.step(self.generator.as_mut(), &mut merged);
            self.generator.apply_constraints(merged.touched());
        }
        self.merge_scratch = merged;
    }

    fn extra_parameters(&self) -> usize {
        self.generator.num_parameters()
    }

    fn export_state(&self) -> SamplerState {
        SamplerState::Generator(GeneratorState {
            kind: GeneratorKind::Igan,
            baseline: self.baseline,
            feedback_steps: self.feedback_steps,
            tables: capture_generator_tables(self.generator.as_ref()),
            optimizer: self.optimizer.export_state(),
        })
    }

    fn import_state(&mut self, state: SamplerState) -> Result<(), String> {
        let state = match state {
            SamplerState::Stateless => return Ok(()),
            SamplerState::Generator(g) if g.kind == GeneratorKind::Igan => g,
            other => {
                return Err(format!(
                    "IGAN sampler cannot import {} state",
                    other.kind_name()
                ))
            }
        };
        restore_generator_tables(self.generator.as_mut(), &state.tables)?;
        self.optimizer.import_state(state.optimizer)?;
        // Re-bind so the slabs stay pre-sized even if the capture was taken
        // before the optimizer ever touched some table.
        self.optimizer.bind(self.generator.as_ref());
        self.baseline = state.baseline;
        self.feedback_steps = state.feedback_steps;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;
    use nscaching_models::{build_model, ModelConfig, ModelKind};

    fn generator(n: usize) -> Box<dyn KgeModel> {
        build_model(
            &ModelConfig::new(ModelKind::DistMult)
                .with_dim(4)
                .with_seed(2),
            n,
            2,
        )
    }

    fn discriminator(n: usize) -> Box<dyn KgeModel> {
        build_model(
            &ModelConfig::new(ModelKind::ComplEx)
                .with_dim(4)
                .with_seed(8),
            n,
            2,
        )
    }

    #[test]
    fn sampling_covers_the_whole_entity_set() {
        let mut s = IganSampler::new(generator(25), 0.01, CorruptionPolicy::Uniform);
        let d = discriminator(25);
        let mut rng = seeded_rng(1);
        let pos = Triple::new(0, 0, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..400 {
            let neg = s.sample(&pos, d.as_ref(), &mut rng);
            assert!(neg.entity < 25);
            seen.insert(neg.entity);
        }
        assert!(
            seen.len() > 10,
            "generator starts near-uniform, saw {}",
            seen.len()
        );
    }

    #[test]
    fn feedback_counts_and_baseline_move() {
        let mut s = IganSampler::new(generator(15), 0.05, CorruptionPolicy::Uniform);
        let d = discriminator(15);
        let mut rng = seeded_rng(2);
        let pos = Triple::new(1, 1, 2);
        for _ in 0..10 {
            let neg = s.sample(&pos, d.as_ref(), &mut rng);
            s.feedback(&pos, &neg, d.score(&neg.triple), &mut rng);
        }
        assert_eq!(s.feedback_steps(), 10);
        assert_eq!(s.name(), "IGAN");
        assert!(s.extra_parameters() > 0);
    }

    #[test]
    fn fanout_limit_still_learns_to_prefer_rewarded_entities() {
        let mut s =
            IganSampler::new(generator(12), 0.1, CorruptionPolicy::Uniform).with_gradient_fanout(4);
        let d = discriminator(12);
        let mut rng = seeded_rng(3);
        let pos = Triple::new(0, 0, 1);
        for _ in 0..300 {
            let neg = s.sample(&pos, d.as_ref(), &mut rng);
            let reward = if neg.entity == 5 { 4.0 } else { -4.0 };
            s.feedback(&pos, &neg, reward, &mut rng);
        }
        let g = s.generator();
        let favoured = g.score(&pos.with_head(5)) + g.score(&pos.with_tail(5));
        let other = g.score(&pos.with_head(9)) + g.score(&pos.with_tail(9));
        assert!(favoured > other, "{favoured} !> {other}");
    }

    #[test]
    fn stale_feedback_is_ignored() {
        let mut s = IganSampler::new(generator(10), 0.01, CorruptionPolicy::Uniform);
        let d = discriminator(10);
        let mut rng = seeded_rng(4);
        let pos = Triple::new(0, 0, 1);
        let neg = s.sample(&pos, d.as_ref(), &mut rng);
        let other_pos = Triple::new(2, 1, 3);
        s.feedback(&other_pos, &neg, 1.0, &mut rng);
        assert_eq!(s.feedback_steps(), 0);
    }

    #[test]
    fn sharded_feedback_merges_deterministically() {
        let run = || {
            let mut s = IganSampler::new(generator(20), 0.05, CorruptionPolicy::Uniform);
            let d = discriminator(20);
            s.prepare_shards(2);
            let positives = [Triple::new(0, 0, 1), Triple::new(3, 1, 7)];
            {
                let mut workers = s.shard_workers();
                for (w, pos) in workers.iter_mut().zip(&positives) {
                    let mut rng = seeded_rng(6);
                    let neg = w.sample(pos, d.as_ref(), &mut rng);
                    w.feedback(pos, &neg, d.score(&neg.triple), &mut rng);
                }
            }
            s.merge_batch();
            (
                s.feedback_steps(),
                s.generator().score(&Triple::new(0, 0, 1)),
            )
        };
        let (steps_a, score_a) = run();
        let (steps_b, score_b) = run();
        assert_eq!(steps_a, 2);
        assert_eq!(steps_a, steps_b);
        assert_eq!(score_a, score_b, "merge must be bit-reproducible");
    }
}
