//! Uniform negative sampling (the original TransE scheme).

use crate::corruption::CorruptionPolicy;
use crate::sampler::{NegativeSampler, SampledNegative, ShardSampler};
use nscaching_kg::{KnowledgeGraph, Triple};
use nscaching_models::KgeModel;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// Replace the head or tail with an entity drawn uniformly from `E`.
///
/// Optionally rejects corruptions that are known training triples (false
/// negatives); the original TransE sampler does not, but the published
/// KBGAN/NSCaching implementations do, so rejection is on by default and can
/// be disabled for a faithful "raw" baseline.
#[derive(Debug, Clone)]
pub struct UniformSampler {
    num_entities: u32,
    policy: CorruptionPolicy,
    train: Option<Arc<KnowledgeGraph>>,
    max_rejects: usize,
    /// Shard count recorded by `prepare_shards`. The sampler keeps no keyed
    /// state, so shards only read the shared configuration.
    prepared_shards: usize,
}

impl UniformSampler {
    /// Create a sampler that corrupts a uniformly random side and never
    /// checks for false negatives.
    pub fn new(num_entities: usize) -> Self {
        Self {
            num_entities: num_entities as u32,
            policy: CorruptionPolicy::Uniform,
            train: None,
            max_rejects: 64,
            prepared_shards: 1,
        }
    }

    /// Use the given corruption-side policy.
    pub fn with_policy(mut self, policy: CorruptionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Reject corruptions that appear in the training graph.
    pub fn with_false_negative_filter(mut self, train: Arc<KnowledgeGraph>) -> Self {
        self.train = Some(train);
        self
    }

    fn draw(&self, positive: &Triple, rng: &mut StdRng) -> SampledNegative {
        let side = self.policy.choose(positive, rng);
        for _ in 0..self.max_rejects {
            let entity = rng.gen_range(0..self.num_entities);
            if entity == positive.entity_at(side) {
                continue;
            }
            let candidate = SampledNegative::new(positive, side, entity);
            match &self.train {
                Some(graph) if graph.contains(&candidate.triple) => continue,
                _ => return candidate,
            }
        }
        // Give up on filtering after `max_rejects` attempts — identical to the
        // reference implementations, which accept a rare false negative rather
        // than loop forever on very dense (h, r) pairs.
        let entity = rng.gen_range(0..self.num_entities);
        SampledNegative::new(positive, side, entity)
    }
}

/// Worker view over a stateless draw-only sampler: every shard reads the same
/// shared configuration, so a worker is just an immutable borrow.
struct UniformShardWorker<'a> {
    inner: &'a UniformSampler,
}

impl ShardSampler for UniformShardWorker<'_> {
    fn sample(
        &mut self,
        positive: &Triple,
        _model: &dyn KgeModel,
        rng: &mut StdRng,
    ) -> SampledNegative {
        self.inner.draw(positive, rng)
    }
}

impl NegativeSampler for UniformSampler {
    fn name(&self) -> &'static str {
        "Uniform"
    }

    fn sample(
        &mut self,
        positive: &Triple,
        _model: &dyn KgeModel,
        rng: &mut StdRng,
    ) -> SampledNegative {
        self.draw(positive, rng)
    }

    fn prepare_shards(&mut self, shards: usize) {
        self.prepared_shards = shards.max(1);
    }

    fn shard_count(&self) -> usize {
        self.prepared_shards
    }

    fn shard_workers(&mut self) -> Vec<Box<dyn ShardSampler + '_>> {
        let inner = &*self;
        (0..self.prepared_shards)
            .map(|_| Box::new(UniformShardWorker { inner }) as Box<dyn ShardSampler>)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;
    use nscaching_models::{build_model, ModelConfig, ModelKind};

    fn model(n: usize) -> Box<dyn KgeModel> {
        build_model(&ModelConfig::new(ModelKind::TransE).with_dim(4), n, 2)
    }

    #[test]
    fn sampled_entities_cover_the_vocabulary() {
        let mut sampler = UniformSampler::new(20);
        let model = model(20);
        let mut rng = seeded_rng(1);
        let pos = Triple::new(0, 0, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            let neg = sampler.sample(&pos, model.as_ref(), &mut rng);
            assert!(neg.entity < 20);
            assert_ne!(neg.triple, pos);
            seen.insert(neg.entity);
        }
        assert!(seen.len() > 15, "only {} distinct entities", seen.len());
    }

    #[test]
    fn filter_rejects_known_training_triples() {
        // training graph where (0,0,x) exists for every x except 5
        let mut graph = KnowledgeGraph::new(6, 1);
        for t in 0..6u32 {
            if t != 5 {
                graph.insert(Triple::new(0, 0, t)).unwrap();
            }
        }
        let graph = Arc::new(graph);
        let mut sampler = UniformSampler::new(6)
            .with_false_negative_filter(graph)
            .with_policy(CorruptionPolicy::Uniform);
        let model = model(6);
        let mut rng = seeded_rng(2);
        let pos = Triple::new(0, 0, 1);
        let mut tail_corruptions = 0;
        for _ in 0..500 {
            let neg = sampler.sample(&pos, model.as_ref(), &mut rng);
            if neg.side == nscaching_kg::CorruptionSide::Tail {
                tail_corruptions += 1;
                assert_eq!(neg.entity, 5, "only entity 5 is not a false negative");
            }
        }
        assert!(tail_corruptions > 100);
    }

    #[test]
    fn sampler_reports_its_name_and_no_extra_parameters() {
        let sampler = UniformSampler::new(5);
        assert_eq!(sampler.name(), "Uniform");
        assert_eq!(sampler.extra_parameters(), 0);
    }
}
