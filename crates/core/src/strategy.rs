//! The "exploration vs exploitation" strategy knobs of Sections III-B and
//! IV-C: how to *sample from* the cache and how to *update* the cache.

use serde::{Deserialize, Serialize};

/// How a negative entity is drawn from the cache (Algorithm 2, step 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SampleStrategy {
    /// Uniformly random member of the cache — the paper's choice (best
    /// exploration/exploitation balance, Figure 6(a)).
    Uniform,
    /// Importance sampling ∝ `exp(score)` over cache members ("IS sampling").
    Importance,
    /// Always the highest-scoring cache member ("top sampling").
    Top,
}

impl SampleStrategy {
    /// All strategies, in the order used by the Figure 6/7 ablation.
    pub const ALL: [SampleStrategy; 3] = [
        SampleStrategy::Uniform,
        SampleStrategy::Importance,
        SampleStrategy::Top,
    ];

    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SampleStrategy::Uniform => "uniform",
            SampleStrategy::Importance => "IS",
            SampleStrategy::Top => "top",
        }
    }
}

/// How the cache is refreshed from `cache ∪ R_m` (Algorithm 3, step 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdateStrategy {
    /// Importance sampling without replacement ∝ `exp(score)` — the paper's
    /// choice (Equation (6)).
    Importance,
    /// Keep the `N1` highest-scoring candidates deterministically.
    Top,
    /// Keep `N1` uniformly random candidates (pure exploration; used only as
    /// an ablation lower bound).
    Uniform,
}

impl UpdateStrategy {
    /// All strategies, in the order used by the Figure 6/8 ablation.
    pub const ALL: [UpdateStrategy; 3] = [
        UpdateStrategy::Importance,
        UpdateStrategy::Top,
        UpdateStrategy::Uniform,
    ];

    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            UpdateStrategy::Importance => "IS",
            UpdateStrategy::Top => "top",
            UpdateStrategy::Uniform => "uniform",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(SampleStrategy::Uniform.name(), "uniform");
        assert_eq!(SampleStrategy::Importance.name(), "IS");
        assert_eq!(SampleStrategy::Top.name(), "top");
        assert_eq!(UpdateStrategy::Importance.name(), "IS");
        assert_eq!(UpdateStrategy::Top.name(), "top");
        assert_eq!(UpdateStrategy::Uniform.name(), "uniform");
    }

    #[test]
    fn all_lists_cover_three_variants_each() {
        assert_eq!(SampleStrategy::ALL.len(), 3);
        assert_eq!(UpdateStrategy::ALL.len(), 3);
    }
}
