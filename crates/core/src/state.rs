//! Portable sampler state for full-state checkpointing.
//!
//! The paper's contribution is a *stateful* sampler: NSCaching's `H`/`T`
//! candidate caches evolve with the model, and the GAN baselines carry a
//! jointly-trained generator plus its optimizer moments and reward baseline.
//! An exact-resume checkpoint that omits this state restarts those samplers
//! from scratch — a *valid* trajectory, but not the one that was interrupted.
//!
//! [`SamplerState`] is the typed, serialisation-agnostic capture of that
//! state. Every [`NegativeSampler`](crate::NegativeSampler) exports one at an
//! epoch boundary ([`export_state`](crate::NegativeSampler::export_state))
//! and re-imports it on resume
//! ([`import_state`](crate::NegativeSampler::import_state)); the binary
//! encoding (a dedicated snapshot section) lives in `nscaching_serve`.
//!
//! # Why an epoch boundary is enough
//!
//! Checkpoints are taken between epochs, where the transient parts of every
//! sampler are provably empty or re-derivable:
//!
//! * the parallel engine's per-shard RNG streams are pure functions of
//!   `(seed, epoch, shard)`, so restoring the epoch counter restores them;
//! * the GAN samplers' per-shard slots (pending draw, buffered REINFORCE
//!   gradients, reward lists) are drained by `merge_batch` at the end of
//!   every mini-batch;
//! * NSCaching's scratch buffers carry no trajectory state at all.
//!
//! What *must* be captured is exactly what the variants below hold: the cache
//! entries and refresh/changed-element counters (NSCaching), and the
//! generator tables, optimizer slabs, baseline and step counter (KBGAN/IGAN).

use nscaching_kg::EntityId;
use nscaching_optim::OptimizerState;

/// One materialised cache entry: its key and candidate entities, in cache
/// order (the order matters — sampling indexes into it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntryState {
    /// The cache key: `(r, t)` for the head cache, `(h, r)` for the tail.
    pub key: (u32, u32),
    /// The cached candidate entities, in stored order.
    pub entities: Vec<EntityId>,
}

/// The full contents of one [`NegativeCache`](crate::NegativeCache),
/// with entries sorted by key so the capture is deterministic (the live
/// cache is a hash map whose iteration order is not).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheState {
    /// Pending changed-element count (the CE measure of Figure 8) not yet
    /// drained by `take_changed_elements`.
    pub changed_elements: u64,
    /// Every materialised entry, sorted ascending by key.
    pub entries: Vec<CacheEntryState>,
}

/// One NSCaching shard's head/tail cache pair plus its refresh counter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NsCachingShardState {
    /// Cache refresh operations performed by this shard so far.
    pub refresh_count: u64,
    /// The head cache `H`, keyed by `(r, t)`.
    pub head: CacheState,
    /// The tail cache `T`, keyed by `(h, r)`.
    pub tail: CacheState,
}

/// Evolving state of an [`NsCachingSampler`](crate::NsCachingSampler):
/// the per-shard `H`/`T` caches and the lazy-update flag.
#[derive(Debug, Clone, PartialEq)]
pub struct NsCachingState {
    /// Whether cache refreshes are enabled in the upcoming epoch (the
    /// lazy-update schedule's output for the checkpointed epoch boundary).
    pub updates_enabled: bool,
    /// One entry per shard, in shard order. The shard layout is part of the
    /// state: entries belong to the shard their positives route to.
    pub shards: Vec<NsCachingShardState>,
}

/// Which GAN-style sampler a [`GeneratorState`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorKind {
    /// [`KbGanSampler`](crate::KbGanSampler).
    KbGan,
    /// [`IganSampler`](crate::IganSampler).
    Igan,
}

impl GeneratorKind {
    /// Human-readable sampler name (matches `NegativeSampler::name`).
    pub fn name(&self) -> &'static str {
        match self {
            GeneratorKind::KbGan => "KBGAN",
            GeneratorKind::Igan => "IGAN",
        }
    }
}

/// One generator parameter table (mirrors the model snapshot's table layout,
/// kept separate so `nscaching` does not depend on the serve crate).
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorTableState {
    /// Table name (schema check at import).
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Row dimension.
    pub dim: usize,
    /// `rows × dim` values, row-major.
    pub data: Vec<f64>,
}

/// Evolving state of a GAN-style sampler: the jointly-trained generator's
/// parameter tables, its optimizer state, and the REINFORCE bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorState {
    /// Which sampler exported this state.
    pub kind: GeneratorKind,
    /// Moving-average reward baseline.
    pub baseline: f64,
    /// REINFORCE updates applied so far.
    pub feedback_steps: u64,
    /// Generator parameter tables, in `KgeModel::tables()` order.
    pub tables: Vec<GeneratorTableState>,
    /// Generator optimizer state slabs (Adam moments + step counters).
    pub optimizer: OptimizerState,
}

/// A sampler's evolving state at an epoch boundary, as captured by
/// [`NegativeSampler::export_state`](crate::NegativeSampler::export_state).
#[derive(Debug, Clone, PartialEq)]
pub enum SamplerState {
    /// The sampler's state is a pure function of `(dataset, seed)` — Uniform
    /// and Bernoulli. Nothing to persist. This is also what legacy
    /// checkpoints (written before sampler sections existed) decode to.
    Stateless,
    /// NSCaching's per-shard `H`/`T` caches.
    NsCaching(NsCachingState),
    /// A GAN sampler's generator, optimizer and REINFORCE bookkeeping.
    Generator(GeneratorState),
}

impl SamplerState {
    /// Short label used in mismatch errors.
    pub fn kind_name(&self) -> &'static str {
        match self {
            SamplerState::Stateless => "stateless",
            SamplerState::NsCaching(_) => "NSCaching",
            SamplerState::Generator(g) => g.kind.name(),
        }
    }
}

/// Capture every parameter table of a generator model (shared by the KBGAN
/// and IGAN `export_state` implementations).
pub(crate) fn capture_generator_tables(
    model: &dyn nscaching_models::KgeModel,
) -> Vec<GeneratorTableState> {
    model
        .tables()
        .into_iter()
        .map(|t| GeneratorTableState {
            name: t.name().to_string(),
            rows: t.rows(),
            dim: t.dim(),
            data: t.data().to_vec(),
        })
        .collect()
}

/// Overwrite a generator model's tables with captured values, validating
/// name/shape so a capture from a differently-configured generator fails
/// loudly instead of scoring garbage.
pub(crate) fn restore_generator_tables(
    model: &mut dyn nscaching_models::KgeModel,
    tables: &[GeneratorTableState],
) -> Result<(), String> {
    let mut live = model.tables_mut();
    if live.len() != tables.len() {
        return Err(format!(
            "generator has {} tables but the capture holds {}",
            live.len(),
            tables.len()
        ));
    }
    for (table, captured) in live.iter_mut().zip(tables) {
        if table.name() != captured.name
            || table.rows() != captured.rows
            || table.dim() != captured.dim
        {
            return Err(format!(
                "generator table {:?} ({}×{}) does not match captured table {:?} ({}×{})",
                table.name(),
                table.rows(),
                table.dim(),
                captured.name,
                captured.rows,
                captured.dim
            ));
        }
        if captured.data.len() != captured.rows * captured.dim {
            return Err(format!(
                "captured table {:?} slab holds {} values, expected {}",
                captured.name,
                captured.data.len(),
                captured.rows * captured.dim
            ));
        }
        table.data_mut().copy_from_slice(&captured.data);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(SamplerState::Stateless.kind_name(), "stateless");
        assert_eq!(GeneratorKind::KbGan.name(), "KBGAN");
        assert_eq!(GeneratorKind::Igan.name(), "IGAN");
    }
}
