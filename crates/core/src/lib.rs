//! NSCaching — cache-based negative sampling for knowledge-graph embedding.
//!
//! This crate implements the paper's contribution and every negative-sampling
//! baseline it compares against:
//!
//! * [`UniformSampler`] — uniform corruption (Bordes et al., 2013);
//! * [`BernoulliSampler`] — cardinality-aware corruption (Wang et al., 2014),
//!   the paper's main fixed-distribution baseline;
//! * [`NsCachingSampler`] — the paper's method (Algorithms 2 and 3): a head
//!   cache `H` indexed by `(r, t)` and a tail cache `T` indexed by `(h, r)`
//!   store the highest-scoring corruption candidates; negatives are drawn
//!   uniformly from the cache and the cache is refreshed by importance
//!   sampling from `cache ∪ N2 random entities`;
//! * [`KbGanSampler`] — the KBGAN baseline (Cai & Wang, 2018): a jointly
//!   trained generator picks a negative from a small uniformly-drawn
//!   candidate set and is updated with REINFORCE;
//! * [`IganSampler`] — an IGAN-style baseline (Wang et al., 2018): the
//!   generator models a softmax over the *whole* entity set, making each
//!   sample O(|E|·d).
//!
//! Every sampler implements the [`NegativeSampler`] trait consumed by
//! `nscaching-train`. The ablation strategies of Section IV-C (uniform/IS/top
//! sampling from the cache, IS/top/uniform cache update) are expressed as
//! [`SampleStrategy`] / [`UpdateStrategy`] values on [`NsCachingConfig`].

pub mod bernoulli;
pub mod cache;
pub mod config;
pub mod corruption;
pub mod igan;
pub mod kbgan;
pub mod nscaching;
pub mod partition;
pub mod sampler;
pub mod state;
pub mod strategy;
pub mod uniform;

pub use bernoulli::BernoulliSampler;
pub use cache::{CacheKey, CacheProbe, NegativeCache};
pub use config::{build_sampler, NsCachingConfig, SamplerConfig};
pub use corruption::CorruptionPolicy;
pub use igan::IganSampler;
pub use kbgan::KbGanSampler;
pub use nscaching::NsCachingSampler;
pub use partition::{ObservedPartition, PartitionKey, ShardPartition};
pub use sampler::{shard_of_key, NegativeSampler, SampledNegative, ShardSampler};
pub use state::{
    CacheEntryState, CacheState, GeneratorKind, GeneratorState, GeneratorTableState,
    NsCachingShardState, NsCachingState, SamplerState,
};
pub use strategy::{SampleStrategy, UpdateStrategy};
pub use uniform::UniformSampler;
