//! The NSCaching sampler (Algorithms 2 and 3 of the paper).

use crate::cache::{CacheProbe, NegativeCache};
use crate::config::NsCachingConfig;
use crate::corruption::CorruptionPolicy;
use crate::sampler::{NegativeSampler, SampledNegative};
use crate::strategy::{SampleStrategy, UpdateStrategy};
use nscaching_kg::{CorruptionSide, EntityId, Triple};
use nscaching_math::{
    argmax, sample_distinct_uniform_into, sample_one_weighted,
    sample_without_replacement_weighted_into, softmax_in_place, top_k_indices_into,
};
use nscaching_models::KgeModel;
use rand::rngs::StdRng;
use rand::Rng;

/// Reusable working storage for the sampler's hot paths.
///
/// Every buffer grows to its high-water mark on the first few positives and
/// is reused afterwards, so steady-state `sample`/`update` calls perform no
/// heap allocation (verified by the allocation counter in the
/// `sampler_throughput` bench).
#[derive(Debug, Default)]
struct Scratch {
    /// Masked copy of a cache entry (positive's own entity filtered out).
    candidates: Vec<EntityId>,
    /// Candidate pool for Algorithm 3 (cache entry ∪ N2 random entities).
    pool: Vec<EntityId>,
    /// Batched candidate scores / softmax weights, in `pool` order.
    scores: Vec<f64>,
    /// Indices into `pool` kept by the update strategy.
    kept: Vec<usize>,
    /// Distinct random indices drawn when extending the pool (Algorithm 3
    /// step 2).
    random: Vec<usize>,
    /// The refreshed cache entry before it is copied over the old one.
    refreshed: Vec<EntityId>,
}

/// Cache-based negative sampler.
///
/// Maintains a head cache `H` indexed by `(r, t)` and a tail cache `T`
/// indexed by `(h, r)`. For each positive triple the sampler
///
/// 1. draws a candidate head from `H(r,t)` and a candidate tail from
///    `T(h,r)` using the configured [`SampleStrategy`] (step 6 of
///    Algorithm 2);
/// 2. picks one of the two corruptions using the corruption-side policy
///    (step 7);
/// 3. on [`update`](NegativeSampler::update), refreshes both cache entries by
///    scoring `cache ∪ N2 random entities` and keeping `N1` of them according
///    to the configured [`UpdateStrategy`] (Algorithm 3).
pub struct NsCachingSampler {
    config: NsCachingConfig,
    head_cache: NegativeCache,
    tail_cache: NegativeCache,
    policy: CorruptionPolicy,
    num_entities: usize,
    /// Whether cache updates run in the current epoch (lazy update).
    updates_enabled: bool,
    /// Number of cache refresh operations performed (two per `update` call
    /// when updates are enabled).
    refresh_count: u64,
    /// Reusable buffers for the batched scoring fast path.
    scratch: Scratch,
}

impl NsCachingSampler {
    /// Create a sampler for a vocabulary of `num_entities` entities.
    pub fn new(config: NsCachingConfig, num_entities: usize, policy: CorruptionPolicy) -> Self {
        Self {
            head_cache: NegativeCache::new(config.cache_size, num_entities),
            tail_cache: NegativeCache::new(config.cache_size, num_entities),
            policy,
            num_entities,
            updates_enabled: true,
            refresh_count: 0,
            scratch: Scratch::default(),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NsCachingConfig {
        &self.config
    }

    /// Snapshot of the head cache for `(r, t)` (Table VI probing).
    pub fn probe_head_cache(&self, relation: u32, tail: u32) -> CacheProbe {
        self.head_cache.probe((relation, tail))
    }

    /// Snapshot of the tail cache for `(h, r)` (Table VI probing).
    pub fn probe_tail_cache(&self, head: u32, relation: u32) -> CacheProbe {
        self.tail_cache.probe((head, relation))
    }

    /// Changed cache elements since the last call (the CE measure of Fig. 8),
    /// summed over both caches.
    pub fn take_changed_elements(&mut self) -> u64 {
        self.head_cache.take_changed_elements() + self.tail_cache.take_changed_elements()
    }

    /// Total approximate memory used by both caches, in bytes (Table I).
    pub fn cache_memory_bytes(&self) -> usize {
        self.head_cache.memory_bytes() + self.tail_cache.memory_bytes()
    }

    /// Number of cache refresh operations performed so far.
    pub fn refresh_count(&self) -> u64 {
        self.refresh_count
    }

    /// Whether the lazy-update schedule enables cache refreshes this epoch.
    pub fn updates_enabled(&self) -> bool {
        self.updates_enabled
    }

    /// Draw one negative from a cache entry (step 6 of Algorithm 2).
    ///
    /// A free-standing function (rather than `&self`) so callers can lend out
    /// disjoint scratch buffers; all candidate scoring goes through the
    /// batched [`KgeModel::score_candidates`] fast path with `scores` as the
    /// reused output buffer.
    #[allow(clippy::too_many_arguments)]
    fn pick_from_cache(
        config: &NsCachingConfig,
        num_entities: usize,
        candidates: &[EntityId],
        scores: &mut Vec<f64>,
        positive: &Triple,
        side: CorruptionSide,
        model: &dyn KgeModel,
        rng: &mut StdRng,
    ) -> EntityId {
        // `candidates` has already been masked: the positive's own entity (a
        // very high-scoring cache resident) is filtered out by the caller. If
        // masking emptied the entry, fall back to a uniform draw over E.
        if candidates.is_empty() {
            let excluded = positive.entity_at(side);
            let mut e = rng.gen_range(0..num_entities as EntityId);
            if e == excluded {
                e = (e + 1) % num_entities as EntityId;
            }
            return e;
        }
        match config.sample_strategy {
            SampleStrategy::Uniform => candidates[rng.gen_range(0..candidates.len())],
            SampleStrategy::Importance => {
                model.score_candidates(positive, side, candidates, scores);
                softmax_in_place(scores);
                candidates[sample_one_weighted(rng, scores)]
            }
            SampleStrategy::Top => {
                model.score_candidates(positive, side, candidates, scores);
                candidates[argmax(scores).expect("candidates are non-empty")]
            }
        }
    }

    /// Algorithm 3 applied to one cache entry, writing the refreshed entry
    /// back in place. Scoring the `N1 + N2` candidate pool goes through the
    /// batched fast path, and every intermediate lives in `self.scratch`, so
    /// a steady-state refresh performs no heap allocation.
    fn refresh_entry(
        &mut self,
        positive: &Triple,
        side: CorruptionSide,
        model: &dyn KgeModel,
        rng: &mut StdRng,
    ) {
        let (cache, key) = match side {
            CorruptionSide::Head => (&mut self.head_cache, positive.relation_tail()),
            CorruptionSide::Tail => (&mut self.tail_cache, positive.head_relation()),
        };
        let scratch = &mut self.scratch;
        let n1 = self.config.cache_size;
        let n2 = self.config.random_size.min(self.num_entities);
        // Step 2-3: candidate pool = cache ∪ N2 uniformly random entities.
        scratch.pool.clear();
        scratch.pool.extend_from_slice(cache.get_or_init(key, rng));
        sample_distinct_uniform_into(rng, self.num_entities, n2, &mut scratch.random);
        scratch
            .pool
            .extend(scratch.random.iter().map(|&e| e as EntityId));
        // Step 4: score every candidate in one batched call.
        model.score_candidates(positive, side, &scratch.pool, &mut scratch.scores);
        // Steps 5-9: keep N1 of them.
        match self.config.update_strategy {
            UpdateStrategy::Importance => {
                // Probability ∝ exp(score) — Equation (6); softmax keeps the
                // exponentials finite.
                softmax_in_place(&mut scratch.scores);
                sample_without_replacement_weighted_into(
                    rng,
                    &mut scratch.scores,
                    n1,
                    &mut scratch.kept,
                );
            }
            UpdateStrategy::Top => top_k_indices_into(&scratch.scores, n1, &mut scratch.kept),
            UpdateStrategy::Uniform => sample_distinct_uniform_into(
                rng,
                scratch.pool.len(),
                n1.min(scratch.pool.len()),
                &mut scratch.kept,
            ),
        }
        scratch.refreshed.clear();
        scratch
            .refreshed
            .extend(scratch.kept.iter().map(|&i| scratch.pool[i]));
        cache.replace_from_slice(key, &scratch.refreshed);
    }
}

impl NegativeSampler for NsCachingSampler {
    fn name(&self) -> &'static str {
        "NSCaching"
    }

    fn sample(
        &mut self,
        positive: &Triple,
        model: &dyn KgeModel,
        rng: &mut StdRng,
    ) -> SampledNegative {
        // Step 7 first: picking the corruption side does not depend on the
        // drawn candidates, so only the chosen side's cache needs scoring —
        // half the candidate-scoring work of a draw-both-then-choose order,
        // with an identical sampling distribution. Step 5 still materialises
        // both caches (Algorithm 2 keeps `H(r, t)` and `T(h, r)` warm on
        // every positive): the unchosen side is warmed here, the chosen side
        // by the `get_or_init` below — two hash probes per positive in total.
        let side = self.policy.choose(positive, rng);
        let (cache, other, key, other_key) = match side {
            CorruptionSide::Head => (
                &mut self.head_cache,
                &mut self.tail_cache,
                positive.relation_tail(),
                positive.head_relation(),
            ),
            CorruptionSide::Tail => (
                &mut self.tail_cache,
                &mut self.head_cache,
                positive.head_relation(),
                positive.relation_tail(),
            ),
        };
        other.get_or_init(other_key, rng);
        // Step 6: draw one candidate from the chosen cache. The entry is
        // copied into a reusable scratch buffer with the positive's own
        // entity masked out in the same pass (it may legitimately sit in the
        // cache as a top-scoring candidate, but drawing it would reproduce
        // the positive triple).
        let excluded = positive.entity_at(side);
        self.scratch.candidates.clear();
        self.scratch.candidates.extend(
            cache
                .get_or_init(key, rng)
                .iter()
                .copied()
                .filter(|&e| e != excluded),
        );
        let pick = Self::pick_from_cache(
            &self.config,
            self.num_entities,
            &self.scratch.candidates,
            &mut self.scratch.scores,
            positive,
            side,
            model,
            rng,
        );
        SampledNegative::new(positive, side, pick)
    }

    fn update(&mut self, positive: &Triple, model: &dyn KgeModel, rng: &mut StdRng) {
        if !self.updates_enabled {
            return;
        }
        // Head cache H(r, t), then tail cache T(h, r) — Algorithm 3 twice.
        self.refresh_entry(positive, CorruptionSide::Head, model, rng);
        self.refresh_entry(positive, CorruptionSide::Tail, model, rng);
        self.refresh_count += 2;
    }

    fn epoch_finished(&mut self, epoch: usize) {
        // Lazy update: with period n, the cache is refreshed only every
        // (n + 1)-th epoch; n = 0 refreshes every epoch (the paper's default).
        let period = self.config.lazy_update_epochs + 1;
        self.updates_enabled = (epoch + 1).is_multiple_of(period);
    }

    fn take_changed_elements(&mut self) -> u64 {
        self.head_cache.take_changed_elements() + self.tail_cache.take_changed_elements()
    }

    fn tail_cache_contents(&self, positive: &Triple) -> Option<Vec<u32>> {
        Some(self.tail_cache.probe(positive.head_relation()).entities)
    }

    fn head_cache_contents(&self, positive: &Triple) -> Option<Vec<u32>> {
        Some(self.head_cache.probe(positive.relation_tail()).entities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;
    use nscaching_models::{build_model, ModelConfig, ModelKind};

    fn model(n: usize) -> Box<dyn KgeModel> {
        build_model(
            &ModelConfig::new(ModelKind::TransE).with_dim(8).with_seed(5),
            n,
            3,
        )
    }

    fn sampler(n1: usize, n2: usize) -> NsCachingSampler {
        let config = NsCachingConfig::new(n1, n2);
        NsCachingSampler::new(config, 60, CorruptionPolicy::Uniform)
    }

    #[test]
    fn sampled_negatives_come_from_the_cache() {
        let mut s = sampler(10, 10);
        let m = model(60);
        let mut rng = seeded_rng(1);
        let pos = Triple::new(0, 0, 1);
        let neg = s.sample(&pos, m.as_ref(), &mut rng);
        let head_cache = s.probe_head_cache(0, 1).entities;
        let tail_cache = s.probe_tail_cache(0, 0).entities;
        match neg.side {
            CorruptionSide::Head => assert!(head_cache.contains(&neg.entity)),
            CorruptionSide::Tail => assert!(tail_cache.contains(&neg.entity)),
        }
        assert_eq!(head_cache.len(), 10);
        assert_eq!(tail_cache.len(), 10);
    }

    #[test]
    fn update_raises_the_mean_cache_score() {
        let mut s = sampler(10, 30);
        let m = model(60);
        let mut rng = seeded_rng(2);
        let pos = Triple::new(3, 1, 7);
        // materialise and capture the initial (random) cache
        let _ = s.sample(&pos, m.as_ref(), &mut rng);
        let mean_score = |entities: &[u32], side: CorruptionSide| -> f64 {
            entities
                .iter()
                .map(|&e| m.score(&pos.corrupted(side, e)))
                .sum::<f64>()
                / entities.len() as f64
        };
        let before = mean_score(&s.probe_head_cache(1, 7).entities, CorruptionSide::Head);
        for _ in 0..5 {
            s.update(&pos, m.as_ref(), &mut rng);
        }
        let after = mean_score(&s.probe_head_cache(1, 7).entities, CorruptionSide::Head);
        assert!(
            after > before,
            "IS update should concentrate the cache on high-scoring negatives ({before} -> {after})"
        );
        assert_eq!(s.refresh_count(), 10);
    }

    #[test]
    fn top_update_keeps_exactly_the_highest_scoring_candidates() {
        let config = NsCachingConfig::new(5, 20).with_update_strategy(UpdateStrategy::Top);
        let mut s = NsCachingSampler::new(config, 40, CorruptionPolicy::Uniform);
        let m = model(40);
        let mut rng = seeded_rng(3);
        let pos = Triple::new(2, 0, 9);
        s.update(&pos, m.as_ref(), &mut rng);
        let cache = s.probe_head_cache(0, 9).entities;
        assert_eq!(cache.len(), 5);
        // every cached entity must score at least as high as the median entity
        let all_scores: Vec<f64> = (0..40u32).map(|e| m.score(&pos.with_head(e))).collect();
        let mut sorted = all_scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[20];
        for &e in &cache {
            assert!(all_scores[e as usize] >= median);
        }
    }

    #[test]
    fn top_sampling_returns_the_argmax_of_the_cache() {
        let config = NsCachingConfig::new(8, 8).with_sample_strategy(SampleStrategy::Top);
        let mut s = NsCachingSampler::new(config, 50, CorruptionPolicy::Uniform);
        let m = model(50);
        let mut rng = seeded_rng(4);
        let pos = Triple::new(1, 2, 3);
        let neg = s.sample(&pos, m.as_ref(), &mut rng);
        let cache = match neg.side {
            CorruptionSide::Head => s.probe_head_cache(2, 3).entities,
            CorruptionSide::Tail => s.probe_tail_cache(1, 2).entities,
        };
        let best = cache
            .iter()
            .map(|&e| m.score(&pos.corrupted(neg.side, e)))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((m.score(&neg.triple) - best).abs() < 1e-12);
    }

    #[test]
    fn lazy_update_disables_refreshes_between_periods() {
        let config = NsCachingConfig::new(4, 4).with_lazy_update(2);
        let mut s = NsCachingSampler::new(config, 30, CorruptionPolicy::Uniform);
        let m = model(30);
        let mut rng = seeded_rng(5);
        let pos = Triple::new(0, 0, 1);

        assert!(s.updates_enabled());
        s.update(&pos, m.as_ref(), &mut rng);
        assert_eq!(s.refresh_count(), 2);

        // epochs 0 and 1 finish -> period 3 means updates only after epoch 2
        s.epoch_finished(0);
        assert!(!s.updates_enabled());
        s.update(&pos, m.as_ref(), &mut rng);
        assert_eq!(s.refresh_count(), 2, "no refresh while disabled");

        s.epoch_finished(1);
        assert!(!s.updates_enabled());
        s.epoch_finished(2);
        assert!(s.updates_enabled());
        s.update(&pos, m.as_ref(), &mut rng);
        assert_eq!(s.refresh_count(), 4);
    }

    #[test]
    fn changed_elements_accumulate_and_reset() {
        let mut s = sampler(6, 20);
        let m = model(60);
        let mut rng = seeded_rng(6);
        let pos = Triple::new(5, 2, 8);
        s.update(&pos, m.as_ref(), &mut rng);
        let ce = s.take_changed_elements();
        assert!(ce > 0, "a fresh cache must change on the first update");
        assert_eq!(s.take_changed_elements(), 0);
    }

    #[test]
    fn cache_memory_grows_with_touched_keys() {
        let mut s = sampler(10, 5);
        let m = model(60);
        let mut rng = seeded_rng(7);
        assert_eq!(s.cache_memory_bytes(), 0);
        for i in 0..5u32 {
            let _ = s.sample(&Triple::new(i, 0, i + 1), m.as_ref(), &mut rng);
        }
        // 5 head-cache keys + 5 tail-cache keys, 10 slots each, 4 bytes per id
        assert_eq!(s.cache_memory_bytes(), 10 * 10 * 4);
        assert_eq!(s.name(), "NSCaching");
        assert_eq!(s.extra_parameters(), 0);
    }
}
