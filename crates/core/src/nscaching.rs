//! The NSCaching sampler (Algorithms 2 and 3 of the paper).

use crate::cache::{CacheProbe, NegativeCache};
use crate::config::NsCachingConfig;
use crate::corruption::CorruptionPolicy;
use crate::partition::{ObservedPartition, PartitionKey};
use crate::sampler::{NegativeSampler, SampledNegative, ShardSampler};
use crate::state::{
    CacheEntryState, CacheState, NsCachingShardState, NsCachingState, SamplerState,
};
use crate::strategy::{SampleStrategy, UpdateStrategy};
use nscaching_kg::{CorruptionSide, EntityId, Triple};
use nscaching_math::{
    argmax, sample_distinct_uniform_into, sample_one_weighted,
    sample_without_replacement_weighted_into, softmax_in_place, top_k_indices_into,
};
use nscaching_models::KgeModel;
use rand::rngs::StdRng;
use rand::Rng;

/// Reusable working storage for the sampler's hot paths.
///
/// Every buffer grows to its high-water mark on the first few positives and
/// is reused afterwards, so steady-state `sample`/`update` calls perform no
/// heap allocation (verified by the allocation counter in the
/// `sampler_throughput` bench).
#[derive(Debug, Default)]
struct Scratch {
    /// Masked copy of a cache entry (positive's own entity filtered out).
    candidates: Vec<EntityId>,
    /// Candidate pool for Algorithm 3 (cache entry ∪ N2 random entities).
    pool: Vec<EntityId>,
    /// Batched candidate scores / softmax weights, in `pool` order.
    scores: Vec<f64>,
    /// Indices into `pool` kept by the update strategy.
    kept: Vec<usize>,
    /// Distinct random indices drawn when extending the pool (Algorithm 3
    /// step 2).
    random: Vec<usize>,
    /// The refreshed cache entry before it is copied over the old one.
    refreshed: Vec<EntityId>,
}

/// One shard's exclusively-owned slice of the NSCaching state: a head cache,
/// a tail cache and the scratch buffers of its worker. Shards are disjoint by
/// construction — positives are routed to shards by their `(h, r)` key, and
/// every cache entry a shard materialises belongs to positives routed to it —
/// so a batch's shard workers never contend.
#[derive(Debug)]
struct NsCachingShard {
    head_cache: NegativeCache,
    tail_cache: NegativeCache,
    scratch: Scratch,
    refresh_count: u64,
}

impl NsCachingShard {
    fn new(config: &NsCachingConfig, num_entities: usize) -> Self {
        Self {
            head_cache: NegativeCache::new(config.cache_size, num_entities),
            tail_cache: NegativeCache::new(config.cache_size, num_entities),
            scratch: Scratch::default(),
            refresh_count: 0,
        }
    }
}

/// Cache-based negative sampler.
///
/// Maintains a head cache `H` indexed by `(r, t)` and a tail cache `T`
/// indexed by `(h, r)`. For each positive triple the sampler
///
/// 1. draws a candidate head from `H(r,t)` and a candidate tail from
///    `T(h,r)` using the configured [`SampleStrategy`] (step 6 of
///    Algorithm 2);
/// 2. picks one of the two corruptions using the corruption-side policy
///    (step 7);
/// 3. on [`update`](NegativeSampler::update), refreshes both cache entries by
///    scoring `cache ∪ N2 random entities` and keeping `N1` of them according
///    to the configured [`UpdateStrategy`] (Algorithm 3).
///
/// For parallel training the caches are partitioned into `S` shards keyed by
/// the positive's `(h, r)` index; each shard owns its own `H`/`T` pair,
/// giving the workers lock-free exclusive access. The key → shard routing is
/// frequency-aware when the training key frequencies have been observed
/// ([`with_observed_keys`](Self::with_observed_keys) — a load-balanced
/// [`ShardPartition`] built in `prepare_shards`), and falls back to the
/// uniform [`shard_of_key`] hash otherwise. With one shard (the default, and
/// the sequential trainer's configuration) the layout and behaviour are
/// identical to the unsharded sampler.
pub struct NsCachingSampler {
    config: NsCachingConfig,
    policy: CorruptionPolicy,
    num_entities: usize,
    /// Whether cache updates run in the current epoch (lazy update).
    updates_enabled: bool,
    /// Disjoint cache shards; always at least one.
    shards: Vec<NsCachingShard>,
    /// Load-balanced `(h, r)` key routing when the training frequencies were
    /// observed, uniform hash otherwise. Must stay consistent across
    /// `shard_of`, the per-triple hooks and the probes — every key has
    /// exactly one owning shard, which [`ObservedPartition`]'s key-based
    /// purity guarantees.
    routing: ObservedPartition,
}

impl NsCachingSampler {
    /// Create a sampler for a vocabulary of `num_entities` entities.
    pub fn new(config: NsCachingConfig, num_entities: usize, policy: CorruptionPolicy) -> Self {
        Self {
            shards: vec![NsCachingShard::new(&config, num_entities)],
            policy,
            num_entities,
            updates_enabled: true,
            config,
            routing: ObservedPartition::default(),
        }
    }

    /// Record the `(h, r)` key frequencies of `triples` (normally the
    /// training split) so that `prepare_shards` can build a load-balanced
    /// partition instead of the uniform hash routing (see
    /// [`ObservedPartition`]).
    pub fn with_observed_keys(mut self, triples: &[Triple]) -> Self {
        self.routing.observe(triples);
        self
    }

    /// Route a cache key to its shard under `shards` shards.
    #[inline]
    fn route_key(&self, key: PartitionKey, shards: usize) -> usize {
        self.routing.shard_of(key, shards)
    }

    /// The configuration in use.
    pub fn config(&self) -> &NsCachingConfig {
        &self.config
    }

    /// Snapshot of the head cache for `(r, t)` (Table VI probing).
    ///
    /// Head-cache entries live in the shard of the positives that touch them
    /// (shards are routed by the *tail*-cache key `(h, r)`), so at
    /// `shards > 1` the same `(r, t)` key can be materialised independently —
    /// with different contents — in several shards; the probe returns the
    /// entry of the lowest-indexed shard that has one. The Table VI probing
    /// experiment runs on the sequential (1-shard) trainer, where the entry
    /// is unique.
    pub fn probe_head_cache(&self, relation: u32, tail: u32) -> CacheProbe {
        let key = (relation, tail);
        for shard in &self.shards {
            if let Some(entities) = shard.head_cache.peek(key) {
                return CacheProbe {
                    key,
                    entities: entities.to_vec(),
                };
            }
        }
        CacheProbe {
            key,
            entities: Vec::new(),
        }
    }

    /// Snapshot of the tail cache for `(h, r)` (Table VI probing).
    pub fn probe_tail_cache(&self, head: u32, relation: u32) -> CacheProbe {
        self.shards[self.route_key((head, relation), self.shards.len())]
            .tail_cache
            .probe((head, relation))
    }

    /// Changed cache elements since the last call (the CE measure of Fig. 8),
    /// summed over both caches of every shard.
    pub fn take_changed_elements(&mut self) -> u64 {
        self.shards
            .iter_mut()
            .map(|s| s.head_cache.take_changed_elements() + s.tail_cache.take_changed_elements())
            .sum()
    }

    /// Total approximate memory used by all cache shards, in bytes (Table I).
    pub fn cache_memory_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.head_cache.memory_bytes() + s.tail_cache.memory_bytes())
            .sum()
    }

    /// Number of cache refresh operations performed so far, over all shards.
    pub fn refresh_count(&self) -> u64 {
        self.shards.iter().map(|s| s.refresh_count).sum()
    }

    /// Whether the lazy-update schedule enables cache refreshes this epoch.
    pub fn updates_enabled(&self) -> bool {
        self.updates_enabled
    }

    fn shard_index(&self, positive: &Triple) -> usize {
        self.route_key((positive.head, positive.relation), self.shards.len())
    }

    /// Draw one negative from a cache entry (step 6 of Algorithm 2).
    ///
    /// A free-standing function (rather than `&self`) so callers can lend out
    /// disjoint scratch buffers; all candidate scoring goes through the
    /// batched [`KgeModel::score_candidates`] fast path with `scores` as the
    /// reused output buffer.
    #[allow(clippy::too_many_arguments)]
    fn pick_from_cache(
        config: &NsCachingConfig,
        num_entities: usize,
        candidates: &[EntityId],
        scores: &mut Vec<f64>,
        positive: &Triple,
        side: CorruptionSide,
        model: &dyn KgeModel,
        rng: &mut StdRng,
    ) -> EntityId {
        // `candidates` has already been masked: the positive's own entity (a
        // very high-scoring cache resident) is filtered out by the caller. If
        // masking emptied the entry, fall back to a uniform draw over E.
        if candidates.is_empty() {
            let excluded = positive.entity_at(side);
            let mut e = rng.gen_range(0..num_entities as EntityId);
            if e == excluded {
                e = (e + 1) % num_entities as EntityId;
            }
            return e;
        }
        match config.sample_strategy {
            SampleStrategy::Uniform => candidates[rng.gen_range(0..candidates.len())],
            SampleStrategy::Importance => {
                model.score_candidates(positive, side, candidates, scores);
                softmax_in_place(scores);
                candidates[sample_one_weighted(rng, scores)]
            }
            SampleStrategy::Top => {
                model.score_candidates(positive, side, candidates, scores);
                candidates[argmax(scores).expect("candidates are non-empty")]
            }
        }
    }

    /// Step 5–7 of Algorithm 2 on one shard's caches. Free-standing so both
    /// the legacy per-triple hook and the shard workers share one hot path
    /// (and one RNG consumption order).
    fn sample_in_shard(
        config: &NsCachingConfig,
        policy: &CorruptionPolicy,
        num_entities: usize,
        shard: &mut NsCachingShard,
        positive: &Triple,
        model: &dyn KgeModel,
        rng: &mut StdRng,
    ) -> SampledNegative {
        // Step 7 first: picking the corruption side does not depend on the
        // drawn candidates, so only the chosen side's cache needs scoring —
        // half the candidate-scoring work of a draw-both-then-choose order,
        // with an identical sampling distribution. Step 5 still materialises
        // both caches (Algorithm 2 keeps `H(r, t)` and `T(h, r)` warm on
        // every positive): the unchosen side is warmed here, the chosen side
        // by the `get_or_init` below — two hash probes per positive in total.
        let side = policy.choose(positive, rng);
        let (cache, other, key, other_key) = match side {
            CorruptionSide::Head => (
                &mut shard.head_cache,
                &mut shard.tail_cache,
                positive.relation_tail(),
                positive.head_relation(),
            ),
            CorruptionSide::Tail => (
                &mut shard.tail_cache,
                &mut shard.head_cache,
                positive.head_relation(),
                positive.relation_tail(),
            ),
        };
        other.get_or_init(other_key, rng);
        // Step 6: draw one candidate from the chosen cache. The entry is
        // copied into a reusable scratch buffer with the positive's own
        // entity masked out in the same pass (it may legitimately sit in the
        // cache as a top-scoring candidate, but drawing it would reproduce
        // the positive triple).
        let excluded = positive.entity_at(side);
        shard.scratch.candidates.clear();
        shard.scratch.candidates.extend(
            cache
                .get_or_init(key, rng)
                .iter()
                .copied()
                .filter(|&e| e != excluded),
        );
        let pick = Self::pick_from_cache(
            config,
            num_entities,
            &shard.scratch.candidates,
            &mut shard.scratch.scores,
            positive,
            side,
            model,
            rng,
        );
        SampledNegative::new(positive, side, pick)
    }

    /// Algorithm 3 applied to one cache entry of one shard, writing the
    /// refreshed entry back in place. Scoring the `N1 + N2` candidate pool
    /// goes through the batched fast path, and every intermediate lives in
    /// the shard's scratch, so a steady-state refresh performs no heap
    /// allocation.
    fn refresh_entry(
        config: &NsCachingConfig,
        num_entities: usize,
        shard: &mut NsCachingShard,
        positive: &Triple,
        side: CorruptionSide,
        model: &dyn KgeModel,
        rng: &mut StdRng,
    ) {
        let (cache, key) = match side {
            CorruptionSide::Head => (&mut shard.head_cache, positive.relation_tail()),
            CorruptionSide::Tail => (&mut shard.tail_cache, positive.head_relation()),
        };
        let scratch = &mut shard.scratch;
        let n1 = config.cache_size;
        let n2 = config.random_size.min(num_entities);
        // Step 2-3: candidate pool = cache ∪ N2 uniformly random entities.
        scratch.pool.clear();
        scratch.pool.extend_from_slice(cache.get_or_init(key, rng));
        sample_distinct_uniform_into(rng, num_entities, n2, &mut scratch.random);
        scratch
            .pool
            .extend(scratch.random.iter().map(|&e| e as EntityId));
        // Step 4: score every candidate in one batched call.
        model.score_candidates(positive, side, &scratch.pool, &mut scratch.scores);
        // Steps 5-9: keep N1 of them.
        match config.update_strategy {
            UpdateStrategy::Importance => {
                // Probability ∝ exp(score) — Equation (6); softmax keeps the
                // exponentials finite.
                softmax_in_place(&mut scratch.scores);
                sample_without_replacement_weighted_into(
                    rng,
                    &mut scratch.scores,
                    n1,
                    &mut scratch.kept,
                );
            }
            UpdateStrategy::Top => top_k_indices_into(&scratch.scores, n1, &mut scratch.kept),
            UpdateStrategy::Uniform => sample_distinct_uniform_into(
                rng,
                scratch.pool.len(),
                n1.min(scratch.pool.len()),
                &mut scratch.kept,
            ),
        }
        scratch.refreshed.clear();
        scratch
            .refreshed
            .extend(scratch.kept.iter().map(|&i| scratch.pool[i]));
        cache.replace_from_slice(key, &scratch.refreshed);
    }

    /// Algorithm 3 on both caches of one shard (head `H(r, t)` first, then
    /// tail `T(h, r)`) — the body of the `update` hook.
    fn update_in_shard(
        config: &NsCachingConfig,
        num_entities: usize,
        shard: &mut NsCachingShard,
        positive: &Triple,
        model: &dyn KgeModel,
        rng: &mut StdRng,
    ) {
        Self::refresh_entry(
            config,
            num_entities,
            shard,
            positive,
            CorruptionSide::Head,
            model,
            rng,
        );
        Self::refresh_entry(
            config,
            num_entities,
            shard,
            positive,
            CorruptionSide::Tail,
            model,
            rng,
        );
        shard.refresh_count += 2;
    }
}

/// Worker view over one NSCaching shard, handed out by
/// [`NegativeSampler::shard_workers`].
struct NsCachingShardWorker<'a> {
    config: &'a NsCachingConfig,
    policy: &'a CorruptionPolicy,
    num_entities: usize,
    updates_enabled: bool,
    shard: &'a mut NsCachingShard,
}

impl ShardSampler for NsCachingShardWorker<'_> {
    fn sample(
        &mut self,
        positive: &Triple,
        model: &dyn KgeModel,
        rng: &mut StdRng,
    ) -> SampledNegative {
        NsCachingSampler::sample_in_shard(
            self.config,
            self.policy,
            self.num_entities,
            self.shard,
            positive,
            model,
            rng,
        )
    }

    fn update(&mut self, positive: &Triple, model: &dyn KgeModel, rng: &mut StdRng) {
        if !self.updates_enabled {
            return;
        }
        NsCachingSampler::update_in_shard(
            self.config,
            self.num_entities,
            self.shard,
            positive,
            model,
            rng,
        );
    }
}

impl NegativeSampler for NsCachingSampler {
    fn name(&self) -> &'static str {
        "NSCaching"
    }

    fn sample(
        &mut self,
        positive: &Triple,
        model: &dyn KgeModel,
        rng: &mut StdRng,
    ) -> SampledNegative {
        let shard = self.shard_index(positive);
        Self::sample_in_shard(
            &self.config,
            &self.policy,
            self.num_entities,
            &mut self.shards[shard],
            positive,
            model,
            rng,
        )
    }

    fn update(&mut self, positive: &Triple, model: &dyn KgeModel, rng: &mut StdRng) {
        if !self.updates_enabled {
            return;
        }
        let shard = self.shard_index(positive);
        Self::update_in_shard(
            &self.config,
            self.num_entities,
            &mut self.shards[shard],
            positive,
            model,
            rng,
        );
    }

    fn prepare_shards(&mut self, shards: usize) {
        let shards = shards.max(1);
        self.routing.prepare(shards);
        if self.shards.len() == shards {
            return;
        }
        // Re-partitioning drops the cached entries: entries are owned by the
        // shard their positives route to, and that routing changes with the
        // shard count. Caches re-materialise lazily with random entries —
        // the same "easy samples first" state as a fresh epoch 0.
        self.shards = (0..shards)
            .map(|_| NsCachingShard::new(&self.config, self.num_entities))
            .collect();
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Frequency-aware routing: the balanced partition built by
    /// `prepare_shards` when key frequencies were observed, else the uniform
    /// hash. Still a pure function of `(positive, shards)` for a fixed
    /// training split, so batch partitions replay exactly.
    fn shard_of(&self, positive: &Triple, shards: usize) -> usize {
        self.route_key((positive.head, positive.relation), shards)
    }

    fn shard_workers(&mut self) -> Vec<Box<dyn ShardSampler + '_>> {
        let config = &self.config;
        let policy = &self.policy;
        let num_entities = self.num_entities;
        let updates_enabled = self.updates_enabled;
        self.shards
            .iter_mut()
            .map(|shard| {
                Box::new(NsCachingShardWorker {
                    config,
                    policy,
                    num_entities,
                    updates_enabled,
                    shard,
                }) as Box<dyn ShardSampler>
            })
            .collect()
    }

    fn epoch_finished(&mut self, epoch: usize) {
        // Lazy update: with period n, the cache is refreshed only every
        // (n + 1)-th epoch; n = 0 refreshes every epoch (the paper's default).
        let period = self.config.lazy_update_epochs + 1;
        self.updates_enabled = (epoch + 1).is_multiple_of(period);
    }

    fn take_changed_elements(&mut self) -> u64 {
        NsCachingSampler::take_changed_elements(self)
    }

    fn tail_cache_contents(&self, positive: &Triple) -> Option<Vec<u32>> {
        Some(
            self.probe_tail_cache(positive.head, positive.relation)
                .entities,
        )
    }

    fn head_cache_contents(&self, positive: &Triple) -> Option<Vec<u32>> {
        Some(
            self.probe_head_cache(positive.relation, positive.tail)
                .entities,
        )
    }

    fn export_state(&self) -> SamplerState {
        let capture = |cache: &NegativeCache| CacheState {
            changed_elements: cache.changed_elements(),
            entries: cache
                .export_entries()
                .into_iter()
                .map(|(key, entities)| CacheEntryState { key, entities })
                .collect(),
        };
        SamplerState::NsCaching(NsCachingState {
            updates_enabled: self.updates_enabled,
            shards: self
                .shards
                .iter()
                .map(|shard| NsCachingShardState {
                    refresh_count: shard.refresh_count,
                    head: capture(&shard.head_cache),
                    tail: capture(&shard.tail_cache),
                })
                .collect(),
        })
    }

    fn import_state(&mut self, state: SamplerState) -> Result<(), String> {
        let state = match state {
            // Legacy checkpoint without sampler sections: keep the fresh
            // caches (the pre-full-state-resume behaviour).
            SamplerState::Stateless => return Ok(()),
            SamplerState::NsCaching(state) => state,
            other => {
                return Err(format!(
                    "NSCaching sampler cannot import {} state",
                    other.kind_name()
                ))
            }
        };
        if state.shards.is_empty() {
            return Err("NSCaching state holds zero shards".into());
        }
        // Rebuild the shard layout to the captured count (the routing
        // partition is a pure function of the observed keys and the count,
        // so positionally-restored entries land in the shard that will own
        // their keys), then fill the caches.
        self.routing.prepare(state.shards.len());
        self.shards = state
            .shards
            .iter()
            .map(|_| NsCachingShard::new(&self.config, self.num_entities))
            .collect();
        self.updates_enabled = state.updates_enabled;
        for (shard, captured) in self.shards.iter_mut().zip(&state.shards) {
            shard.refresh_count = captured.refresh_count;
            for (cache, capture) in [
                (&mut shard.head_cache, &captured.head),
                (&mut shard.tail_cache, &captured.tail),
            ] {
                cache.set_changed_elements(capture.changed_elements);
                for entry in &capture.entries {
                    cache.restore_entry(entry.key, entry.entities.clone())?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscaching_math::seeded_rng;
    use nscaching_models::{build_model, ModelConfig, ModelKind};

    fn model(n: usize) -> Box<dyn KgeModel> {
        build_model(
            &ModelConfig::new(ModelKind::TransE).with_dim(8).with_seed(5),
            n,
            3,
        )
    }

    fn sampler(n1: usize, n2: usize) -> NsCachingSampler {
        let config = NsCachingConfig::new(n1, n2);
        NsCachingSampler::new(config, 60, CorruptionPolicy::Uniform)
    }

    #[test]
    fn sampled_negatives_come_from_the_cache() {
        let mut s = sampler(10, 10);
        let m = model(60);
        let mut rng = seeded_rng(1);
        let pos = Triple::new(0, 0, 1);
        let neg = s.sample(&pos, m.as_ref(), &mut rng);
        let head_cache = s.probe_head_cache(0, 1).entities;
        let tail_cache = s.probe_tail_cache(0, 0).entities;
        match neg.side {
            CorruptionSide::Head => assert!(head_cache.contains(&neg.entity)),
            CorruptionSide::Tail => assert!(tail_cache.contains(&neg.entity)),
        }
        assert_eq!(head_cache.len(), 10);
        assert_eq!(tail_cache.len(), 10);
    }

    #[test]
    fn update_raises_the_mean_cache_score() {
        let mut s = sampler(10, 30);
        let m = model(60);
        let mut rng = seeded_rng(2);
        let pos = Triple::new(3, 1, 7);
        // materialise and capture the initial (random) cache
        let _ = s.sample(&pos, m.as_ref(), &mut rng);
        let mean_score = |entities: &[u32], side: CorruptionSide| -> f64 {
            entities
                .iter()
                .map(|&e| m.score(&pos.corrupted(side, e)))
                .sum::<f64>()
                / entities.len() as f64
        };
        let before = mean_score(&s.probe_head_cache(1, 7).entities, CorruptionSide::Head);
        for _ in 0..5 {
            s.update(&pos, m.as_ref(), &mut rng);
        }
        let after = mean_score(&s.probe_head_cache(1, 7).entities, CorruptionSide::Head);
        assert!(
            after > before,
            "IS update should concentrate the cache on high-scoring negatives ({before} -> {after})"
        );
        assert_eq!(s.refresh_count(), 10);
    }

    #[test]
    fn top_update_keeps_exactly_the_highest_scoring_candidates() {
        let config = NsCachingConfig::new(5, 20).with_update_strategy(UpdateStrategy::Top);
        let mut s = NsCachingSampler::new(config, 40, CorruptionPolicy::Uniform);
        let m = model(40);
        let mut rng = seeded_rng(3);
        let pos = Triple::new(2, 0, 9);
        s.update(&pos, m.as_ref(), &mut rng);
        let cache = s.probe_head_cache(0, 9).entities;
        assert_eq!(cache.len(), 5);
        // every cached entity must score at least as high as the median entity
        let all_scores: Vec<f64> = (0..40u32).map(|e| m.score(&pos.with_head(e))).collect();
        let mut sorted = all_scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[20];
        for &e in &cache {
            assert!(all_scores[e as usize] >= median);
        }
    }

    #[test]
    fn top_sampling_returns_the_argmax_of_the_cache() {
        let config = NsCachingConfig::new(8, 8).with_sample_strategy(SampleStrategy::Top);
        let mut s = NsCachingSampler::new(config, 50, CorruptionPolicy::Uniform);
        let m = model(50);
        let mut rng = seeded_rng(4);
        let pos = Triple::new(1, 2, 3);
        let neg = s.sample(&pos, m.as_ref(), &mut rng);
        let cache = match neg.side {
            CorruptionSide::Head => s.probe_head_cache(2, 3).entities,
            CorruptionSide::Tail => s.probe_tail_cache(1, 2).entities,
        };
        let best = cache
            .iter()
            .map(|&e| m.score(&pos.corrupted(neg.side, e)))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((m.score(&neg.triple) - best).abs() < 1e-12);
    }

    #[test]
    fn lazy_update_disables_refreshes_between_periods() {
        let config = NsCachingConfig::new(4, 4).with_lazy_update(2);
        let mut s = NsCachingSampler::new(config, 30, CorruptionPolicy::Uniform);
        let m = model(30);
        let mut rng = seeded_rng(5);
        let pos = Triple::new(0, 0, 1);

        assert!(s.updates_enabled());
        s.update(&pos, m.as_ref(), &mut rng);
        assert_eq!(s.refresh_count(), 2);

        // epochs 0 and 1 finish -> period 3 means updates only after epoch 2
        s.epoch_finished(0);
        assert!(!s.updates_enabled());
        s.update(&pos, m.as_ref(), &mut rng);
        assert_eq!(s.refresh_count(), 2, "no refresh while disabled");

        s.epoch_finished(1);
        assert!(!s.updates_enabled());
        s.epoch_finished(2);
        assert!(s.updates_enabled());
        s.update(&pos, m.as_ref(), &mut rng);
        assert_eq!(s.refresh_count(), 4);
    }

    #[test]
    fn changed_elements_accumulate_and_reset() {
        let mut s = sampler(6, 20);
        let m = model(60);
        let mut rng = seeded_rng(6);
        let pos = Triple::new(5, 2, 8);
        s.update(&pos, m.as_ref(), &mut rng);
        let ce = NsCachingSampler::take_changed_elements(&mut s);
        assert!(ce > 0, "a fresh cache must change on the first update");
        assert_eq!(NsCachingSampler::take_changed_elements(&mut s), 0);
    }

    #[test]
    fn cache_memory_grows_with_touched_keys() {
        let mut s = sampler(10, 5);
        let m = model(60);
        let mut rng = seeded_rng(7);
        assert_eq!(s.cache_memory_bytes(), 0);
        for i in 0..5u32 {
            let _ = s.sample(&Triple::new(i, 0, i + 1), m.as_ref(), &mut rng);
        }
        // 5 head-cache keys + 5 tail-cache keys, 10 slots each, 4 bytes per id
        assert_eq!(s.cache_memory_bytes(), 10 * 10 * 4);
        assert_eq!(s.name(), "NSCaching");
        assert_eq!(s.extra_parameters(), 0);
    }

    #[test]
    fn prepare_shards_partitions_and_preserves_single_shard_state() {
        let mut s = sampler(8, 8);
        let m = model(60);
        let mut rng = seeded_rng(8);
        let pos = Triple::new(4, 1, 9);
        let _ = s.sample(&pos, m.as_ref(), &mut rng);
        let before = s.probe_tail_cache(4, 1).entities;
        assert!(!before.is_empty());

        // Same shard count: a no-op that keeps the cached entries.
        s.prepare_shards(1);
        assert_eq!(s.shard_count(), 1);
        assert_eq!(s.probe_tail_cache(4, 1).entities, before);

        // Re-partitioning resets the caches (ownership changes with S).
        s.prepare_shards(4);
        assert_eq!(s.shard_count(), 4);
        assert!(s.probe_tail_cache(4, 1).entities.is_empty());
        assert_eq!(s.cache_memory_bytes(), 0);
    }

    #[test]
    fn shard_workers_touch_only_their_own_shard() {
        let mut s = sampler(6, 6);
        let m = model(60);
        s.prepare_shards(3);
        let shards = s.shard_count();
        // Route a handful of positives through the workers of their shard.
        let positives: Vec<Triple> = (0..12u32).map(|i| Triple::new(i, i % 3, i + 20)).collect();
        let mut assignment = vec![Vec::new(); shards];
        for &p in &positives {
            assignment[NegativeSampler::shard_of(&s, &p, shards)].push(p);
        }
        {
            let mut workers = s.shard_workers();
            assert_eq!(workers.len(), shards);
            for (worker, task) in workers.iter_mut().zip(&assignment) {
                let mut rng = seeded_rng(9);
                for p in task {
                    let _ = worker.sample(p, m.as_ref(), &mut rng);
                    worker.update(p, m.as_ref(), &mut rng);
                }
            }
        }
        s.merge_batch();
        // Every positive's tail-cache entry is materialised in its own shard.
        for &p in &positives {
            assert_eq!(
                s.probe_tail_cache(p.head, p.relation).entities.len(),
                6,
                "entry for {p:?} must live in its assigned shard"
            );
        }
        assert!(s.refresh_count() >= 2 * positives.len() as u64);
    }
}
