//! The negative-sampler trait shared by NSCaching and every baseline.
//!
//! Since the sharded-training refactor the trait has two faces:
//!
//! * the classic **per-triple hooks** ([`NegativeSampler::sample`] /
//!   [`feedback`](NegativeSampler::feedback) /
//!   [`update`](NegativeSampler::update)), used by the sequential trainer
//!   (`shards = 1`, the paper-exact path) and by the Table I timing harness;
//! * the **shard-aware batch API** ([`NegativeSampler::prepare_shards`] /
//!   [`shard_of`](NegativeSampler::shard_of) /
//!   [`shard_workers`](NegativeSampler::shard_workers) /
//!   [`merge_batch`](NegativeSampler::merge_batch)), used by the parallel
//!   trainer. A mini-batch is partitioned by cache key so that the `S`
//!   [`ShardSampler`] workers own disjoint keyed state and can run
//!   concurrently under `std::thread::scope` without any locking — the
//!   "shared segment" idiom of sharded caches, with determinism added by
//!   giving every shard its own seeded RNG stream and merging worker
//!   feedback in ascending shard order.

use crate::state::SamplerState;
use nscaching_kg::{CorruptionSide, Triple};
use nscaching_math::split_seed;
use nscaching_models::KgeModel;
use rand::rngs::StdRng;

/// A sampled negative triple together with how it was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SampledNegative {
    /// The negative triple `(h̄, r, t)` or `(h, r, t̄)`.
    pub triple: Triple,
    /// Which side of the positive was corrupted.
    pub side: CorruptionSide,
    /// The replacement entity.
    pub entity: u32,
}

impl SampledNegative {
    /// Build the record from a positive triple, a side and the replacement.
    pub fn new(positive: &Triple, side: CorruptionSide, entity: u32) -> Self {
        Self {
            triple: positive.corrupted(side, entity),
            side,
            entity,
        }
    }
}

/// Deterministic shard assignment for a cache key pair.
///
/// Mixes both key components through SplitMix64 so that shards stay balanced
/// even when one component has low entropy (e.g. few relations), and is
/// stable across runs and platforms — a requirement for the bit-reproducible
/// parallel trainer.
pub fn shard_of_key(a: u32, b: u32, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    (split_seed(a as u64, b as u64) % shards.max(1) as u64) as usize
}

/// A per-shard worker view over a sampler's state.
///
/// Workers for different shards own disjoint state (their slice of the
/// keyed caches plus private feedback accumulators), so a batch's workers can
/// run concurrently. Each worker is driven with its shard's positives **in
/// batch order** and its own decorrelated RNG stream; any state that must
/// flow back to the whole sampler (REINFORCE gradients, reward statistics) is
/// buffered inside the shard and folded in by
/// [`NegativeSampler::merge_batch`] after the workers have been dropped.
pub trait ShardSampler: Send {
    /// Sample one negative for `positive` using this shard's state.
    fn sample(
        &mut self,
        positive: &Triple,
        model: &dyn KgeModel,
        rng: &mut StdRng,
    ) -> SampledNegative;

    /// Record the discriminator's score of a sampled negative. Generator
    /// samplers buffer the REINFORCE contribution in shard state; the default
    /// ignores the feedback.
    fn feedback(
        &mut self,
        _positive: &Triple,
        _negative: &SampledNegative,
        _reward: f64,
        _rng: &mut StdRng,
    ) {
    }

    /// Refresh shard-owned keyed state for `positive` (NSCaching's
    /// Algorithm 3 on this shard's cache entries).
    fn update(&mut self, _positive: &Triple, _model: &dyn KgeModel, _rng: &mut StdRng) {}
}

/// A negative-sampling scheme (step 5 of the paper's Algorithm 1, steps 5–8
/// of Algorithm 2).
///
/// The sequential trainer drives a sampler through three per-triple hooks:
///
/// 1. [`sample`](NegativeSampler::sample) — produce one negative for a
///    positive triple;
/// 2. [`feedback`](NegativeSampler::feedback) — report the discriminator's
///    score of that negative (only the GAN-based samplers use this, for their
///    REINFORCE update);
/// 3. [`update`](NegativeSampler::update) — refresh internal state for the
///    positive triple (NSCaching's Algorithm 3 cache update).
///
/// The parallel trainer instead partitions each mini-batch with
/// [`shard_of`](NegativeSampler::shard_of), drives one
/// [`ShardSampler`] worker per shard concurrently, and folds per-shard
/// feedback back in with [`merge_batch`](NegativeSampler::merge_batch).
///
/// `epoch_finished` is called once per epoch so samplers can implement lazy
/// updates and reset per-epoch statistics.
pub trait NegativeSampler: Send {
    /// Human-readable name used in reports (e.g. `"NSCaching"`).
    fn name(&self) -> &'static str;

    /// Sample one negative triple for `positive` under the current `model`.
    fn sample(
        &mut self,
        positive: &Triple,
        model: &dyn KgeModel,
        rng: &mut StdRng,
    ) -> SampledNegative;

    /// Report the target model's score of a sampled negative so that
    /// generator-based samplers can perform their policy-gradient update.
    /// The default implementation ignores the feedback.
    fn feedback(
        &mut self,
        _positive: &Triple,
        _negative: &SampledNegative,
        _reward: f64,
        _rng: &mut StdRng,
    ) {
    }

    /// Refresh internal state for `positive` (e.g. the NSCaching cache
    /// update of Algorithm 3). Called once per processed positive triple.
    fn update(&mut self, _positive: &Triple, _model: &dyn KgeModel, _rng: &mut StdRng) {}

    /// Re-partition keyed state into `shards` disjoint shards ahead of a
    /// parallel epoch. Must be called before
    /// [`shard_workers`](Self::shard_workers); cheap when the shard count is
    /// unchanged. Samplers without keyed state only record the count.
    fn prepare_shards(&mut self, shards: usize);

    /// Number of shards the sampler is currently partitioned into.
    fn shard_count(&self) -> usize;

    /// The shard that must process `positive` when running with `shards`
    /// shards. Must be a *key-based* pure function of `(positive, shards)`
    /// and the sampler's construction-time inputs (e.g. observed key
    /// frequencies), so the batch partition is reproducible and positives
    /// sharing a cache key always land on one shard. The default shards by
    /// the tail-cache key `(h, r)` through the uniform SplitMix64 hash;
    /// NSCaching overrides it with a load-balanced
    /// [`ShardPartition`](crate::partition::ShardPartition) when the
    /// training key frequencies have been observed.
    fn shard_of(&self, positive: &Triple, shards: usize) -> usize {
        shard_of_key(positive.head, positive.relation, shards)
    }

    /// Split into one worker per prepared shard for one mini-batch. The
    /// returned workers borrow the sampler and must be dropped before
    /// [`merge_batch`](Self::merge_batch) is called (the borrow checker
    /// enforces this).
    fn shard_workers(&mut self) -> Vec<Box<dyn ShardSampler + '_>>;

    /// Fold the per-shard feedback buffered by the workers of one mini-batch
    /// back into the sampler, in ascending shard order (deterministic
    /// reduction). Called on the main thread after the batch's workers have
    /// joined; generator samplers apply their one REINFORCE optimizer step
    /// per batch here.
    fn merge_batch(&mut self) {}

    /// Notify the sampler that an epoch has finished (0-based index).
    fn epoch_finished(&mut self, _epoch: usize) {}

    /// Number of trainable parameters owned by the sampler itself (generator
    /// parameters for the GAN baselines, 0 otherwise). Used for the Table I
    /// comparison.
    fn extra_parameters(&self) -> usize {
        0
    }

    /// Number of cache elements changed since the last call (the "CE" measure
    /// of Figure 8). Samplers without a cache report 0.
    fn take_changed_elements(&mut self) -> u64 {
        0
    }

    /// The current tail-cache contents for `positive`'s `(h, r)` key, if this
    /// sampler maintains a cache (used by the Table VI probing experiment).
    fn tail_cache_contents(&self, _positive: &Triple) -> Option<Vec<u32>> {
        None
    }

    /// The current head-cache contents for `positive`'s `(r, t)` key, if this
    /// sampler maintains a cache.
    fn head_cache_contents(&self, _positive: &Triple) -> Option<Vec<u32>> {
        None
    }

    /// Capture the sampler's evolving state at an epoch boundary, for
    /// full-state checkpointing (see [`SamplerState`]). Samplers whose state
    /// is a pure function of `(dataset, seed)` return
    /// [`SamplerState::Stateless`] — the default.
    ///
    /// The capture must be **deterministic**: two calls on the same sampler
    /// must produce identical values (keyed state sorted, no hash-map
    /// iteration order leaking through), so checkpoint bytes are stable.
    fn export_state(&self) -> SamplerState {
        SamplerState::Stateless
    }

    /// Re-apply a state captured by [`export_state`](Self::export_state) on a
    /// freshly-constructed sampler of the same configuration.
    ///
    /// Importing [`SamplerState::Stateless`] is always accepted as a no-op:
    /// it is what legacy checkpoints (written before sampler sections
    /// existed) decode to, and a stateful sampler resuming from one keeps its
    /// fresh construction-time state — a valid trajectory, just not the
    /// bit-identical one. Importing a *typed* state into the wrong sampler is
    /// an error.
    fn import_state(&mut self, state: SamplerState) -> Result<(), String> {
        match state {
            SamplerState::Stateless => Ok(()),
            other => Err(format!(
                "{} sampler cannot import {} state",
                self.name(),
                other.kind_name()
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_negative_builds_the_corrupted_triple() {
        let pos = Triple::new(1, 2, 3);
        let n = SampledNegative::new(&pos, CorruptionSide::Head, 9);
        assert_eq!(n.triple, Triple::new(9, 2, 3));
        assert_eq!(n.side, CorruptionSide::Head);
        assert_eq!(n.entity, 9);

        let n = SampledNegative::new(&pos, CorruptionSide::Tail, 9);
        assert_eq!(n.triple, Triple::new(1, 2, 9));
    }

    #[test]
    fn shard_of_key_is_stable_and_in_range() {
        for shards in 1..9usize {
            for a in 0..50u32 {
                for b in 0..5u32 {
                    let s = shard_of_key(a, b, shards);
                    assert!(s < shards);
                    assert_eq!(s, shard_of_key(a, b, shards), "assignment is pure");
                }
            }
        }
    }

    #[test]
    fn shard_of_key_spreads_keys_across_shards() {
        let shards = 4;
        let mut hit = vec![0usize; shards];
        for a in 0..200u32 {
            hit[shard_of_key(a, 0, shards)] += 1;
        }
        assert!(
            hit.iter().all(|&c| c > 20),
            "200 keys over 4 shards should land everywhere: {hit:?}"
        );
    }
}
