//! The negative-sampler trait shared by NSCaching and every baseline.

use nscaching_kg::{CorruptionSide, Triple};
use nscaching_models::KgeModel;
use rand::rngs::StdRng;

/// A sampled negative triple together with how it was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SampledNegative {
    /// The negative triple `(h̄, r, t)` or `(h, r, t̄)`.
    pub triple: Triple,
    /// Which side of the positive was corrupted.
    pub side: CorruptionSide,
    /// The replacement entity.
    pub entity: u32,
}

impl SampledNegative {
    /// Build the record from a positive triple, a side and the replacement.
    pub fn new(positive: &Triple, side: CorruptionSide, entity: u32) -> Self {
        Self {
            triple: positive.corrupted(side, entity),
            side,
            entity,
        }
    }
}

/// A negative-sampling scheme (step 5 of the paper's Algorithm 1, steps 5–8
/// of Algorithm 2).
///
/// The trainer drives a sampler through three hooks:
///
/// 1. [`sample`](NegativeSampler::sample) — produce one negative for a
///    positive triple;
/// 2. [`feedback`](NegativeSampler::feedback) — report the discriminator's
///    score of that negative (only the GAN-based samplers use this, for their
///    REINFORCE update);
/// 3. [`update`](NegativeSampler::update) — refresh internal state for the
///    positive triple (NSCaching's Algorithm 3 cache update).
///
/// `epoch_finished` is called once per epoch so samplers can implement lazy
/// updates and reset per-epoch statistics.
pub trait NegativeSampler: Send {
    /// Human-readable name used in reports (e.g. `"NSCaching"`).
    fn name(&self) -> &'static str;

    /// Sample one negative triple for `positive` under the current `model`.
    fn sample(
        &mut self,
        positive: &Triple,
        model: &dyn KgeModel,
        rng: &mut StdRng,
    ) -> SampledNegative;

    /// Report the target model's score of a sampled negative so that
    /// generator-based samplers can perform their policy-gradient update.
    /// The default implementation ignores the feedback.
    fn feedback(
        &mut self,
        _positive: &Triple,
        _negative: &SampledNegative,
        _reward: f64,
        _rng: &mut StdRng,
    ) {
    }

    /// Refresh internal state for `positive` (e.g. the NSCaching cache
    /// update of Algorithm 3). Called once per processed positive triple.
    fn update(&mut self, _positive: &Triple, _model: &dyn KgeModel, _rng: &mut StdRng) {}

    /// Notify the sampler that an epoch has finished (0-based index).
    fn epoch_finished(&mut self, _epoch: usize) {}

    /// Number of trainable parameters owned by the sampler itself (generator
    /// parameters for the GAN baselines, 0 otherwise). Used for the Table I
    /// comparison.
    fn extra_parameters(&self) -> usize {
        0
    }

    /// Number of cache elements changed since the last call (the "CE" measure
    /// of Figure 8). Samplers without a cache report 0.
    fn take_changed_elements(&mut self) -> u64 {
        0
    }

    /// The current tail-cache contents for `positive`'s `(h, r)` key, if this
    /// sampler maintains a cache (used by the Table VI probing experiment).
    fn tail_cache_contents(&self, _positive: &Triple) -> Option<Vec<u32>> {
        None
    }

    /// The current head-cache contents for `positive`'s `(r, t)` key, if this
    /// sampler maintains a cache.
    fn head_cache_contents(&self, _positive: &Triple) -> Option<Vec<u32>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_negative_builds_the_corrupted_triple() {
        let pos = Triple::new(1, 2, 3);
        let n = SampledNegative::new(&pos, CorruptionSide::Head, 9);
        assert_eq!(n.triple, Triple::new(9, 2, 3));
        assert_eq!(n.side, CorruptionSide::Head);
        assert_eq!(n.entity, 9);

        let n = SampledNegative::new(&pos, CorruptionSide::Tail, 9);
        assert_eq!(n.triple, Triple::new(1, 2, 9));
    }
}
