//! Property-based tests of the sampler invariants.

use nscaching::{
    build_sampler, CorruptionPolicy, NegativeCache, NegativeSampler, NsCachingConfig,
    NsCachingSampler, SampleStrategy, SamplerConfig, UpdateStrategy,
};
use nscaching_kg::{CorruptionSide, Triple};
use nscaching_math::seeded_rng;
use nscaching_models::{build_model, KgeModel, ModelConfig, ModelKind};
use proptest::prelude::*;

fn small_model(num_entities: usize, num_relations: usize, seed: u64) -> Box<dyn KgeModel> {
    build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(4)
            .with_seed(seed),
        num_entities,
        num_relations,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_entries_never_exceed_capacity_and_stay_in_range(
        seed in any::<u64>(),
        capacity in 1usize..20,
        num_entities in 5usize..100,
        replacements in prop::collection::vec(prop::collection::vec(0u32..1000, 0..40), 1..10),
    ) {
        let mut cache = NegativeCache::new(capacity, num_entities);
        let mut rng = seeded_rng(seed);
        let initial = cache.get_or_init((0, 0), &mut rng).to_vec();
        prop_assert_eq!(initial.len(), capacity);
        prop_assert!(initial.iter().all(|e| (*e as usize) < num_entities));
        for r in replacements {
            cache.replace((0, 0), r.clone());
            let stored = cache.peek((0, 0)).unwrap();
            prop_assert!(stored.len() <= capacity);
            prop_assert!(stored.len() == r.len().min(capacity));
        }
    }

    #[test]
    fn nscaching_negatives_always_differ_from_the_positive_relation_structure(
        seed in any::<u64>(),
        n1 in 1usize..30,
        n2 in 1usize..30,
        strategy_idx in 0usize..3,
        update_idx in 0usize..3,
    ) {
        let num_entities = 40;
        let config = NsCachingConfig::new(n1, n2)
            .with_sample_strategy(SampleStrategy::ALL[strategy_idx])
            .with_update_strategy(UpdateStrategy::ALL[update_idx]);
        let mut sampler = NsCachingSampler::new(config, num_entities, CorruptionPolicy::Uniform);
        let model = small_model(num_entities, 3, seed);
        let mut rng = seeded_rng(seed ^ 0xABCD);
        for i in 0..20u32 {
            let pos = Triple::new(i % 40, i % 3, (i + 1) % 40);
            let neg = sampler.sample(&pos, model.as_ref(), &mut rng);
            // the negative keeps the relation and exactly one endpoint
            prop_assert_eq!(neg.triple.relation, pos.relation);
            match neg.side {
                CorruptionSide::Head => prop_assert_eq!(neg.triple.tail, pos.tail),
                CorruptionSide::Tail => prop_assert_eq!(neg.triple.head, pos.head),
            }
            prop_assert!((neg.entity as usize) < num_entities);
            sampler.update(&pos, model.as_ref(), &mut rng);
            // cache sizes never exceed N1
            prop_assert!(sampler.probe_head_cache(pos.relation, pos.tail).entities.len() <= n1);
            prop_assert!(sampler.probe_tail_cache(pos.head, pos.relation).entities.len() <= n1);
        }
    }

    #[test]
    fn every_sampler_config_produces_well_formed_negatives(seed in any::<u64>(), config_idx in 0usize..5) {
        let mut gen_config = nscaching_datagen::GeneratorConfig::small("prop");
        gen_config.num_entities = 80;
        gen_config.num_train = 400;
        gen_config.num_valid = 30;
        gen_config.num_test = 30;
        gen_config.seed = seed % 3; // a few distinct datasets
        let dataset = nscaching_datagen::generate(&gen_config).unwrap();
        let configs = [
            SamplerConfig::Uniform,
            SamplerConfig::Bernoulli,
            SamplerConfig::NsCaching(NsCachingConfig::new(8, 8)),
            SamplerConfig::kbgan_default(),
            SamplerConfig::Igan { generator: ModelKind::DistMult, generator_dim: 8, generator_lr: 0.01 },
        ];
        let mut sampler = build_sampler(&configs[config_idx], &dataset, seed);
        let model = small_model(dataset.num_entities(), dataset.num_relations(), seed);
        let mut rng = seeded_rng(seed);
        for pos in dataset.train.iter().take(10) {
            let neg = sampler.sample(pos, model.as_ref(), &mut rng);
            prop_assert!((neg.entity as usize) < dataset.num_entities());
            prop_assert_eq!(neg.triple.relation, pos.relation);
            prop_assert_ne!(&neg.triple, pos);
            sampler.feedback(pos, &neg, model.score(&neg.triple), &mut rng);
            sampler.update(pos, model.as_ref(), &mut rng);
        }
    }
}
