//! Property-based tests of the sampler invariants.

use nscaching::{
    build_sampler, CorruptionPolicy, NegativeCache, NegativeSampler, NsCachingConfig,
    NsCachingSampler, SampleStrategy, SamplerConfig, UpdateStrategy,
};
use nscaching_kg::{CorruptionSide, Triple};
use nscaching_math::seeded_rng;
use nscaching_models::{build_model, KgeModel, ModelConfig, ModelKind};
use proptest::prelude::*;

fn small_model(num_entities: usize, num_relations: usize, seed: u64) -> Box<dyn KgeModel> {
    build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(4)
            .with_seed(seed),
        num_entities,
        num_relations,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_entries_never_exceed_capacity_and_stay_in_range(
        seed in any::<u64>(),
        capacity in 1usize..20,
        num_entities in 5usize..100,
        replacements in prop::collection::vec(prop::collection::vec(0u32..1000, 0..40), 1..10),
    ) {
        let mut cache = NegativeCache::new(capacity, num_entities);
        let mut rng = seeded_rng(seed);
        let initial = cache.get_or_init((0, 0), &mut rng).to_vec();
        prop_assert_eq!(initial.len(), capacity);
        prop_assert!(initial.iter().all(|e| (*e as usize) < num_entities));
        for r in replacements {
            cache.replace((0, 0), r.clone());
            let stored = cache.peek((0, 0)).unwrap();
            prop_assert!(stored.len() <= capacity);
            prop_assert!(stored.len() == r.len().min(capacity));
        }
    }

    #[test]
    fn nscaching_negatives_always_differ_from_the_positive_relation_structure(
        seed in any::<u64>(),
        n1 in 1usize..30,
        n2 in 1usize..30,
        strategy_idx in 0usize..3,
        update_idx in 0usize..3,
    ) {
        let num_entities = 40;
        let config = NsCachingConfig::new(n1, n2)
            .with_sample_strategy(SampleStrategy::ALL[strategy_idx])
            .with_update_strategy(UpdateStrategy::ALL[update_idx]);
        let mut sampler = NsCachingSampler::new(config, num_entities, CorruptionPolicy::Uniform);
        let model = small_model(num_entities, 3, seed);
        let mut rng = seeded_rng(seed ^ 0xABCD);
        for i in 0..20u32 {
            let pos = Triple::new(i % 40, i % 3, (i + 1) % 40);
            let neg = sampler.sample(&pos, model.as_ref(), &mut rng);
            // the negative keeps the relation and exactly one endpoint
            prop_assert_eq!(neg.triple.relation, pos.relation);
            match neg.side {
                CorruptionSide::Head => prop_assert_eq!(neg.triple.tail, pos.tail),
                CorruptionSide::Tail => prop_assert_eq!(neg.triple.head, pos.head),
            }
            prop_assert!((neg.entity as usize) < num_entities);
            sampler.update(&pos, model.as_ref(), &mut rng);
            // cache sizes never exceed N1
            prop_assert!(sampler.probe_head_cache(pos.relation, pos.tail).entities.len() <= n1);
            prop_assert!(sampler.probe_tail_cache(pos.head, pos.relation).entities.len() <= n1);
        }
    }

    #[test]
    fn every_sampler_config_produces_well_formed_negatives(seed in any::<u64>(), config_idx in 0usize..5) {
        let mut gen_config = nscaching_datagen::GeneratorConfig::small("prop");
        gen_config.num_entities = 80;
        gen_config.num_train = 400;
        gen_config.num_valid = 30;
        gen_config.num_test = 30;
        gen_config.seed = seed % 3; // a few distinct datasets
        let dataset = nscaching_datagen::generate(&gen_config).unwrap();
        let configs = [
            SamplerConfig::Uniform,
            SamplerConfig::Bernoulli,
            SamplerConfig::NsCaching(NsCachingConfig::new(8, 8)),
            SamplerConfig::kbgan_default(),
            SamplerConfig::Igan { generator: ModelKind::DistMult, generator_dim: 8, generator_lr: 0.01 },
        ];
        let mut sampler = build_sampler(&configs[config_idx], &dataset, seed);
        let model = small_model(dataset.num_entities(), dataset.num_relations(), seed);
        let mut rng = seeded_rng(seed);
        for pos in dataset.train.iter().take(10) {
            let neg = sampler.sample(pos, model.as_ref(), &mut rng);
            prop_assert!((neg.entity as usize) < dataset.num_entities());
            prop_assert_eq!(neg.triple.relation, pos.relation);
            prop_assert_ne!(&neg.triple, pos);
            sampler.feedback(pos, &neg, model.score(&neg.triple), &mut rng);
            sampler.update(pos, model.as_ref(), &mut rng);
        }
    }

    #[test]
    fn sharding_a_batch_covers_every_positive_with_disjoint_cache_keys(
        seed in any::<u64>(),
        shards in 1usize..8,
        batch_len in 1usize..150,
    ) {
        use std::collections::HashSet;

        // A random mini-batch (duplicates allowed, as in a real epoch).
        let mut rng = seeded_rng(seed);
        let positives: Vec<Triple> = (0..batch_len)
            .map(|_| {
                Triple::new(
                    rand::Rng::gen_range(&mut rng, 0..60u32),
                    rand::Rng::gen_range(&mut rng, 0..6u32),
                    rand::Rng::gen_range(&mut rng, 0..60u32),
                )
            })
            .collect();
        let mut sampler =
            NsCachingSampler::new(NsCachingConfig::new(5, 5), 60, CorruptionPolicy::Uniform);
        sampler.prepare_shards(shards);
        prop_assert_eq!(NegativeSampler::shard_count(&sampler), shards);

        // Stage-1 partition exactly as the parallel trainer performs it.
        let mut tasks: Vec<Vec<Triple>> = vec![Vec::new(); shards];
        for &p in &positives {
            let s = NegativeSampler::shard_of(&sampler, &p, shards);
            prop_assert!(s < shards, "assignment in range");
            prop_assert!(
                s == NegativeSampler::shard_of(&sampler, &p, shards),
                "assignment is a pure function"
            );
            tasks[s].push(p);
        }
        // Every positive lands in exactly one shard.
        prop_assert_eq!(
            tasks.iter().map(|t| t.len()).sum::<usize>(),
            positives.len()
        );
        // The tail-cache keys (h, r) owned by different shards are disjoint,
        // so concurrent Algorithm 3 refreshes can never touch the same entry.
        let key_sets: Vec<HashSet<(u32, u32)>> = tasks
            .iter()
            .map(|t| t.iter().map(|p| p.head_relation()).collect())
            .collect();
        for i in 0..shards {
            for j in (i + 1)..shards {
                prop_assert!(
                    key_sets[i].is_disjoint(&key_sets[j]),
                    "shards {i} and {j} share a cache key"
                );
            }
        }
    }

    #[test]
    fn frequency_aware_partition_is_deterministic_disjoint_and_balanced(
        seed in any::<u64>(),
        shards in 2usize..8,
        num_keys in 1usize..80,
        hub_weight in 1u64..200,
    ) {
        use std::collections::HashSet;

        // A skewed synthetic training split: one hub (h, r) key with
        // `hub_weight` positives plus a tail of single-positive keys.
        let mut rng = seeded_rng(seed);
        let mut train: Vec<Triple> = Vec::new();
        for _ in 0..hub_weight {
            train.push(Triple::new(0, 0, rand::Rng::gen_range(&mut rng, 1..50u32)));
        }
        for k in 0..num_keys as u32 {
            train.push(Triple::new(k % 60, 1 + k % 5, rand::Rng::gen_range(&mut rng, 0..60u32)));
        }

        let build = || {
            let mut s = NsCachingSampler::new(
                NsCachingConfig::new(5, 5),
                60,
                CorruptionPolicy::Uniform,
            )
            .with_observed_keys(&train);
            NegativeSampler::prepare_shards(&mut s, shards);
            s
        };
        let a = build();
        let b = build();

        let mut loads = vec![0u64; shards];
        let mut key_owner: Vec<HashSet<(u32, u32)>> = vec![HashSet::new(); shards];
        for p in &train {
            let s = NegativeSampler::shard_of(&a, p, shards);
            prop_assert!(s < shards, "assignment in range");
            // Deterministic: an independently built sampler agrees.
            prop_assert_eq!(s, NegativeSampler::shard_of(&b, p, shards));
            // Stable: asking twice agrees.
            prop_assert_eq!(s, NegativeSampler::shard_of(&a, p, shards));
            loads[s] += 1;
            key_owner[s].insert(p.head_relation());
        }
        // Key-based ⇒ cache keys stay disjoint across shards.
        for i in 0..shards {
            for j in (i + 1)..shards {
                prop_assert!(
                    key_owner[i].is_disjoint(&key_owner[j]),
                    "shards {i} and {j} share a cache key"
                );
            }
        }
        // LPT balance bound: no shard exceeds average + heaviest key.
        let total: u64 = loads.iter().sum();
        let mut key_weights: std::collections::HashMap<(u32, u32), u64> =
            std::collections::HashMap::new();
        for p in &train {
            *key_weights.entry(p.head_relation()).or_insert(0) += 1;
        }
        let heaviest = *key_weights.values().max().unwrap();
        let max = *loads.iter().max().unwrap();
        prop_assert!(
            max <= total / shards as u64 + heaviest,
            "load {max} exceeds the LPT bound (loads {loads:?}, heaviest {heaviest})"
        );
    }
}
