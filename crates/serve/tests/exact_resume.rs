//! The exact-resume proof: a run checkpointed mid-training and resumed from
//! disk produces **bit-for-bit** the same embeddings and evaluation metrics
//! as the uninterrupted run — for all 7 scoring functions × 3 optimizers at
//! shards ∈ {1, 4} (the sequential paper-exact engine and the pooled
//! parallel engine), and for every *stateful* sampler (NSCaching, KBGAN,
//! IGAN), whose evolving state rides in the checkpoint's sampler section.
//!
//! Why this is provable rather than approximate: the trajectory is a pure
//! function of (tables, optimizer slabs, master-RNG state, batch
//! permutation, epoch counter, sampler state, config). The checkpoint
//! carries all but the config; the parallel engine's per-shard streams are
//! re-derived from `(seed, epoch, shard)` via SplitMix64, so the restored
//! epoch counter reproduces them exactly. The Bernoulli sampler is a pure
//! function of `(dataset, sampler seed)`, so rebuilding it restores the
//! sampler side for free; the stateful samplers restore theirs through
//! `NegativeSampler::import_state` (NSCaching's per-shard `H`/`T` caches,
//! a GAN sampler's generator tables, optimizer slabs and baseline).

use nscaching::{NsCachingConfig, SamplerConfig};
use nscaching_datagen::GeneratorConfig;
use nscaching_eval::EvalProtocol;
use nscaching_kg::Dataset;
use nscaching_models::{build_model, KgeModel, ModelConfig, ModelKind};
use nscaching_optim::OptimizerConfig;
use nscaching_serve::{load_checkpoint, resume_trainer, save_checkpoint};
use nscaching_train::{TrainConfig, Trainer};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const TOTAL_EPOCHS: usize = 3;
const INTERRUPT_AFTER: usize = 1;

fn tempfile(name: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("nscaching-exact-resume");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{name}-{}-{}.ckpt",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn dataset() -> Dataset {
    let mut c = GeneratorConfig::small("exact-resume");
    c.num_entities = 80;
    c.num_train = 400;
    c.num_valid = 40;
    c.num_test = 40;
    c.seed = 5;
    nscaching_datagen::generate(&c).unwrap()
}

fn optimizer_config(opt: usize) -> OptimizerConfig {
    match opt {
        0 => OptimizerConfig::sgd(0.02),
        1 => OptimizerConfig::adagrad(0.02),
        _ => OptimizerConfig::adam(0.02),
    }
}

fn trainer_config(opt: usize, shards: usize) -> TrainConfig {
    TrainConfig::new(TOTAL_EPOCHS)
        .with_batch_size(64)
        .with_optimizer(optimizer_config(opt))
        .with_seed(9)
        .with_shards(shards)
}

fn build_trainer(
    ds: &Dataset,
    kind: ModelKind,
    sampler: &SamplerConfig,
    opt: usize,
    shards: usize,
) -> Trainer {
    let model = build_model(
        &ModelConfig::new(kind).with_dim(6).with_seed(2),
        ds.num_entities(),
        ds.num_relations(),
    );
    let sampler = nscaching::build_sampler(sampler, ds, 4);
    Trainer::new(model, sampler, ds, trainer_config(opt, shards))
}

fn eval_fingerprint(trainer: &Trainer) -> (u64, u64, u64) {
    let report = trainer.evaluate(&EvalProtocol::filtered().with_max_triples(25));
    (
        report.combined.mrr.to_bits(),
        report.combined.hits_at_10.to_bits(),
        report.combined.mean_rank.to_bits(),
    )
}

fn assert_models_bitwise_equal(a: &dyn KgeModel, b: &dyn KgeModel, context: &str) {
    for (x, y) in a.tables().iter().zip(b.tables()) {
        assert_eq!(x.name(), y.name(), "{context}");
        let diverged = x
            .data()
            .iter()
            .zip(y.data())
            .filter(|(p, q)| p.to_bits() != q.to_bits())
            .count();
        assert_eq!(
            diverged,
            0,
            "{context}: table {} diverged in {diverged}/{} entries",
            x.name(),
            x.data().len()
        );
    }
}

/// One cell of the matrix: train uninterrupted; train → checkpoint → load →
/// resume → finish; compare bits. The resume side gets a **freshly built**
/// sampler — for stateful samplers its evolving state must come back from the
/// checkpoint's sampler section, or the comparison fails.
fn assert_exact_resume_with(
    ds: &Dataset,
    kind: ModelKind,
    sampler: &SamplerConfig,
    opt: usize,
    shards: usize,
) {
    // Uninterrupted reference.
    let mut reference = build_trainer(ds, kind, sampler, opt, shards);
    for _ in 0..TOTAL_EPOCHS {
        reference.train_epoch();
    }

    // Interrupted run, checkpointed to disk at the interrupt point.
    let mut interrupted = build_trainer(ds, kind, sampler, opt, shards);
    for _ in 0..INTERRUPT_AFTER {
        interrupted.train_epoch();
    }
    let path = tempfile(&format!(
        "{kind:?}-{}-{opt}-{shards}",
        sampler.display_name()
    ));
    save_checkpoint(&path, &interrupted).unwrap();
    drop(interrupted); // the process "dies" here

    // A fresh process resumes from the file alone (plus dataset + config).
    let checkpoint = load_checkpoint(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let fresh = nscaching::build_sampler(sampler, ds, 4);
    let mut resumed = resume_trainer(checkpoint, fresh, ds, trainer_config(opt, shards)).unwrap();
    assert_eq!(resumed.epochs_done(), INTERRUPT_AFTER);
    while resumed.epochs_done() < TOTAL_EPOCHS {
        resumed.train_epoch();
    }

    let context = format!(
        "{kind:?} / {} / optimizer {opt} / {shards} shard(s)",
        sampler.display_name()
    );
    assert_models_bitwise_equal(reference.model(), resumed.model(), &context);
    assert_eq!(
        resumed.checkpoint().sampler,
        reference.checkpoint().sampler,
        "{context}: sampler state diverged"
    );
    assert_eq!(
        eval_fingerprint(&reference),
        eval_fingerprint(&resumed),
        "{context}: evaluation metrics diverged"
    );
}

fn assert_exact_resume(ds: &Dataset, kind: ModelKind, opt: usize, shards: usize) {
    assert_exact_resume_with(ds, kind, &SamplerConfig::Bernoulli, opt, shards);
}

/// The stateful samplers whose state rides in the checkpoint's sampler
/// section, with small generators to keep the matrix fast.
fn stateful_samplers() -> Vec<SamplerConfig> {
    vec![
        SamplerConfig::NsCaching(NsCachingConfig::default()),
        SamplerConfig::KbGan {
            generator: ModelKind::TransE,
            generator_dim: 6,
            candidate_size: 10,
            generator_lr: 0.01,
        },
        SamplerConfig::Igan {
            generator: ModelKind::TransE,
            generator_dim: 6,
            generator_lr: 0.01,
        },
    ]
}

#[test]
fn exact_resume_all_models_all_optimizers_sequential() {
    let ds = dataset();
    for kind in ModelKind::ALL {
        for opt in 0..3 {
            assert_exact_resume(&ds, kind, opt, 1);
        }
    }
}

#[test]
fn exact_resume_all_models_all_optimizers_four_shards() {
    let ds = dataset();
    for kind in ModelKind::ALL {
        for opt in 0..3 {
            assert_exact_resume(&ds, kind, opt, 4);
        }
    }
}

/// Satellite of the crash-recovery PR: the same bit-for-bit guarantee for
/// the *stateful* samplers, at both engine shapes. A freshly built sampler
/// plus the checkpoint's sampler section must equal the sampler that never
/// died.
#[test]
fn exact_resume_stateful_samplers_sequential() {
    let ds = dataset();
    for sampler in stateful_samplers() {
        assert_exact_resume_with(&ds, ModelKind::TransE, &sampler, 2, 1);
    }
}

#[test]
fn exact_resume_stateful_samplers_four_shards() {
    let ds = dataset();
    for sampler in stateful_samplers() {
        assert_exact_resume_with(&ds, ModelKind::TransE, &sampler, 2, 4);
    }
}

/// `Trainer::run` semantics after a resume: only the remaining epoch budget
/// runs, and the final report matches the uninterrupted run's bits.
#[test]
fn resumed_run_consumes_only_the_remaining_budget() {
    let ds = dataset();
    let mut reference = build_trainer(&ds, ModelKind::TransE, &SamplerConfig::Bernoulli, 2, 1);
    let reference_history = reference.run();
    assert_eq!(reference_history.epochs.len(), TOTAL_EPOCHS);
    let reference_mrr = reference_history.final_mrr().unwrap();

    let mut interrupted = build_trainer(&ds, ModelKind::TransE, &SamplerConfig::Bernoulli, 2, 1);
    interrupted.train_epoch();
    let path = tempfile("run-budget");
    save_checkpoint(&path, &interrupted).unwrap();

    let checkpoint = load_checkpoint(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let sampler = nscaching::build_sampler(&SamplerConfig::Bernoulli, &ds, 4);
    let mut resumed = resume_trainer(checkpoint, sampler, &ds, trainer_config(2, 1)).unwrap();
    let resumed_history = resumed.run();
    assert_eq!(
        resumed_history.epochs.len(),
        TOTAL_EPOCHS - INTERRUPT_AFTER,
        "run() must only consume the remaining budget"
    );
    assert_eq!(
        resumed_history.final_mrr().unwrap().to_bits(),
        reference_mrr.to_bits()
    );
}
