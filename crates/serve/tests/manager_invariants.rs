#![recursion_limit = "512"] // the vendored proptest! macro is expansion-heavy
//! Property tests for [`CheckpointManager`]'s retention and quarantine
//! invariants under random save/corrupt churn:
//!
//! * **retention** — after any sequence of saves, exactly the newest `keep`
//!   live checkpoints remain, with consecutive, monotonically increasing
//!   sequence numbers (nothing is ever overwritten in place);
//! * **quarantine** — randomly corrupting any subset of live files never
//!   makes recovery fail while at least one valid file survives: recovery
//!   returns the newest *valid* checkpoint, quarantines every corrupt newer
//!   one with its bytes preserved byte-for-byte, and the next save never
//!   reuses a quarantined sequence number.

use nscaching::SamplerConfig;
use nscaching_datagen::GeneratorConfig;
use nscaching_kg::Dataset;
use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_optim::OptimizerConfig;
use nscaching_serve::{CheckpointManager, SnapshotError};
use nscaching_train::{TrainConfig, Trainer};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn fresh_dir() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir()
        .join("nscaching-manager-invariants")
        .join(format!(
            "{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The smallest trainer that can be checkpointed (never trained — the
/// manager only cares that `save` produces a valid frame).
fn tiny_trainer() -> Trainer {
    let mut c = GeneratorConfig::small("manager-invariants");
    c.num_entities = 20;
    c.num_train = 40;
    c.num_valid = 5;
    c.num_test = 5;
    c.seed = 3;
    let ds: Dataset = nscaching_datagen::generate(&c).unwrap();
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE).with_dim(2).with_seed(1),
        ds.num_entities(),
        ds.num_relations(),
    );
    let sampler = nscaching::build_sampler(&SamplerConfig::Bernoulli, &ds, 2);
    let config = TrainConfig::new(1)
        .with_batch_size(16)
        .with_optimizer(OptimizerConfig::sgd(0.01))
        .with_seed(2);
    Trainer::new(model, sampler, &ds, config)
}

/// One way to break a checkpoint file on disk.
#[derive(Debug, Clone, Copy)]
enum Corruption {
    /// Replace the file with bytes that are not a frame at all.
    Garbage,
    /// Cut the frame in half (payload truncation).
    Truncate,
    /// Flip one bit in the middle (checksum mismatch).
    BitFlip,
}

fn corrupt(path: &std::path::Path, how: Corruption) -> Vec<u8> {
    let mut bytes = std::fs::read(path).unwrap();
    match how {
        Corruption::Garbage => bytes = b"not a snapshot frame at all".to_vec(),
        Corruption::Truncate => bytes.truncate(bytes.len() / 2),
        Corruption::BitFlip => {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
        }
    }
    std::fs::write(path, &bytes).unwrap();
    bytes
}

const CORRUPTIONS: [Corruption; 3] = [
    Corruption::Garbage,
    Corruption::Truncate,
    Corruption::BitFlip,
];

fn corruption_strategy() -> impl Strategy<Value = Corruption> {
    (0usize..CORRUPTIONS.len()).prop_map(|i| CORRUPTIONS[i])
}

/// Body of `retention_keeps_exactly_the_newest` (a plain function keeps the
/// proptest! macro expansion shallow).
fn check_retention(saves: usize, keep: usize) -> Result<(), TestCaseError> {
    let dir = fresh_dir();
    let trainer = tiny_trainer();
    let manager = CheckpointManager::new(&dir, keep).unwrap();
    let keep = keep.max(1); // the manager clamps keep to at least 1
    for _ in 0..saves {
        manager.save(&trainer).unwrap();
    }

    let entries = manager.entries().unwrap();
    prop_assert_eq!(entries.len(), saves.min(keep));
    let expected: Vec<u64> = (0..saves as u64).rev().take(keep).collect();
    let got: Vec<u64> = entries.iter().map(|e| e.seq).collect();
    prop_assert_eq!(got, expected);
    for (entry, verdict) in manager.list_verified().unwrap() {
        prop_assert!(
            verdict.is_ok(),
            "retained {:?} failed verification",
            entry.path
        );
    }
    prop_assert!(manager.quarantined().unwrap().is_empty());
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

/// Body of `corruption_falls_back_to_newest_valid`.
fn check_quarantine(saves: usize, broken: usize, how: &[Corruption]) -> Result<(), TestCaseError> {
    let dir = fresh_dir();
    let trainer = tiny_trainer();
    // Keep them all so there is always a valid file to fall back to.
    let manager = CheckpointManager::new(&dir, 16).unwrap();
    for _ in 0..saves {
        manager.save(&trainer).unwrap();
    }
    let entries = manager.entries().unwrap();
    let broken = broken.min(saves - 1); // leave at least one file valid
    let mut broken_bytes = Vec::new();
    for (entry, how) in entries.iter().zip(how).take(broken) {
        broken_bytes.push((entry.clone(), corrupt(&entry.path, *how)));
    }

    let recovery = manager.recover().unwrap().expect("a valid file survives");
    // Newest valid wins: everything newer was corrupted.
    prop_assert_eq!(recovery.path, entries[broken].path.clone());
    prop_assert_eq!(recovery.quarantined.len(), broken);
    for ((entry, bytes), (from, to, error)) in broken_bytes.iter().zip(&recovery.quarantined) {
        prop_assert_eq!(from, &entry.path);
        prop_assert!(
            !matches!(error, SnapshotError::Io(_)),
            "typed reason, not I/O"
        );
        // Quarantine preserves the corrupt bytes for inspection.
        prop_assert_eq!(&std::fs::read(to).unwrap(), bytes);
    }
    // The corrupt files are out of the live set but still on disk.
    prop_assert_eq!(manager.entries().unwrap().len(), saves - broken);
    prop_assert_eq!(manager.quarantined().unwrap().len(), broken);

    // A quarantined newest must never get its sequence number reused.
    let next = manager.save(&trainer).unwrap();
    let newest = manager.entries().unwrap()[0].clone();
    prop_assert_eq!(&newest.path, &next);
    prop_assert_eq!(newest.seq, saves as u64);
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn retention_keeps_exactly_the_newest(saves in 1usize..10, keep in 0usize..5) {
        check_retention(saves, keep)?;
    }

    #[test]
    fn corruption_falls_back_to_newest_valid(
        saves in 2usize..7,
        broken in 1usize..6,
        how in prop::collection::vec(corruption_strategy(), 6),
    ) {
        check_quarantine(saves, broken, &how)?;
    }
}

/// Recovery on a directory that never saw a save is a clean first boot.
#[test]
fn empty_directory_recovers_to_none() {
    let dir = fresh_dir();
    let manager = CheckpointManager::new(&dir, 3).unwrap();
    assert!(manager.recover().unwrap().is_none());
    assert!(manager.entries().unwrap().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
