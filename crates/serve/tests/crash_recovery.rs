//! The kill-anywhere crash harness: a child process runs a train → checkpoint
//! loop with stateful samplers while `NSC_CRASH_AT=<k>` makes it die **hard**
//! (`abort`, no cleanup — the on-disk effect of `SIGKILL`) at the `k`-th
//! instrumented crash point it passes. Sweeping `k` over every reachable
//! point enumerates every interesting kill schedule deterministically:
//! mid-temp-write (torn staging file), between fsync and rename, after rename
//! before the directory fsync, and between the deletes of a rotation.
//!
//! For every schedule the parent then proves the last-good guarantee from the
//! child's wreckage alone:
//!
//! 1. [`CheckpointManager::recover`] finds a valid checkpoint whenever at
//!    least one save completed before the kill (progress is known from the
//!    child's per-save log, written with unbuffered appends so `abort` cannot
//!    lose it);
//! 2. the recovered checkpoint is the *last good* one — its epoch is the last
//!    logged save, or one past it when the kill hit rotation after the new
//!    frame was already durable;
//! 3. resuming it and finishing the run reproduces the uninterrupted
//!    reference **bit-for-bit**: embedding tables, sampler state (NSCaching
//!    caches / GAN generator + baseline) and evaluation metrics.
//!
//! The matrix covers the three stateful samplers at shards ∈ {1, 4}, which
//! puts the number of distinct kill schedules above the 200 the robustness
//! bar asks for (asserted at the end, so shrinking the loop cannot silently
//! weaken the suite).

use nscaching::{NsCachingConfig, SamplerConfig};
use nscaching_datagen::GeneratorConfig;
use nscaching_eval::EvalProtocol;
use nscaching_kg::Dataset;
use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_optim::OptimizerConfig;
use nscaching_serve::crash::CRASH_AT_ENV;
use nscaching_serve::{resume_trainer, CheckpointManager};
use nscaching_train::{TrainConfig, Trainer};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

/// Marks a spawned copy of this binary as the crash child.
const CHILD_ENV: &str = "NSC_CRASH_CHILD";
/// Sampler name for the child: `nscaching` | `kbgan` | `igan`.
const SAMPLER_ENV: &str = "NSC_CRASH_SAMPLER";
/// Shard count for the child's trainer.
const SHARDS_ENV: &str = "NSC_CRASH_SHARDS";
/// Checkpoint directory the child saves into.
const DIR_ENV: &str = "NSC_CRASH_DIR";
/// Progress log the child appends to (unbuffered, survives `abort`).
const LOG_ENV: &str = "NSC_CRASH_LOG";

/// Epochs the child trains, one checkpoint per epoch.
const EPOCHS: usize = 7;
/// Retention limit handed to the manager (small, so rotation runs often).
const KEEP: usize = 2;
/// A crash index no schedule reaches: the counting run completes normally.
const BEYOND_REACH: u64 = 1_000_000;
/// Concurrent child processes per sweep.
const PARALLEL: usize = 8;

fn dataset() -> Dataset {
    let mut c = GeneratorConfig::small("crash-recovery");
    c.num_entities = 60;
    c.num_train = 300;
    c.num_valid = 30;
    c.num_test = 30;
    c.seed = 11;
    nscaching_datagen::generate(&c).unwrap()
}

fn sampler_config(name: &str) -> SamplerConfig {
    match name {
        "nscaching" => SamplerConfig::NsCaching(NsCachingConfig::default()),
        "kbgan" => SamplerConfig::KbGan {
            generator: ModelKind::TransE,
            generator_dim: 6,
            candidate_size: 10,
            generator_lr: 0.01,
        },
        "igan" => SamplerConfig::Igan {
            generator: ModelKind::TransE,
            generator_dim: 6,
            generator_lr: 0.01,
        },
        other => panic!("unknown sampler {other:?}"),
    }
}

fn build_trainer(ds: &Dataset, sampler: &str, shards: usize) -> Trainer {
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE).with_dim(6).with_seed(3),
        ds.num_entities(),
        ds.num_relations(),
    );
    let sampler = nscaching::build_sampler(&sampler_config(sampler), ds, 7);
    let config = TrainConfig::new(EPOCHS)
        .with_batch_size(64)
        .with_optimizer(OptimizerConfig::adam(0.02))
        .with_seed(13)
        .with_shards(shards);
    Trainer::new(model, sampler, ds, config)
}

fn eval_fingerprint(trainer: &Trainer) -> (u64, u64) {
    let report = trainer.evaluate(&EvalProtocol::filtered().with_max_triples(20));
    (
        report.combined.mrr.to_bits(),
        report.combined.hits_at_10.to_bits(),
    )
}

/// Bit patterns of every embedding table, in table order.
fn model_bits(trainer: &Trainer) -> Vec<Vec<u64>> {
    trainer
        .model()
        .tables()
        .iter()
        .map(|t| t.data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// The child body: train, checkpointing every epoch, logging each completed
/// save with an unbuffered append (an `abort` mid-save therefore loses at
/// most the save in flight, never the record of a finished one).
fn child_main() -> ! {
    let sampler = std::env::var(SAMPLER_ENV).unwrap();
    let shards: usize = std::env::var(SHARDS_ENV).unwrap().parse().unwrap();
    let dir = PathBuf::from(std::env::var(DIR_ENV).unwrap());
    let log_path = PathBuf::from(std::env::var(LOG_ENV).unwrap());
    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&log_path)
        .unwrap();

    let ds = dataset();
    let mut trainer = build_trainer(&ds, &sampler, shards);
    let manager = CheckpointManager::new(&dir, KEEP).unwrap();
    for epoch in 1..=EPOCHS {
        trainer.train_epoch();
        manager.save(&trainer).unwrap();
        writeln!(log, "SAVED {epoch}").unwrap();
    }
    writeln!(
        log,
        "POINTS {}",
        nscaching_serve::crash::crash_points_passed()
    )
    .unwrap();
    std::process::exit(0);
}

/// What the child's progress log says happened before the process died.
#[derive(Debug, Default)]
struct ChildLog {
    /// Highest epoch whose `manager.save` returned before the kill.
    last_saved: usize,
    /// Total crash points passed (present only when the child ran to the end).
    points: Option<u64>,
}

fn read_log(path: &Path) -> ChildLog {
    let mut parsed = ChildLog::default();
    let Ok(text) = std::fs::read_to_string(path) else {
        return parsed;
    };
    for line in text.lines() {
        if let Some(epoch) = line.strip_prefix("SAVED ") {
            parsed.last_saved = epoch.parse().unwrap();
        } else if let Some(points) = line.strip_prefix("POINTS ") {
            parsed.points = Some(points.parse().unwrap());
        }
    }
    parsed
}

/// Spawn this test binary as a crash child and wait for it to die (or, for
/// the counting run, finish). Returns whether it exited successfully.
fn run_child(sampler: &str, shards: usize, dir: &Path, log: &Path, crash_at: u64) -> bool {
    let status = Command::new(std::env::current_exe().unwrap())
        .args(["--exact", "kill_anywhere_recovery_matrix", "--nocapture"])
        .env(CHILD_ENV, "1")
        .env(CRASH_AT_ENV, crash_at.to_string())
        .env(SAMPLER_ENV, sampler)
        .env(SHARDS_ENV, shards.to_string())
        .env(DIR_ENV, dir)
        .env(LOG_ENV, log)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn crash child");
    status.success()
}

/// Per-config scratch space, wiped before every child run.
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("nscaching-crash-recovery")
        .join(format!("{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The uninterrupted run's final state, shared read-only across the sweep.
struct Reference {
    bits: Vec<Vec<u64>>,
    sampler_state: nscaching::SamplerState,
    eval: (u64, u64),
}

/// Verify one kill schedule: recover from the wreckage, resume, finish, and
/// compare bits against the reference.
fn verify_schedule(
    ds: &Dataset,
    reference: &Reference,
    sampler: &str,
    shards: usize,
    crash_at: u64,
) {
    let tag = format!("{sampler}-{shards}-k{crash_at}");
    let dir = fresh_dir(&tag);
    let log_path = dir.join("progress.log");
    let clean_exit = run_child(sampler, shards, &dir, &log_path, crash_at);
    assert!(
        !clean_exit,
        "{tag}: child survived a crash schedule that should have killed it"
    );
    let progress = read_log(&log_path);

    let manager = CheckpointManager::new(&dir, KEEP).unwrap();
    let recovery = manager.recover().unwrap();
    let Some(recovery) = recovery else {
        assert_eq!(
            progress.last_saved, 0,
            "{tag}: {} saves completed but recovery found no checkpoint",
            progress.last_saved
        );
        let _ = std::fs::remove_dir_all(&dir);
        return;
    };
    assert!(
        recovery.quarantined.is_empty(),
        "{tag}: a hard kill must never leave a corrupt *live* checkpoint \
         (atomic rename), yet recovery quarantined {:?}",
        recovery.quarantined
    );

    let config = TrainConfig::new(EPOCHS)
        .with_batch_size(64)
        .with_optimizer(OptimizerConfig::adam(0.02))
        .with_seed(13)
        .with_shards(shards);
    let fresh_sampler = nscaching::build_sampler(&sampler_config(sampler), ds, 7);
    let mut resumed = resume_trainer(recovery.checkpoint, fresh_sampler, ds, config)
        .unwrap_or_else(|e| panic!("{tag}: recovered checkpoint failed to resume: {e}"));

    // Last-good: every logged save survives the kill; a kill inside rotation
    // (or between rename and directory fsync) may additionally have made the
    // *next* save durable before its `SAVED` line was written.
    let epoch = resumed.epochs_done();
    assert!(
        epoch == progress.last_saved || epoch == progress.last_saved + 1,
        "{tag}: recovered epoch {epoch} but the log proves {} completed saves",
        progress.last_saved
    );

    while resumed.epochs_done() < EPOCHS {
        resumed.train_epoch();
    }
    assert_eq!(
        model_bits(&resumed),
        reference.bits,
        "{tag}: embeddings diverged after crash-recovery resume"
    );
    assert_eq!(
        resumed.checkpoint().sampler,
        reference.sampler_state,
        "{tag}: sampler state diverged after crash-recovery resume"
    );
    assert_eq!(
        eval_fingerprint(&resumed),
        reference.eval,
        "{tag}: evaluation metrics diverged after crash-recovery resume"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_anywhere_recovery_matrix() {
    if std::env::var(CHILD_ENV).is_ok() {
        child_main();
    }

    let ds = Arc::new(dataset());
    let mut total_schedules = 0u64;
    for sampler in ["nscaching", "kbgan", "igan"] {
        for shards in [1usize, 4] {
            // Counting run: the child completes untouched (the crash index is
            // beyond reach) and reports how many crash points the full loop
            // passes — that is the schedule space for this configuration.
            let tag = format!("{sampler}-{shards}-count");
            let dir = fresh_dir(&tag);
            let log_path = dir.join("progress.log");
            assert!(
                run_child(sampler, shards, &dir, &log_path, BEYOND_REACH),
                "{tag}: counting child failed"
            );
            let counted = read_log(&log_path);
            assert_eq!(counted.last_saved, EPOCHS);
            let points = counted.points.expect("counting child must report POINTS");
            assert!(
                points > 0,
                "no crash points reached — harness is wired up wrong"
            );
            let _ = std::fs::remove_dir_all(&dir);
            total_schedules += points;

            // Uninterrupted reference, computed once in-process.
            let mut reference_trainer = build_trainer(&ds, sampler, shards);
            for _ in 0..EPOCHS {
                reference_trainer.train_epoch();
            }
            let reference = Arc::new(Reference {
                bits: model_bits(&reference_trainer),
                sampler_state: reference_trainer.checkpoint().sampler,
                eval: eval_fingerprint(&reference_trainer),
            });
            drop(reference_trainer);

            // Sweep every schedule, a few children at a time.
            std::thread::scope(|scope| {
                for worker in 0..PARALLEL {
                    let ds = Arc::clone(&ds);
                    let reference = Arc::clone(&reference);
                    scope.spawn(move || {
                        let mut crash_at = worker as u64;
                        while crash_at < points {
                            verify_schedule(&ds, &reference, sampler, shards, crash_at);
                            crash_at += PARALLEL as u64;
                        }
                    });
                }
            });
        }
    }
    assert!(
        total_schedules >= 200,
        "robustness bar: need at least 200 distinct kill schedules, got {total_schedules}"
    );
}
