//! Property tests for the pluggable eviction policies and their serving
//! integration.
//!
//! Two layers, mirroring `lru_invariants.rs`:
//!
//! 1. Every [`PolicyKind`] (through `PolicyCache`) against a brute-force
//!    reference model under random insert/get/remove churn. The references
//!    re-state each policy's *specification* in the dumbest possible terms —
//!    linear scans over `(key, freq, priority, last-touch)` tuples — so a
//!    divergence means the intrusive-list implementation broke the spec, not
//!    that two copies of the same code agree with each other.
//! 2. [`KnowledgeServer`] staleness under interleaved queries, scores and
//!    model updates, for **every policy at 1 and 4 shards**: no combination
//!    of eviction policy and shard count may ever serve an answer computed
//!    against retired model tables. A cacheless twin server receiving the
//!    identical update stream provides the ground truth for the score cache
//!    (including its negative entries).

// The vendored proptest macro is expansion-hungry at this op-tuple width.
#![recursion_limit = "512"]

use nscaching_kg::Triple;
use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_serve::{
    CacheConfig, EvictionPolicy, KnowledgeServer, PolicyCache, PolicyKind, QueryScratch, TopKQuery,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Brute-force reference models
// ---------------------------------------------------------------------------

/// One live key in a reference model, with every book any policy needs.
#[derive(Debug, Clone, Copy)]
struct RefEntry {
    key: u32,
    value: u64,
    /// Access count (LFU/LFUDA).
    freq: u64,
    /// LFUDA priority (`age-at-last-access + freq`).
    priority: u64,
    /// Monotone stamp of the last bucket (re-)attachment — the LRU
    /// tie-breaker inside a frequency/priority bucket.
    touch: u64,
    /// SLRU segment flag.
    protected: bool,
}

/// A reference cache: the policy specification executed by linear scans.
struct RefCache {
    kind: PolicyKind,
    entries: Vec<RefEntry>,
    capacity: usize,
    /// SLRU protected-segment cap (⌈4/5⌉ of capacity, as implemented).
    protected_capacity: usize,
    /// LFUDA aging factor.
    age: u64,
    /// Monotone event clock.
    clock: u64,
}

impl RefCache {
    fn new(kind: PolicyKind, capacity: usize) -> Self {
        Self {
            kind,
            entries: Vec::new(),
            capacity,
            protected_capacity: capacity * 4 / 5,
            age: 0,
            clock: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn position(&self, key: u32) -> Option<usize> {
        self.entries.iter().position(|e| e.key == key)
    }

    /// The specification of each policy's victim, as a linear argmin.
    fn victim_index(&self) -> usize {
        let candidates: Box<dyn Iterator<Item = (usize, &RefEntry)>> = match self.kind {
            // SLRU victimises probation first; only an all-protected cache
            // falls back to the protected list.
            PolicyKind::Slru if self.entries.iter().any(|e| !e.protected) => Box::new(
                self.entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| !e.protected),
            ),
            _ => Box::new(self.entries.iter().enumerate()),
        };
        let (index, _) = candidates
            .min_by_key(|(_, e)| match self.kind {
                // Recency only: the least recently touched.
                PolicyKind::Lru | PolicyKind::Slru => (0, e.touch),
                // Least frequent, least recently touched within the tie.
                PolicyKind::Lfu => (e.freq, e.touch),
                // Least priority, least recently touched within the tie.
                PolicyKind::Lfuda => (e.priority, e.touch),
            })
            .expect("victim on an empty reference cache");
        index
    }

    /// The access bookkeeping shared by `get`-hit and replace-`insert`.
    fn on_hit(&mut self, index: usize) {
        let touch = self.tick();
        let age = self.age;
        let entry = &mut self.entries[index];
        entry.freq += 1;
        entry.priority = age + entry.freq;
        entry.touch = touch;
        if self.kind == PolicyKind::Slru {
            self.entries[index].protected = true;
            let protected = self.entries.iter().filter(|e| e.protected).count();
            if protected > self.protected_capacity {
                // Demote the least recently touched protected entry; it
                // re-enters probation at the most-recent position. (With a
                // zero protected capacity the just-promoted entry is its own
                // demotion victim, exactly like the real policy's
                // attach-then-demote sequence.)
                let touch = self.tick();
                let demoted = self
                    .entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.protected)
                    .min_by_key(|(_, e)| e.touch)
                    .map(|(i, _)| i)
                    .expect("overflowing protected segment is non-empty");
                self.entries[demoted].protected = false;
                self.entries[demoted].touch = touch;
            }
        }
    }

    fn insert(&mut self, key: u32, value: u64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(index) = self.position(key) {
            self.entries[index].value = value;
            self.on_hit(index);
            return;
        }
        if self.entries.len() == self.capacity {
            let victim = self.victim_index();
            if self.kind == PolicyKind::Lfuda {
                self.age = self.entries[victim].priority;
            }
            self.entries.swap_remove(victim);
        }
        let touch = self.tick();
        self.entries.push(RefEntry {
            key,
            value,
            freq: 1,
            priority: self.age + 1,
            touch,
            protected: false,
        });
    }

    fn get(&mut self, key: u32) -> Option<u64> {
        let index = self.position(key)?;
        let value = self.entries[index].value;
        self.on_hit(index);
        Some(value)
    }

    fn remove(&mut self, key: u32) -> Option<u64> {
        let index = self.position(key)?;
        Some(self.entries.swap_remove(index).value)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

fn policy_cache(
    kind: PolicyKind,
    capacity: usize,
) -> PolicyCache<u32, u64, Box<dyn EvictionPolicy + Send>> {
    PolicyCache::with_policy(capacity, kind.build(capacity))
}

/// Body of the churn proptest (a plain fn keeps the macro expansion small —
/// the vendored `proptest!` tt-munches its body and hits the recursion limit
/// on large ones).
fn churn_case(
    kind: PolicyKind,
    capacity: usize,
    ops: Vec<(u32, u32, u64)>,
) -> Result<(), TestCaseError> {
    let mut real = policy_cache(kind, capacity);
    let mut model = RefCache::new(kind, capacity);
    for (op, key, value) in ops {
        match op {
            // Inserts dominate the mix so eviction churn actually happens.
            0 | 1 => {
                real.insert(key, value);
                model.insert(key, value);
            }
            2 => {
                prop_assert_eq!(real.get(&key).copied(), model.get(key));
            }
            _ => {
                prop_assert_eq!(real.remove(&key), model.remove(key));
            }
        }
        // Capacity is a hard bound at every step, not just at the end.
        prop_assert!(real.len() <= capacity);
        prop_assert_eq!(real.len(), model.len());
    }
    // Final sweep: both caches hold exactly the same key set — every key
    // the reference evicted is really gone, every live key really lives.
    // `contains` does not touch the policy books, so the walk order
    // cannot perturb the comparison.
    for key in 0..24u32 {
        let live = model.position(key).is_some();
        prop_assert_eq!(real.contains(&key), live);
    }
    // And value-for-value (promoting identically on both sides).
    for key in 0..24u32 {
        prop_assert_eq!(real.get(&key).copied(), model.get(key));
    }
    Ok(())
}

/// Body of the LFU regression proptest: statically dispatched `LfuPolicy`
/// (the exact type the `LruCache` alias family uses) against the same
/// reference — the cache-rs empty-bucket bug would surface here as a wrong
/// victim after heavy hit churn.
fn lfu_churn_case(capacity: usize, ops: Vec<(u32, u32)>) -> Result<(), TestCaseError> {
    use nscaching_serve::LfuPolicy;
    let mut cache: PolicyCache<u32, u64, LfuPolicy> = PolicyCache::new(capacity);
    let mut model = RefCache::new(PolicyKind::Lfu, capacity);
    for (op, key) in ops {
        match op {
            0 | 1 => {
                cache.insert(key, key as u64);
                model.insert(key, key as u64);
            }
            2 => {
                prop_assert_eq!(cache.get(&key).copied(), model.get(key));
            }
            _ => {
                prop_assert_eq!(cache.remove(&key), model.remove(key));
            }
        }
        prop_assert_eq!(cache.len(), model.len());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_policy_matches_its_reference_model_under_churn(
        policy_index in 0usize..4,
        capacity in 0usize..10,
        ops in prop::collection::vec((0u32..4, 0u32..24, 0u64..1000), 1..200),
    ) {
        churn_case(PolicyKind::ALL[policy_index], capacity, ops)?;
    }

    #[test]
    fn lfu_books_stay_tight_under_churn(
        capacity in 1usize..8,
        ops in prop::collection::vec((0u32..4, 0u32..12), 1..300),
    ) {
        lfu_churn_case(capacity, ops)?;
    }
}

// ---------------------------------------------------------------------------
// Serving staleness across every policy × shard count
// ---------------------------------------------------------------------------

fn serving_engine(config: CacheConfig) -> KnowledgeServer {
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(8)
            .with_seed(17),
        24,
        4,
    );
    KnowledgeServer::with_cache(model, config)
}

/// Body of the staleness proptest: a cached server (the given policy and
/// shard count, score cache on) against a cacheless twin fed the identical
/// update stream — the twin's answers are the ground truth the cached server
/// must match bit-for-bit at every step.
fn staleness_case(
    policy: PolicyKind,
    shards: usize,
    ops: Vec<(u32, u32, u32, u32)>,
) -> Result<(), TestCaseError> {
    let server = serving_engine(
        CacheConfig::with_capacity(16)
            .policy(policy)
            .shards(shards)
            .score_capacity(32),
    );
    let plain = serving_engine(CacheConfig {
        capacity: 0,
        score_capacity: 0,
        ..CacheConfig::default()
    });
    let mut scratch = QueryScratch::default();
    let mut fresh = Vec::new();
    let mut update_seed = 0u64;
    for (op, entity, relation, k) in ops {
        match op {
            0 => {
                // Mutate one embedding row on both servers; the stamp
                // bump must retire every cached answer and score.
                update_seed += 1;
                let row = (update_seed % 4) as usize;
                let bump = 0.25 + update_seed as f64 * 1e-3;
                for engine in [&server, &plain] {
                    engine.update_model(|model| {
                        for table in model.tables_mut() {
                            for v in table.row_mut(row) {
                                *v += bump;
                            }
                        }
                    });
                }
            }
            1 => {
                // Score probe, including out-of-range tails so the
                // negative cache is exercised: a memoised rejection must
                // also die with the stamp.
                let tail = entity * 2 % 26; // 24, 25 are out of range
                let triple = Triple::new(entity, relation, tail);
                let cached = server.score(&triple);
                let truth = plain.score(&triple);
                match (cached, truth) {
                    (Ok(c), Ok(t)) => prop_assert_eq!(c.to_bits(), t.to_bits()),
                    (c, t) => prop_assert_eq!(c, t),
                }
            }
            op => {
                let query = if op % 2 == 1 {
                    TopKQuery::heads(entity, relation, k)
                } else {
                    TopKQuery::tails(entity, relation, k)
                };
                // The cache-only peek must agree with the full path
                // *before* the full path repopulates this exact entry.
                let peeked = server.top_k_cached(&query).unwrap();
                let answer = server.top_k(&query, &mut scratch).unwrap();
                plain.top_k_into(&query, &mut scratch, &mut fresh).unwrap();
                prop_assert_eq!(answer.len(), fresh.len());
                for (cached, computed) in answer.iter().zip(&fresh) {
                    prop_assert_eq!(cached.entity, computed.entity);
                    prop_assert_eq!(cached.score.to_bits(), computed.score.to_bits());
                }
                if let Some(peeked) = peeked {
                    prop_assert_eq!(peeked.len(), fresh.len());
                    for (p, computed) in peeked.iter().zip(&fresh) {
                        prop_assert_eq!(p.entity, computed.entity);
                        // A mismatch here means the peek served stale.
                        prop_assert_eq!(p.score.to_bits(), computed.score.to_bits());
                    }
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn no_policy_or_shard_count_ever_serves_a_stale_answer(
        policy_index in 0usize..4,
        four_shards in any::<bool>(),
        ops in prop::collection::vec(
            // op 0 = model update, op 1 = score probe; otherwise a top-k
            // query whose parity picks the corruption side (the vendored
            // proptest caps tuples at 4 slots).
            (0u32..8, 0u32..24, 0u32..4, 1u32..6),
            1..50,
        ),
    ) {
        let shards = if four_shards { 4 } else { 1 };
        staleness_case(PolicyKind::ALL[policy_index], shards, ops)?;
    }
}
