//! Property tests for the LRU cache and its version-stamp integration.
//!
//! Two layers of invariants:
//!
//! 1. [`nscaching_serve::LruCache`] against a brute-force reference model
//!    under random insert/get/remove churn: capacity is never exceeded, the
//!    recency order matches exactly (so evicted keys are *really* gone and
//!    live keys are *really* live), and lookups agree value-for-value.
//! 2. [`nscaching_serve::KnowledgeServer`] under interleaved queries and
//!    model updates: a cached answer is never served stale across
//!    `update_model` — every answer equals a fresh computation against the
//!    model tables as they are *now*, bit-for-bit.

use nscaching_models::{build_model, ModelConfig, ModelKind};
use nscaching_serve::{KnowledgeServer, LruCache, QueryScratch, TopKQuery};
use proptest::prelude::*;

/// Brute-force reference LRU: a vector ordered most-recently-used first.
struct ModelLru {
    entries: Vec<(u32, u64)>,
    capacity: usize,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::new(),
            capacity,
        }
    }

    fn insert(&mut self, key: u32, value: u64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.pop(); // evict the least-recently-used
        }
        self.entries.insert(0, (key, value));
    }

    fn get(&mut self, key: u32) -> Option<u64> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(pos);
        self.entries.insert(0, entry);
        Some(entry.1)
    }

    fn remove(&mut self, key: u32) -> Option<u64> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        Some(self.entries.remove(pos).1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lru_matches_the_reference_model_under_churn(
        capacity in 0usize..10,
        ops in prop::collection::vec((0u32..4, 0u32..24, 0u64..1000), 1..200),
    ) {
        let mut real: LruCache<u32, u64> = LruCache::new(capacity);
        let mut model = ModelLru::new(capacity);
        for (op, key, value) in ops {
            match op {
                // Inserts dominate the mix so eviction churn actually happens.
                0 | 1 => {
                    real.insert(key, value);
                    model.insert(key, value);
                }
                2 => {
                    prop_assert_eq!(real.get(&key).copied(), model.get(key));
                }
                _ => {
                    prop_assert_eq!(real.remove(&key), model.remove(key));
                }
            }
            // Capacity is a hard bound at every step, not just at the end.
            prop_assert!(real.len() <= capacity);
            prop_assert_eq!(real.len(), model.entries.len());
        }
        // Final sweep: the two caches hold exactly the same key set — every
        // key the model evicted is really gone, every live key really lives.
        // (Probing promotes identically on both sides, so the comparison
        // stays valid as it walks.)
        for key in 0..24u32 {
            prop_assert_eq!(real.get(&key).copied(), model.get(key));
        }
    }

    #[test]
    fn eviction_counters_account_for_every_displacement(
        capacity in 1usize..8,
        keys in prop::collection::vec(0u32..16, 1..100),
    ) {
        // Insert-only churn with distinct-key tracking: evictions must equal
        // inserts-of-new-keys minus the live population at the end.
        let mut cache: LruCache<u32, u32> = LruCache::new(capacity);
        let mut fresh_inserts = 0u64;
        let mut live: Vec<u32> = Vec::new();
        for key in keys {
            if !live.contains(&key) {
                fresh_inserts += 1;
                live.insert(0, key);
                if live.len() > capacity {
                    live.pop();
                }
            } else {
                let pos = live.iter().position(|k| *k == key).unwrap();
                let k = live.remove(pos);
                live.insert(0, k);
            }
            cache.insert(key, key);
        }
        prop_assert_eq!(cache.len(), live.len());
        prop_assert_eq!(cache.stats().evictions, fresh_inserts - live.len() as u64);
    }
}

fn serving_engine(cache_capacity: usize) -> KnowledgeServer {
    let model = build_model(
        &ModelConfig::new(ModelKind::TransE)
            .with_dim(8)
            .with_seed(17),
        24,
        4,
    );
    KnowledgeServer::new(model, cache_capacity)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cached_answers_are_never_stale_across_model_updates(
        ops in prop::collection::vec(
            // op 0 = model update; otherwise a query whose parity picks the
            // corruption side (the vendored proptest caps tuples at 4 slots).
            (0u32..8, 0u32..24, 0u32..4, 1u32..6),
            1..60,
        ),
    ) {
        let server = serving_engine(16);
        let mut scratch = QueryScratch::default();
        let mut fresh = Vec::new();
        let mut update_seed = 0u64;
        for (op, entity, relation, k) in ops {
            let head_side = op % 2 == 1;
            if op == 0 {
                // Mutate one embedding row; the stamp bump must retire every
                // cached answer derived from the old tables.
                update_seed += 1;
                // Row 0..4 exists in both the entity and relation tables.
                let row = (update_seed % 4) as usize;
                server.update_model(|model| {
                    for table in model.tables_mut() {
                        for v in table.row_mut(row) {
                            *v += 0.25 + update_seed as f64 * 1e-3;
                        }
                    }
                });
                continue;
            }
            let query = if head_side {
                TopKQuery::heads(entity, relation, k)
            } else {
                TopKQuery::tails(entity, relation, k)
            };

            // The cache-only peek must agree with the full path *before* the
            // full path repopulates the entry for this exact query.
            let peeked = server.top_k_cached(&query).unwrap();

            // Whatever the (possibly cached) answer is, it must be
            // bit-identical to a fresh computation on the current tables.
            let answer = server.top_k(&query, &mut scratch).unwrap();
            server.top_k_into(&query, &mut scratch, &mut fresh).unwrap();
            prop_assert_eq!(answer.len(), fresh.len());
            for (cached, computed) in answer.iter().zip(&fresh) {
                prop_assert_eq!(cached.entity, computed.entity);
                prop_assert_eq!(cached.score.to_bits(), computed.score.to_bits());
            }

            if let Some(peeked) = peeked {
                prop_assert_eq!(peeked.len(), fresh.len());
                for (p, computed) in peeked.iter().zip(&fresh) {
                    prop_assert_eq!(p.entity, computed.entity);
                    // A mismatch here means the peek served a stale answer.
                    prop_assert_eq!(p.score.to_bits(), computed.score.to_bits());
                }
            }
        }
    }
}
