//! Snapshot-format integrity: bitwise round-trips for every model ×
//! optimizer combination, and typed (never panicking) failures for every
//! corruption class — truncation, bad magic, bit flips, future versions,
//! schema drift.

use nscaching::SamplerConfig;
use nscaching_datagen::GeneratorConfig;
use nscaching_kg::Dataset;
use nscaching_models::{build_model, KgeModel, ModelConfig, ModelKind};
use nscaching_optim::OptimizerConfig;
use nscaching_serve::{
    load_checkpoint, load_model, resume_trainer, save_checkpoint, save_model, ModelSnapshot,
    SnapshotError,
};
use nscaching_train::{TrainConfig, Trainer};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tempfile(name: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("nscaching-snapshot-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{name}-{}-{}.snap",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn dataset(seed: u64) -> Dataset {
    let mut c = GeneratorConfig::small("roundtrip");
    c.num_entities = 60;
    c.num_train = 300;
    c.num_valid = 30;
    c.num_test = 30;
    c.seed = seed;
    nscaching_datagen::generate(&c).unwrap()
}

fn optimizer_config(opt: usize, lr: f64) -> OptimizerConfig {
    match opt {
        0 => OptimizerConfig::sgd(lr),
        1 => OptimizerConfig::adagrad(lr),
        _ => OptimizerConfig::adam(lr),
    }
}

fn trained_trainer(ds: &Dataset, kind: ModelKind, opt: usize, epochs: usize) -> Trainer {
    let model = build_model(
        &ModelConfig::new(kind).with_dim(6).with_seed(3),
        ds.num_entities(),
        ds.num_relations(),
    );
    let sampler = nscaching::build_sampler(&SamplerConfig::Bernoulli, ds, 7);
    let config = TrainConfig::new(epochs)
        .with_batch_size(64)
        .with_optimizer(optimizer_config(opt, 0.02))
        .with_seed(11)
        .with_shards(1);
    let mut trainer = Trainer::new(model, sampler, ds, config);
    for _ in 0..epochs {
        trainer.train_epoch();
    }
    trainer
}

fn assert_tables_bitwise_equal(a: &dyn KgeModel, b: &ModelSnapshot) {
    let tables = a.tables();
    assert_eq!(tables.len(), b.tables.len());
    for (live, snap) in tables.iter().zip(&b.tables) {
        assert_eq!(live.name(), snap.name);
        assert_eq!(live.rows(), snap.rows);
        assert_eq!(live.dim(), snap.dim);
        assert!(
            live.data()
                .iter()
                .zip(&snap.data)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "table {} changed across the round-trip",
            live.name()
        );
    }
}

/// The full 7 × 3 matrix, deterministically: save → load → bitwise-equal
/// tables, optimizer slabs and trainer state.
#[test]
fn checkpoint_round_trip_is_bitwise_exact_for_all_models_and_optimizers() {
    let ds = dataset(1);
    for kind in ModelKind::ALL {
        for opt in 0..3 {
            let trainer = trained_trainer(&ds, kind, opt, 2);
            let path = tempfile(&format!("matrix-{kind:?}-{opt}"));
            save_checkpoint(&path, &trainer).unwrap();

            let checkpoint = load_checkpoint(&path).unwrap();
            assert_eq!(checkpoint.model.kind, kind);
            assert_eq!(checkpoint.model.dim, 6);
            assert_tables_bitwise_equal(trainer.model(), &checkpoint.model);

            let state = trainer.checkpoint();
            assert_eq!(checkpoint.state.epochs_done, state.epochs_done);
            assert_eq!(
                checkpoint.state.train_seconds.to_bits(),
                state.train_seconds.to_bits()
            );
            assert_eq!(checkpoint.state.rng, state.rng);
            assert_eq!(checkpoint.state.batch_order, state.batch_order);
            assert_eq!(
                checkpoint.state.optimizer, state.optimizer,
                "{kind:?} optimizer {opt} slabs drifted"
            );
            assert_eq!(checkpoint.meta.seed, 11);
            assert_eq!(checkpoint.meta.shards, 1);
            assert_eq!(checkpoint.meta.optimizer, optimizer_config(opt, 0.02));

            // The rebuilt model scores identically to the live one.
            let rebuilt = checkpoint.model.into_model().unwrap();
            let probe = ds.train[0];
            assert_eq!(
                rebuilt.score(&probe).to_bits(),
                trainer.model().score(&probe).to_bits()
            );
            std::fs::remove_file(&path).ok();
        }
    }
}

/// A serving process reads the model section straight out of a *training*
/// checkpoint.
#[test]
fn load_model_reads_the_model_section_of_a_full_checkpoint() {
    let ds = dataset(2);
    let trainer = trained_trainer(&ds, ModelKind::DistMult, 2, 1);
    let path = tempfile("model-from-checkpoint");
    save_checkpoint(&path, &trainer).unwrap();
    let snapshot = load_model(&path).unwrap();
    assert_tables_bitwise_equal(trainer.model(), &snapshot);
    std::fs::remove_file(&path).ok();
}

#[test]
fn model_only_snapshots_round_trip() {
    for kind in ModelKind::ALL {
        let model = build_model(&ModelConfig::new(kind).with_dim(5).with_seed(9), 30, 4);
        let path = tempfile(&format!("model-{kind:?}"));
        save_model(&path, model.as_ref()).unwrap();
        let snapshot = load_model(&path).unwrap();
        assert_tables_bitwise_equal(model.as_ref(), &snapshot);
        let rebuilt = snapshot.into_model().unwrap();
        assert_eq!(rebuilt.kind(), kind);
        assert_eq!(rebuilt.num_entities(), 30);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn truncated_files_fail_with_typed_errors_at_every_cut() {
    let ds = dataset(3);
    let trainer = trained_trainer(&ds, ModelKind::TransE, 2, 1);
    let path = tempfile("truncate");
    save_checkpoint(&path, &trainer).unwrap();
    let full = std::fs::read(&path).unwrap();
    // Cut everywhere interesting: inside the magic, the header, the payload
    // and the trailing checksum.
    for cut in [
        0,
        4,
        11,
        19,
        20,
        full.len() / 2,
        full.len() - 9,
        full.len() - 1,
    ] {
        std::fs::write(&path, &full[..cut]).unwrap();
        let err = load_checkpoint(&path).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. }
                    | SnapshotError::BadMagic { .. }
                    | SnapshotError::ChecksumMismatch { .. }
            ),
            "cut at {cut}: unexpected error {err}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_magic_and_future_versions_are_rejected() {
    let ds = dataset(4);
    let trainer = trained_trainer(&ds, ModelKind::TransE, 0, 1);
    let path = tempfile("magic");
    save_checkpoint(&path, &trainer).unwrap();
    let good = std::fs::read(&path).unwrap();

    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    std::fs::write(&path, &bad_magic).unwrap();
    assert!(matches!(
        load_checkpoint(&path),
        Err(SnapshotError::BadMagic { .. })
    ));

    let mut future = good.clone();
    future[8] = 0x2A;
    std::fs::write(&path, &future).unwrap();
    assert!(matches!(
        load_checkpoint(&path),
        Err(SnapshotError::UnsupportedVersion { found: 0x2A })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_single_bit_flip_in_the_payload_is_caught() {
    let ds = dataset(5);
    let trainer = trained_trainer(&ds, ModelKind::TransE, 1, 1);
    let path = tempfile("bitflip");
    save_checkpoint(&path, &trainer).unwrap();
    let good = std::fs::read(&path).unwrap();
    // Flip one bit in a stride of payload positions (covering section tags,
    // lengths, slab data) — the checksum must catch every one of them.
    let payload_start = 20;
    let payload_end = good.len() - 8;
    let mut probe = good.clone();
    for pos in (payload_start..payload_end).step_by(97) {
        probe[pos] ^= 1 << (pos % 8);
        std::fs::write(&path, &probe).unwrap();
        assert!(
            matches!(
                load_checkpoint(&path),
                Err(SnapshotError::ChecksumMismatch { .. })
            ),
            "flip at {pos} slipped through"
        );
        probe[pos] = good[pos];
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_validates_the_configuration_fingerprint() {
    let ds = dataset(6);
    let trainer = trained_trainer(&ds, ModelKind::TransE, 2, 1);
    let path = tempfile("fingerprint");
    save_checkpoint(&path, &trainer).unwrap();

    let base_config = || {
        TrainConfig::new(2)
            .with_batch_size(64)
            .with_optimizer(OptimizerConfig::adam(0.02))
            .with_seed(11)
            .with_shards(1)
    };
    let sampler = || nscaching::build_sampler(&SamplerConfig::Bernoulli, &ds, 7);

    // Wrong seed, wrong shard count, wrong optimizer: all refused.
    for bad in [
        base_config().with_seed(12),
        base_config().with_shards(2),
        base_config().with_optimizer(OptimizerConfig::sgd(0.02)),
        base_config().with_optimizer(OptimizerConfig::adam(0.05)),
    ] {
        let checkpoint = load_checkpoint(&path).unwrap();
        match resume_trainer(checkpoint, sampler(), &ds, bad) {
            Err(SnapshotError::SchemaMismatch(_)) => {}
            Err(other) => panic!("wrong error kind: {other}"),
            Ok(_) => panic!("configuration drift must not resume"),
        }
    }
    // The matching configuration resumes.
    let checkpoint = load_checkpoint(&path).unwrap();
    let resumed = resume_trainer(checkpoint, sampler(), &ds, base_config()).unwrap();
    assert_eq!(resumed.epochs_done(), 1);
    std::fs::remove_file(&path).ok();
}

#[test]
fn zeroed_rng_state_with_valid_checksum_fails_typed_not_panicking() {
    // An adversarial (or externally written) file can be checksum-consistent
    // and still carry the one invalid RNG state — the all-zero xoshiro
    // fixed point. Loading must reject it as Corrupt, not panic in the RNG
    // constructor during resume.
    let ds = dataset(7);
    let trainer = trained_trainer(&ds, ModelKind::TransE, 0, 1);
    let path = tempfile("zero-rng");
    save_checkpoint(&path, &trainer).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();

    // Walk the section table to the trainer section's RNG words:
    // payload starts at 20; each section is tag(u8) + len(u64 LE) + body.
    let mut pos = 20;
    loop {
        let tag = bytes[pos];
        let len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap()) as usize;
        if tag == 2 {
            // trainer section: epochs_done u64 + train_seconds f64, then rng.
            let rng_at = pos + 9 + 16;
            bytes[rng_at..rng_at + 32].fill(0);
            break;
        }
        pos += 9 + len;
    }
    // Recompute the checksum so only the RNG validation can catch this.
    let payload_end = bytes.len() - 8;
    let checksum = nscaching_serve::format::fnv1a64(&bytes[20..payload_end]);
    bytes[payload_end..].copy_from_slice(&checksum.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    match load_checkpoint(&path) {
        Err(SnapshotError::Corrupt(what)) => assert!(what.contains("RNG"), "{what}"),
        other => panic!(
            "expected Corrupt, got {:?}",
            other.err().map(|e| e.to_string())
        ),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn mismatched_vocabulary_fails_the_schema_check() {
    let model = build_model(&ModelConfig::new(ModelKind::TransE).with_dim(4), 20, 3);
    let path = tempfile("schema");
    save_model(&path, model.as_ref()).unwrap();
    let mut snapshot = load_model(&path).unwrap();
    // Tamper with the decoded metadata so the rebuilt architecture disagrees
    // with the stored tables.
    snapshot.num_entities = 21;
    assert!(matches!(
        snapshot.into_model(),
        Err(SnapshotError::SchemaMismatch(_))
    ));
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Randomised round-trip across the matrix: arbitrary model/optimizer
    // pair, seeds and training lengths — tables and optimizer slabs must
    // come back bit-for-bit.
    #[test]
    fn random_checkpoints_round_trip_bitwise(
        kind_idx in 0usize..7,
        opt in 0usize..3,
        data_seed in 0u64..50,
        epochs in 1usize..3,
    ) {
        let kind = ModelKind::ALL[kind_idx];
        let ds = dataset(100 + data_seed);
        let trainer = trained_trainer(&ds, kind, opt, epochs);
        let path = tempfile("prop");
        save_checkpoint(&path, &trainer).unwrap();
        let checkpoint = load_checkpoint(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let live = trainer.model().tables();
        prop_assert_eq!(live.len(), checkpoint.model.tables.len());
        for (a, b) in live.iter().zip(&checkpoint.model.tables) {
            prop_assert_eq!(a.data().len(), b.data.len());
            for (x, y) in a.data().iter().zip(&b.data) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        let state = trainer.checkpoint();
        prop_assert_eq!(checkpoint.state.optimizer, state.optimizer);
        prop_assert_eq!(checkpoint.state.rng, state.rng);
        prop_assert_eq!(checkpoint.state.batch_order, state.batch_order);
        prop_assert_eq!(checkpoint.state.epochs_done, state.epochs_done);
    }
}
