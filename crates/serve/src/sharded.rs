//! Hash-sharded concurrent cache: N independent [`PolicyCache`] instances
//! behind per-shard locks.
//!
//! The pre-shard serving cache was one [`LruCache`](crate::cache::LruCache)
//! behind one mutex — every hit, miss and insert from every worker
//! serialised on it, which is exactly the contention profile that kills
//! many-core batch serving. [`ShardedCache`] splits the key space by hash
//! over `shards` independent policy instances, each behind its own mutex, so
//! concurrent queries for different keys proceed in parallel and only
//! same-shard traffic ever waits.
//!
//! # What sharding changes — and what it provably does not
//!
//! * **Eviction scope.** Each shard runs its policy over its own `capacity /
//!   shards` slots. A uniformly hashing key population sees near-identical
//!   hit rates to the unsharded cache (the `cache_sim` bench's parity gate,
//!   `NSC_CACHE_SIM_OK`, measures exactly this on the Zipf trace); an
//!   adversarially skewed *shard* (not key) distribution would trade hit
//!   rate for concurrency.
//! * **Staleness: unchanged.** The version-stamp invalidation contract
//!   lives in the *values* (every cached answer carries the model stamp it
//!   was computed under) and is checked by the server on every lookup —
//!   per entry, not per cache. Splitting entries across shards cannot widen
//!   the contract: a stale entry in any shard still carries its old stamp
//!   and still fails the comparison. The staleness proptests in
//!   `tests/policy_invariants.rs` re-prove the invariant at 1 and 4 shards
//!   for every policy.
//! * **Stats.** Counters are aggregated across shards ([`stats`]
//!   sums them); they remain exact because each operation touches exactly
//!   one shard.
//!
//! Shard selection must be deterministic and stable (entries must be found
//! again), but need not be portable across processes — the std `HashMap`
//! hasher with fixed keys provides both.
//!
//! [`stats`]: ShardedCache::stats

use crate::cache::{CacheStats, PolicyCache};
use crate::policy::{EvictionPolicy, PolicyKind};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, MutexGuard};

/// One shard: a [`PolicyCache`] running a boxed policy behind its own lock.
type Shard<K, V> = Mutex<PolicyCache<K, V, Box<dyn EvictionPolicy + Send>>>;
/// A locked shard, as handed out by the internal routing helpers.
type ShardGuard<'a, K, V> = MutexGuard<'a, PolicyCache<K, V, Box<dyn EvictionPolicy + Send>>>;

/// A concurrent cache: `shards` independent [`PolicyCache`]s, each behind
/// its own lock, all running the same [`PolicyKind`]. Values are returned by
/// clone (the serving engine stores `Arc`-backed answers, so a clone is a
/// refcount bump).
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Box<[Shard<K, V>]>,
    policy: PolicyKind,
}

impl<K: Hash + Eq + Copy, V: Clone> ShardedCache<K, V> {
    /// A cache of `capacity` total entries split over `shards` instances of
    /// `policy` (each shard gets `⌈capacity / shards⌉` slots). `shards` is
    /// clamped to at least 1; capacity 0 disables caching entirely.
    pub fn new(capacity: usize, policy: PolicyKind, shards: usize) -> Self {
        Self::with_admission(capacity, policy, shards, false)
    }

    /// Like [`new`](Self::new), optionally putting an independent TinyLFU
    /// admission filter in front of every shard's policy (each filter sized
    /// to its shard and fed only that shard's traffic — hash routing means a
    /// key's frequency always accrues in the one sketch that will judge it).
    pub fn with_admission(
        capacity: usize,
        policy: PolicyKind,
        shards: usize,
        admission: bool,
    ) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards);
        let shards = (0..shards)
            .map(|_| {
                let shard = PolicyCache::with_policy(per_shard, policy.build(per_shard));
                Mutex::new(if admission {
                    shard.with_admission()
                } else {
                    shard
                })
            })
            .collect();
        Self { shards, policy }
    }

    /// Whether every shard runs a TinyLFU admission filter.
    pub fn admission_enabled(&self) -> bool {
        self.lock(0).admission_enabled()
    }

    /// Which policy every shard runs.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity across shards.
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.lock(0).capacity()
    }

    /// Current number of entries across shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.lock(i).len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated hit/miss/eviction counters across shards.
    pub fn stats(&self) -> CacheStats {
        (0..self.shards.len())
            .map(|i| self.lock(i).stats())
            .fold(CacheStats::default(), CacheStats::merged)
    }

    /// Look up `key` in its shard, cloning the value out under the shard
    /// lock. Promotes the entry per the shard's policy.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard_for(key).get(key).cloned()
    }

    /// Insert (or replace) `key` in its shard, evicting that shard's policy
    /// victim if the shard is full.
    pub fn insert(&self, key: K, value: V) {
        self.shard_for(&key).insert(key, value);
    }

    /// Remove `key` from its shard (explicit invalidation).
    pub fn remove(&self, key: &K) -> Option<V>
    where
        V: Default,
    {
        self.shard_for(key).remove(key)
    }

    /// Drop every entry and reset every shard's counters.
    pub fn clear(&self) {
        for i in 0..self.shards.len() {
            self.lock(i).clear();
        }
    }

    fn lock(&self, index: usize) -> ShardGuard<'_, K, V> {
        self.shards[index].lock().expect("shard lock")
    }

    fn shard_for(&self, key: &K) -> ShardGuard<'_, K, V> {
        // DefaultHasher with fixed keys: deterministic within a process,
        // which is all shard routing needs.
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let shard = (hasher.finish() % self.shards.len() as u64) as usize;
        self.lock(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_behaves_like_the_flat_cache() {
        let sharded: ShardedCache<u32, u64> = ShardedCache::new(3, PolicyKind::Lru, 1);
        let mut flat: crate::cache::LruCache<u32, u64> = crate::cache::LruCache::new(3);
        for key in [1u32, 2, 3, 1, 4, 5, 2] {
            sharded.insert(key, key as u64 * 10);
            flat.insert(key, key as u64 * 10);
        }
        for key in 0..8 {
            assert_eq!(sharded.get(&key), flat.get(&key).copied(), "key {key}");
        }
        assert_eq!(sharded.stats(), flat.stats());
        assert_eq!(sharded.len(), flat.len());
    }

    #[test]
    fn shards_split_the_key_space_and_aggregate_stats() {
        // 64 slots per shard: 48 total keys can never overflow any shard,
        // however the hash splits them.
        let cache: ShardedCache<u32, u64> = ShardedCache::new(256, PolicyKind::Lfu, 4);
        assert_eq!(cache.shards(), 4);
        assert_eq!(cache.capacity(), 256);
        for key in 0..48u32 {
            cache.insert(key, key as u64);
        }
        assert_eq!(cache.len(), 48, "no shard can evict below 64 live keys");
        let mut hits = 0;
        for key in 0..48u32 {
            if cache.get(&key) == Some(key as u64) {
                hits += 1;
            }
        }
        assert_eq!(hits, 48);
        let stats = cache.stats();
        assert_eq!(stats.hits, 48);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn remove_and_clear_reach_the_right_shard() {
        let cache: ShardedCache<u32, u64> = ShardedCache::new(32, PolicyKind::Slru, 4);
        cache.insert(7, 70);
        assert_eq!(cache.remove(&7), Some(70));
        assert_eq!(cache.remove(&7), None);
        cache.insert(9, 90);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn concurrent_access_from_clones_is_safe() {
        let cache: std::sync::Arc<ShardedCache<u32, u64>> =
            std::sync::Arc::new(ShardedCache::new(256, PolicyKind::Lfuda, 8));
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..500u32 {
                        let key = (t * 1000 + i) % 300;
                        cache.insert(key, key as u64);
                        let _ = cache.get(&key);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 2000);
    }
}
