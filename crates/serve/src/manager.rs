//! Last-good checkpoint management: retention, verification, quarantine.
//!
//! [`save_checkpoint`](crate::save_checkpoint) makes one *file* crash-safe
//! (stage → fsync → rename → directory fsync). [`CheckpointManager`] lifts
//! that to a *directory* of checkpoints with a last-good guarantee:
//!
//! * every save gets a fresh, monotonically increasing sequence number —
//!   nothing is ever overwritten in place, so the previous checkpoint stays
//!   valid until the new one is fully durable;
//! * retention keeps the newest `keep` checkpoints and deletes older ones
//!   *after* the new save is complete (a crash mid-rotation leaves extra
//!   files, never fewer);
//! * recovery walks newest → oldest, fully validating each file (frame
//!   checksum and section decode) and returning the first valid one;
//! * a file that fails validation is **quarantined** — renamed aside with a
//!   typed reason suffix, never deleted — so operators can inspect what broke
//!   while the manager falls back to the next-newest valid checkpoint.
//!
//! # Directory protocol
//!
//! ```text
//! <dir>/ckpt-0000000007.ckpt                    active checkpoint
//! <dir>/ckpt-0000000006.ckpt                    older retained checkpoint
//! <dir>/ckpt-0000000005.ckpt.bad-checksum       quarantined (bit rot)
//! <dir>/ckpt-0000000008.ckpt.tmp-snapshot       torn temp from a dead writer
//! ```
//!
//! Only names matching `ckpt-<seq>.ckpt` exactly are live checkpoints;
//! quarantined files and staging temps have different suffixes and are
//! invisible to retention and recovery (temps are swept by
//! [`read_frame`](crate::format::read_frame) on the next read of that path).
//!
//! Crash-consistency argument, step by step: the save itself is atomic (frame
//! rename), the sequence number is derived from the directory listing (max
//! live or quarantined seq + 1, so a quarantined newest never gets its seq
//! reused), and rotation only ever deletes files strictly older than `keep`
//! *valid-or-unexamined* newer ones. Killing the process between any two
//! steps therefore leaves the directory with at least the same set of valid
//! checkpoints it had before the save started. The kill-anywhere harness
//! (`tests/crash_recovery.rs`) proves this empirically for every instrumented
//! crash point.

use crate::crash::crash_point;
use crate::error::SnapshotError;
use crate::format::read_frame;
use crate::snapshot::{load_checkpoint, save_checkpoint, Checkpoint};
use crate::telemetry::ServeMetrics;
use nscaching_train::Trainer;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// File-name prefix of a managed checkpoint.
const PREFIX: &str = "ckpt-";
/// File-name suffix of a live managed checkpoint.
const SUFFIX: &str = ".ckpt";
/// Zero-padded width of the sequence number (lexicographic == numeric order).
const SEQ_WIDTH: usize = 10;

/// A live checkpoint paired with the result of verifying its frame.
pub type VerifiedEntry = (CheckpointEntry, Result<(), SnapshotError>);

/// One live checkpoint file in a managed directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointEntry {
    /// Monotonic save sequence number (newer saves have larger numbers).
    pub seq: u64,
    /// Full path of the checkpoint file.
    pub path: PathBuf,
}

/// A recovered checkpoint plus the bookkeeping of how it was found.
#[derive(Debug)]
pub struct Recovery {
    /// The decoded last-good checkpoint.
    pub checkpoint: Checkpoint,
    /// The file it was loaded from.
    pub path: PathBuf,
    /// Newer files that failed validation and were quarantined during this
    /// recovery, newest first: `(original path, quarantine path, error)`.
    pub quarantined: Vec<(PathBuf, PathBuf, SnapshotError)>,
}

/// Keep-last-N checkpoint directory manager with corruption quarantine.
///
/// See the [module docs](self) for the directory protocol and the
/// crash-consistency argument.
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    dir: PathBuf,
    keep: usize,
    /// Attach-once telemetry (save/recover timings, quarantine counts);
    /// clones share the handles.
    metrics: OnceLock<Arc<ServeMetrics>>,
}

impl CheckpointManager {
    /// Open (creating if needed) a managed checkpoint directory that retains
    /// the newest `keep` checkpoints. `keep` is clamped to at least 1 — a
    /// manager that retains nothing could never recover anything.
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> Result<Self, SnapshotError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            keep: keep.max(1),
            metrics: OnceLock::new(),
        })
    }

    /// Attach telemetry handles; attach-once, later calls are no-ops.
    pub fn attach_metrics(&self, metrics: Arc<ServeMetrics>) {
        let _ = self.metrics.set(metrics);
    }

    /// The managed directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Retention limit (newest `keep` checkpoints survive rotation).
    pub fn keep(&self) -> usize {
        self.keep
    }

    /// Save a new checkpoint of `trainer` and rotate old ones out.
    ///
    /// The write is atomic and durable (see
    /// [`write_frame`](crate::format::write_frame)); rotation runs strictly
    /// after it, so a crash anywhere in this call never reduces the set of
    /// valid checkpoints below what it was on entry.
    pub fn save(&self, trainer: &Trainer) -> Result<PathBuf, SnapshotError> {
        let started = Instant::now();
        let seq = self.next_seq()?;
        let path = self
            .dir
            .join(format!("{PREFIX}{seq:0width$}{SUFFIX}", width = SEQ_WIDTH));
        save_checkpoint(&path, trainer)?;
        self.rotate()?;
        if let Some(metrics) = self.metrics.get() {
            metrics.checkpoint_save_us.observe(started.elapsed());
            metrics.checkpoints_saved.inc();
        }
        Ok(path)
    }

    /// Live checkpoint entries, newest first. Purely name-based — no file
    /// contents are read; use [`list_verified`](Self::list_verified) or
    /// [`recover`](Self::recover) for validation.
    pub fn entries(&self) -> Result<Vec<CheckpointEntry>, SnapshotError> {
        let mut entries = Vec::new();
        for dirent in std::fs::read_dir(&self.dir)? {
            let dirent = dirent?;
            let name = dirent.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = parse_seq(name) {
                entries.push(CheckpointEntry {
                    seq,
                    path: dirent.path(),
                });
            }
        }
        entries.sort_unstable_by_key(|e| std::cmp::Reverse(e.seq));
        Ok(entries)
    }

    /// Checksum-verified listing: every live entry paired with the result of
    /// validating its frame (magic, version, length, checksum), newest first.
    /// Nothing is quarantined — this is the read-only inspection surface.
    pub fn list_verified(&self) -> Result<Vec<VerifiedEntry>, SnapshotError> {
        let entries = self.entries()?;
        Ok(entries
            .into_iter()
            .map(|e| {
                let verdict = read_frame(&e.path).map(|_| ());
                (e, verdict)
            })
            .collect())
    }

    /// Paths of quarantined files in the managed directory, newest first.
    pub fn quarantined(&self) -> Result<Vec<PathBuf>, SnapshotError> {
        let mut files = Vec::new();
        for dirent in std::fs::read_dir(&self.dir)? {
            let dirent = dirent?;
            let name = dirent.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(PREFIX) && name.contains(".bad-") {
                files.push(dirent.path());
            }
        }
        files.sort_unstable();
        files.reverse();
        Ok(files)
    }

    /// Recover the newest valid checkpoint, quarantining every newer corrupt
    /// file on the way. Returns `Ok(None)` when the directory holds no live
    /// checkpoints at all (first boot).
    ///
    /// Validation is *full*: the frame checksum **and** the section decode
    /// must succeed, so a checksum-consistent file with a broken schema (a
    /// different format generation, a hand-edited file) is also quarantined
    /// rather than crashing the resume path later.
    pub fn recover(&self) -> Result<Option<Recovery>, SnapshotError> {
        let started = Instant::now();
        let mut quarantined = Vec::new();
        for entry in self.entries()? {
            match load_checkpoint(&entry.path) {
                Ok(checkpoint) => {
                    self.record_recover(started, quarantined.len());
                    return Ok(Some(Recovery {
                        checkpoint,
                        path: entry.path,
                        quarantined,
                    }));
                }
                Err(error) => {
                    let to = self.quarantine(&entry.path, &error)?;
                    quarantined.push((entry.path, to, error));
                }
            }
        }
        self.record_recover(started, quarantined.len());
        Ok(None)
    }

    fn record_recover(&self, started: Instant, quarantined: usize) {
        if let Some(metrics) = self.metrics.get() {
            metrics.checkpoint_recover_us.observe(started.elapsed());
            metrics.checkpoints_quarantined.add(quarantined as u64);
        }
    }

    /// Move a failed checkpoint aside with a typed reason suffix. The bytes
    /// are preserved for inspection — quarantine never deletes.
    fn quarantine(&self, path: &Path, error: &SnapshotError) -> Result<PathBuf, SnapshotError> {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("checkpoint");
        let mut to = self.dir.join(format!("{name}.bad-{}", reason_slug(error)));
        // A repeat failure of the same file/reason must not clobber the
        // previously quarantined bytes.
        let mut attempt = 1u32;
        while to.exists() {
            to = self
                .dir
                .join(format!("{name}.bad-{}.{attempt}", reason_slug(error)));
            attempt += 1;
        }
        crash_point("manager: before quarantine rename");
        std::fs::rename(path, &to)?;
        crash_point("manager: after quarantine rename");
        Ok(to)
    }

    /// Next save's sequence number: one past the largest sequence among live
    /// *and* quarantined files, so a quarantined newest checkpoint never has
    /// its number reused (which would make "newest" ambiguous forever after).
    fn next_seq(&self) -> Result<u64, SnapshotError> {
        let mut max_seq = None::<u64>;
        for dirent in std::fs::read_dir(&self.dir)? {
            let name = dirent?.file_name();
            let Some(name) = name.to_str() else { continue };
            let live = parse_seq(name);
            let quarantined = name
                .split_once(".bad-")
                .and_then(|(head, _)| parse_seq(head));
            if let Some(seq) = live.or(quarantined) {
                max_seq = Some(max_seq.map_or(seq, |m| m.max(seq)));
            }
        }
        Ok(max_seq.map_or(0, |m| m + 1))
    }

    /// Delete live checkpoints beyond the newest `keep`, oldest first.
    fn rotate(&self) -> Result<(), SnapshotError> {
        let entries = self.entries()?;
        for stale in entries.iter().skip(self.keep).rev() {
            crash_point("manager: before rotation delete");
            std::fs::remove_file(&stale.path)?;
            crash_point("manager: after rotation delete");
        }
        Ok(())
    }
}

/// Parse the sequence number out of a live checkpoint file name; `None` for
/// anything that is not exactly `ckpt-<digits>.ckpt`.
fn parse_seq(name: &str) -> Option<u64> {
    let digits = name.strip_prefix(PREFIX)?.strip_suffix(SUFFIX)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Short, stable slug for a quarantine file name, one per error family.
fn reason_slug(error: &SnapshotError) -> &'static str {
    match error {
        SnapshotError::Io(_) => "io",
        SnapshotError::BadMagic { .. } => "magic",
        SnapshotError::UnsupportedVersion { .. } => "version",
        SnapshotError::Truncated { .. } => "truncated",
        SnapshotError::ChecksumMismatch { .. } => "checksum",
        SnapshotError::SchemaMismatch(_) => "schema",
        SnapshotError::Corrupt(_) => "corrupt",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_parsing_accepts_only_the_exact_shape() {
        assert_eq!(parse_seq("ckpt-0000000007.ckpt"), Some(7));
        assert_eq!(parse_seq("ckpt-0.ckpt"), Some(0));
        assert_eq!(parse_seq("ckpt-.ckpt"), None);
        assert_eq!(parse_seq("ckpt-7.ckpt.bad-checksum"), None);
        assert_eq!(parse_seq("ckpt-7.ckpt.tmp-snapshot"), None);
        assert_eq!(parse_seq("model-7.ckpt"), None);
        assert_eq!(parse_seq("ckpt-x7.ckpt"), None);
    }
}
