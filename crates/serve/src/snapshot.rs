//! Model snapshots and full training checkpoints over the binary frame.
//!
//! A snapshot file's payload is a sequence of length-prefixed *sections*
//! (`u8` tag + `u64` byte length + body), so readers can skip what they do
//! not need: [`load_model`] reads only the model section of a full training
//! checkpoint, which is how a serving process consumes trainer output
//! directly.
//!
//! | tag | section | contents |
//! |-----|---------|----------|
//! | 1   | model   | kind, `d`, vocab sizes, every embedding table as a dimension-strided `f64`-LE slab |
//! | 2   | trainer | epoch counter, wall-clock, raw master-RNG state, batch permutation, config fingerprint |
//! | 3   | optimizer | per-table state slabs (Adam `m`/`v`/`t`, AdaGrad `acc`/`seen`) |
//! | 4   | sampler | the sampler's evolving state: NSCaching's per-shard `H`/`T` caches, or a GAN generator's tables + optimizer + REINFORCE baseline |
//!
//! Section 4 is absent from checkpoints of stateless samplers and from legacy
//! files; [`load_checkpoint`] decodes its absence to
//! [`SamplerState::Stateless`], which every sampler accepts as a no-op import.
//!
//! See the crate docs for the exact-resume contract these sections add up to.

use crate::error::SnapshotError;
use crate::format::{read_frame, write_frame, Reader, Writer};
use nscaching::{
    CacheEntryState, CacheState, GeneratorKind, GeneratorState, GeneratorTableState,
    NegativeSampler, NsCachingShardState, NsCachingState, SamplerState,
};
use nscaching_models::{build_model, KgeModel, ModelConfig, ModelKind};
use nscaching_optim::{
    AdaGradTableState, AdamTableState, OptimizerConfig, OptimizerKind, OptimizerState,
};
use nscaching_train::{TrainConfig, TrainData, Trainer, TrainerState};
use std::path::Path;

const SECTION_MODEL: u8 = 1;
const SECTION_TRAINER: u8 = 2;
const SECTION_OPTIMIZER: u8 = 3;
const SECTION_SAMPLER: u8 = 4;

/// Sampler-state variant tags within the sampler section.
const SAMPLER_STATE_NSCACHING: u8 = 1;
const SAMPLER_STATE_GENERATOR: u8 = 2;

/// Generator-kind tags within a generator sampler state.
const GENERATOR_KIND_KBGAN: u8 = 1;
const GENERATOR_KIND_IGAN: u8 = 2;

/// One embedding table captured out of a model.
#[derive(Debug, Clone, PartialEq)]
pub struct TableData {
    /// Table name (diagnostics + restore-time schema check).
    pub name: String,
    /// Number of rows.
    pub rows: usize,
    /// Row dimension.
    pub dim: usize,
    /// `rows × dim` values, row-major.
    pub data: Vec<f64>,
}

/// A model's parameters plus the metadata needed to rebuild it.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSnapshot {
    /// Scoring function.
    pub kind: ModelKind,
    /// Embedding dimension (complex dimension for ComplEx).
    pub dim: usize,
    /// Entity vocabulary size.
    pub num_entities: usize,
    /// Relation vocabulary size.
    pub num_relations: usize,
    /// Every parameter table, in `KgeModel::tables()` order.
    pub tables: Vec<TableData>,
}

impl ModelSnapshot {
    /// Capture a model's parameters.
    pub fn capture(model: &dyn KgeModel) -> Self {
        Self {
            kind: model.kind(),
            dim: model.dim(),
            num_entities: model.num_entities(),
            num_relations: model.num_relations(),
            tables: model
                .tables()
                .into_iter()
                .map(|t| TableData {
                    name: t.name().to_string(),
                    rows: t.rows(),
                    dim: t.dim(),
                    data: t.data().to_vec(),
                })
                .collect(),
        }
    }

    /// Rebuild a live model holding exactly the captured parameters.
    ///
    /// Constructs the architecture through the regular factory, then
    /// overwrites every table — validating name, row count and dimension
    /// against the snapshot so a file from a different configuration fails
    /// with [`SnapshotError::SchemaMismatch`] instead of scoring garbage.
    pub fn into_model(self) -> Result<Box<dyn KgeModel>, SnapshotError> {
        let config = ModelConfig::new(self.kind).with_dim(self.dim);
        let mut model = build_model(&config, self.num_entities, self.num_relations);
        let mut tables = model.tables_mut();
        if tables.len() != self.tables.len() {
            return Err(SnapshotError::SchemaMismatch(format!(
                "{:?} built with {} tables but the snapshot holds {}",
                self.kind,
                tables.len(),
                self.tables.len()
            )));
        }
        for (table, snap) in tables.iter_mut().zip(&self.tables) {
            if table.name() != snap.name || table.rows() != snap.rows || table.dim() != snap.dim {
                return Err(SnapshotError::SchemaMismatch(format!(
                    "table {:?} ({}×{}) does not match snapshot table {:?} ({}×{})",
                    table.name(),
                    table.rows(),
                    table.dim(),
                    snap.name,
                    snap.rows,
                    snap.dim
                )));
            }
            if snap.data.len() != snap.rows * snap.dim {
                return Err(SnapshotError::Corrupt(format!(
                    "table {:?} slab holds {} values, expected {}",
                    snap.name,
                    snap.data.len(),
                    snap.rows * snap.dim
                )));
            }
            table.data_mut().copy_from_slice(&snap.data);
        }
        drop(tables);
        Ok(model)
    }

    fn encode(&self, w: &mut Writer) {
        w.u8(model_kind_tag(self.kind));
        w.u64(self.dim as u64);
        w.u64(self.num_entities as u64);
        w.u64(self.num_relations as u64);
        w.u32(self.tables.len() as u32);
        for table in &self.tables {
            w.str(&table.name);
            w.u64(table.rows as u64);
            w.u64(table.dim as u64);
            w.f64_slice(&table.data);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let kind = model_kind_from_tag(r.u8("model kind")?)?;
        let dim = r.u64("model dim")? as usize;
        let num_entities = r.u64("entity count")? as usize;
        let num_relations = r.u64("relation count")? as usize;
        let n_tables = r.u32("table count")?;
        let mut tables = Vec::with_capacity(n_tables as usize);
        for _ in 0..n_tables {
            let name = r.str("table name")?;
            let rows = r.u64("table rows")? as usize;
            let dim = r.u64("table dim")? as usize;
            let data = r.f64_slice("table slab")?;
            if data.len() != rows * dim {
                return Err(SnapshotError::Corrupt(format!(
                    "table {name:?} slab holds {} values, expected {rows}×{dim}",
                    data.len()
                )));
            }
            tables.push(TableData {
                name,
                rows,
                dim,
                data,
            });
        }
        Ok(Self {
            kind,
            dim,
            num_entities,
            num_relations,
            tables,
        })
    }
}

/// Configuration fingerprint stored next to the trainer state so a resume
/// with a drifted configuration fails loudly instead of continuing a
/// *different* (silently non-reproducible) trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointMeta {
    /// Master training seed.
    pub seed: u64,
    /// Shard count of the run.
    pub shards: u64,
    /// Optimizer kind and learning rate.
    pub optimizer: OptimizerConfig,
}

/// A full training checkpoint: model parameters + trainer state + metadata.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The model at the checkpointed epoch boundary.
    pub model: ModelSnapshot,
    /// Trainer state (epoch counter, RNG, batch permutation, optimizer slabs).
    pub state: TrainerState,
    /// Configuration fingerprint for resume-time validation.
    pub meta: CheckpointMeta,
}

/// Persist a model-only snapshot (the serving artifact).
pub fn save_model(path: &Path, model: &dyn KgeModel) -> Result<(), SnapshotError> {
    let mut w = Writer::new();
    write_section(&mut w, SECTION_MODEL, |w| {
        ModelSnapshot::capture(model).encode(w)
    });
    write_frame(path, &w.into_payload())
}

/// Load the model section of a snapshot or checkpoint file.
pub fn load_model(path: &Path) -> Result<ModelSnapshot, SnapshotError> {
    let payload = read_frame(path)?;
    let mut r = Reader::new(&payload);
    let mut model = None;
    walk_sections(&mut r, |tag, r| {
        if tag == SECTION_MODEL {
            model = Some(ModelSnapshot::decode(r)?);
        }
        Ok(())
    })?;
    model.ok_or_else(|| SnapshotError::SchemaMismatch("no model section in snapshot".into()))
}

/// Persist a full training checkpoint at an epoch boundary.
///
/// Captures everything [`resume_trainer`] needs to continue the run
/// bit-for-bit (see the crate docs for the samplers this guarantee covers).
pub fn save_checkpoint(path: &Path, trainer: &Trainer) -> Result<(), SnapshotError> {
    let state = trainer.checkpoint();
    let config = trainer.config();
    let mut w = Writer::new();
    write_section(&mut w, SECTION_MODEL, |w| {
        ModelSnapshot::capture(trainer.model()).encode(w)
    });
    write_section(&mut w, SECTION_TRAINER, |w| {
        w.u64(state.epochs_done);
        w.f64(state.train_seconds);
        for word in state.rng {
            w.u64(word);
        }
        w.u64(config.seed);
        w.u64(config.shards.max(1) as u64);
        w.u8(optimizer_kind_tag(config.optimizer.kind));
        w.f64(config.optimizer.learning_rate);
        w.u32_slice(&state.batch_order);
    });
    write_section(&mut w, SECTION_OPTIMIZER, |w| {
        encode_optimizer_state(w, &state.optimizer)
    });
    // Stateless samplers write no sampler section at all, keeping their
    // checkpoints byte-compatible with pre-section-4 readers.
    if !matches!(state.sampler, SamplerState::Stateless) {
        write_section(&mut w, SECTION_SAMPLER, |w| {
            encode_sampler_state(w, &state.sampler)
        });
    }
    write_frame(path, &w.into_payload())
}

/// Load a full training checkpoint.
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint, SnapshotError> {
    let payload = read_frame(path)?;
    let mut r = Reader::new(&payload);
    let mut model = None;
    let mut trainer = None;
    let mut optimizer = None;
    let mut sampler = None;
    walk_sections(&mut r, |tag, r| {
        match tag {
            SECTION_MODEL => model = Some(ModelSnapshot::decode(r)?),
            SECTION_TRAINER => {
                let epochs_done = r.u64("epoch counter")?;
                let train_seconds = r.f64("train seconds")?;
                let mut rng = [0u64; 4];
                for word in &mut rng {
                    *word = r.u64("rng state")?;
                }
                // The all-zero state is xoshiro256**'s one invalid fixed
                // point; it cannot be produced by a real trainer, and the
                // RNG constructor asserts on it — reject here with a typed
                // error so a hand-crafted (but checksum-consistent) file
                // cannot panic a resume.
                if rng.iter().all(|&word| word == 0) {
                    return Err(SnapshotError::Corrupt(
                        "all-zero master-RNG state in trainer section".into(),
                    ));
                }
                let seed = r.u64("seed")?;
                let shards = r.u64("shards")?;
                let kind = optimizer_kind_from_tag(r.u8("optimizer kind")?)?;
                let learning_rate = r.f64("learning rate")?;
                let batch_order = r.u32_slice("batch order")?;
                trainer = Some((
                    epochs_done,
                    train_seconds,
                    rng,
                    batch_order,
                    CheckpointMeta {
                        seed,
                        shards,
                        optimizer: OptimizerConfig {
                            kind,
                            learning_rate,
                        },
                    },
                ));
            }
            SECTION_OPTIMIZER => optimizer = Some(decode_optimizer_state(r)?),
            SECTION_SAMPLER => sampler = Some(decode_sampler_state(r)?),
            _ => {}
        }
        Ok(())
    })?;
    let model = model.ok_or_else(|| SnapshotError::SchemaMismatch("no model section".into()))?;
    let (epochs_done, train_seconds, rng, batch_order, meta) =
        trainer.ok_or_else(|| SnapshotError::SchemaMismatch("no trainer section".into()))?;
    let optimizer =
        optimizer.ok_or_else(|| SnapshotError::SchemaMismatch("no optimizer section".into()))?;
    if optimizer.kind() != meta.optimizer.kind {
        return Err(SnapshotError::SchemaMismatch(format!(
            "optimizer section holds {:?} state but the trainer section records {:?}",
            optimizer.kind(),
            meta.optimizer.kind
        )));
    }
    Ok(Checkpoint {
        model,
        state: TrainerState {
            epochs_done,
            train_seconds,
            rng,
            batch_order,
            optimizer,
            // Legacy checkpoints (and stateless-sampler checkpoints) carry no
            // sampler section; every sampler imports `Stateless` as a no-op.
            sampler: sampler.unwrap_or(SamplerState::Stateless),
        },
        meta,
    })
}

/// Rebuild a [`Trainer`] from a checkpoint so it continues the interrupted
/// run.
///
/// `sampler`, `data` and `config` must be constructed exactly as for the
/// original run (same dataset, same sampler configuration and seed, same
/// [`TrainConfig`]); the configuration fingerprint stored in the checkpoint
/// is validated against `config` and any drift fails with
/// [`SnapshotError::SchemaMismatch`].
pub fn resume_trainer(
    checkpoint: Checkpoint,
    sampler: Box<dyn NegativeSampler>,
    data: impl Into<TrainData>,
    config: TrainConfig,
) -> Result<Trainer, SnapshotError> {
    let meta = checkpoint.meta;
    if config.seed != meta.seed {
        return Err(SnapshotError::SchemaMismatch(format!(
            "config seed {} differs from checkpointed seed {}",
            config.seed, meta.seed
        )));
    }
    if config.shards.max(1) as u64 != meta.shards {
        return Err(SnapshotError::SchemaMismatch(format!(
            "config shards {} differ from checkpointed shards {} (the shard count selects \
             the RNG partition, so resuming under a different one would be a different run)",
            config.shards.max(1),
            meta.shards
        )));
    }
    if config.optimizer != meta.optimizer {
        return Err(SnapshotError::SchemaMismatch(format!(
            "config optimizer {:?} differs from checkpointed {:?}",
            config.optimizer, meta.optimizer
        )));
    }
    let model = checkpoint.model.into_model()?;
    let mut trainer = Trainer::new(model, sampler, data, config);
    trainer
        .restore(checkpoint.state)
        .map_err(SnapshotError::SchemaMismatch)?;
    Ok(trainer)
}

/// Write one `tag + length + body` section.
fn write_section(w: &mut Writer, tag: u8, body: impl FnOnce(&mut Writer)) {
    let mut section = Writer::new();
    body(&mut section);
    let section = section.into_payload();
    w.u8(tag);
    w.u64(section.len() as u64);
    w.raw(&section);
}

/// Walk every section, handing `(tag, body reader)` to `visit`. Unknown tags
/// are skipped (forward compatibility within one format version).
fn walk_sections(
    r: &mut Reader<'_>,
    mut visit: impl FnMut(u8, &mut Reader<'_>) -> Result<(), SnapshotError>,
) -> Result<(), SnapshotError> {
    while !r.is_exhausted() {
        let tag = r.u8("section tag")?;
        let len = r.u64("section length")? as usize;
        let mut body = r.sub_reader(len, "section body")?;
        visit(tag, &mut body)?;
    }
    Ok(())
}

/// Reject a decoded element count whose minimal encoding could not fit in the
/// reader's remaining bytes — the pre-allocation guard for corrupt counts.
fn guard_count(
    r: &Reader<'_>,
    count: usize,
    min_elem_bytes: usize,
    context: &'static str,
) -> Result<(), SnapshotError> {
    if count
        .checked_mul(min_elem_bytes)
        .is_none_or(|b| b > r.remaining())
    {
        return Err(SnapshotError::Truncated {
            context,
            needed: count.saturating_mul(min_elem_bytes),
            available: r.remaining(),
        });
    }
    Ok(())
}

fn encode_cache_state(w: &mut Writer, cache: &CacheState) {
    w.u64(cache.changed_elements);
    w.u64(cache.entries.len() as u64);
    for entry in &cache.entries {
        w.u32(entry.key.0);
        w.u32(entry.key.1);
        w.u32_slice(&entry.entities);
    }
}

fn decode_cache_state(r: &mut Reader<'_>, what: &'static str) -> Result<CacheState, SnapshotError> {
    let changed_elements = r.u64("cache changed elements")?;
    let n = r.u64("cache entry count")? as usize;
    // Allocation guard: each entry takes at least key (8) + count prefix (8)
    // bytes, so a corrupt count cannot drive a huge Vec::with_capacity.
    guard_count(r, n, 16, what)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let a = r.u32("cache key a")?;
        let b = r.u32("cache key b")?;
        let entities = r.u32_slice("cache entities")?;
        entries.push(CacheEntryState {
            key: (a, b),
            entities,
        });
    }
    Ok(CacheState {
        changed_elements,
        entries,
    })
}

fn encode_sampler_state(w: &mut Writer, state: &SamplerState) {
    match state {
        // Stateless captures never reach here (save_checkpoint omits the
        // section), but encode defensively as an NSCaching-free marker-less
        // no-op is impossible — panic instead of writing a lying section.
        SamplerState::Stateless => unreachable!("stateless sampler state is not encoded"),
        SamplerState::NsCaching(ns) => {
            w.u8(SAMPLER_STATE_NSCACHING);
            w.u8(ns.updates_enabled as u8);
            w.u64(ns.shards.len() as u64);
            for shard in &ns.shards {
                w.u64(shard.refresh_count);
                encode_cache_state(w, &shard.head);
                encode_cache_state(w, &shard.tail);
            }
        }
        SamplerState::Generator(g) => {
            w.u8(SAMPLER_STATE_GENERATOR);
            w.u8(match g.kind {
                GeneratorKind::KbGan => GENERATOR_KIND_KBGAN,
                GeneratorKind::Igan => GENERATOR_KIND_IGAN,
            });
            w.f64(g.baseline);
            w.u64(g.feedback_steps);
            w.u32(g.tables.len() as u32);
            for table in &g.tables {
                w.str(&table.name);
                w.u64(table.rows as u64);
                w.u64(table.dim as u64);
                w.f64_slice(&table.data);
            }
            encode_optimizer_state(w, &g.optimizer);
        }
    }
}

fn decode_sampler_state(r: &mut Reader<'_>) -> Result<SamplerState, SnapshotError> {
    match r.u8("sampler state kind")? {
        SAMPLER_STATE_NSCACHING => {
            let updates_enabled = match r.u8("updates-enabled flag")? {
                0 => false,
                1 => true,
                other => {
                    return Err(SnapshotError::Corrupt(format!(
                        "updates-enabled flag must be 0 or 1, found {other}"
                    )))
                }
            };
            let n = r.u64("sampler shard count")? as usize;
            if n == 0 {
                return Err(SnapshotError::Corrupt(
                    "NSCaching sampler state records zero shards".into(),
                ));
            }
            guard_count(r, n, 40, "sampler shards")?;
            let mut shards = Vec::with_capacity(n);
            for _ in 0..n {
                let refresh_count = r.u64("shard refresh count")?;
                let head = decode_cache_state(r, "head cache entries")?;
                let tail = decode_cache_state(r, "tail cache entries")?;
                shards.push(NsCachingShardState {
                    refresh_count,
                    head,
                    tail,
                });
            }
            Ok(SamplerState::NsCaching(NsCachingState {
                updates_enabled,
                shards,
            }))
        }
        SAMPLER_STATE_GENERATOR => {
            let kind = match r.u8("generator kind")? {
                GENERATOR_KIND_KBGAN => GeneratorKind::KbGan,
                GENERATOR_KIND_IGAN => GeneratorKind::Igan,
                other => {
                    return Err(SnapshotError::Corrupt(format!(
                        "unknown generator kind tag {other}"
                    )))
                }
            };
            let baseline = r.f64("generator baseline")?;
            let feedback_steps = r.u64("feedback steps")?;
            let n = r.u32("generator table count")?;
            let mut tables = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let name = r.str("generator table name")?;
                let rows = r.u64("generator table rows")? as usize;
                let dim = r.u64("generator table dim")? as usize;
                let data = r.f64_slice("generator table slab")?;
                if data.len() != rows * dim {
                    return Err(SnapshotError::Corrupt(format!(
                        "generator table {name:?} slab holds {} values, expected {rows}×{dim}",
                        data.len()
                    )));
                }
                tables.push(GeneratorTableState {
                    name,
                    rows,
                    dim,
                    data,
                });
            }
            let optimizer = decode_optimizer_state(r)?;
            Ok(SamplerState::Generator(GeneratorState {
                kind,
                baseline,
                feedback_steps,
                tables,
                optimizer,
            }))
        }
        other => Err(SnapshotError::Corrupt(format!(
            "unknown sampler state tag {other}"
        ))),
    }
}

fn encode_optimizer_state(w: &mut Writer, state: &OptimizerState) {
    match state {
        OptimizerState::Sgd => w.u8(optimizer_kind_tag(OptimizerKind::Sgd)),
        OptimizerState::AdaGrad { tables } => {
            w.u8(optimizer_kind_tag(OptimizerKind::AdaGrad));
            w.u32(tables.len() as u32);
            for t in tables {
                w.u64(t.dim as u64);
                w.f64_slice(&t.acc);
                w.bool_slice(&t.seen);
            }
        }
        OptimizerState::Adam { tables } => {
            w.u8(optimizer_kind_tag(OptimizerKind::Adam));
            w.u32(tables.len() as u32);
            for t in tables {
                w.u64(t.dim as u64);
                w.f64_slice(&t.m);
                w.f64_slice(&t.v);
                w.u64_slice(&t.t);
            }
        }
    }
}

fn decode_optimizer_state(r: &mut Reader<'_>) -> Result<OptimizerState, SnapshotError> {
    match optimizer_kind_from_tag(r.u8("optimizer state kind")?)? {
        OptimizerKind::Sgd => Ok(OptimizerState::Sgd),
        OptimizerKind::AdaGrad => {
            let n = r.u32("adagrad table count")?;
            let mut tables = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let dim = r.u64("adagrad dim")? as usize;
                let acc = r.f64_slice("adagrad accumulators")?;
                let seen = r.bool_slice("adagrad seen flags")?;
                tables.push(AdaGradTableState { dim, acc, seen });
            }
            Ok(OptimizerState::AdaGrad { tables })
        }
        OptimizerKind::Adam => {
            let n = r.u32("adam table count")?;
            let mut tables = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let dim = r.u64("adam dim")? as usize;
                let m = r.f64_slice("adam first moments")?;
                let v = r.f64_slice("adam second moments")?;
                let t = r.u64_slice("adam step counters")?;
                tables.push(AdamTableState { dim, m, v, t });
            }
            Ok(OptimizerState::Adam { tables })
        }
    }
}

fn model_kind_tag(kind: ModelKind) -> u8 {
    match kind {
        ModelKind::TransE => 0,
        ModelKind::TransH => 1,
        ModelKind::TransD => 2,
        ModelKind::TransR => 3,
        ModelKind::DistMult => 4,
        ModelKind::ComplEx => 5,
        ModelKind::Rescal => 6,
    }
}

fn model_kind_from_tag(tag: u8) -> Result<ModelKind, SnapshotError> {
    Ok(match tag {
        0 => ModelKind::TransE,
        1 => ModelKind::TransH,
        2 => ModelKind::TransD,
        3 => ModelKind::TransR,
        4 => ModelKind::DistMult,
        5 => ModelKind::ComplEx,
        6 => ModelKind::Rescal,
        other => {
            return Err(SnapshotError::Corrupt(format!(
                "unknown model kind tag {other}"
            )))
        }
    })
}

fn optimizer_kind_tag(kind: OptimizerKind) -> u8 {
    match kind {
        OptimizerKind::Sgd => 0,
        OptimizerKind::AdaGrad => 1,
        OptimizerKind::Adam => 2,
    }
}

fn optimizer_kind_from_tag(tag: u8) -> Result<OptimizerKind, SnapshotError> {
    Ok(match tag {
        0 => OptimizerKind::Sgd,
        1 => OptimizerKind::AdaGrad,
        2 => OptimizerKind::Adam,
        other => {
            return Err(SnapshotError::Corrupt(format!(
                "unknown optimizer kind tag {other}"
            )))
        }
    })
}
