//! TinyLFU admission filter: frequency-gated entry into the serving cache.
//!
//! An eviction policy decides who *dies* when the cache is full; an
//! admission policy decides whether the newcomer deserves to kill anyone at
//! all. Without one, every one-touch key that misses buys its way in by
//! evicting an incumbent — the scan-pollution failure mode the SLRU
//! probation segment only partially absorbs (the sweep still churns
//! probation and costs the first eviction). The TinyLFU scheme (Einziger,
//! Friedman & Manes, "TinyLFU: A Highly Efficient Cache Admission Policy")
//! keeps an approximate frequency histogram of *recent* traffic and admits a
//! candidate only if it is judged more frequent than the eviction victim it
//! would displace; a key seen once in a blue moon can never displace a key
//! the histogram has seen often.
//!
//! # The sketch
//!
//! [`TinyLfu`] is the classic two-layer construction:
//!
//! * a **doorkeeper** — a small Bloom filter catching first occurrences, so
//!   the one-hit tail (the overwhelming majority of keys under Zipf traffic)
//!   never touches the main histogram; and
//! * a **4-bit count-min sketch** — [`ROWS`] rows of nibble-packed
//!   saturating counters; an estimate is the minimum over rows (+1 when the
//!   doorkeeper knows the key), an increment is *conservative* (only the
//!   minimal counters grow), so collisions only ever over-estimate, and only
//!   by colliding with genuinely hot keys.
//!
//! Freshness comes from the **halving reset**: after [`sample window`]
//! recorded accesses (~8× the cache capacity), every counter is halved and
//! the doorkeeper is cleared. Frequencies are therefore exponentially
//! decayed estimates of *recent* popularity — a formerly hot key stops
//! winning admission contests a bounded number of windows after its traffic
//! stops, which is what keeps the filter from pinning a stale working set
//! the way plain LFU eviction does.
//!
//! Everything is deterministic: the row/doorkeeper probes are SplitMix64
//! mixes of the caller-supplied key hash, there is no randomized tie-break,
//! and the structure is a pure function of the recorded access sequence —
//! so the `cache_sim` trace replays and the admission tests are exactly
//! reproducible.
//!
//! # Wiring
//!
//! The filter lives in [`PolicyCache`](crate::cache::PolicyCache) (enabled
//! per cache via [`CacheConfig::admission`]), *in front of* whatever
//! eviction policy the cache runs: frequencies are recorded on every lookup
//! ([`record`]), and an insert into a full cache first asks the policy for
//! its prospective victim ([`EvictionPolicy::peek_victim`]) and runs the
//! [`admit`] contest — on rejection the insert is dropped, the victim's
//! policy books untouched. Eviction policies never see any of this; they
//! remain pure slot-ordering machines.
//!
//! [`sample window`]: TinyLfu::sample_window
//! [`record`]: TinyLfu::record
//! [`admit`]: TinyLfu::admit
//! [`EvictionPolicy::peek_victim`]: crate::policy::EvictionPolicy::peek_victim
//! [`CacheConfig::admission`]: crate::server::CacheConfig::admission

use nscaching_math::split_seed;

/// Count-min rows. Four is the canonical TinyLFU depth: collision
/// probability falls geometrically per row while the sketch stays 2 bytes
/// per counter column.
const ROWS: usize = 4;

/// Saturation ceiling of one 4-bit counter.
const MAX_COUNT: u8 = 15;

/// Doorkeeper probes per key (standard small-Bloom choice).
const DOOR_PROBES: u64 = 2;

/// Domain tags separating the sketch-row and doorkeeper probe streams.
const ROW_TAG: u64 = 0x7F4A7C15;
const DOOR_TAG: u64 = 0xD00CE;

/// A TinyLFU admission filter: doorkeeper Bloom filter + 4-bit count-min
/// sketch with periodic halving. Operates on caller-supplied 64-bit key
/// hashes; see the [module docs](self) for the scheme and the wiring.
#[derive(Debug)]
pub struct TinyLfu {
    /// Nibble-packed counters: `ROWS` rows of `width` 4-bit columns.
    sketch: Box<[u8]>,
    /// Columns per row minus one (`width` is a power of two).
    column_mask: u64,
    /// Doorkeeper Bloom bits, `width` of them.
    doorkeeper: Box<[u64]>,
    /// Accesses recorded since the last halving reset.
    samples: u32,
    /// Reset threshold (~8× the protected cache's capacity).
    sample_window: u32,
}

impl TinyLfu {
    /// A filter sized to guard a cache of `capacity` entries: one sketch
    /// column per entry rounded up to a power of two (floor 64), and a reset
    /// window of 8 samples per column.
    pub fn for_capacity(capacity: usize) -> Self {
        let width = capacity.next_power_of_two().max(64);
        Self {
            sketch: vec![0u8; ROWS * width / 2].into_boxed_slice(),
            column_mask: width as u64 - 1,
            doorkeeper: vec![0u64; width / 64].into_boxed_slice(),
            samples: 0,
            sample_window: (width as u32).saturating_mul(8),
        }
    }

    /// The halving-reset threshold in recorded samples.
    pub fn sample_window(&self) -> u32 {
        self.sample_window
    }

    /// Record one access to the key behind `hash`. First occurrence within
    /// the current window goes to the doorkeeper; repeats conservatively
    /// increment the sketch. Triggers the halving reset when the window
    /// fills.
    pub fn record(&mut self, hash: u64) {
        self.samples += 1;
        if self.samples >= self.sample_window {
            self.halve();
        }
        if !self.door_check_and_set(hash) {
            return;
        }
        // Conservative update: only the row counters currently at the
        // minimum grow, so a collision with a hot key cannot inflate a cold
        // key's every row.
        let min = self.sketch_estimate(hash);
        if min >= MAX_COUNT {
            return;
        }
        for row in 0..ROWS {
            let (byte, shift) = self.cell(hash, row);
            let count = (self.sketch[byte] >> shift) & 0xF;
            if count == min {
                self.sketch[byte] += 1 << shift;
            }
        }
    }

    /// The key's approximate access count within the current window:
    /// count-min over the sketch rows, plus the doorkeeper's remembered
    /// first occurrence.
    pub fn estimate(&self, hash: u64) -> u32 {
        let mut estimate = self.sketch_estimate(hash) as u32;
        if self.door_contains(hash) {
            estimate += 1;
        }
        estimate
    }

    /// The admission contest: should `candidate` displace `victim`? Admits
    /// on ties — the candidate is by definition the more recent of the two,
    /// and a deterministic anti-recency tie-break would freeze the cache
    /// contents after the first popularity shift.
    pub fn admit(&self, candidate: u64, victim: u64) -> bool {
        self.estimate(candidate) >= self.estimate(victim)
    }

    /// Forget everything (cache clear).
    pub fn clear(&mut self) {
        self.sketch.fill(0);
        self.doorkeeper.fill(0);
        self.samples = 0;
    }

    /// Byte index and nibble shift of the key's counter in `row`.
    fn cell(&self, hash: u64, row: usize) -> (usize, u32) {
        let column = split_seed(hash ^ ROW_TAG, row as u64) & self.column_mask;
        let index = row * (self.column_mask as usize + 1) + column as usize;
        (index / 2, (index as u32 & 1) * 4)
    }

    /// Min-over-rows sketch read, doorkeeper excluded.
    fn sketch_estimate(&self, hash: u64) -> u8 {
        (0..ROWS)
            .map(|row| {
                let (byte, shift) = self.cell(hash, row);
                (self.sketch[byte] >> shift) & 0xF
            })
            .min()
            .unwrap_or(0)
    }

    /// Whether every doorkeeper probe bit is set; sets them all either way.
    /// Returns `true` when the key was already known (i.e. the sketch should
    /// take this occurrence).
    fn door_check_and_set(&mut self, hash: u64) -> bool {
        let mut known = true;
        for probe in 0..DOOR_PROBES {
            let bit = split_seed(hash ^ DOOR_TAG, probe) & self.column_mask;
            let (word, mask) = (bit as usize / 64, 1u64 << (bit % 64));
            known &= self.doorkeeper[word] & mask != 0;
            self.doorkeeper[word] |= mask;
        }
        known
    }

    fn door_contains(&self, hash: u64) -> bool {
        (0..DOOR_PROBES).all(|probe| {
            let bit = split_seed(hash ^ DOOR_TAG, probe) & self.column_mask;
            self.doorkeeper[bit as usize / 64] & (1 << (bit % 64)) != 0
        })
    }

    /// The halving reset: every counter drops to half, the doorkeeper
    /// forgets its window, and the sample clock rewinds to half the window
    /// (the surviving halved counts are exactly half a window of history).
    fn halve(&mut self) {
        for byte in self.sketch.iter_mut() {
            *byte = (*byte >> 1) & 0x77;
        }
        self.doorkeeper.fill(0);
        self.samples = self.sample_window / 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_occurrence_is_doorkeeper_only_then_the_sketch_takes_over() {
        let mut f = TinyLfu::for_capacity(64);
        assert_eq!(f.estimate(42), 0);
        f.record(42);
        // Doorkeeper remembers the first occurrence; the sketch is untouched.
        assert_eq!(f.estimate(42), 1);
        assert_eq!(f.sketch_estimate(42), 0);
        f.record(42);
        f.record(42);
        assert_eq!(f.estimate(42), 3);
        assert_eq!(f.sketch_estimate(42), 2);
    }

    #[test]
    fn estimates_saturate_at_the_nibble_ceiling() {
        let mut f = TinyLfu::for_capacity(64);
        for _ in 0..100 {
            f.record(7);
        }
        // 15 from the saturated sketch + 1 from the doorkeeper.
        assert_eq!(f.estimate(7), 16);
    }

    #[test]
    fn admission_prefers_the_frequent_key_and_admits_ties() {
        let mut f = TinyLfu::for_capacity(64);
        for _ in 0..6 {
            f.record(1);
        }
        f.record(2);
        assert!(f.admit(1, 2), "hot candidate displaces cold victim");
        assert!(!f.admit(2, 1), "cold candidate cannot displace hot victim");
        f.record(3);
        assert!(f.admit(2, 3), "equal estimates admit (recency wins ties)");
    }

    #[test]
    fn the_window_reset_halves_counts_and_reopens_the_doorkeeper() {
        let mut f = TinyLfu::for_capacity(64);
        for _ in 0..12 {
            f.record(9);
        }
        let before = f.estimate(9);
        // Drive distinct keys through until the sample window rolls over.
        let window = f.sample_window() as u64;
        for key in 1_000..1_000 + window {
            f.record(key);
        }
        let after = f.estimate(9);
        assert!(
            after <= before / 2 + 1,
            "estimate {before} must roughly halve, got {after}"
        );
        // The doorkeeper forgot: a key recorded pre-reset re-enters as new.
        assert!(f.estimate(9) < before);
    }

    #[test]
    fn clear_forgets_everything() {
        let mut f = TinyLfu::for_capacity(64);
        for _ in 0..5 {
            f.record(11);
        }
        f.clear();
        assert_eq!(f.estimate(11), 0);
        assert!(f.admit(99, 11), "estimates tied at zero admit");
    }

    #[test]
    fn conservative_update_keeps_cold_keys_cold_under_collisions() {
        // Hammer many hot keys, then check a never-recorded key's estimate
        // stays small: min-over-rows plus conservative increments bound the
        // collision inflation.
        let mut f = TinyLfu::for_capacity(64);
        for hot in 0..32u64 {
            for _ in 0..8 {
                f.record(hot);
            }
        }
        assert!(
            f.estimate(0xDEAD_BEEF) <= 2,
            "unrecorded key estimate {} should stay near zero",
            f.estimate(0xDEAD_BEEF)
        );
    }
}
