//! Checkpoint store and online serving engine for trained KGE models.
//!
//! Everything upstream of this crate trains; nothing survived the process.
//! `nscaching_serve` adds the two missing production layers:
//!
//! 1. a **snapshot store** — a versioned, checksummed binary format that
//!    persists a model's embedding tables, the optimizer's dense state slabs
//!    and the trainer's RNG/epoch counters, giving
//!    [`Trainer`](nscaching_train::Trainer) working `checkpoint()`/resume
//!    semantics with a provable exact-resume guarantee; and
//! 2. a **query engine** — [`KnowledgeServer`], which loads a snapshot behind
//!    an `Arc` and answers top-k link-prediction, rank and
//!    triplet-classification queries through the workspace's batched scoring
//!    fast paths, fronted by a version-invalidated, hash-**sharded** result
//!    cache with a pluggable eviction policy ([`PolicyKind`]: LRU, SLRU,
//!    LFU, LFUDA — selected from trace-driven simulation, see [`policy`]),
//!    an optional TinyLFU **admission filter** in front of it
//!    ([`CacheConfig::admission`], see [`admission`]), and fanned out over
//!    the existing worker pool for batch traffic. The cache-miss path
//!    selects its top-k via an O(|E| + k log k) partial selection kernel
//!    (`nscaching_math::top_k_indices_into`) instead of a full sort, and
//!    with a bound per-relation [`CandidateIndex`] scores only the query
//!    relation's observed candidate set instead of the full vocabulary
//!    (see [`candidates`] for the answer semantics); an optional score
//!    cache memoises scalar triple scores, **including typed negative
//!    answers**, for classification-heavy traffic
//!    ([`CacheConfig::score_capacity`]).
//!
//! # On-disk format
//!
//! One frame per file (all integers little-endian):
//!
//! ```text
//! ┌──────────┬─────────────┬──────────────┬───────────┬──────────────┐
//! │ magic 8B │ version u32 │ length  u64  │  payload  │ checksum u64 │
//! │ NSCSNP␁␊ │      1      │ = |payload|  │ sections… │  FNV-1a 64   │
//! └──────────┴─────────────┴──────────────┴───────────┴──────────────┘
//! ```
//!
//! The payload is a sequence of tagged, length-prefixed sections (so readers
//! skip what they do not understand): **model** (scoring-function kind,
//! dimensions, every [`EmbeddingTable`](nscaching_models::EmbeddingTable) as
//! a dimension-strided `f64`-LE slab), **trainer** (epoch counter, wall-clock
//! seconds, raw master-RNG state, the batcher's epoch permutation, and a
//! seed/shards/optimizer fingerprint validated at resume), **optimizer**
//! (the dense per-table state slabs of `nscaching_optim` — Adam `m`/`v`
//! moments and step counters, AdaGrad accumulators and seen flags), and
//! **sampler** (a stateful sampler's evolving state: NSCaching's per-shard
//! `H`/`T` caches with their refresh/changed-element counters, or a GAN
//! sampler's generator tables, generator-optimizer slabs and REINFORCE
//! baseline; absent for stateless samplers and legacy files). A
//! model-only snapshot ([`save_model`]) is the serving artifact; a full
//! checkpoint ([`save_checkpoint`]) is a superset, and [`KnowledgeServer`]
//! accepts either. Readers validate magic → version → length → checksum
//! before parsing a byte, and every failure is a typed [`SnapshotError`] —
//! corruption never panics.
//!
//! # Exact-resume guarantee
//!
//! A run interrupted at an epoch boundary and resumed from its checkpoint
//! ([`load_checkpoint`] → [`resume_trainer`]) produces **bit-for-bit** the
//! same embeddings, optimizer state and evaluation metrics as the
//! uninterrupted run — for **every** sampler, stateful ones included. The
//! argument: the trajectory is a pure function of (model tables, optimizer
//! slabs, master-RNG state, batch permutation, epoch counter, sampler state,
//! configuration) — all but the last are in the checkpoint, and the
//! per-epoch shard streams of the parallel engine are re-derived from
//! `(seed, epoch, shard)` through SplitMix64, so restoring the epoch counter
//! restores them exactly. At an epoch boundary a sampler's *transient* state
//! (per-shard REINFORCE buffers, scratch) is empty by construction, so the
//! sampler section's caches/generator/baseline are the whole of it.
//! `tests/exact_resume.rs` proves the guarantee for all 7 models × 3
//! optimizers with Bernoulli, plus NSCaching, KBGAN and IGAN, at
//! shards ∈ {1, 4}.
//!
//! # Crash recovery
//!
//! [`CheckpointManager`] turns one-file atomicity into a directory-level
//! last-good guarantee: sequence-numbered saves (nothing overwritten in
//! place), keep-last-N rotation that only deletes *after* a new save is
//! durable, full-validation recovery that walks newest → oldest, and
//! corruption **quarantine** — a bad file is renamed aside with a typed
//! reason suffix for inspection, never deleted blind. The kill-anywhere
//! harness (`tests/crash_recovery.rs`) SIGKILL-equivalently aborts a training
//! child at every instrumented point of the write/rename/rotate protocol
//! ([`crash`]) and proves recovery always finds a valid checkpoint and
//! resumes bit-identically. See [`manager`] for the ops runbook.
//!
//! # Query-cache contract
//!
//! The serving cache is keyed by the full query `(relation, entity,
//! direction, k)` and every entry carries the server's *model stamp* — load
//! generation mixed with the sum of all `EmbeddingTable::version()` counters,
//! captured under the same lock the answer was computed under. Any model
//! mutation bumps at least one table version, any reload bumps the
//! generation; a lookup whose entry stamp mismatches drops the entry and
//! recomputes. The stamp lives in the cached *values*, so neither the
//! eviction policy nor the shard count can affect the staleness guarantee —
//! `tests/policy_invariants.rs` re-proves it for every [`PolicyKind`] at
//! 1 and 4 shards, score cache included. See [`server`] for the full
//! reasoning and [`sharded`] for what hash-splitting does (and provably
//! does not) change.

pub mod admission;
pub mod cache;
pub mod candidates;
pub mod crash;
pub mod error;
pub mod format;
pub mod manager;
pub mod policy;
pub mod server;
pub mod sharded;
pub mod snapshot;
pub mod telemetry;

pub use admission::TinyLfu;
pub use cache::{CacheStats, LruCache, PolicyCache};
pub use candidates::CandidateIndex;
pub use error::SnapshotError;
pub use manager::{CheckpointEntry, CheckpointManager, Recovery, VerifiedEntry};
pub use policy::{
    EvictionPolicy, LfuPolicy, LfudaPolicy, LruPolicy, PolicyInit, PolicyKind, SlruPolicy,
};
pub use server::{
    BatchScratch, CacheConfig, KnowledgeServer, QueryError, QueryScratch, RankedEntity, TopKQuery,
};
pub use sharded::ShardedCache;
pub use snapshot::{
    load_checkpoint, load_model, resume_trainer, save_checkpoint, save_model, Checkpoint,
    CheckpointMeta, ModelSnapshot, TableData,
};
pub use telemetry::ServeMetrics;
