//! Capacity-bounded slot-arena cache, generic over its eviction policy.
//!
//! [`PolicyCache`] is the storage half of the serving cache (the `cache-rs`
//! family of eviction libraries is the reference point): a `HashMap` from
//! key to slot index plus a `Vec` slot arena of keys and values. All
//! *ordering* decisions — who is promoted on a hit, who dies when the cache
//! is full — are delegated to an [`EvictionPolicy`]
//! (see [`crate::policy`] for the catalog and the plug-in recipe).
//! Everything is pre-allocated to `capacity` up front, and an eviction
//! recycles its slot in place, so the **steady state — hits, and misses that
//! evict — performs no heap allocation**; that property is what lets the
//! serving engine's warm-cache path stay allocation-free (asserted by the
//! `serve_throughput` bench).
//!
//! [`LruCache`] is the backwards-compatible alias (`PolicyCache` over
//! [`LruPolicy`], statically dispatched): same API, same eviction decisions,
//! bit-for-bit, as the pre-policy-trait serving cache — the `lru_invariants`
//! proptest suite pins it against a brute-force reference model. Runtime
//! policy selection (the sharded cache, the simulator) goes through
//! `PolicyCache<K, V, Box<dyn EvictionPolicy + Send>>` instead.

use crate::policy::{EvictionPolicy, LruPolicy, PolicyInit, PolicyKind};
use std::collections::HashMap;
use std::hash::Hash;

/// Niche index marking "no slot".
const NIL: u32 = u32::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
}

/// Running hit/miss/eviction counters of a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found a live entry.
    pub hits: u64,
    /// `get` calls that found nothing.
    pub misses: u64,
    /// Entries displaced by inserts into a full cache.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Counter-wise sum (shard aggregation).
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
        }
    }
}

/// The original fixed-capacity least-recently-used map: [`PolicyCache`]
/// statically dispatched over [`LruPolicy`]. `get` promotes the entry to
/// most-recently-used; `insert` into a full cache evicts the
/// least-recently-used entry.
pub type LruCache<K, V> = PolicyCache<K, V, LruPolicy>;

/// A fixed-capacity map whose eviction order is decided by a pluggable
/// [`EvictionPolicy`].
///
/// `get` reports the access to the policy (recency/frequency promotion);
/// `insert` into a full cache evicts the policy's chosen victim. Capacity 0
/// is allowed and turns the cache into a no-op (every `insert` is dropped).
#[derive(Debug)]
pub struct PolicyCache<K, V, P: EvictionPolicy = LruPolicy> {
    map: HashMap<K, u32>,
    slots: Vec<Slot<K, V>>,
    free: Vec<u32>,
    capacity: usize,
    stats: CacheStats,
    policy: P,
}

impl<K: Hash + Eq + Copy, V, P: EvictionPolicy + PolicyInit> PolicyCache<K, V, P> {
    /// An empty cache holding at most `capacity` entries, its policy built
    /// fresh via [`PolicyInit`], with every internal structure pre-sized so
    /// steady-state operation never allocates.
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, P::for_capacity(capacity))
    }
}

impl<K: Hash + Eq + Copy, V, P: EvictionPolicy> PolicyCache<K, V, P> {
    /// An empty cache holding at most `capacity` entries, ordered by
    /// `policy` (which must have been sized for at least `capacity` slots).
    pub fn with_policy(capacity: usize, policy: P) -> Self {
        assert!(
            capacity < NIL as usize,
            "capacity must fit the u32 slot index"
        );
        Self {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            capacity,
            stats: CacheStats::default(),
            policy,
        }
    }

    /// Which eviction policy orders this cache.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hit/miss/eviction counters since construction (or the last
    /// [`clear`](Self::clear)).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether `key` currently lives in the cache, without touching the
    /// policy's books or the counters.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Look up `key`, reporting the access to the eviction policy.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(slot) => {
                self.stats.hits += 1;
                self.policy.on_hit(slot);
                Some(&self.slots[slot as usize].value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or replace) `key`, evicting the policy's victim if the cache
    /// is full. A replaced key counts as an access, not an insert.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(slot) = self.map.get(&key).copied() {
            self.slots[slot as usize].value = value;
            self.policy.on_hit(slot);
            return;
        }
        let slot = if self.map.len() == self.capacity {
            // Recycle the victim's slot in place.
            let victim = self.policy.victim();
            let slot = &mut self.slots[victim as usize];
            self.map.remove(&slot.key);
            slot.key = key;
            slot.value = value;
            self.stats.evictions += 1;
            victim
        } else if let Some(slot) = self.free.pop() {
            let node = &mut self.slots[slot as usize];
            node.key = key;
            node.value = value;
            slot
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot { key, value });
            slot
        };
        self.map.insert(key, slot);
        self.policy.on_insert(slot);
    }

    /// Remove `key` (explicit invalidation), returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V>
    where
        V: Default,
    {
        let slot = self.map.remove(key)?;
        self.policy.on_remove(slot);
        self.free.push(slot);
        Some(std::mem::take(&mut self.slots[slot as usize].value))
    }

    /// Drop every entry and reset the counters (keeps the allocations).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.policy.clear();
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{LfuPolicy, LfudaPolicy, SlruPolicy};

    #[test]
    fn inserts_and_hits() {
        let mut c: LruCache<u32, &str> = LruCache::new(4);
        c.insert(1, "one");
        c.insert(2, "two");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&3), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn eviction_drops_the_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        // Touch 1 so 2 becomes the LRU.
        assert!(c.get(&1).is_some());
        c.insert(4, 40);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&2), None, "2 was evicted");
        assert!(c.get(&1).is_some());
        assert!(c.get(&3).is_some());
        assert!(c.get(&4).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_replaces_and_promotes() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11);
        c.insert(3, 30);
        assert_eq!(c.get(&2), None, "2 was the LRU after 1's promotion");
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&3), Some(&30));
    }

    #[test]
    fn eviction_order_is_exact_under_churn() {
        let mut c: LruCache<u32, u32> = LruCache::new(8);
        for i in 0..64 {
            c.insert(i, i);
            // The live window is always the last 8 keys.
            for j in 0..=i {
                let expect_live = j + 8 > i;
                assert_eq!(c.contains(&j), expect_live, "key {j} at step {i}");
            }
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.stats().evictions, 56);
    }

    #[test]
    fn remove_frees_the_slot_for_reuse() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.remove(&1), Some(10));
        assert_eq!(c.len(), 1);
        c.insert(3, 30);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0, "removal made room without evicting");
        assert_eq!(c.remove(&99), None);
    }

    #[test]
    fn zero_capacity_is_a_noop_cache() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn clear_resets_entries_and_stats() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.insert(1, 10);
        let _ = c.get(&1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), CacheStats::default());
        c.insert(2, 20);
        assert_eq!(c.get(&2), Some(&20));
    }

    /// The storage layer honours whatever the policy decides: the same churn
    /// produces policy-specific survivor sets.
    #[test]
    fn policies_shape_the_survivor_set() {
        fn survivors<P: EvictionPolicy + PolicyInit>() -> Vec<u32> {
            let mut c: PolicyCache<u32, u32, P> = PolicyCache::new(3);
            for key in [1, 2, 3] {
                c.insert(key, key);
            }
            // 1 is hot (hit twice), 2 warm (once), 3 cold; then 4 arrives.
            c.get(&1);
            c.get(&1);
            c.get(&2);
            c.insert(4, 4);
            let mut live: Vec<u32> = (1..=4).filter(|k| c.contains(k)).collect();
            live.sort_unstable();
            live
        }
        assert_eq!(survivors::<LruPolicy>(), vec![1, 2, 4], "LRU drops 3");
        assert_eq!(survivors::<SlruPolicy>(), vec![1, 2, 4], "SLRU drops 3");
        assert_eq!(survivors::<LfuPolicy>(), vec![1, 2, 4], "LFU drops 3");
        assert_eq!(survivors::<LfudaPolicy>(), vec![1, 2, 4], "LFUDA drops 3");
        // Scan resistance separates the families: after warming a working
        // set, stream one-touch keys through.
        fn scan_survivor_count<P: EvictionPolicy + PolicyInit>() -> usize {
            let mut c: PolicyCache<u32, u32, P> = PolicyCache::new(4);
            for key in [1, 2, 3, 4] {
                c.insert(key, key);
            }
            for _ in 0..3 {
                for key in [1, 2, 3, 4] {
                    c.get(&key);
                }
            }
            for key in 100..120 {
                c.insert(key, key);
            }
            (1..=4u32).filter(|k| c.contains(k)).count()
        }
        assert_eq!(
            scan_survivor_count::<LruPolicy>(),
            0,
            "LRU loses everything"
        );
        // The first scan insert must evict *someone* hot, but every later
        // one-touch key displaces the previous one-touch key, never the
        // frequently-used (LFU) or protected (SLRU) set.
        assert_eq!(
            scan_survivor_count::<LfuPolicy>(),
            3,
            "LFU gives up one slot to the scan, then holds"
        );
        assert_eq!(
            scan_survivor_count::<SlruPolicy>(),
            3,
            "SLRU protects the re-referenced set"
        );
    }

    #[test]
    fn boxed_policy_dispatch_matches_static_dispatch() {
        let mut boxed: PolicyCache<u32, u32, Box<dyn EvictionPolicy + Send>> =
            PolicyCache::with_policy(3, PolicyKind::Lru.build(3));
        let mut fixed: LruCache<u32, u32> = LruCache::new(3);
        assert_eq!(boxed.policy_kind(), PolicyKind::Lru);
        for (key, value) in [(1, 1), (2, 2), (3, 3), (1, 10), (4, 4), (5, 5)] {
            boxed.insert(key, value);
            fixed.insert(key, value);
        }
        for key in 0..6 {
            assert_eq!(boxed.contains(&key), fixed.contains(&key), "key {key}");
        }
        assert_eq!(boxed.stats(), fixed.stats());
    }
}
