//! Capacity-bounded slot-arena cache, generic over its eviction policy.
//!
//! [`PolicyCache`] is the storage half of the serving cache (the `cache-rs`
//! family of eviction libraries is the reference point): a `HashMap` from
//! key to slot index plus a `Vec` slot arena of keys and values. All
//! *ordering* decisions — who is promoted on a hit, who dies when the cache
//! is full — are delegated to an [`EvictionPolicy`]
//! (see [`crate::policy`] for the catalog and the plug-in recipe), and the
//! *entry* decision — whether a newcomer may evict anyone at all — to an
//! optional TinyLFU admission filter ([`with_admission`](PolicyCache::with_admission),
//! see [`crate::admission`]; off by default, preserving the unfiltered
//! behaviour bit-for-bit).
//! Everything is pre-allocated to `capacity` up front, and an eviction
//! recycles its slot in place, so the **steady state — hits, and misses that
//! evict — performs no heap allocation**; that property is what lets the
//! serving engine's warm-cache path stay allocation-free (asserted by the
//! `serve_throughput` bench).
//!
//! [`LruCache`] is the backwards-compatible alias (`PolicyCache` over
//! [`LruPolicy`], statically dispatched): same API, same eviction decisions,
//! bit-for-bit, as the pre-policy-trait serving cache — the `lru_invariants`
//! proptest suite pins it against a brute-force reference model. Runtime
//! policy selection (the sharded cache, the simulator) goes through
//! `PolicyCache<K, V, Box<dyn EvictionPolicy + Send>>` instead.

use crate::admission::TinyLfu;
use crate::policy::{EvictionPolicy, LruPolicy, PolicyInit, PolicyKind};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Niche index marking "no slot".
const NIL: u32 = u32::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
}

/// Running hit/miss/eviction counters of a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found a live entry.
    pub hits: u64,
    /// `get` calls that found nothing.
    pub misses: u64,
    /// Entries displaced by inserts into a full cache.
    pub evictions: u64,
    /// Inserts dropped by the admission filter (always 0 with admission
    /// off): the candidate lost its frequency contest against the
    /// prospective eviction victim.
    pub rejections: u64,
}

impl CacheStats {
    /// Hit fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Counter-wise sum (shard aggregation).
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            rejections: self.rejections + other.rejections,
        }
    }
}

/// The original fixed-capacity least-recently-used map: [`PolicyCache`]
/// statically dispatched over [`LruPolicy`]. `get` promotes the entry to
/// most-recently-used; `insert` into a full cache evicts the
/// least-recently-used entry.
pub type LruCache<K, V> = PolicyCache<K, V, LruPolicy>;

/// A fixed-capacity map whose eviction order is decided by a pluggable
/// [`EvictionPolicy`].
///
/// `get` reports the access to the policy (recency/frequency promotion);
/// `insert` into a full cache evicts the policy's chosen victim. Capacity 0
/// is allowed and turns the cache into a no-op (every `insert` is dropped).
#[derive(Debug)]
pub struct PolicyCache<K, V, P: EvictionPolicy = LruPolicy> {
    map: HashMap<K, u32>,
    slots: Vec<Slot<K, V>>,
    free: Vec<u32>,
    capacity: usize,
    stats: CacheStats,
    policy: P,
    /// TinyLFU admission filter; `None` (the default) preserves the
    /// unfiltered behaviour bit-for-bit. See [`crate::admission`].
    admission: Option<TinyLfu>,
}

impl<K: Hash + Eq + Copy, V, P: EvictionPolicy + PolicyInit> PolicyCache<K, V, P> {
    /// An empty cache holding at most `capacity` entries, its policy built
    /// fresh via [`PolicyInit`], with every internal structure pre-sized so
    /// steady-state operation never allocates.
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, P::for_capacity(capacity))
    }
}

impl<K: Hash + Eq + Copy, V, P: EvictionPolicy> PolicyCache<K, V, P> {
    /// An empty cache holding at most `capacity` entries, ordered by
    /// `policy` (which must have been sized for at least `capacity` slots).
    pub fn with_policy(capacity: usize, policy: P) -> Self {
        assert!(
            capacity < NIL as usize,
            "capacity must fit the u32 slot index"
        );
        Self {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            capacity,
            stats: CacheStats::default(),
            policy,
            admission: None,
        }
    }

    /// Put a freshly sized [`TinyLfu`] admission filter in front of the
    /// eviction policy (builder style). Frequencies are sampled on every
    /// [`get`](Self::get); an insert into a full cache is dropped when the
    /// filter judges the candidate less frequent than the policy's
    /// prospective victim.
    pub fn with_admission(mut self) -> Self {
        self.admission = Some(TinyLfu::for_capacity(self.capacity));
        self
    }

    /// Whether a TinyLFU admission filter guards inserts.
    pub fn admission_enabled(&self) -> bool {
        self.admission.is_some()
    }

    /// Stable per-process hash feeding the admission filter's sketch.
    fn admission_hash(key: &K) -> u64 {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        hasher.finish()
    }

    /// Which eviction policy orders this cache.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hit/miss/eviction counters since construction (or the last
    /// [`clear`](Self::clear)).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether `key` currently lives in the cache, without touching the
    /// policy's books or the counters.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Look up `key`, reporting the access to the eviction policy (and, with
    /// admission enabled, to the frequency sketch — lookups are the filter's
    /// sampling point, so a key builds admission credit by being asked for,
    /// hit or miss).
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if let Some(filter) = &mut self.admission {
            filter.record(Self::admission_hash(key));
        }
        match self.map.get(key).copied() {
            Some(slot) => {
                self.stats.hits += 1;
                self.policy.on_hit(slot);
                Some(&self.slots[slot as usize].value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or replace) `key`, evicting the policy's victim if the cache
    /// is full. A replaced key counts as an access, not an insert.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(slot) = self.map.get(&key).copied() {
            self.slots[slot as usize].value = value;
            self.policy.on_hit(slot);
            return;
        }
        let slot = if self.map.len() == self.capacity {
            if let Some(filter) = &self.admission {
                // The admission contest: peek (don't detach) the prospective
                // victim and compare sketch frequencies. A rejected candidate
                // is dropped with every book — policy's and cache's — exactly
                // as it was.
                let victim = self.policy.peek_victim();
                let victim_key = &self.slots[victim as usize].key;
                if !filter.admit(Self::admission_hash(&key), Self::admission_hash(victim_key)) {
                    self.stats.rejections += 1;
                    return;
                }
            }
            // Recycle the victim's slot in place.
            let victim = self.policy.victim();
            let slot = &mut self.slots[victim as usize];
            self.map.remove(&slot.key);
            slot.key = key;
            slot.value = value;
            self.stats.evictions += 1;
            victim
        } else if let Some(slot) = self.free.pop() {
            let node = &mut self.slots[slot as usize];
            node.key = key;
            node.value = value;
            slot
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot { key, value });
            slot
        };
        self.map.insert(key, slot);
        self.policy.on_insert(slot);
    }

    /// Remove `key` (explicit invalidation), returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V>
    where
        V: Default,
    {
        let slot = self.map.remove(key)?;
        self.policy.on_remove(slot);
        self.free.push(slot);
        Some(std::mem::take(&mut self.slots[slot as usize].value))
    }

    /// Drop every entry and reset the counters and the admission sketch
    /// (keeps the allocations).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.policy.clear();
        if let Some(filter) = &mut self.admission {
            filter.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{LfuPolicy, LfudaPolicy, SlruPolicy};

    #[test]
    fn inserts_and_hits() {
        let mut c: LruCache<u32, &str> = LruCache::new(4);
        c.insert(1, "one");
        c.insert(2, "two");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&3), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn eviction_drops_the_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        // Touch 1 so 2 becomes the LRU.
        assert!(c.get(&1).is_some());
        c.insert(4, 40);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&2), None, "2 was evicted");
        assert!(c.get(&1).is_some());
        assert!(c.get(&3).is_some());
        assert!(c.get(&4).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_replaces_and_promotes() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11);
        c.insert(3, 30);
        assert_eq!(c.get(&2), None, "2 was the LRU after 1's promotion");
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&3), Some(&30));
    }

    #[test]
    fn eviction_order_is_exact_under_churn() {
        let mut c: LruCache<u32, u32> = LruCache::new(8);
        for i in 0..64 {
            c.insert(i, i);
            // The live window is always the last 8 keys.
            for j in 0..=i {
                let expect_live = j + 8 > i;
                assert_eq!(c.contains(&j), expect_live, "key {j} at step {i}");
            }
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.stats().evictions, 56);
    }

    #[test]
    fn remove_frees_the_slot_for_reuse() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.remove(&1), Some(10));
        assert_eq!(c.len(), 1);
        c.insert(3, 30);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0, "removal made room without evicting");
        assert_eq!(c.remove(&99), None);
    }

    #[test]
    fn zero_capacity_is_a_noop_cache() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn clear_resets_entries_and_stats() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.insert(1, 10);
        let _ = c.get(&1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), CacheStats::default());
        c.insert(2, 20);
        assert_eq!(c.get(&2), Some(&20));
    }

    /// The storage layer honours whatever the policy decides: the same churn
    /// produces policy-specific survivor sets.
    #[test]
    fn policies_shape_the_survivor_set() {
        fn survivors<P: EvictionPolicy + PolicyInit>() -> Vec<u32> {
            let mut c: PolicyCache<u32, u32, P> = PolicyCache::new(3);
            for key in [1, 2, 3] {
                c.insert(key, key);
            }
            // 1 is hot (hit twice), 2 warm (once), 3 cold; then 4 arrives.
            c.get(&1);
            c.get(&1);
            c.get(&2);
            c.insert(4, 4);
            let mut live: Vec<u32> = (1..=4).filter(|k| c.contains(k)).collect();
            live.sort_unstable();
            live
        }
        assert_eq!(survivors::<LruPolicy>(), vec![1, 2, 4], "LRU drops 3");
        assert_eq!(survivors::<SlruPolicy>(), vec![1, 2, 4], "SLRU drops 3");
        assert_eq!(survivors::<LfuPolicy>(), vec![1, 2, 4], "LFU drops 3");
        assert_eq!(survivors::<LfudaPolicy>(), vec![1, 2, 4], "LFUDA drops 3");
        // Scan resistance separates the families: after warming a working
        // set, stream one-touch keys through.
        fn scan_survivor_count<P: EvictionPolicy + PolicyInit>() -> usize {
            let mut c: PolicyCache<u32, u32, P> = PolicyCache::new(4);
            for key in [1, 2, 3, 4] {
                c.insert(key, key);
            }
            for _ in 0..3 {
                for key in [1, 2, 3, 4] {
                    c.get(&key);
                }
            }
            for key in 100..120 {
                c.insert(key, key);
            }
            (1..=4u32).filter(|k| c.contains(k)).count()
        }
        assert_eq!(
            scan_survivor_count::<LruPolicy>(),
            0,
            "LRU loses everything"
        );
        // The first scan insert must evict *someone* hot, but every later
        // one-touch key displaces the previous one-touch key, never the
        // frequently-used (LFU) or protected (SLRU) set.
        assert_eq!(
            scan_survivor_count::<LfuPolicy>(),
            3,
            "LFU gives up one slot to the scan, then holds"
        );
        assert_eq!(
            scan_survivor_count::<SlruPolicy>(),
            3,
            "SLRU protects the re-referenced set"
        );
    }

    #[test]
    fn boxed_policy_dispatch_matches_static_dispatch() {
        let mut boxed: PolicyCache<u32, u32, Box<dyn EvictionPolicy + Send>> =
            PolicyCache::with_policy(3, PolicyKind::Lru.build(3));
        let mut fixed: LruCache<u32, u32> = LruCache::new(3);
        assert_eq!(boxed.policy_kind(), PolicyKind::Lru);
        for (key, value) in [(1, 1), (2, 2), (3, 3), (1, 10), (4, 4), (5, 5)] {
            boxed.insert(key, value);
            fixed.insert(key, value);
        }
        for key in 0..6 {
            assert_eq!(boxed.contains(&key), fixed.contains(&key), "key {key}");
        }
        assert_eq!(boxed.stats(), fixed.stats());
    }

    /// The get-then-insert miss pattern of the serving engine, with or
    /// without the admission filter.
    fn replay<P: EvictionPolicy>(cache: &mut PolicyCache<u32, u32, P>, trace: &[u32]) {
        for &key in trace {
            if cache.get(&key).is_none() {
                cache.insert(key, key);
            }
        }
    }

    #[test]
    fn admission_rejects_one_touch_keys_and_keeps_the_working_set_whole() {
        // Warm a 4-slot working set, then sweep 40 one-touch keys through.
        // Plain SLRU gives up one slot to the scan (the probation tail);
        // the admission filter rejects every scan key — each is seen once,
        // the incumbents many times — so the whole set survives.
        let mut warm: Vec<u32> = Vec::new();
        for _ in 0..4 {
            warm.extend([1, 2, 3, 4]);
        }
        let scan: Vec<u32> = (100..140).collect();

        let mut plain: PolicyCache<u32, u32, SlruPolicy> = PolicyCache::new(4);
        replay(&mut plain, &warm);
        replay(&mut plain, &scan);
        assert_eq!(
            (1..=4).filter(|k| plain.contains(k)).count(),
            3,
            "plain SLRU loses exactly the probation tail to the scan"
        );

        let mut filtered: PolicyCache<u32, u32, SlruPolicy> = PolicyCache::new(4).with_admission();
        assert!(filtered.admission_enabled());
        replay(&mut filtered, &warm);
        replay(&mut filtered, &scan);
        assert_eq!(
            (1..=4).filter(|k| filtered.contains(k)).count(),
            4,
            "admission keeps the whole working set"
        );
        let stats = filtered.stats();
        assert_eq!(stats.evictions, 0, "no scan key won its contest");
        assert_eq!(stats.rejections, 40, "every scan key was rejected");
    }

    #[test]
    fn admission_lets_a_newly_hot_key_in_once_it_earns_credit() {
        // A full cache of moderately warm keys; a new key asked for
        // repeatedly must eventually out-score the victim and displace it —
        // the filter is a frequency gate, not a door welded shut.
        let mut cache: PolicyCache<u32, u32, SlruPolicy> = PolicyCache::new(4).with_admission();
        let mut warm: Vec<u32> = Vec::new();
        for _ in 0..2 {
            warm.extend([1, 2, 3, 4]);
        }
        replay(&mut cache, &warm);
        let hot_new: Vec<u32> = vec![9; 8];
        replay(&mut cache, &hot_new);
        assert!(cache.contains(&9), "the newly hot key was admitted");
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn admission_off_is_the_default_and_changes_nothing() {
        // Bit-compatibility: the same churn through a default cache and a
        // pre-admission-era reference sequence of operations must agree.
        let mut cache: PolicyCache<u32, u32, SlruPolicy> = PolicyCache::new(3);
        assert!(!cache.admission_enabled());
        replay(&mut cache, &[1, 2, 3, 1, 1, 2, 4, 5, 6]);
        assert_eq!(cache.stats().rejections, 0);
        assert_eq!(cache.stats().evictions, 3, "every miss-insert evicted");
    }

    #[test]
    fn clear_resets_the_admission_sketch() {
        let mut cache: PolicyCache<u32, u32, SlruPolicy> = PolicyCache::new(2).with_admission();
        replay(&mut cache, &[1, 1, 1, 2, 2, 2]);
        cache.clear();
        assert!(cache.admission_enabled(), "the filter survives a clear");
        // Post-clear, all estimates are zero: ties admit, so churn works.
        replay(&mut cache, &[7, 8, 9]);
        assert!(cache.contains(&9));
        assert_eq!(cache.stats().rejections, 0);
    }
}
