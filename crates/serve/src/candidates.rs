//! Per-relation candidate indexes for the top-k miss path.
//!
//! A cold top-k query scores **every** entity — `O(|E|)` fused kernel passes
//! per miss, which dominates serve-path latency on large vocabularies even
//! after the partial-selection kernel removed the sort. But real knowledge
//! graphs are heavily typed: most relations are only ever observed with a
//! small slice of the entity set (`born_in` never takes a protein as its
//! tail), and link-prediction answers outside that slice are noise to a
//! downstream consumer.
//!
//! [`CandidateIndex`] captures that structure once, at snapshot-bind time:
//! for every relation, the sorted, deduplicated sets of entities observed as
//! its tails and as its heads. A server with a bound index answers top-k
//! misses by scoring only the query relation's candidate set (the batched
//! [`score_candidates`](nscaching_models::KgeModel::score_candidates)
//! gather), falling back to the full-|E| streaming scan whenever the index
//! cannot shrink the scan — an unobserved relation, or one whose candidate
//! set covers the whole vocabulary.
//!
//! # Answer semantics
//!
//! Binding an index *changes the answer set* of affected queries: candidates
//! never observed with the relation no longer appear, exactly like a SQL
//! index-only plan over a typed column. The ranking *within* the candidate
//! set is bit-identical to a full scan restricted to the same set — same
//! scoring kernel, same partial-selection kernel, same lower-entity-id tie
//! break (candidate lists are sorted ascending, so index-order ties *are*
//! entity-id ties). [`KnowledgeServer::bind_candidate_index`] therefore
//! bumps the server's model stamp: cached answers computed under different
//! candidate semantics die the same death as answers computed from stale
//! tables, and can never be served.
//!
//! [`KnowledgeServer::bind_candidate_index`]: crate::KnowledgeServer::bind_candidate_index

use nscaching_kg::{CorruptionSide, EntityId, RelationId, Triple};

/// Sorted, deduplicated observed-entity sets per relation and direction.
/// Immutable once built; the server shares it behind an `Arc`.
#[derive(Debug, Clone, Default)]
pub struct CandidateIndex {
    /// `tails[r]`: entities observed as the tail of relation `r`, ascending.
    tails: Vec<Box<[EntityId]>>,
    /// `heads[r]`: entities observed as the head of relation `r`, ascending.
    heads: Vec<Box<[EntityId]>>,
}

impl CandidateIndex {
    /// Build the index from an observed triple set (typically the training
    /// split the served model was fitted on). Relations beyond
    /// `num_relations` are ignored; relations never observed get empty
    /// candidate sets (which the serve path treats as "cannot shrink" and
    /// answers by full scan).
    pub fn build(triples: &[Triple], num_relations: usize) -> Self {
        let mut tails: Vec<Vec<EntityId>> = vec![Vec::new(); num_relations];
        let mut heads: Vec<Vec<EntityId>> = vec![Vec::new(); num_relations];
        for t in triples {
            let r = t.relation as usize;
            if r >= num_relations {
                continue;
            }
            tails[r].push(t.tail);
            heads[r].push(t.head);
        }
        let compact = |mut sets: Vec<Vec<EntityId>>| {
            sets.drain(..)
                .map(|mut set| {
                    set.sort_unstable();
                    set.dedup();
                    set.into_boxed_slice()
                })
                .collect()
        };
        Self {
            tails: compact(tails),
            heads: compact(heads),
        }
    }

    /// The candidate set for predicting `direction` of a query on
    /// `relation`: observed tails for [`CorruptionSide::Tail`], observed
    /// heads for [`CorruptionSide::Head`]. Empty for out-of-range or
    /// never-observed relations.
    pub fn candidates(&self, relation: RelationId, direction: CorruptionSide) -> &[EntityId] {
        let sets = match direction {
            CorruptionSide::Tail => &self.tails,
            CorruptionSide::Head => &self.heads,
        };
        sets.get(relation as usize).map_or(&[], |set| &set[..])
    }

    /// The candidate set, but only when scoring it beats the streaming full
    /// scan: `None` when the set is empty (nothing observed — answer from
    /// the full vocabulary rather than returning nothing) or when it covers
    /// the whole vocabulary (the gather path would do the same work as the
    /// stream without the streaming layout).
    pub fn shrinking_candidates(
        &self,
        relation: RelationId,
        direction: CorruptionSide,
        num_entities: usize,
    ) -> Option<&[EntityId]> {
        let set = self.candidates(relation, direction);
        (!set.is_empty() && set.len() < num_entities).then_some(set)
    }

    /// Number of relations the index was built over.
    pub fn num_relations(&self) -> usize {
        self.tails.len()
    }

    /// Total candidate entries across all relations and both directions
    /// (a memory proxy: 4 bytes each).
    pub fn total_entries(&self) -> usize {
        let count = |sets: &[Box<[EntityId]>]| sets.iter().map(|s| s.len()).sum::<usize>();
        count(&self.tails) + count(&self.heads)
    }

    /// Mean fraction of `num_entities` a candidate-set scan touches,
    /// averaged over observed (relation, direction) pairs — the scan
    /// shrinkage the index buys on a uniform query mix. 1.0 when nothing is
    /// observed.
    pub fn mean_coverage(&self, num_entities: usize) -> f64 {
        if num_entities == 0 {
            return 1.0;
        }
        let mut observed = 0usize;
        let mut fraction_sum = 0.0;
        for set in self.tails.iter().chain(&self.heads) {
            if !set.is_empty() {
                observed += 1;
                fraction_sum += set.len() as f64 / num_entities as f64;
            }
        }
        if observed == 0 {
            1.0
        } else {
            fraction_sum / observed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triples() -> Vec<Triple> {
        vec![
            Triple::new(0, 0, 5),
            Triple::new(1, 0, 5),
            Triple::new(2, 0, 7),
            Triple::new(9, 1, 3),
            // duplicate observation must collapse
            Triple::new(9, 1, 3),
            // out-of-range relation must be ignored, not panic
            Triple::new(4, 9, 4),
        ]
    }

    #[test]
    fn sets_are_sorted_deduplicated_and_direction_correct() {
        let index = CandidateIndex::build(&triples(), 3);
        assert_eq!(index.num_relations(), 3);
        assert_eq!(index.candidates(0, CorruptionSide::Tail), &[5, 7]);
        assert_eq!(index.candidates(0, CorruptionSide::Head), &[0, 1, 2]);
        assert_eq!(index.candidates(1, CorruptionSide::Tail), &[3]);
        assert_eq!(index.candidates(1, CorruptionSide::Head), &[9]);
        assert_eq!(index.candidates(2, CorruptionSide::Tail), &[] as &[u32]);
        assert_eq!(index.total_entries(), 7);
    }

    #[test]
    fn out_of_range_relations_are_empty_not_panics() {
        let index = CandidateIndex::build(&triples(), 3);
        assert_eq!(index.candidates(9, CorruptionSide::Tail), &[] as &[u32]);
        assert_eq!(
            index.candidates(u32::MAX, CorruptionSide::Head),
            &[] as &[u32]
        );
    }

    #[test]
    fn shrinking_candidates_rejects_empty_and_full_sets() {
        let index = CandidateIndex::build(&triples(), 3);
        // Observed and smaller than the vocabulary: usable.
        assert_eq!(
            index.shrinking_candidates(0, CorruptionSide::Tail, 10),
            Some(&[5u32, 7][..])
        );
        // Unobserved: full scan.
        assert_eq!(
            index.shrinking_candidates(2, CorruptionSide::Tail, 10),
            None
        );
        // Covers the whole vocabulary: full scan.
        assert_eq!(index.shrinking_candidates(0, CorruptionSide::Tail, 2), None);
    }

    #[test]
    fn coverage_reflects_scan_shrinkage() {
        let index = CandidateIndex::build(&triples(), 3);
        // Observed sets: {5,7}, {0,1,2}, {3}, {9} over |E| = 10
        // → mean (2 + 3 + 1 + 1) / 4 / 10 = 0.175.
        assert!((index.mean_coverage(10) - 0.175).abs() < 1e-12);
        assert_eq!(CandidateIndex::default().mean_coverage(10), 1.0);
    }
}
